"""Shared harness for the paper-reproduction benchmarks.

Each ``test_*`` module regenerates one table or figure from the paper's
evaluation.  ``run_system`` evaluates any of the four compared systems on
a shared workload through the same simulator, so differences measure
schedule quality exactly as in the paper.

Benchmarks run at reduced scale (fewer microbatches / iterations /
search evaluations than the paper's 64-GPU runs) so the suite completes
in minutes; EXPERIMENTS.md records the scale used for every experiment.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.baselines.megatron import megatron_schedule
from repro.baselines.nnscaler import NnScalerPlan
from repro.baselines.optimus import optimus_schedule
from repro.cluster.topology import (
    ClusterSpec,
    ParallelConfig,
    cluster_h20,
    cluster_h100,
    cluster_h800,
)
from repro.core.graphbuilder import build_iteration_graph
from repro.core.partitioner import ModalityPartitioner, PartitionPlan
from repro.core.planner import reference_microbatch
from repro.core.searcher import ScheduleSearcher
from repro.data.batching import GlobalBatch
from repro.data.workload import t2v_workload, vlm_workload
from repro.metrics import mfu
from repro.models.lmm import LMMArchitecture, build_combination
from repro.models.zoo import combination_by_name
from repro.sim.costmodel import CostModel

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Search budget for DIP in benchmarks (the paper uses a 10-second
#: wall-clock budget on 64 cores; we use a fixed evaluation budget for
#: determinism).
DIP_BUDGET = 30

SYSTEMS = ("megatron", "nnscaler", "optimus", "dip", "dip-noopt")


@dataclass
class Setup:
    """A model + cluster + layout triple ready to benchmark."""

    name: str
    arch: LMMArchitecture
    cluster: ClusterSpec
    parallel: ParallelConfig
    cost_model: CostModel
    partitioner: ModalityPartitioner
    plan: PartitionPlan

    def workload(self, num_microbatches: int, seed: int = 0):
        if self.arch.kind == "t2v":
            return t2v_workload(num_microbatches, seed=seed)
        return vlm_workload(num_microbatches, seed=seed)


def make_setup(
    combo_name: str,
    cost_model: Optional[CostModel] = None,
    cluster: Optional[ClusterSpec] = None,
    parallel: Optional[ParallelConfig] = None,
) -> Setup:
    """Instantiate a Table 3 / Table 6 setup (one DP replica)."""
    combo = combination_by_name(combo_name)
    arch = build_combination(combo)
    if parallel is None:
        parallel = ParallelConfig(dp=1, tp=combo.tp, pp=combo.pp)
    if cluster is None:
        per_replica = parallel.tp * parallel.pp
        if combo_name.endswith(("-8k", "-16k", "-3k", "-6k")):
            cluster = cluster_h100(max(1, per_replica // 8))
        else:
            cluster = cluster_h800(max(1, per_replica // 8))
    cm = cost_model or CostModel()
    partitioner = ModalityPartitioner(arch, cluster, parallel, cm)
    plan = partitioner.plan(reference_microbatch(arch.kind))
    return Setup(combo_name, arch, cluster, parallel, cm, partitioner, plan)


def dip_graph(setup: Setup, batch: GlobalBatch):
    return build_iteration_graph(
        setup.arch, setup.plan, batch, setup.cluster, setup.parallel,
        setup.cost_model, partitioner=setup.partitioner,
    )


def run_system(
    setup: Setup,
    system: str,
    batch: GlobalBatch,
    nnscaler_plan: Optional[NnScalerPlan] = None,
    budget: int = DIP_BUDGET,
    seed: int = 0,
) -> float:
    """Iteration time (ms) of one system on one batch."""
    if system == "megatron":
        return megatron_schedule(setup.arch, batch, setup.cluster,
                                 setup.parallel, setup.cost_model).total_ms
    if system == "nnscaler":
        plan = nnscaler_plan
        if plan is None:
            plan = NnScalerPlan(setup.arch, setup.cluster, setup.parallel,
                                setup.cost_model)
            plan.fit(setup.workload(len(batch), seed=1234).next_batch())
        return plan.schedule(batch).total_ms
    if system == "optimus":
        return optimus_schedule(setup.arch, batch, setup.cluster,
                                setup.parallel, setup.cost_model).total_ms
    if system in ("dip", "dip-noopt"):
        graph = dip_graph(setup, batch)
        if system == "dip":
            searcher = ScheduleSearcher(setup.cluster, setup.parallel,
                                        setup.cost_model,
                                        budget_evaluations=budget, seed=seed)
        else:
            # "DIP (no-opt)": modality-aware partitioning only; natural
            # ordering, no schedule search, no memory optimization.
            searcher = ScheduleSearcher(setup.cluster, setup.parallel,
                                        setup.cost_model, strategy="natural",
                                        enable_memopt=False, seed=seed)
        return searcher.search(graph).total_ms
    raise ValueError(f"unknown system {system!r}")


def representative_batch(setup: Setup, num_microbatches: int,
                         seed: int, candidates: int = 5) -> GlobalBatch:
    """A median-workload batch, as a static planner would profile with."""
    from repro.data.batching import iteration_flops

    options = setup.workload(num_microbatches, seed=seed).batches(candidates)
    options.sort(key=lambda b: iteration_flops(setup.arch, b))
    return options[len(options) // 2]


def average_times(
    setup: Setup,
    systems: Sequence[str],
    iterations: int,
    num_microbatches: int,
    seed: int = 0,
    budget: int = DIP_BUDGET,
) -> Dict[str, float]:
    """Average iteration time per system over a shared workload stream."""
    batches = setup.workload(num_microbatches, seed=seed).batches(iterations)
    nn_plan: Optional[NnScalerPlan] = None
    if "nnscaler" in systems:
        nn_plan = NnScalerPlan(setup.arch, setup.cluster, setup.parallel,
                               setup.cost_model)
        nn_plan.fit(representative_batch(setup, num_microbatches, seed + 999))
    out: Dict[str, float] = {}
    for system in systems:
        total = 0.0
        for batch in batches:
            total += run_system(setup, system, batch, nnscaler_plan=nn_plan,
                                budget=budget, seed=seed)
        out[system] = total / len(batches)
    return out


def setup_mfu(setup: Setup, batch: GlobalBatch, iteration_ms: float) -> float:
    """MFU of one iteration on this setup."""
    graph_flops = dip_graph(setup, batch).model_flops
    return mfu(graph_flops, iteration_ms, setup.cluster.gpu, setup.parallel)


def save_results(name: str, payload) -> str:
    """Persist a benchmark's findings for EXPERIMENTS.md."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    with open(path, "w") as f:
        json.dump(payload, f, indent=2, default=float)
    return path


def print_table(title: str, rows: List[Dict], columns: Sequence[str]) -> None:
    """Render an aligned text table (shown with ``pytest -s``)."""
    print(f"\n=== {title} ===")
    widths = {c: max(len(c), *(len(_fmt(r.get(c))) for r in rows)) for c in columns}
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    print(header)
    print("-" * len(header))
    for row in rows:
        print("  ".join(_fmt(row.get(c)).ljust(widths[c]) for c in columns))


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
