"""Benchmark-suite configuration.

Each benchmark regenerates a paper table/figure once (``pedantic`` with a
single round): the interesting output is the experiment result, not
timing statistics of the harness itself.
"""

import sys
import os

sys.path.insert(0, os.path.dirname(__file__))
