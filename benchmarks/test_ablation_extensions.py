"""Design-choice ablations beyond the paper's Table 5.

Three knobs DESIGN.md calls out:

* **Decoupled backward** (zero-bubble style): splitting backward into
  dgrad + deferrable wgrad relaxes the dependency structure — the
  custom-schedule extension the paper's related work points at.
* **Memory-candidate budget S** (section 5.3 uses S=10): fewer
  candidates shrink the ILP but cost schedule quality.
* **Search budget**: how quickly schedule quality saturates with
  MCTS evaluations (the knob behind the paper's 10-second budget).
"""

import pytest

from repro.core.graphbuilder import build_iteration_graph
from repro.core.memopt import generate_candidates, optimize_memory
from repro.core.interleaver import interleave_stages
from repro.core.searcher import ScheduleSearcher
from repro.sim.pipeline import simulate_pipeline

from common import dip_graph, make_setup, print_table, save_results

NUM_MICROBATCHES = 8


@pytest.mark.benchmark(group="ablation-ext")
def test_ablation_decoupled_backward(benchmark):
    def run():
        setup = make_setup("VLM-S")
        batch = setup.workload(NUM_MICROBATCHES, seed=2).next_batch()
        out = {}
        for decoupled in (False, True):
            graph = build_iteration_graph(
                setup.arch, setup.plan, batch, setup.cluster, setup.parallel,
                setup.cost_model, partitioner=setup.partitioner,
                decoupled_backward=decoupled,
            )
            searcher = ScheduleSearcher(setup.cluster, setup.parallel,
                                        setup.cost_model,
                                        budget_evaluations=25, seed=0)
            out["decoupled" if decoupled else "coupled"] = (
                searcher.search(graph).total_ms
            )
        return out

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    gain = times["coupled"] / times["decoupled"] - 1.0
    print(f"\ndecoupled backward: coupled={times['coupled'] / 1e3:.2f}s "
          f"decoupled={times['decoupled'] / 1e3:.2f}s  gain={gain * 100:.1f}%")
    save_results("ablation_decoupled", times)
    # Relaxing dependencies never hurts the searched schedule.
    assert times["decoupled"] <= times["coupled"] * 1.02


@pytest.mark.benchmark(group="ablation-ext")
def test_ablation_candidate_budget(benchmark):
    def run():
        setup = make_setup("VLM-S")
        batch = setup.workload(NUM_MICROBATCHES, seed=2).next_batch()
        rows = []
        for s in (2, 4, 10):
            graph = dip_graph(setup, batch)
            generate_candidates(graph, num_candidates=s)
            graph.select_most_memory_efficient()
            inter = interleave_stages(graph, setup.cluster, setup.parallel,
                                      setup.cost_model)
            optimize_memory(graph, inter.start_ms, inter.end_ms, exact=False)
            sim = simulate_pipeline(graph, inter.order, setup.cluster,
                                    setup.parallel, setup.cost_model)
            rows.append({"S": s, "iter (s)": sim.total_ms / 1e3,
                         "peak GiB": max(sim.peak_memory_bytes) / 2**30})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Ablation: memory-candidate budget S (paper uses 10)",
                rows, ["S", "iter (s)", "peak GiB"])
    save_results("ablation_candidates", rows)
    # More candidates never hurt.
    times = [r["iter (s)"] for r in rows]
    assert times[-1] <= times[0] * 1.02


@pytest.mark.benchmark(group="ablation-ext")
def test_ablation_search_budget(benchmark):
    def run():
        setup = make_setup("VLM-S")
        batch = setup.workload(NUM_MICROBATCHES, seed=2).next_batch()
        rows = []
        for budget in (5, 20, 60):
            graph = dip_graph(setup, batch)
            searcher = ScheduleSearcher(setup.cluster, setup.parallel,
                                        setup.cost_model,
                                        budget_evaluations=budget, seed=0)
            rows.append({"budget": budget,
                         "iter (s)": searcher.search(graph).total_ms / 1e3})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Ablation: MCTS evaluation budget", rows,
                ["budget", "iter (s)"])
    save_results("ablation_budget", rows)
    times = [r["iter (s)"] for r in rows]
    assert times[-1] <= times[0] * 1.01  # more search never hurts
