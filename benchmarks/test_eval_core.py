"""Evaluation core: compiled kernel vs legacy evaluator throughput.

DIP's search-efficiency claims (section 6.2, Fig. 11) assume schedule
evaluation is cheap enough to run ~120 rollouts per planned iteration.
This benchmark measures the compiled evaluation core
(:mod:`repro.core.evalcore`: one-shot graph arrays, heap-based
interleaver kernel, one-pass simulator, rollout memo) against the
legacy object-graph evaluators on the Fig. 11 workload:

* **rollouts/sec** — the kernel scores random orderings >= 3x faster
  than ``ScheduleSearcher.evaluate_ordering`` (score-for-score equal);
* **end-to-end search** — identically seeded MCTS searches return the
  same best makespan and winning per-rank order at the same budget,
  with the kernel path strictly faster.

Results are committed to ``results/eval_core.json``; the same
measurement is surfaced as ``repro perf-bench``.
"""

import os

import pytest

from repro.perfbench import run_eval_core_bench

from common import print_table, save_results

MODEL = "VLM-M"  # the Fig. 11 stand-in workload (see test_fig11_*)
NUM_MICROBATCHES = 12
BUDGET = 120
ROLLOUTS = 60
REPEATS = 5

#: The committed results (results/eval_core.json) show the kernel >= 3x
#: over the legacy evaluator; shared CI runners get a relaxed floor so a
#: noisy neighbour cannot flake the build (same convention as
#: test_plan_cache.py).
ON_CI = os.environ.get("CI", "").lower() in ("1", "true")
SPEEDUP_FLOOR = 2.0 if ON_CI else 3.0


@pytest.mark.benchmark(group="eval_core")
def test_eval_core_speedup(benchmark):
    report = benchmark.pedantic(
        run_eval_core_bench,
        kwargs=dict(model=MODEL, microbatches=NUM_MICROBATCHES,
                    budget=BUDGET, rollouts=ROLLOUTS, repeats=REPEATS,
                    seed=0),
        rounds=1, iterations=1,
    )
    roll = report["rollouts"]
    search = report["search"]
    print_table(
        "Eval core: kernel vs legacy (Fig. 11 workload)",
        [
            {"leg": "rollouts/s", "legacy": roll["legacy_per_s"],
             "kernel": roll["kernel_per_s"], "speedup": roll["speedup"]},
            {"leg": "search (s)", "legacy": search["legacy_s"],
             "kernel": search["kernel_s"], "speedup": search["speedup"]},
        ],
        ["leg", "legacy", "kernel", "speedup"],
    )
    save_results("eval_core", report)

    # Equal quality is non-negotiable: same scores, same best plan.
    assert roll["scores_match"]
    assert search["equal_quality"]
    assert search["kernel_best_ms"] == search["legacy_best_ms"]

    # The kernel must be decisively faster on the rollout hot path...
    assert roll["speedup"] >= SPEEDUP_FLOOR, (
        f"kernel only {roll['speedup']:.2f}x over legacy "
        f"(floor {SPEEDUP_FLOOR}x)"
    )
    # ...and end-to-end search must benefit, not just the microbenchmark.
    assert search["speedup"] > 1.2, (
        f"search speedup {search['speedup']:.2f}x — compiled arrays "
        "amortisation lost"
    )
