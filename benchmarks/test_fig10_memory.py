"""Fig. 10: memory-usage timeline of the first pipeline rank (VLM-M).

Paper's findings: Megatron-LM fluctuates through the 1F1B steady state;
Optimus gradually accumulates encoder activations (higher peak); "DIP
(non-adaptive)" (per-layer memory optimization disabled) stays low but
underuses the GPU; full DIP fills available memory deliberately, with
52.9% fewer fluctuations than Megatron and a higher sustained usage than
the non-adaptive variant.
"""

import numpy as np
import pytest

from repro.baselines.megatron import megatron_schedule
from repro.baselines.optimus import optimus_schedule
from repro.core.searcher import ScheduleSearcher

from common import dip_graph, make_setup, print_table, save_results

NUM_MICROBATCHES = 8


def timeline_stats(timeline):
    """Summarise a (time, bytes) step timeline.

    "Fluctuation" is the mean absolute allocation step — how violently
    usage swings per event; finer-grained scheduling shrinks it even
    though more events occur.
    """
    values = np.array([b for _t, b in timeline], dtype=float)
    if len(values) < 2:
        return {"peak": float(values.max()) / 2**30,
                "mean": float(values.mean()) / 2**30, "fluctuation": 0.0}
    steps = np.abs(np.diff(values))
    return {
        "peak": float(values.max()) / 2**30,
        "mean": float(values.mean()) / 2**30,
        "fluctuation": float(steps.mean()) / 2**30,
    }


def run_fig10():
    setup = make_setup("VLM-M")
    batch = setup.workload(NUM_MICROBATCHES, seed=5).next_batch()

    out = {}
    megatron = megatron_schedule(setup.arch, batch, setup.cluster,
                                 setup.parallel, setup.cost_model)
    out["Megatron-LM"] = megatron.predicted.memory_timeline[0]

    optimus = optimus_schedule(setup.arch, batch, setup.cluster,
                               setup.parallel, setup.cost_model)
    out["Optimus"] = optimus.predicted.memory_timeline[0]

    nonadaptive = ScheduleSearcher(setup.cluster, setup.parallel,
                                   setup.cost_model, budget_evaluations=20,
                                   memopt_mode="lean", seed=0)
    graph = dip_graph(setup, batch)
    out["DIP (non-adaptive)"] = (
        nonadaptive.search(graph).schedule.predicted.memory_timeline[0]
    )

    full = ScheduleSearcher(setup.cluster, setup.parallel, setup.cost_model,
                            budget_evaluations=20, seed=0)
    graph = dip_graph(setup, batch)
    out["DIP"] = full.search(graph).schedule.predicted.memory_timeline[0]

    limit = graph.memory_limit_bytes / 2**30
    return out, limit


@pytest.mark.benchmark(group="fig10")
def test_fig10_memory_timelines(benchmark):
    timelines, limit_gb = benchmark.pedantic(run_fig10, rounds=1, iterations=1)
    stats = {name: timeline_stats(t) for name, t in timelines.items()}
    rows = [{"System": name, **{k: round(v, 1) for k, v in s.items()}}
            for name, s in stats.items()]
    print_table(f"Fig 10: rank-0 memory (GiB), limit {limit_gb:.0f} GiB",
                rows, ["System", "peak", "mean", "fluctuation"])
    save_results("fig10", {"stats": stats, "limit_gb": limit_gb})

    # Every system respects the device limit.
    for name, s in stats.items():
        assert s["peak"] <= limit_gb + 1e-6, name
    # DIP uses the freed headroom: higher sustained usage than the
    # non-adaptive variant, which "does not utilize all available GPU
    # memory" (paper).
    assert stats["DIP"]["mean"] > stats["DIP (non-adaptive)"]["mean"] * 1.05
    # The non-adaptive variant swings least (everything checkpointed);
    # Optimus accumulates the most encoder state before the backbone.
    assert stats["DIP (non-adaptive)"]["fluctuation"] <= min(
        s["fluctuation"] for name, s in stats.items()
        if name != "DIP (non-adaptive)"
    )
    assert stats["Optimus"]["peak"] > stats["Megatron-LM"]["peak"]
