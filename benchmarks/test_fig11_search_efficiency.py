"""Fig. 11: search progress of MCTS vs DFS vs random exploration (VLM-L).

The paper tracks the best schedule found against elapsed search time on
64 CPU cores: MCTS approaches the optimum within ~10 s while DFS and
random exploration stall.  We run all three with an identical evaluation
budget (deterministic stand-in for wall-clock) and compare the quality
trajectories.
"""

import pytest

from repro.core.searcher import ScheduleSearcher

from common import dip_graph, make_setup, print_table, save_results

NUM_MICROBATCHES = 12
BUDGET = 150


def run_fig11():
    # Scale note: the paper searches VLM-L on 64 cores; we use VLM-M with
    # 12 microbatches so the sweep completes quickly, with the evaluation
    # budget standing in for wall-clock time.
    setup = make_setup("VLM-M")
    batch = setup.workload(NUM_MICROBATCHES, seed=9).next_batch()
    results = {}
    for strategy in ("mcts", "dfs", "random"):
        graph = dip_graph(setup, batch)
        searcher = ScheduleSearcher(setup.cluster, setup.parallel,
                                    setup.cost_model, strategy=strategy,
                                    budget_evaluations=BUDGET,
                                    enable_memopt=False, seed=0)
        outcome = searcher.search(graph)
        trace = [(evals, ms) for _elapsed, evals, ms in outcome.trace]
        results[strategy] = {
            "best_ms": outcome.reorder.best_ms,
            "final_ms": outcome.total_ms,
            "trace": trace,
        }
    return results


@pytest.mark.benchmark(group="fig11")
def test_fig11_search_strategies(benchmark):
    results = benchmark.pedantic(run_fig11, rounds=1, iterations=1)
    rows = [
        {"Strategy": name.upper(), "best iter (s)": r["best_ms"] / 1e3,
         "improvements": len(r["trace"])}
        for name, r in results.items()
    ]
    print_table(f"Fig 11: best schedule after {BUDGET} evaluations (VLM-L)",
                rows, ["Strategy", "best iter (s)", "improvements"])
    save_results("fig11", {k: {"best_ms": v["best_ms"], "trace": v["trace"]}
                           for k, v in results.items()})

    mcts = results["mcts"]["best_ms"]
    dfs = results["dfs"]["best_ms"]
    rand = results["random"]["best_ms"]
    # Guided search never loses to the unguided baselines at equal budget.
    assert mcts <= dfs * 1.001
    assert mcts <= rand * 1.001

    # MCTS improves over its own first sample within the budget.
    first = results["mcts"]["trace"][0][1]
    assert mcts <= first
