"""Fig. 12: search-time scaling vs microbatch count (VLM-S and T2V-S).

The paper compares DIP's decomposed search against solving the whole
pipeline schedule exactly with Z3 and Gurobi: the exact solvers blow up
exponentially and time out past ~10 microbatches while DIP stays under
10 seconds.  Stand-ins here (no commercial solvers offline):

* "Z3 role": exhaustive branch-and-bound over sequencing decisions —
  SMT-style systematic exploration of the monolithic problem.
* "Gurobi role": the big-M disjunctive MILP solved by HiGHS through
  scipy (O(n^2) ordering binaries, the encoding section 5.4 analyses).

Timeouts are capped at ``TIME_LIMIT_S`` (the paper uses 3 hours; the
blow-up is visible within seconds at our scale).
"""

import time

import pytest

from repro.core.searcher import ScheduleSearcher
from repro.solver.monolithic import (
    exhaustive_optimal_schedule,
    milp_optimal_schedule,
)

from common import dip_graph, make_setup, print_table, save_results

MICROBATCH_COUNTS = (1, 2, 3, 4, 6)
TIME_LIMIT_S = 10.0


def run_fig12(combo_name):
    setup = make_setup(combo_name)
    rows = []
    for n in MICROBATCH_COUNTS:
        batch = setup.workload(n, seed=0).next_batch()
        row = {"#microbatch": n}

        graph = dip_graph(setup, batch)
        t0 = time.monotonic()
        searcher = ScheduleSearcher(setup.cluster, setup.parallel,
                                    setup.cost_model, budget_evaluations=30,
                                    seed=0)
        dip = searcher.search(graph)
        row["DIP (s)"] = time.monotonic() - t0
        row["DIP ms"] = dip.total_ms

        graph = dip_graph(setup, batch)
        exact = exhaustive_optimal_schedule(
            graph, setup.cluster, setup.parallel, setup.cost_model,
            time_limit_s=TIME_LIMIT_S,
        )
        row["Z3* (s)"] = exact.solve_seconds
        row["Z3* timeout"] = exact.timed_out

        graph = dip_graph(setup, batch)
        milp = milp_optimal_schedule(
            graph, setup.cluster, setup.parallel, setup.cost_model,
            time_limit_s=TIME_LIMIT_S,
        )
        row["Gurobi* (s)"] = milp.solve_seconds
        row["Gurobi* timeout"] = milp.timed_out
        rows.append(row)
    return rows


@pytest.mark.benchmark(group="fig12")
@pytest.mark.parametrize("combo", ["VLM-S", "T2V-S"])
def test_fig12_search_scalability(benchmark, combo):
    rows = benchmark.pedantic(run_fig12, args=(combo,), rounds=1, iterations=1)
    for row in rows:
        for key in ("Z3* (s)", "Gurobi* (s)"):
            flag = key.replace(" (s)", " timeout")
            if row[flag]:
                row[key] = f">{row[key]:.0f} (timeout)"
    print_table(f"Fig 12 [{combo}]: schedule search time vs #microbatch",
                rows, ["#microbatch", "DIP (s)", "Z3* (s)", "Gurobi* (s)"])
    save_results(f"fig12_{combo}", rows)

    # DIP's search time stays bounded across the sweep...
    dip_times = [r["DIP (s)"] for r in rows]
    assert max(dip_times) < TIME_LIMIT_S
    # ...while both exact solvers hit the timeout at the larger sizes.
    assert rows[-1]["Z3* timeout"]
    assert rows[-1]["Gurobi* timeout"]
    # At tiny sizes the exact solvers do finish — the blow-up is real,
    # not an artifact of the cap.
    assert not rows[0]["Z3* timeout"]
