"""Fig. 13: simulation accuracy across a DP x TP x PP grid search (VLM-M).

The paper grid-searches parallel layouts for VLM-M on 64 GPUs, comparing
simulated MFU against real executions: the uncalibrated simulator shows
up to ~10% relative error yet still identifies the optimal layout;
calibrating efficiency factors from microbenchmarks lifts average
accuracy to 97.6%.

Real GPU executions are replaced by the reference "hidden-truth"
simulator (hidden efficiency factors + measurement noise); calibration
fits the analytic model's factors against its microbenchmarks — the same
procedure at every step.
"""

import numpy as np
import pytest

from repro.cluster.topology import ParallelConfig, cluster_h800
from repro.core.searcher import ScheduleSearcher
from repro.metrics import mfu
from repro.models.lmm import build_combination
from repro.models.zoo import combination_by_name, module_by_name
from repro.sim.calibration import calibrate_cost_model
from repro.sim.costmodel import CostModel
from repro.sim.pipeline import simulate_pipeline
from repro.sim.reference import ReferenceCostModel

from common import print_table, save_results

TOTAL_GPUS = 64
GLOBAL_MICROBATCHES = 16


def valid_layouts():
    """Power-of-two DP/TP/PP combos filling 64 GPUs (TP <= 8, PP >= 2)."""
    layouts = []
    for tp in (2, 4, 8):
        for dp in (1, 2, 4, 8):
            pp = TOTAL_GPUS // (tp * dp)
            if pp < 2 or pp > 16 or tp * dp * pp != TOTAL_GPUS:
                continue
            layouts.append(ParallelConfig(dp=dp, tp=tp, pp=pp))
    return layouts


def measure_layout(parallel, cost_model, reference):
    """(predicted, real) per-replica MFU for VLM-M under one layout.

    The schedule is planned with ``cost_model`` — exactly what the
    system would deploy — then the *same* schedule is replayed on the
    hidden-truth reference with measurement noise ("real execution").
    """
    from repro.core.graphbuilder import build_iteration_graph
    from repro.core.partitioner import ModalityPartitioner
    from repro.core.planner import reference_microbatch
    from repro.data.workload import vlm_workload

    arch = build_combination(combination_by_name("VLM-M"))
    cluster = cluster_h800(num_nodes=TOTAL_GPUS // 8)
    per_replica = max(1, GLOBAL_MICROBATCHES // parallel.dp)
    partitioner = ModalityPartitioner(arch, cluster, parallel, cost_model)
    plan = partitioner.plan(reference_microbatch("vlm"))
    batch = vlm_workload(per_replica, seed=0).next_batch()
    graph = build_iteration_graph(arch, plan, batch, cluster, parallel,
                                  cost_model, partitioner=partitioner)
    # Uniform memory policy on both sides keeps the deployed strategies
    # identical between prediction and "real" execution.
    searcher = ScheduleSearcher(cluster, parallel, cost_model,
                                strategy="natural", memopt_mode="uniform",
                                seed=0)
    result = searcher.search(graph)
    predicted = mfu(graph.model_flops, result.total_ms, cluster.gpu, parallel)

    # Real execution: identical plan and order, hidden-truth latencies.
    ref_graph = build_iteration_graph(arch, plan, batch, cluster, parallel,
                                      reference, partitioner=partitioner)
    from repro.core.memopt import apply_uniform_memory_policy

    apply_uniform_memory_policy(ref_graph)
    real_sim = simulate_pipeline(ref_graph, result.schedule.order, cluster,
                                 parallel, reference, jitter=reference.jitter)
    real = mfu(graph.model_flops, real_sim.total_ms, cluster.gpu, parallel)
    return predicted, real


def run_fig13():
    default = CostModel()
    reference = ReferenceCostModel(seed=7, noise_sigma=0.01)
    specs = [module_by_name("vit-5b"), module_by_name("qwen2-32b")]
    report = calibrate_cost_model(default, reference,
                                  cluster_h800(1).gpu, specs, tp=8)
    calibrated = report.calibrated

    rows = []
    for parallel in valid_layouts():
        sim, real = measure_layout(parallel, default, reference)
        cal, real_cal = measure_layout(parallel, calibrated, reference)
        rows.append({
            "layout": parallel.describe(),
            "real": real,
            "sim": sim,
            "sim (calibrated)": cal,
            "real (calibrated plan)": real_cal,
        })
    return rows, report


@pytest.mark.benchmark(group="fig13")
def test_fig13_simulation_accuracy(benchmark):
    rows, report = benchmark.pedantic(run_fig13, rounds=1, iterations=1)
    print_table("Fig 13: MFU by layout — real vs simulated (VLM-M, 64 GPUs)",
                rows, ["layout", "real", "sim", "sim (calibrated)"])
    save_results("fig13", rows)

    real = np.array([r["real"] for r in rows])
    sim = np.array([r["sim"] for r in rows])
    cal = np.array([r["sim (calibrated)"] for r in rows])
    real_cal = np.array([r["real (calibrated plan)"] for r in rows])

    err_sim = float(np.mean(np.abs(sim - real) / real))
    err_cal = float(np.mean(np.abs(cal - real_cal) / real_cal))
    print(f"mean relative error: sim={err_sim * 100:.1f}% "
          f"calibrated={err_cal * 100:.1f}% "
          f"(paper: ~10% -> 2.4%)")

    # Calibration improves accuracy, substantially.
    assert err_cal < err_sim
    assert err_cal < 0.10
    # The uncalibrated simulator still identifies the real optimum
    # (the paper's "successfully predicts the optimal configuration").
    assert int(np.argmax(sim)) == int(np.argmax(real))
