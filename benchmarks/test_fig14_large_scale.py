"""Fig. 14: large-scale simulations on H100 clusters (Table 6 models).

The paper simulates VLM-XL (ViT 22B + GPT 175B) on 8192/16384 H100s and
T2V-XL (Qwen2 72B + DiT 30B) on 3072/6144 H100s: DIP reaches MFU 0.36 /
0.39 and outperforms baselines by up to 82.8%, with larger gains at the
larger pipeline depths.  Exactly like the paper, these numbers come from
the training simulator — one DP replica is simulated (replicas are
homogeneous; the DP all-reduce overlaps with backward).
"""

import pytest

from repro.baselines.megatron import megatron_schedule
from repro.core.searcher import ScheduleSearcher

from common import (
    dip_graph,
    make_setup,
    print_table,
    representative_batch,
    run_system,
    save_results,
)
from repro.baselines.nnscaler import NnScalerPlan
from repro.metrics import mfu

SETUPS = ("VLM-XL-8k", "VLM-XL-16k", "T2V-XL-3k", "T2V-XL-6k")


def run_setup(name):
    setup = make_setup(name)
    num_microbatches = 2 * setup.parallel.pp
    batch = setup.workload(num_microbatches, seed=0).next_batch()
    graph_flops = dip_graph(setup, batch).model_flops

    systems = ["megatron", "nnscaler", "dip"]
    if setup.arch.kind == "vlm":
        systems.insert(2, "optimus")
    nn_plan = NnScalerPlan(setup.arch, setup.cluster, setup.parallel,
                           setup.cost_model)
    nn_plan.fit(representative_batch(setup, num_microbatches, seed=55))

    out = {}
    for system in systems:
        ms = run_system(setup, system, batch, nnscaler_plan=nn_plan,
                        budget=25, seed=0)
        out[system] = mfu(graph_flops, ms, setup.cluster.gpu, setup.parallel)
    return out


RESULTS = {}


@pytest.mark.benchmark(group="fig14")
@pytest.mark.parametrize("name", SETUPS)
def test_fig14_setup(benchmark, name):
    mfus = benchmark.pedantic(run_setup, args=(name,), rounds=1, iterations=1)
    RESULTS[name] = mfus
    print(f"\nFig 14 [{name}]: " + "  ".join(
        f"{s}={v:.3f}" for s, v in mfus.items()))
    save_results(f"fig14_{name}", mfus)

    # DIP reaches the highest MFU in every configuration.
    assert mfus["dip"] == max(mfus.values())
    # And the improvement over the weakest baseline is substantial
    # (paper: up to 82.8%).
    assert mfus["dip"] / min(mfus.values()) - 1.0 > 0.15


@pytest.mark.benchmark(group="fig14")
def test_fig14_summary(benchmark):
    def summarize():
        for name in SETUPS:
            if name not in RESULTS:
                RESULTS[name] = run_setup(name)
        return RESULTS

    results = benchmark.pedantic(summarize, rounds=1, iterations=1)
    rows = [{"Setup": name, **{s: round(v, 3) for s, v in r.items()}}
            for name, r in results.items()]
    print_table("Fig 14: MFU on large-scale H100 clusters", rows,
                ["Setup", "megatron", "nnscaler", "optimus", "dip"])
    save_results("fig14_summary", results)

    # Larger pipeline depth favours DIP more (paper: "particularly with
    # larger pipeline parallelism sizes").
    vlm_gain_8k = results["VLM-XL-8k"]["dip"] / results["VLM-XL-8k"]["megatron"]
    vlm_gain_16k = (results["VLM-XL-16k"]["dip"]
                    / results["VLM-XL-16k"]["megatron"])
    assert vlm_gain_16k > vlm_gain_8k * 0.95
