"""Fig. 4: sources of training-data dynamicity.

(a) token/image distributions of the image corpora, (b) token/second
distributions of the video corpora, (c-d) per-module FLOPs across 100
packed batches for VLM-S and T2V-S, sorted by total cost.  The paper's
headline statistic: the heaviest T2V batch costs 4.15x the lightest.
"""

import numpy as np
import pytest

from repro.data.batching import microbatch_module_flops
from repro.data.distributions import (
    IMAGE_RATIO_DISTRIBUTIONS,
    VIDEO_RATIO_DISTRIBUTIONS,
    ratio_histogram,
)
from repro.data.workload import t2v_workload, vlm_workload
from repro.models.lmm import build_combination
from repro.models.zoo import combination_by_name

from common import print_table, save_results

NUM_BATCHES = 100


def run_fig4ab():
    rng = np.random.default_rng(0)
    out = {}
    for name, dist in {**IMAGE_RATIO_DISTRIBUTIONS,
                       **VIDEO_RATIO_DISTRIBUTIONS}.items():
        centers, props = ratio_histogram(dist, rng, num_samples=50_000, bins=40)
        out[name] = {
            "mean": float(np.sum(centers * props)),
            "min": float(centers[np.nonzero(props)[0][0]]),
            "max": float(centers[np.nonzero(props)[0][-1]]),
        }
    return out


def run_fig4cd(combo_name):
    arch = build_combination(combination_by_name(combo_name))
    if arch.kind == "vlm":
        stream = vlm_workload(1, seed=0)
    else:
        stream = t2v_workload(1, seed=0)
    series = {b.name: [] for b in arch.bindings}
    for _ in range(NUM_BATCHES):
        mb = stream.next_batch().microbatches[0]
        flops = microbatch_module_flops(arch, mb)
        for name, value in flops.items():
            series[name].append(value / 1e12)
    totals = np.sum([series[n] for n in series], axis=0)
    order = np.argsort(totals)
    return {name: list(np.array(vals)[order]) for name, vals in series.items()}


@pytest.mark.benchmark(group="fig4")
def test_fig4ab_dataset_distributions(benchmark):
    stats = benchmark.pedantic(run_fig4ab, rounds=1, iterations=1)
    rows = [{"Dataset": k, **v} for k, v in stats.items()]
    print_table("Fig 4a-b: modality-ratio distributions", rows,
                ["Dataset", "mean", "min", "max"])
    save_results("fig4ab", stats)
    # LAION-2B mean matches the paper's 16.4 tokens/image.
    assert stats["LAION-2B"]["mean"] == pytest.approx(16.4, rel=0.2)
    # OBELICS is the widest image distribution.
    assert stats["OBELICS"]["max"] > 5 * stats["LAION-2B"]["max"]
    # Video corpora differ in caption density (ShareGPT4Video densest).
    assert stats["ShareGPT4Video"]["mean"] > stats["InternVid"]["mean"]


@pytest.mark.benchmark(group="fig4")
def test_fig4c_vlm_flops_spread(benchmark):
    series = benchmark.pedantic(run_fig4cd, args=("VLM-S",), rounds=1,
                                iterations=1)
    vit = np.array(series["vit-5b"])
    lm = np.array(series["llama3-8b"])
    totals = vit + lm
    save_results("fig4c", {"vit": list(vit), "lm": list(lm)})
    print(f"\nFig 4c (VLM-S): ViT TFLOPs [{vit.min():.0f}, {vit.max():.0f}] "
          f"LM TFLOPs [{lm.min():.0f}, {lm.max():.0f}] "
          f"total spread {totals.max() / totals.min():.2f}x")
    # LM cost is nearly constant (packed to 8192 tokens)...
    assert lm.max() / max(lm.min(), 1e-9) < 1.1
    # ...while ViT cost varies with image density across batches.
    assert vit.max() / max(vit.min(), 1e-9) > 2.0
    assert totals.max() / totals.min() > 1.5


@pytest.mark.benchmark(group="fig4")
def test_fig4d_t2v_flops_spread(benchmark):
    series = benchmark.pedantic(run_fig4cd, args=("T2V-S",), rounds=1,
                                iterations=1)
    lm = np.array(series["llama3-8b"])
    dit = np.array(series["dit-5b"])
    totals = lm + dit
    save_results("fig4d", {"lm": list(lm), "dit": list(dit)})
    spread = totals.max() / totals.min()
    print(f"\nFig 4d (T2V-S): DiT TFLOPs [{dit.min():.0f}, {dit.max():.0f}] "
          f"LM [{lm.min():.0f}, {lm.max():.0f}] spread {spread:.2f}x")
    # The paper reports a 4.15x max/min spread; require the same order.
    assert 2.0 < spread < 8.0
    # The DiT dominates and drives the variance.
    assert dit.mean() > lm.mean()
