"""Fig. 8a: average end-to-end performance across the five Table 3 setups.

The paper normalises iteration time to Megatron-LM (=1.0) and reports
nnScaler* around 0.74-0.80, Optimus 0.65-0.75 (VLMs only) and DIP
0.51-0.64 — improvements of 15.6-76.2% (VLM) and 36.6-97.3% (T2V).

Scale note: the paper averages 100 iterations on the 64-GPU testbed; we
average fewer iterations per setup on the simulator (the iteration-time
*distribution* is stationary, so a handful suffices for the mean).
"""

import pytest

from common import average_times, make_setup, print_table, save_results

ITERATIONS = 3

VLM_SETUPS = ("VLM-S", "VLM-M", "VLM-L")
T2V_SETUPS = ("T2V-S", "T2V-L")


def run_setup(name):
    setup = make_setup(name)
    # Keep the microbatch count proportional to pipeline depth (the
    # paper uses 64 microbatches on 8-16 ranks); too few starves every
    # system with warm-up bubbles.
    num_microbatches = 2 * setup.parallel.pp
    systems = ["megatron", "nnscaler", "dip"]
    if setup.arch.kind == "vlm":
        systems.insert(2, "optimus")
    times = average_times(setup, systems, ITERATIONS, num_microbatches, seed=0)
    base = times["megatron"]
    return {system: ms / base for system, ms in times.items()}, times


RESULTS = {}


@pytest.mark.benchmark(group="fig8a")
@pytest.mark.parametrize("name", VLM_SETUPS + T2V_SETUPS)
def test_fig8a_setup(benchmark, name):
    normalized, raw = benchmark.pedantic(run_setup, args=(name,), rounds=1,
                                         iterations=1)
    RESULTS[name] = normalized
    print(f"\nFig 8a [{name}]: " + "  ".join(
        f"{s}={v:.3f}" for s, v in normalized.items()))
    save_results(f"fig8a_{name}", {"normalized": normalized, "raw_ms": raw})

    # DIP always wins; static baselines land between DIP and Megatron.
    assert normalized["dip"] < 1.0
    assert normalized["dip"] <= normalized["nnscaler"] + 0.02
    if "optimus" in normalized:
        assert normalized["dip"] <= normalized["optimus"] + 0.02
    # The improvement is substantial: paper reports 15.6%-97.3%; require
    # at least 10% over Megatron everywhere.
    assert 1.0 / normalized["dip"] - 1.0 > 0.10


@pytest.mark.benchmark(group="fig8a")
def test_fig8a_summary(benchmark):
    def summarize():
        # Ensure every setup ran (ordering within a pytest session).
        missing = [n for n in VLM_SETUPS + T2V_SETUPS if n not in RESULTS]
        for name in missing:
            RESULTS[name] = run_setup(name)[0]
        return RESULTS

    results = benchmark.pedantic(summarize, rounds=1, iterations=1)
    rows = []
    for name, normalized in results.items():
        rows.append({"Setup": name, **{s: round(v, 3)
                                       for s, v in normalized.items()}})
    print_table("Fig 8a: normalized iteration time (Megatron-LM = 1.0)",
                rows, ["Setup", "megatron", "nnscaler", "optimus", "dip"])
    save_results("fig8a_summary", results)
    best_gain = max(1.0 / r["dip"] - 1.0 for r in results.values())
    print(f"max DIP improvement: {best_gain * 100:.1f}% "
          "(paper: up to 97.3%)")
    assert best_gain > 0.25
