"""Fig. 8b: iteration-time timeline under controlled dynamic workloads.

VLM-S with two rise-and-fall image-count patterns over 40 iterations:
Megatron-LM suffers most during image-heavy phases (the paper reports a
52.9% slowdown vs DIP at the peak), the gap narrows as batches converge
to pure text, and "DIP (no-opt)" separates the partitioner's gains from
the schedule searcher's.

Scale note: 4 microbatches/iteration instead of the paper's 64-GPU run.
"""

import numpy as np
import pytest

from repro.baselines.nnscaler import NnScalerPlan
from repro.data.workload import DynamicImageBoundsSchedule

from common import make_setup, print_table, run_system, save_results

NUM_MICROBATCHES = 4
SYSTEMS = ("megatron", "nnscaler", "optimus", "dip-noopt", "dip")


def run_fig8b():
    setup = make_setup("VLM-S")
    schedule = DynamicImageBoundsSchedule(
        num_microbatches=NUM_MICROBATCHES, seed=0
    )
    nn_plan = NnScalerPlan(setup.arch, setup.cluster, setup.parallel,
                           setup.cost_model)
    nn_plan.fit(setup.workload(NUM_MICROBATCHES, seed=77).next_batch())

    timeline = {system: [] for system in SYSTEMS}
    images = []
    for iteration in range(schedule.total_iterations):
        batch = schedule.batch(iteration)
        images.append(batch.average_images)
        for system in SYSTEMS:
            ms = run_system(setup, system, batch, nnscaler_plan=nn_plan,
                            budget=20, seed=iteration)
            timeline[system].append(ms)
    return timeline, images


@pytest.mark.benchmark(group="fig8b")
def test_fig8b_dynamic_workload_timeline(benchmark):
    timeline, images = benchmark.pedantic(run_fig8b, rounds=1, iterations=1)
    save_results("fig8b", {"timeline": timeline, "avg_images": images})

    rows = []
    for it in range(0, len(images), 4):
        rows.append({
            "iter": it + 1,
            "#img": round(images[it], 1),
            **{s: round(timeline[s][it] / 1e3, 2) for s in SYSTEMS},
        })
    print_table("Fig 8b: iteration time (s) under dynamic image counts",
                rows, ["iter", "#img"] + list(SYSTEMS))

    meg = np.array(timeline["megatron"])
    dip = np.array(timeline["dip"])
    noopt = np.array(timeline["dip-noopt"])
    images = np.array(images)

    # DIP leads on average, and never loses badly on any iteration.
    assert dip.mean() < meg.mean()
    assert dip.mean() < np.array(timeline["nnscaler"]).mean()
    assert dip.mean() < np.array(timeline["optimus"]).mean()
    assert (dip <= meg * 1.05).all()

    # The searcher contributes on top of bare modality-aware partitioning.
    assert dip.mean() < noopt.mean()

    # Megatron's slowdown vs DIP correlates with image pressure: the gap
    # at the heavy peak far exceeds the text-only trough (paper: 52.9%
    # at iteration 6, narrowing as image counts decay).
    heavy = images >= np.quantile(images, 0.8)
    light = images <= np.quantile(images, 0.2)
    gap_heavy = (meg[heavy] / dip[heavy]).mean()
    gap_light = (meg[light] / dip[light]).mean()
    print(f"Megatron/DIP gap: heavy={gap_heavy:.2f}x light={gap_light:.2f}x")
    assert gap_heavy > gap_light
    assert gap_heavy > 1.2
