"""Fig. 9: impact of the image-encoder sub-microbatch size (VLM-S).

The paper sweeps sizes 4..32 and derives the best and worst schedules at
each size (worst = search with the objective inverted).  Two findings to
reproduce: (1) small sizes shrink the best-worst gap (less sensitivity to
schedule choice); (2) very small sizes lose GPU efficiency, so the best
curve has an interior optimum (the paper picks 12).
"""

import pytest

from repro.core.graphbuilder import build_iteration_graph
from repro.core.partitioner import fixed_sub_batch_plan
from repro.core.planner import reference_microbatch
from repro.core.searcher import ScheduleSearcher

from common import make_setup, print_table, save_results

SIZES = (2, 4, 8, 12, 16, 24, 32)
NUM_MICROBATCHES = 8


def run_fig9():
    setup = make_setup("VLM-S")
    batch = setup.workload(NUM_MICROBATCHES, seed=3).next_batch()
    reference = reference_microbatch("vlm")
    results = []
    for size in SIZES:
        plan = fixed_sub_batch_plan(setup.partitioner, reference,
                                    {"vit-5b": size})
        row = {"size": size}
        for label, invert in (("best", False), ("worst", True)):
            graph = build_iteration_graph(
                setup.arch, plan, batch, setup.cluster, setup.parallel,
                setup.cost_model, partitioner=setup.partitioner,
            )
            searcher = ScheduleSearcher(
                setup.cluster, setup.parallel, setup.cost_model,
                budget_evaluations=25, seed=0, invert=invert,
                enable_memopt=not invert,
            )
            result = searcher.search(graph)
            if invert:
                # Score of the worst ordering found (the final schedule
                # pass always re-optimises, so use the search score).
                row[label] = (result.reorder.best_ms if result.reorder
                              else result.total_ms) / 1e3
            else:
                row[label] = result.total_ms / 1e3
        results.append(row)
    return results


@pytest.mark.benchmark(group="fig9")
def test_fig9_sub_microbatch_sizes(benchmark):
    rows = benchmark.pedantic(run_fig9, rounds=1, iterations=1)
    for row in rows:
        row["gap %"] = (row["worst"] / row["best"] - 1.0) * 100.0
    print_table("Fig 9: iteration time vs image sub-microbatch size",
                rows, ["size", "best", "worst", "gap %"])
    save_results("fig9", rows)

    best = {r["size"]: r["best"] for r in rows}
    gap = {r["size"]: r["gap %"] for r in rows}

    # Worst >= best at every size.
    assert all(r["worst"] >= r["best"] - 1e-9 for r in rows)
    # Mid-range sizes beat the extremes (interior optimum; paper picks 12).
    mid = min(best[s] for s in (8, 12, 16))
    assert mid <= best[2] + 1e-9
    assert mid <= best[32] + 1e-9
    # Small sizes reduce schedule sensitivity: the best-worst gap at the
    # small end is below the gap at the large end (paper: 15.4% -> 5.1%).
    small_gap = (gap[2] + gap[4]) / 2
    large_gap = (gap[24] + gap[32]) / 2
    assert small_gap < large_gap + 2.0
