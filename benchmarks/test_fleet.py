"""Fleet scaling: plans/sec vs shard count on the fig. 11 workload.

Schedule search is CPU-bound Python, so one server process is
GIL-bound.  The fleet shards the service across N processes with
consistent-hash signature routing, which should scale aggregate
plans/sec whenever distinct signatures are concurrently in flight —
while per-signature behaviour (one search, coalesced replays, identical
best makespans) must stay exactly as a single server's.

Scale note: shard counts 1/2/4 with 6 OS client processes each driving
8 iterations of the VLM-M dynamic workload (search budget 10) — far
below the paper's 64-GPU fleet, but enough for the scaling trend and
the makespan-identity assertion.  Results land in
``benchmarks/results/fleet.json`` for EXPERIMENTS.md.

Shard processes can only run side by side when the machine grants them
cores: on a single-CPU runner every process multiplexes one core, so
plans/sec is flat-to-declining by construction.  The correctness
invariants (makespan identity, fleet-wide coalescing, single-shard
signature homes) hold regardless and are always asserted; the
plans/sec scaling floor is asserted only when at least two CPUs are
available, and the measured scaling + CPU count are recorded in the
results either way.
"""

import pytest

from repro.fleet.bench import (
    makespan_conflicts,
    print_fleet_bench,
    run_fleet_bench,
)

from common import save_results

SHARD_COUNTS = (1, 2, 4)
ITERATIONS = 8
CLIENTS = 6
BUDGET = 10
#: Conservative: 1 -> 4 shards should beat this handily, but CI
#: machines share cores with the client processes.
SCALING_FLOOR = 1.2


@pytest.mark.benchmark(group="fleet")
def test_fleet_scales_plans_per_second(benchmark):
    result = benchmark.pedantic(
        run_fleet_bench,
        kwargs=dict(shard_counts=SHARD_COUNTS, iterations=ITERATIONS,
                    clients=CLIENTS, budget=BUDGET),
        rounds=1, iterations=1,
    )
    print_fleet_bench(result)
    save_results("fleet", result)

    sizes = result["sizes"]
    assert set(sizes) == {str(c) for c in SHARD_COUNTS}

    expected_plans = ITERATIONS * CLIENTS
    for key, size in sizes.items():
        assert size["errors"] == [], f"{key} shards: {size['errors']}"
        assert size["plans"] == expected_plans
        # Routing keeps every signature on one shard (absent failovers).
        assert size["failovers"] == 0
        assert size["max_shards_per_signature"] == 1
        # Fleet-wide coalescing: one search per distinct signature.
        assert size["service"]["searches"] == len(size["makespans"])

    # The shard count must never change a plan: best makespans are
    # identical per signature across every fleet size.
    assert makespan_conflicts(result) == []

    # The scaling claim needs real cores to hold: N CPU-bound shard
    # processes cannot outpace one on a single-CPU machine.
    assert result["scaling"] > 0
    if result["workload"]["cpus"] >= 2:
        assert result["scaling"] >= SCALING_FLOOR, (
            f"1 -> {max(SHARD_COUNTS)} shards scaled only "
            f"{result['scaling']:.2f}x on "
            f"{result['workload']['cpus']} CPUs"
        )
