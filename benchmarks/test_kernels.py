"""Micro-benchmarks of DIP's planner kernels (timing-focused).

These verify the performance claims that make online planning viable:
the per-rank memory ILP solves in milliseconds (section 5.3 targets
<10 ms per instance), greedy interleaving handles thousands of stages
per rollout, and full pipeline simulation stays cheap enough to serve as
the MCTS rollout scorer.
"""

import pytest

from repro.core.interleaver import interleave_stages
from repro.core.memopt import generate_candidates, optimize_memory
from repro.core.searcher import ScheduleSearcher
from repro.sim.pipeline import simulate_pipeline
from repro.solver.bnb import greedy_warm_start, solve_mc_interval

from common import dip_graph, make_setup


@pytest.fixture(scope="module")
def vlm_env():
    setup = make_setup("VLM-S")
    batch = setup.workload(8, seed=0).next_batch()
    graph = dip_graph(setup, batch)
    generate_candidates(graph)
    graph.select_most_memory_efficient()
    inter = interleave_stages(graph, setup.cluster, setup.parallel,
                              setup.cost_model)
    return setup, graph, inter


@pytest.mark.benchmark(group="kernels")
def test_kernel_interleave(benchmark, vlm_env):
    setup, graph, _ = vlm_env
    result = benchmark(
        lambda: interleave_stages(graph, setup.cluster, setup.parallel,
                                  setup.cost_model)
    )
    assert result.total_ms > 0


@pytest.mark.benchmark(group="kernels")
def test_kernel_pipeline_simulation(benchmark, vlm_env):
    setup, graph, inter = vlm_env
    result = benchmark(
        lambda: simulate_pipeline(graph, inter.order, setup.cluster,
                                  setup.parallel, setup.cost_model)
    )
    assert result.total_ms == pytest.approx(inter.total_ms)


@pytest.mark.benchmark(group="kernels")
def test_kernel_memopt_ilp_per_rank(benchmark, vlm_env):
    """The section 5.3 target: per-rank ILP instances solve fast enough
    for hundreds to run inside one planning window."""
    from repro.core.memopt import _rank_problem

    setup, graph, inter = vlm_env
    fw_start = {}
    bw_end = {}
    for stage in graph.stages:
        if stage.is_forward:
            fw_start[stage.pair_id] = inter.start_ms[stage.uid]
        else:
            bw_end[stage.pair_id] = inter.end_ms[stage.uid]
    _pair_ids, problem = _rank_problem(graph, 0, fw_start, bw_end)

    def solve():
        warm = greedy_warm_start(problem)
        return solve_mc_interval(problem, warm_start=warm, rel_gap=0.05,
                                 node_limit=20_000)

    solution = benchmark(solve)
    assert solution.selection
    # Must be fast enough for online planning: the exact per-rank pass
    # runs once per iteration per rank.  (The paper reaches <10 ms with
    # Gurobi-class solvers; the pure-Python branch-and-bound gets within
    # a 10-60-second iteration budget comfortably.)
    assert benchmark.stats["mean"] < 1.5


@pytest.mark.benchmark(group="kernels")
def test_kernel_full_memopt(benchmark, vlm_env):
    setup, graph, inter = vlm_env

    def run():
        graph.select_most_memory_efficient()
        return optimize_memory(graph, inter.start_ms, inter.end_ms,
                               exact=False)

    report = benchmark(run)
    assert report.extra_ms_after <= report.extra_ms_before


@pytest.mark.benchmark(group="kernels")
def test_kernel_single_rollout(benchmark, vlm_env):
    """One MCTS rollout = one ordering evaluation."""
    setup, graph, _ = vlm_env
    searcher = ScheduleSearcher(setup.cluster, setup.parallel,
                                setup.cost_model)
    groups = list(graph.groups().keys())
    result = benchmark(lambda: searcher.evaluate_ordering(graph, groups))
    assert result > 0
