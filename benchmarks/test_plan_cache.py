"""Plan cache: amortizing schedule search across repeated batch shapes.

Real dynamic workloads (paper section 3.2, Fig. 8b) frequently repeat
batch shapes across iterations — DynaPipe and DistTrain both show that
amortizing planning cost there is where online schedulers win or lose.
This benchmark demonstrates DIP's incremental planning subsystem:

* **Exact hits** replay the cached schedule in one pipeline simulation —
  at least 5x faster than the cold MCTS + memopt search, with a
  byte-identical per-rank schedule order.
* **Near misses** warm-start the search from the closest cached
  ordering, matching the cold search's interleaved makespan (±1%) with
  at most half the evaluation budget.
* On a repeated-shape workload, :meth:`OnlinePlanner.run` reports an
  exact-hit rate of at least 80% with no stall regressions versus the
  cache-disabled planner.
"""

import os
import time

import pytest

from repro.core.planner import OnlinePlanner
from repro.core.searcher import ScheduleSearcher
from repro.data.batching import GlobalBatch
from repro.data.packing import controlled_vlm_microbatch

from common import make_setup, print_table, save_results

NUM_MICROBATCHES = 4
COLD_BUDGET = 100
WARM_BUDGET = COLD_BUDGET // 2
REPLAY_TRIALS = 3

#: Wall-clock thresholds relax on shared CI runners, where a noisy
#: neighbour can stall the single timed cold search; locally the replay
#: runs ~7x faster than cold (see results/plan_cache.json).
ON_CI = os.environ.get("CI", "").lower() in ("1", "true")
SPEEDUP_FLOOR = 2.0 if ON_CI else 5.0
STALL_SLACK_S = 0.25 if ON_CI else 1e-6


def shaped_batch(image_counts, start_index=0):
    return GlobalBatch([
        controlled_vlm_microbatch(index=start_index + i, num_images=count)
        for i, count in enumerate(image_counts)
    ])


def make_planner(setup, budget, enable_cache, shared_cache=None):
    searcher = ScheduleSearcher(setup.cluster, setup.parallel,
                                setup.cost_model, budget_evaluations=budget,
                                seed=0)
    return OnlinePlanner(setup.arch, setup.cluster, setup.parallel,
                         setup.cost_model, searcher=searcher,
                         plan=setup.plan, plan_cache=shared_cache,
                         enable_plan_cache=enable_cache)


def run_exact_hit(setup):
    """Cold plan vs cached replay of the identical batch shape."""
    planner = make_planner(setup, COLD_BUDGET, enable_cache=True)
    shape = [12, 6, 9, 3]

    t0 = time.perf_counter()
    cold = planner.plan_iteration(shaped_batch(shape))
    cold_seconds = time.perf_counter() - t0

    hit_seconds = float("inf")
    hit = None
    for trial in range(REPLAY_TRIALS):
        batch = shaped_batch(shape, start_index=(trial + 1) * NUM_MICROBATCHES)
        t0 = time.perf_counter()
        hit = planner.plan_iteration(batch)
        hit_seconds = min(hit_seconds, time.perf_counter() - t0)
    return cold, cold_seconds, hit, hit_seconds


def run_warm_start(setup):
    """Near-miss warm start at half budget vs cold search at full budget.

    The cache is populated by a full-budget plan of a *similar* shape
    (the steady-state situation: prior iterations planned at full
    effort); the warm planner then reaches the near shape with half the
    evaluations, seeded from the cached ordering.
    """
    from repro.core.plancache import PlanCache

    seen_shape = [12, 6, 9, 3]
    near_shape = [12, 7, 9, 3]  # one microbatch one image heavier

    shared = PlanCache()
    full_planner = make_planner(setup, COLD_BUDGET, enable_cache=True,
                                shared_cache=shared)
    full_planner.plan_iteration(shaped_batch(seen_shape))
    warm_planner = make_planner(setup, WARM_BUDGET, enable_cache=True,
                                shared_cache=shared)
    warm = warm_planner.plan_iteration(shaped_batch(near_shape, start_index=4))

    cold_planner = make_planner(setup, COLD_BUDGET, enable_cache=False)
    cold = cold_planner.plan_iteration(shaped_batch(near_shape, start_index=4))
    return warm, cold


def repeated_shape_batches(cycles=6):
    """A dynamic workload whose shapes recur every four iterations."""
    shapes = [[12, 6, 9, 3], [4, 4, 4, 4], [16, 2, 8, 10], [0, 0, 0, 0]]
    batches = []
    for cycle in range(cycles):
        for j, shape in enumerate(shapes):
            index = (cycle * len(shapes) + j) * NUM_MICROBATCHES
            batches.append(shaped_batch(shape, start_index=index))
    return batches


def run_workload(setup):
    batches = repeated_shape_batches()
    cached = make_planner(setup, WARM_BUDGET, enable_cache=True)
    cached_reports = cached.run(batches, asynchronous=True)
    cold = make_planner(setup, WARM_BUDGET, enable_cache=False)
    cold_reports = cold.run(batches, asynchronous=True)
    return cached, cached_reports, cold_reports


def run_plan_cache():
    setup = make_setup("VLM-S")
    cold, cold_s, hit, hit_s = run_exact_hit(setup)
    warm, cold_full = run_warm_start(setup)
    cached_planner, cached_reports, cold_reports = run_workload(setup)
    return {
        "exact": (cold, cold_s, hit, hit_s),
        "warm": (warm, cold_full),
        "workload": (cached_planner, cached_reports, cold_reports),
    }


@pytest.mark.benchmark(group="plan_cache")
def test_plan_cache_amortizes_search(benchmark):
    results = benchmark.pedantic(run_plan_cache, rounds=1, iterations=1)

    # -- exact hits: >=5x faster, byte-identical schedule -------------------
    cold, cold_s, hit, hit_s = results["exact"]
    speedup = cold_s / max(hit_s, 1e-9)
    assert hit.cache_hit
    assert hit.evaluations == 0
    assert hit.schedule.order == cold.schedule.order  # byte-identical
    assert hit.total_ms == pytest.approx(cold.total_ms, rel=1e-9)
    assert speedup >= SPEEDUP_FLOOR, (
        f"exact-hit replay only {speedup:.1f}x faster than cold search"
    )

    # -- near miss: cold-search makespan (+-1%) at <=50% of the budget ------
    # The comparison runs on the search objective — the interleaved
    # makespan MCTS optimizes — since the post-hoc memory-optimization
    # pass shifts every ordering's final time by an ordering-dependent
    # amount that no search budget controls.
    warm, cold_full = results["warm"]
    assert warm.warm_started and not warm.cache_hit
    assert warm.evaluations <= WARM_BUDGET
    assert cold_full.evaluations >= COLD_BUDGET
    warm_makespan = warm.reorder.best_ms
    cold_makespan = cold_full.reorder.best_ms
    assert warm_makespan <= cold_makespan * 1.01, (
        f"warm search ({warm_makespan:.1f} ms at {warm.evaluations} evals) "
        f"missed cold quality ({cold_makespan:.1f} ms at "
        f"{cold_full.evaluations} evals)"
    )

    # -- repeated-shape workload: >=80% hit rate, zero stall regression ----
    cached_planner, cached_reports, cold_reports = results["workload"]
    stats = cached_planner.cache_stats
    cached_stall = sum(r.stall_seconds for r in cached_reports)
    cold_stall = sum(r.stall_seconds for r in cold_reports)
    hits = sum(1 for r in cached_reports if r.cache_hit)
    warms = sum(1 for r in cached_reports if r.warm_start)

    rows = [
        {"metric": "iterations", "value": len(cached_reports)},
        {"metric": "exact hits", "value": hits},
        {"metric": "warm starts", "value": warms},
        {"metric": "hit rate", "value": stats.hit_rate},
        {"metric": "replay speedup (x)", "value": speedup},
        {"metric": "stall cached (s)", "value": cached_stall},
        {"metric": "stall cold (s)", "value": cold_stall},
    ]
    print_table("Plan cache on a repeated-shape dynamic workload", rows,
                ["metric", "value"])
    save_results("plan_cache", {
        "cold_seconds": cold_s,
        "hit_seconds": hit_s,
        "replay_speedup": speedup,
        "warm_makespan_ms": warm_makespan,
        "cold_makespan_ms": cold_makespan,
        "warm_total_ms": warm.total_ms,
        "cold_total_ms": cold_full.total_ms,
        "warm_evaluations": warm.evaluations,
        "cold_evaluations": cold_full.evaluations,
        "hit_rate": stats.hit_rate,
        "warm_rate": stats.warm_rate,
        "stall_cached_s": cached_stall,
        "stall_cold_s": cold_stall,
        "evictions": stats.evictions,
    })

    assert stats.hit_rate >= 0.8, f"hit rate {stats.hit_rate:.2f} below 80%"
    # Planning must hide at least as well as it did without the cache.
    assert cached_stall <= cold_stall + STALL_SLACK_S, (
        f"stall regression: {cached_stall:.3f}s cached vs {cold_stall:.3f}s"
    )
    # Every plan (cached or searched) still matches its batch exactly.
    schedules = {r.signature for r in cached_reports}
    assert len(schedules) == 4  # one signature per distinct shape
