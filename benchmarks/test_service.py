"""Planning service: coalescing, aggregate throughput, recalibration.

The multi-replica / multi-job regime DynaPipe's per-iteration planning
and DistTrain's disaggregated multimodal training target: many DP
replicas of several jobs request schedules for the same iteration
graphs at once.  Three claims are exercised:

* **Coalescing** — N identical concurrent requests are served by ONE
  schedule search whose plan fans out to every waiter, each replayed
  onto its own graph with a makespan identical to planning alone.
* **Aggregate throughput** — on a mixed VLM + T2V workload with 6
  replicas each, the shared service delivers >= 3x the plans/second of
  serial per-replica planning, with identical makespans.
* **Online recalibration** — feeding engine-observed traces back into
  the cost model shrinks the sim-vs-engine makespan error across a
  jittered run, and invalidates the plan-cache entries searched under
  the stale model.
"""

import time

import pytest

from repro.core.planner import OnlinePlanner
from repro.core.searcher import ScheduleSearcher
from repro.service import (
    OUTCOME_COALESCED,
    OUTCOME_SEARCH,
    PlanService,
    RecalibrationPolicy,
    drive_replicas,
    run_recalibrating_replica,
)
from repro.sim.reference import ReferenceCostModel

from common import make_setup, print_table, save_results

JOBS = ("VLM-S", "T2V-S")
REPLICAS = 8
ITERATIONS = 3
SEARCH_BUDGET = 64
THROUGHPUT_FLOOR = 3.0

RECAL_JOB = "VLM-S"
RECAL_ITERATIONS = 6
RECAL_BUDGET = 12
REFERENCE_SEED = 7


def make_searcher(setup, budget=SEARCH_BUDGET):
    return ScheduleSearcher(setup.cluster, setup.parallel, setup.cost_model,
                            budget_evaluations=budget, seed=0)


def register(service, setup, budget=SEARCH_BUDGET):
    service.register_job(
        setup.name, arch=setup.arch, cluster=setup.cluster,
        parallel=setup.parallel, cost_model=setup.cost_model,
        searcher=make_searcher(setup, budget),
    )


def job_streams(setups):
    return {
        setup.name: setup.workload(4, seed=0).batches(ITERATIONS)
        for setup in setups
    }


def run_serial(setups, streams):
    """Serial per-replica planning: every replica searches on its own.

    Each replica owns a private planner (its own plan cache, as a
    standalone process would), and replicas run one after another — the
    no-service baseline.
    """
    makespans = {}
    t0 = time.monotonic()
    for setup in setups:
        for replica in range(REPLICAS):
            planner = OnlinePlanner(
                setup.arch, setup.cluster, setup.parallel, setup.cost_model,
                searcher=make_searcher(setup),
            )
            for i, batch in enumerate(streams[setup.name]):
                result = planner.plan_iteration(batch)
                makespans.setdefault((setup.name, i), []).append(
                    result.total_ms)
    return time.monotonic() - t0, makespans


def run_coalescing(setups):
    """Deterministic step-mode: R identical in-flight requests, 1 search."""
    setup = setups[0]
    service = PlanService(num_workers=0, max_queue=8)
    register(service, setup)
    batch = setup.workload(4, seed=123).next_batch()
    tickets = [service.submit(setup.name, batch, replica=r)
               for r in range(REPLICAS)]
    queue_depth = service.queue_depth
    service.step()
    results = [t.result(timeout=60) for t in tickets]
    solo = OnlinePlanner(setup.arch, setup.cluster, setup.parallel,
                         setup.cost_model, searcher=make_searcher(setup))
    solo_result = solo.plan_iteration(batch)
    stats = service.stats.snapshot()
    service.close()
    return tickets, results, solo_result, queue_depth, stats


def run_service(setups, streams):
    service = PlanService(num_workers=4, max_queue=64)
    for setup in setups:
        register(service, setup)
    t0 = time.monotonic()
    report = drive_replicas(service, streams, replicas=REPLICAS,
                            timeout_s=300)
    elapsed = time.monotonic() - t0
    stats = service.stats.snapshot()
    cache_stats = service.cache.stats
    service.close()
    return elapsed, report, stats, cache_stats


def run_benchmark():
    setups = [make_setup(name) for name in JOBS]
    streams = job_streams(setups)
    coalesce = run_coalescing(setups)
    serial_s, serial_makespans = run_serial(setups, streams)
    service_s, report, stats, cache_stats = run_service(setups, streams)
    return {
        "coalesce": coalesce,
        "serial": (serial_s, serial_makespans),
        "service": (service_s, report, stats, cache_stats),
    }


@pytest.mark.benchmark(group="service")
def test_service_coalesces_and_outpaces_serial_planning(benchmark):
    results = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)

    # -- duplicate in-flight requests coalesce onto one search --------------
    tickets, plans, solo_result, queue_depth, cstats = results["coalesce"]
    assert queue_depth == 1, "identical requests must share one queue slot"
    assert cstats["searches"] == 1
    assert cstats["coalesced"] == REPLICAS - 1
    assert tickets[0].outcome == OUTCOME_SEARCH
    assert all(t.outcome == OUTCOME_COALESCED for t in tickets[1:])
    for plan in plans:
        # Identical to planning the batch alone, to the bit.
        assert plan.total_ms == pytest.approx(solo_result.total_ms, rel=1e-12)

    # -- aggregate throughput on the mixed multi-job workload ---------------
    serial_s, serial_makespans = results["serial"]
    service_s, report, stats, cache_stats = results["service"]
    total_plans = len(JOBS) * REPLICAS * ITERATIONS
    assert not report.errors, report.errors
    assert len(report.records) == total_plans
    # One search per distinct iteration graph; everything else replays.
    assert stats["searches"] == len(JOBS) * ITERATIONS
    assert stats["coalesced"] + stats["searches"] \
        + (stats["completed"] - stats["coalesced"] - stats["searches"]) \
        == total_plans
    speedup = serial_s / max(service_s, 1e-9)
    assert speedup >= THROUGHPUT_FLOOR, (
        f"service only {speedup:.2f}x over serial per-replica planning"
    )
    # Makespans identical to the single-client planner, per request.
    for (job, iteration), serial_values in serial_makespans.items():
        service_values = report.makespans(job, iteration)
        assert len(service_values) == REPLICAS
        expected = serial_values[0]
        for value in serial_values + service_values:
            assert value == pytest.approx(expected, rel=1e-12)

    rows = [
        {"metric": "plans delivered", "value": total_plans},
        {"metric": "searches run", "value": stats["searches"]},
        {"metric": "coalesced", "value": stats["coalesced"]},
        {"metric": "coalesce rate", "value": stats["coalesce_rate"]},
        {"metric": "serial (s)", "value": serial_s},
        {"metric": "service (s)", "value": service_s},
        {"metric": "throughput gain (x)", "value": speedup},
        {"metric": "plan p50 (ms)",
         "value": stats["plan_latency_p50_s"] * 1e3},
        {"metric": "plan p99 (ms)",
         "value": stats["plan_latency_p99_s"] * 1e3},
    ]
    print_table("Planning service vs serial per-replica planning", rows,
                ["metric", "value"])

    save_results("service", {
        "jobs": list(JOBS),
        "replicas": REPLICAS,
        "iterations": ITERATIONS,
        "search_budget": SEARCH_BUDGET,
        "plans_delivered": total_plans,
        "searches": stats["searches"],
        "coalesced": stats["coalesced"],
        "coalesce_rate": stats["coalesce_rate"],
        "step_mode_searches": cstats["searches"],
        "step_mode_coalesced": cstats["coalesced"],
        "serial_seconds": serial_s,
        "service_seconds": service_s,
        "throughput_gain": speedup,
        "plan_latency_p50_ms": stats["plan_latency_p50_s"] * 1e3,
        "plan_latency_p99_ms": stats["plan_latency_p99_s"] * 1e3,
        "queue_peak": stats["max_queue_depth"],
        "cache": {
            "hits": cache_stats.hits,
            "near_hits": cache_stats.near_hits,
            "misses": cache_stats.misses,
        },
    })


def run_recalibration():
    setup = make_setup(RECAL_JOB)
    service = PlanService(
        num_workers=1, max_queue=8,
        recalibration=RecalibrationPolicy(interval=2, window=4, sweeps=2),
    )
    register(service, setup, budget=RECAL_BUDGET)
    reference = ReferenceCostModel(seed=REFERENCE_SEED)
    batches = setup.workload(4, seed=11).batches(RECAL_ITERATIONS)
    report = run_recalibrating_replica(service, RECAL_JOB, batches,
                                       reference, timeout_s=300)
    cache_stats = service.cache.stats
    stats = service.stats.snapshot()
    service.close()
    return report, cache_stats, stats


@pytest.mark.benchmark(group="service")
def test_online_recalibration_reduces_sim_drift(benchmark):
    report, cache_stats, stats = benchmark.pedantic(run_recalibration,
                                                    rounds=1, iterations=1)
    errors = [r.sim_error for r in report.records]
    assert all(e is not None for e in errors)
    applied = [e for e in report.recal_events if e.applied]
    assert applied, "recalibration never applied"
    boundary = applied[0].observation
    before = errors[:boundary]
    after = errors[boundary:]
    assert before and after
    mean_before = sum(before) / len(before)
    mean_after = sum(after) / len(after)
    assert mean_after < mean_before, (
        f"sim error did not drop: {mean_before:.3f} -> {mean_after:.3f}"
    )
    # Refits invalidate the plans searched under the stale model, and
    # telemetry records it.
    assert applied[0].invalidated >= 1
    assert cache_stats.invalidations >= applied[0].invalidated
    assert stats["recalibrations"] >= 1

    rows = [
        {"metric": f"iter {r.iteration} error", "value": r.sim_error}
        for r in report.records
    ]
    rows.append({"metric": "mean before recal", "value": mean_before})
    rows.append({"metric": "mean after recal", "value": mean_after})
    print_table("Online recalibration: sim-vs-engine makespan error", rows,
                ["metric", "value"])

    save_results("service_recalibration", {
        "job": RECAL_JOB,
        "iterations": RECAL_ITERATIONS,
        "interval": 2,
        "errors": errors,
        "mean_error_before": mean_before,
        "mean_error_after": mean_after,
        "recalibrations_applied": len(applied),
        "cache_entries_invalidated": cache_stats.invalidations,
        "fit_error_before": (applied[0].report.mean_abs_error_before
                             if applied[0].report else None),
        "fit_error_after": (applied[0].report.mean_abs_error_after
                            if applied[0].report else None),
    })


# -- cross-process serving (PR 5) -------------------------------------------

RPC_JOB = "VLM-M"  # the Fig. 11 workload (12 microbatches, seed 9)
RPC_MICROBATCHES = 12
RPC_WORKLOAD_SEED = 9
RPC_ITERATIONS = 3
RPC_REPLICAS = 4
RPC_BUDGET = 24
PING_SAMPLES = 50
HIT_SAMPLES = 8


def _timed(fn):
    t0 = time.monotonic()
    fn()
    return time.monotonic() - t0


def run_rpc_transport():
    """In-process vs socket-served planning on the fig11 workload.

    Same service configuration, same batches, same seeds — the only
    difference is the transport: `drive_replicas` over direct calls vs
    `drive_remote_replicas` over a Unix socket with per-replica client
    processes' worth of connections.  Measures the per-plan latency
    overhead of the socket hop (frame codec + canonical-plan payload +
    client-side replay round trip).
    """
    import os
    import tempfile

    from repro.service import (
        PlanServiceClient,
        PlanServiceServer,
        drive_remote_replicas,
    )

    setup = make_setup(RPC_JOB)
    batches = setup.workload(RPC_MICROBATCHES,
                             seed=RPC_WORKLOAD_SEED).batches(RPC_ITERATIONS)

    def build_service():
        service = PlanService(num_workers=2, max_queue=64)
        register(service, setup, budget=RPC_BUDGET)
        return service

    def planner_mirror(_job):
        return OnlinePlanner(setup.arch, setup.cluster, setup.parallel,
                             setup.cost_model,
                             searcher=make_searcher(setup, RPC_BUDGET))

    # In-process baseline.
    local_service = build_service()
    t0 = time.monotonic()
    local_report = drive_replicas(local_service, {RPC_JOB: batches},
                                  replicas=RPC_REPLICAS, timeout_s=600)
    local_s = time.monotonic() - t0
    local_stats = local_service.stats.snapshot()
    # Hit-path latency: the first batch is cached now, so repeated
    # submits replay without a search — the per-plan floor.
    local_hit_s = min(
        _timed(lambda: local_service.submit(RPC_JOB, batches[0])
               .result(timeout=600))
        for _ in range(HIT_SAMPLES)
    )
    local_service.close()

    # Socket-served: same config behind a Unix socket.
    remote_service = build_service()
    uds = os.path.join(tempfile.mkdtemp(prefix="repro-rpc-bench-"),
                       "plan.sock")
    server = PlanServiceServer(remote_service, uds=uds)
    t0 = time.monotonic()
    remote_report = drive_remote_replicas(
        server.address, {RPC_JOB: batches}, replicas=RPC_REPLICAS,
        planner_factory=planner_mirror, timeout_s=600,
    )
    remote_s = time.monotonic() - t0
    remote_stats = remote_service.stats.snapshot()
    wire_stats = server.remote.snapshot()

    # Hit-path latency over the socket: prepare + frame round trip +
    # canonical-plan payload + local replay, no search — against the
    # in-process hit path this isolates the socket hop per plan.
    from repro.service import RemotePlanClient

    prober = RemotePlanClient(server.address, RPC_JOB, 0, [],
                              planner=planner_mirror(RPC_JOB),
                              timeout_s=600)
    remote_hit_s = min(
        _timed(lambda: prober.plan_batch(batches[0]))
        for _ in range(HIT_SAMPLES)
    )
    prober.close()

    # Raw round-trip floor: ping RTT through the same frame codec.
    with PlanServiceClient(server.address) as probe:
        t0 = time.monotonic()
        for _ in range(PING_SAMPLES):
            probe.ping()
        ping_rtt_s = (time.monotonic() - t0) / PING_SAMPLES
    server.close()
    remote_service.close()
    return {
        "local": (local_report, local_stats, local_s, local_hit_s),
        "remote": (remote_report, remote_stats, remote_s, wire_stats,
                   remote_hit_s),
        "ping_rtt_s": ping_rtt_s,
    }


@pytest.mark.benchmark(group="service")
def test_rpc_transport_identical_plans_and_overhead(benchmark):
    results = benchmark.pedantic(run_rpc_transport, rounds=1, iterations=1)
    local_report, local_stats, local_s, local_hit_s = results["local"]
    (remote_report, remote_stats, remote_s, wire_stats,
     remote_hit_s) = results["remote"]

    total = RPC_REPLICAS * RPC_ITERATIONS
    assert not local_report.errors, local_report.errors
    assert not remote_report.errors, remote_report.errors
    assert len(local_report.records) == total
    assert len(remote_report.records) == total
    # Cross-process plans are makespan-identical to in-process plans,
    # replica by replica, iteration by iteration.
    for i in range(RPC_ITERATIONS):
        local_ms = local_report.makespans(RPC_JOB, i)
        remote_ms = remote_report.makespans(RPC_JOB, i)
        assert len(set(local_ms)) == 1
        assert len(set(remote_ms)) == 1
        assert remote_ms[0] == pytest.approx(local_ms[0], rel=1e-12)
    # The socket path exercises the same coalescing machinery: one
    # search per distinct batch, the rest replays/coalesces — and every
    # remote submit flowed through the server's ServiceStats.
    assert remote_stats["searches"] == RPC_ITERATIONS
    assert remote_stats["completed"] == total
    assert remote_stats["coalesced"] + remote_stats["replays"] > 0
    assert wire_stats["connections_opened"] >= RPC_REPLICAS
    assert wire_stats["protocol_errors"] == 0

    def mean_latency_ms(report):
        return sum(r.latency_s for r in report.records) * 1e3 / max(
            1, len(report.records))

    local_lat_ms = mean_latency_ms(local_report)
    remote_lat_ms = mean_latency_ms(remote_report)
    # Search time dominates mean latency on both transports (seconds),
    # so the clean socket-hop figure is the *hit path*: a cached plan's
    # submit→replay round trip with no search on either side.
    overhead_ms = (remote_hit_s - local_hit_s) * 1e3
    rows = [
        {"metric": "plans (each transport)", "value": total},
        {"metric": "in-process wall (s)", "value": local_s},
        {"metric": "socket wall (s)", "value": remote_s},
        {"metric": "in-process mean plan latency (ms)",
         "value": local_lat_ms},
        {"metric": "socket mean plan latency (ms)",
         "value": remote_lat_ms},
        {"metric": "in-process hit-path latency (ms)",
         "value": local_hit_s * 1e3},
        {"metric": "socket hit-path latency (ms)",
         "value": remote_hit_s * 1e3},
        {"metric": "socket hop overhead per plan (ms)",
         "value": overhead_ms},
        {"metric": "ping RTT (ms)", "value": results["ping_rtt_s"] * 1e3},
        {"metric": "bytes over the wire",
         "value": wire_stats["bytes_in"] + wire_stats["bytes_out"]},
    ]
    print_table("Cross-process plan serving: socket vs in-process", rows,
                ["metric", "value"])
    save_results("service_rpc", {
        "job": RPC_JOB,
        "workload": {"microbatches": RPC_MICROBATCHES,
                     "seed": RPC_WORKLOAD_SEED,
                     "iterations": RPC_ITERATIONS,
                     "replicas": RPC_REPLICAS,
                     "budget": RPC_BUDGET},
        "makespans_identical": True,
        "plans": total,
        "searches": remote_stats["searches"],
        "coalesced": remote_stats["coalesced"],
        "replays": remote_stats["replays"],
        "local_wall_s": local_s,
        "remote_wall_s": remote_s,
        "local_mean_latency_ms": local_lat_ms,
        "remote_mean_latency_ms": remote_lat_ms,
        "local_hit_latency_ms": local_hit_s * 1e3,
        "remote_hit_latency_ms": remote_hit_s * 1e3,
        "socket_overhead_per_plan_ms": overhead_ms,
        "ping_rtt_ms": results["ping_rtt_s"] * 1e3,
        "wire_bytes_in": wire_stats["bytes_in"],
        "wire_bytes_out": wire_stats["bytes_out"],
        "connections": wire_stats["connections_opened"],
        "local_p50_latency_ms": local_stats["plan_latency_p50_s"] * 1e3,
        "remote_p50_latency_ms": remote_stats["plan_latency_p50_s"] * 1e3,
    })
