"""Planning service: coalescing, aggregate throughput, recalibration.

The multi-replica / multi-job regime DynaPipe's per-iteration planning
and DistTrain's disaggregated multimodal training target: many DP
replicas of several jobs request schedules for the same iteration
graphs at once.  Three claims are exercised:

* **Coalescing** — N identical concurrent requests are served by ONE
  schedule search whose plan fans out to every waiter, each replayed
  onto its own graph with a makespan identical to planning alone.
* **Aggregate throughput** — on a mixed VLM + T2V workload with 6
  replicas each, the shared service delivers >= 3x the plans/second of
  serial per-replica planning, with identical makespans.
* **Online recalibration** — feeding engine-observed traces back into
  the cost model shrinks the sim-vs-engine makespan error across a
  jittered run, and invalidates the plan-cache entries searched under
  the stale model.
"""

import time

import pytest

from repro.core.planner import OnlinePlanner
from repro.core.searcher import ScheduleSearcher
from repro.service import (
    OUTCOME_COALESCED,
    OUTCOME_SEARCH,
    PlanService,
    RecalibrationPolicy,
    drive_replicas,
    run_recalibrating_replica,
)
from repro.sim.reference import ReferenceCostModel

from common import make_setup, print_table, save_results

JOBS = ("VLM-S", "T2V-S")
REPLICAS = 8
ITERATIONS = 3
SEARCH_BUDGET = 64
THROUGHPUT_FLOOR = 3.0

RECAL_JOB = "VLM-S"
RECAL_ITERATIONS = 6
RECAL_BUDGET = 12
REFERENCE_SEED = 7


def make_searcher(setup, budget=SEARCH_BUDGET):
    return ScheduleSearcher(setup.cluster, setup.parallel, setup.cost_model,
                            budget_evaluations=budget, seed=0)


def register(service, setup, budget=SEARCH_BUDGET):
    service.register_job(
        setup.name, arch=setup.arch, cluster=setup.cluster,
        parallel=setup.parallel, cost_model=setup.cost_model,
        searcher=make_searcher(setup, budget),
    )


def job_streams(setups):
    return {
        setup.name: setup.workload(4, seed=0).batches(ITERATIONS)
        for setup in setups
    }


def run_serial(setups, streams):
    """Serial per-replica planning: every replica searches on its own.

    Each replica owns a private planner (its own plan cache, as a
    standalone process would), and replicas run one after another — the
    no-service baseline.
    """
    makespans = {}
    t0 = time.monotonic()
    for setup in setups:
        for replica in range(REPLICAS):
            planner = OnlinePlanner(
                setup.arch, setup.cluster, setup.parallel, setup.cost_model,
                searcher=make_searcher(setup),
            )
            for i, batch in enumerate(streams[setup.name]):
                result = planner.plan_iteration(batch)
                makespans.setdefault((setup.name, i), []).append(
                    result.total_ms)
    return time.monotonic() - t0, makespans


def run_coalescing(setups):
    """Deterministic step-mode: R identical in-flight requests, 1 search."""
    setup = setups[0]
    service = PlanService(num_workers=0, max_queue=8)
    register(service, setup)
    batch = setup.workload(4, seed=123).next_batch()
    tickets = [service.submit(setup.name, batch, replica=r)
               for r in range(REPLICAS)]
    queue_depth = service.queue_depth
    service.step()
    results = [t.result(timeout=60) for t in tickets]
    solo = OnlinePlanner(setup.arch, setup.cluster, setup.parallel,
                         setup.cost_model, searcher=make_searcher(setup))
    solo_result = solo.plan_iteration(batch)
    stats = service.stats.snapshot()
    service.close()
    return tickets, results, solo_result, queue_depth, stats


def run_service(setups, streams):
    service = PlanService(num_workers=4, max_queue=64)
    for setup in setups:
        register(service, setup)
    t0 = time.monotonic()
    report = drive_replicas(service, streams, replicas=REPLICAS,
                            timeout_s=300)
    elapsed = time.monotonic() - t0
    stats = service.stats.snapshot()
    cache_stats = service.cache.stats
    service.close()
    return elapsed, report, stats, cache_stats


def run_benchmark():
    setups = [make_setup(name) for name in JOBS]
    streams = job_streams(setups)
    coalesce = run_coalescing(setups)
    serial_s, serial_makespans = run_serial(setups, streams)
    service_s, report, stats, cache_stats = run_service(setups, streams)
    return {
        "coalesce": coalesce,
        "serial": (serial_s, serial_makespans),
        "service": (service_s, report, stats, cache_stats),
    }


@pytest.mark.benchmark(group="service")
def test_service_coalesces_and_outpaces_serial_planning(benchmark):
    results = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)

    # -- duplicate in-flight requests coalesce onto one search --------------
    tickets, plans, solo_result, queue_depth, cstats = results["coalesce"]
    assert queue_depth == 1, "identical requests must share one queue slot"
    assert cstats["searches"] == 1
    assert cstats["coalesced"] == REPLICAS - 1
    assert tickets[0].outcome == OUTCOME_SEARCH
    assert all(t.outcome == OUTCOME_COALESCED for t in tickets[1:])
    for plan in plans:
        # Identical to planning the batch alone, to the bit.
        assert plan.total_ms == pytest.approx(solo_result.total_ms, rel=1e-12)

    # -- aggregate throughput on the mixed multi-job workload ---------------
    serial_s, serial_makespans = results["serial"]
    service_s, report, stats, cache_stats = results["service"]
    total_plans = len(JOBS) * REPLICAS * ITERATIONS
    assert not report.errors, report.errors
    assert len(report.records) == total_plans
    # One search per distinct iteration graph; everything else replays.
    assert stats["searches"] == len(JOBS) * ITERATIONS
    assert stats["coalesced"] + stats["searches"] \
        + (stats["completed"] - stats["coalesced"] - stats["searches"]) \
        == total_plans
    speedup = serial_s / max(service_s, 1e-9)
    assert speedup >= THROUGHPUT_FLOOR, (
        f"service only {speedup:.2f}x over serial per-replica planning"
    )
    # Makespans identical to the single-client planner, per request.
    for (job, iteration), serial_values in serial_makespans.items():
        service_values = report.makespans(job, iteration)
        assert len(service_values) == REPLICAS
        expected = serial_values[0]
        for value in serial_values + service_values:
            assert value == pytest.approx(expected, rel=1e-12)

    rows = [
        {"metric": "plans delivered", "value": total_plans},
        {"metric": "searches run", "value": stats["searches"]},
        {"metric": "coalesced", "value": stats["coalesced"]},
        {"metric": "coalesce rate", "value": stats["coalesce_rate"]},
        {"metric": "serial (s)", "value": serial_s},
        {"metric": "service (s)", "value": service_s},
        {"metric": "throughput gain (x)", "value": speedup},
        {"metric": "plan p50 (ms)",
         "value": stats["plan_latency_p50_s"] * 1e3},
        {"metric": "plan p99 (ms)",
         "value": stats["plan_latency_p99_s"] * 1e3},
    ]
    print_table("Planning service vs serial per-replica planning", rows,
                ["metric", "value"])

    save_results("service", {
        "jobs": list(JOBS),
        "replicas": REPLICAS,
        "iterations": ITERATIONS,
        "search_budget": SEARCH_BUDGET,
        "plans_delivered": total_plans,
        "searches": stats["searches"],
        "coalesced": stats["coalesced"],
        "coalesce_rate": stats["coalesce_rate"],
        "step_mode_searches": cstats["searches"],
        "step_mode_coalesced": cstats["coalesced"],
        "serial_seconds": serial_s,
        "service_seconds": service_s,
        "throughput_gain": speedup,
        "plan_latency_p50_ms": stats["plan_latency_p50_s"] * 1e3,
        "plan_latency_p99_ms": stats["plan_latency_p99_s"] * 1e3,
        "queue_peak": stats["max_queue_depth"],
        "cache": {
            "hits": cache_stats.hits,
            "near_hits": cache_stats.near_hits,
            "misses": cache_stats.misses,
        },
    })


def run_recalibration():
    setup = make_setup(RECAL_JOB)
    service = PlanService(
        num_workers=1, max_queue=8,
        recalibration=RecalibrationPolicy(interval=2, window=4, sweeps=2),
    )
    register(service, setup, budget=RECAL_BUDGET)
    reference = ReferenceCostModel(seed=REFERENCE_SEED)
    batches = setup.workload(4, seed=11).batches(RECAL_ITERATIONS)
    report = run_recalibrating_replica(service, RECAL_JOB, batches,
                                       reference, timeout_s=300)
    cache_stats = service.cache.stats
    stats = service.stats.snapshot()
    service.close()
    return report, cache_stats, stats


@pytest.mark.benchmark(group="service")
def test_online_recalibration_reduces_sim_drift(benchmark):
    report, cache_stats, stats = benchmark.pedantic(run_recalibration,
                                                    rounds=1, iterations=1)
    errors = [r.sim_error for r in report.records]
    assert all(e is not None for e in errors)
    applied = [e for e in report.recal_events if e.applied]
    assert applied, "recalibration never applied"
    boundary = applied[0].observation
    before = errors[:boundary]
    after = errors[boundary:]
    assert before and after
    mean_before = sum(before) / len(before)
    mean_after = sum(after) / len(after)
    assert mean_after < mean_before, (
        f"sim error did not drop: {mean_before:.3f} -> {mean_after:.3f}"
    )
    # Refits invalidate the plans searched under the stale model, and
    # telemetry records it.
    assert applied[0].invalidated >= 1
    assert cache_stats.invalidations >= applied[0].invalidated
    assert stats["recalibrations"] >= 1

    rows = [
        {"metric": f"iter {r.iteration} error", "value": r.sim_error}
        for r in report.records
    ]
    rows.append({"metric": "mean before recal", "value": mean_before})
    rows.append({"metric": "mean after recal", "value": mean_after})
    print_table("Online recalibration: sim-vs-engine makespan error", rows,
                ["metric", "value"])

    save_results("service_recalibration", {
        "job": RECAL_JOB,
        "iterations": RECAL_ITERATIONS,
        "interval": 2,
        "errors": errors,
        "mean_error_before": mean_before,
        "mean_error_after": mean_after,
        "recalibrations_applied": len(applied),
        "cache_entries_invalidated": cache_stats.invalidations,
        "fit_error_before": (applied[0].report.mean_abs_error_before
                             if applied[0].report else None),
        "fit_error_after": (applied[0].report.mean_abs_error_after
                            if applied[0].report else None),
    })
