"""Table 1 + section 2.3: the dynamic-imbalance motivation experiment.

The paper compares a unimodal LM 7B against a ViT 2B + LM 5B VLM with the
same parameter budget on 8 GPUs (TP=2, PP=4) under Megatron-LM's 1F1B:
static multimodal data costs ~12.5% over the LM, real dynamic data ~40.3%
(MFU 0.400 -> 0.351 -> 0.239).  We regenerate all three rows.
"""

import pytest

from repro.baselines.megatron import megatron_schedule
from repro.cluster.topology import ClusterSpec, ParallelConfig
from repro.cluster.devices import GPU_H800_80G
from repro.data.batching import GlobalBatch, iteration_flops
from repro.data.packing import controlled_vlm_microbatch, unimodal_lm_microbatch
from repro.metrics import mfu, pflops_per_iteration
from repro.models.lmm import build_unimodal, build_vlm
from repro.models.zoo import LM_5B, LM_7B, VIT_2B
from repro.data.workload import vlm_workload
from repro.sim.costmodel import CostModel

from common import print_table, save_results

NUM_MICROBATCHES = 8


def run_table1():
    cluster = ClusterSpec(gpu=GPU_H800_80G, gpus_per_node=8, num_nodes=1)
    parallel = ParallelConfig(dp=1, tp=2, pp=4)
    cm = CostModel()

    lm = build_unimodal(LM_7B, "LM 7B")
    vlm = build_vlm(VIT_2B, LM_5B, "ViT 2B + LM 5B")

    # Row 1: unimodal LM, packed text.
    lm_batch = GlobalBatch([unimodal_lm_microbatch(i)
                            for i in range(NUM_MICROBATCHES)])
    # Row 3: VLM, dynamic real-mixture data.
    dynamic_batch = vlm_workload(NUM_MICROBATCHES, seed=0).next_batch()
    # Row 2: VLM, static data — every microbatch holds the dynamic
    # mixture's *mean* image count, so rows 2 and 3 share total work and
    # differ only in per-batch variance (the paper controls FLOPs).
    mean_images = int(round(dynamic_batch.average_images))
    static_batch = GlobalBatch([controlled_vlm_microbatch(i, mean_images)
                                for i in range(NUM_MICROBATCHES)])

    rows = []
    for arch, batch, label in (
        (lm, lm_batch, "LM 7B"),
        (vlm, static_batch, "ViT 2B + LM 5B (static data)"),
        (vlm, dynamic_batch, "ViT 2B + LM 5B (dynamic data)"),
    ):
        schedule = megatron_schedule(arch, batch, cluster, parallel, cm)
        flops = iteration_flops(arch, batch)
        rows.append({
            "Model Setup": label,
            "Time (s)": schedule.total_ms / 1e3,
            "PFLOPs": pflops_per_iteration(flops),
            "MFU": mfu(flops, schedule.total_ms, cluster.gpu, parallel),
        })
    return rows


@pytest.mark.benchmark(group="table1")
def test_table1_dynamic_imbalance_overhead(benchmark):
    rows = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    print_table("Table 1: 7B models on 8 GPUs (TP=2, PP=4), Megatron 1F1B",
                rows, ["Model Setup", "Time (s)", "PFLOPs", "MFU"])
    save_results("table1", rows)

    lm_mfu = rows[0]["MFU"]
    static_mfu = rows[1]["MFU"]
    dynamic_mfu = rows[2]["MFU"]
    # Shape of Table 1: LM > VLM-static > VLM-dynamic (MFU normalises
    # out the FLOPs difference, like the paper's controlled budget).
    assert lm_mfu > static_mfu > dynamic_mfu
    # The paper reports 12.5% static and 40.3% dynamic overhead; require
    # meaningful, correctly ordered normalised-time overheads.
    static_overhead = lm_mfu / static_mfu - 1.0
    dynamic_overhead = lm_mfu / dynamic_mfu - 1.0
    assert dynamic_overhead > static_overhead > 0.02
    assert dynamic_overhead > 0.15
