"""Table 4: FSDP vs Megatron-LM vs DIP on the 16x H20 cluster (VLM-S).

The paper: FSDP is ~3% slower than Megatron-LM; DIP is ~27% faster
(relative time 1.03 / 1.00 / 0.73).
"""

import pytest

from repro.baselines.fsdp import fsdp_iteration_ms
from repro.cluster.topology import ParallelConfig, cluster_h20
from repro.core.searcher import ScheduleSearcher
from repro.baselines.megatron import megatron_schedule

from common import dip_graph, make_setup, print_table, save_results

# One microbatch per FSDP worker: with fewer, data-parallel GPUs idle
# and the comparison against the 16-GPU pipeline replica is unfair.
NUM_MICROBATCHES = 16


def run_table4():
    cluster = cluster_h20(num_nodes=2)
    parallel = ParallelConfig(dp=1, tp=4, pp=4)
    setup = make_setup("VLM-S", cluster=cluster, parallel=parallel)
    batch = setup.workload(NUM_MICROBATCHES, seed=0).next_batch()

    fsdp_ms = fsdp_iteration_ms(setup.arch, batch, cluster,
                                setup.cost_model, world_size=16)
    megatron_ms = megatron_schedule(setup.arch, batch, cluster, parallel,
                                    setup.cost_model).total_ms
    searcher = ScheduleSearcher(cluster, parallel, setup.cost_model,
                                budget_evaluations=30, seed=0)
    dip_ms = searcher.search(dip_graph(setup, batch)).total_ms
    return {"FSDP": fsdp_ms, "Megatron-LM": megatron_ms, "DIP": dip_ms}


@pytest.mark.benchmark(group="table4")
def test_table4_llm_system_comparison(benchmark):
    times = benchmark.pedantic(run_table4, rounds=1, iterations=1)
    base = times["Megatron-LM"]
    rows = [
        {"System": name, "Iteration time (s)": ms / 1e3,
         "Relative time": ms / base}
        for name, ms in times.items()
    ]
    print_table("Table 4: VLM-S on 16 H20 GPUs", rows,
                ["System", "Iteration time (s)", "Relative time"])
    save_results("table4", rows)

    # Paper shape: FSDP roughly at parity with Megatron (1.03x); DIP
    # clearly fastest.  FSDP loses to data imbalance across workers,
    # Megatron to pipeline bubbles — comparable magnitudes.
    assert times["DIP"] < times["Megatron-LM"]
    assert times["DIP"] < times["FSDP"]
    assert 0.6 < times["FSDP"] / base < 1.5
    # DIP's advantage is substantial (paper: 27%).
    assert times["Megatron-LM"] / times["DIP"] - 1.0 > 0.10
