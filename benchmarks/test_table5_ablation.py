"""Table 5: quantitative impact of DIP's optimizations (VLM-S).

The paper stacks four components onto vanilla Megatron-LM:
modality-aware partitioner (+17.3%), pipeline stage interleaving
(+38.9% cumulative), segment reordering (+48.3%), per-layer memory
optimization (+62.8%).  We regenerate the same incremental ladder:

1. vanilla Megatron-LM (1F1B, parameter-balanced flat chunks);
2. + partitioner: separated modality segments + sub-microbatches,
   scheduled FIFO (no interleaving intelligence);
3. + interleaving: the dual-queue greedy under natural priorities;
4. + reordering: MCTS over segment-group priorities;
5. + memory optimization: the per-rank ILP.
"""

import pytest

from repro.baselines.megatron import megatron_schedule
from repro.core.interleaver import interleave_stages
from repro.core.memopt import apply_uniform_memory_policy
from repro.core.schedule import PipelineSchedule
from repro.core.searcher import ScheduleSearcher

from common import dip_graph, make_setup, print_table, save_results

NUM_MICROBATCHES = 8
ITERATIONS = 2


def run_ablation():
    setup = make_setup("VLM-S")
    batches = setup.workload(NUM_MICROBATCHES, seed=0).batches(ITERATIONS)

    def averaged(fn):
        return sum(fn(b) for b in batches) / len(batches)

    times = {}
    times["Vanilla Megatron-LM"] = averaged(
        lambda b: megatron_schedule(setup.arch, b, setup.cluster,
                                    setup.parallel, setup.cost_model).total_ms
    )

    def partitioner_only_time(batch):
        """Separated partitioning + sub-microbatches, but static
        program-order sequencing (no bubble-filling interleaver)."""
        graph = dip_graph(setup, batch)
        apply_uniform_memory_policy(graph)
        result = interleave_stages(graph, setup.cluster, setup.parallel,
                                   setup.cost_model, greedy_fill=False)
        schedule = PipelineSchedule(graph=graph, order=result.order)
        return schedule.simulate(setup.cluster, setup.parallel,
                                 setup.cost_model).total_ms

    times["+ Modality-aware partitioner"] = averaged(partitioner_only_time)

    def searcher_time(batch, **kwargs):
        graph = dip_graph(setup, batch)
        searcher = ScheduleSearcher(setup.cluster, setup.parallel,
                                    setup.cost_model, seed=0, **kwargs)
        return searcher.search(graph).total_ms

    times["+ Pipeline stage interleaving"] = averaged(
        lambda b: searcher_time(b, strategy="natural", enable_memopt=False)
    )
    times["+ Pipeline segment reordering"] = averaged(
        lambda b: searcher_time(b, strategy="mcts", budget_evaluations=40,
                                enable_memopt=False)
    )
    times["+ Per-layer memory optimization"] = averaged(
        lambda b: searcher_time(b, strategy="mcts", budget_evaluations=40,
                                enable_memopt=True)
    )
    return times


@pytest.mark.benchmark(group="table5")
def test_table5_optimization_breakdown(benchmark):
    times = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    base = times["Vanilla Megatron-LM"]
    rows = [
        {"Techniques": name, "Iter. Time (s)": ms / 1e3,
         "Delta %": (base / ms - 1.0) * 100.0}
        for name, ms in times.items()
    ]
    print_table("Table 5: quantitative impact of DIP's optimizations",
                rows, ["Techniques", "Iter. Time (s)", "Delta %"])
    save_results("table5", rows)

    values = list(times.values())
    # Every component helps (monotone non-increasing iteration time)...
    for before, after in zip(values, values[1:]):
        assert after <= before * 1.02
    # ...and the full stack is a substantial win (paper: 62.8%).
    assert base / values[-1] - 1.0 > 0.25
    # The partitioner alone already beats vanilla (paper: 17.3%).
    assert base / values[1] - 1.0 > 0.05
