"""Trace & telemetry subsystem: observability with closed-loop calibration.

DynaPipe and DistTrain both lean on per-iteration timeline
instrumentation to diagnose dynamic-workload imbalance; this benchmark
exercises DIP's trace subsystem end to end on a Table 3 model:

* a planned + simulated iteration exports to valid Chrome trace-event
  JSON (loadable in ``chrome://tracing`` / Perfetto);
* the per-rank bubble decomposition (warmup / dependency / straggler /
  cooldown) partitions idle time exactly — busy + bubbles equals the
  makespan per rank to 1e-6;
* the critical path extracted from the event stream spans the full
  makespan with zero slack;
* trace-driven recalibration fits the uncalibrated analytic model's
  efficiency factors from observed span durations, recovering the
  reference system's hidden (perturbed) factors to a lower
  mean-abs-error than the uncalibrated model — calibration as a closed
  loop instead of an offline one-shot.
"""

import json

import pytest

from repro.core.graphbuilder import build_iteration_graph
from repro.core.searcher import ScheduleSearcher
from repro.metrics import bubble_ratio
from repro.sim.costmodel import CostModel
from repro.sim.reference import ReferenceCostModel
from repro.trace import (
    critical_path,
    decompose_bubbles,
    measure_reference_traces,
    recalibrate_from_traces,
    to_chrome,
    trace_from_sim,
    validate_chrome_trace,
)

from common import make_setup, print_table, save_results

NUM_MICROBATCHES = 4
SEARCH_BUDGET = 20
RECAL_ITERATIONS = 2
REFERENCE_SEED = 7


def run_traced_iteration(setup):
    """Plan + simulate one iteration and build its trace."""
    searcher = ScheduleSearcher(setup.cluster, setup.parallel,
                                setup.cost_model,
                                budget_evaluations=SEARCH_BUDGET, seed=0)
    batch = setup.workload(NUM_MICROBATCHES, seed=0).next_batch()
    graph = build_iteration_graph(setup.arch, setup.plan, batch,
                                  setup.cluster, setup.parallel,
                                  setup.cost_model,
                                  partitioner=setup.partitioner)
    result = searcher.search(graph)
    trace = trace_from_sim(graph, result.schedule.predicted, setup.cluster,
                           setup.parallel, setup.cost_model,
                           label=setup.name)
    return result, trace


def run_recalibration(setup):
    """'Measure' iterations on the reference system and fit from traces."""
    reference = ReferenceCostModel(seed=REFERENCE_SEED)
    stream = setup.workload(NUM_MICROBATCHES, seed=1)
    traces = measure_reference_traces(
        setup.arch, setup.plan, stream.batches(RECAL_ITERATIONS),
        setup.cluster, setup.parallel, reference,
        partitioner=setup.partitioner)
    report = recalibrate_from_traces(
        traces, CostModel(), setup.cluster.gpu,
        {b.name: b.spec for b in setup.arch.bindings},
        tp=setup.parallel.tp)
    return reference, report


def run_trace_benchmark():
    setup = make_setup("VLM-S")
    result, trace = run_traced_iteration(setup)
    reference, recal = run_recalibration(setup)
    return setup, result, trace, reference, recal


@pytest.mark.benchmark(group="trace")
def test_trace_subsystem(benchmark):
    setup, result, trace, reference, recal = benchmark.pedantic(
        run_trace_benchmark, rounds=1, iterations=1)

    # -- Chrome export is valid trace-event JSON ----------------------------
    payload = to_chrome(trace)
    json.loads(json.dumps(payload))  # round-trips through JSON text
    assert validate_chrome_trace(payload) == []
    slices = [e for e in payload["traceEvents"] if e.get("ph") == "X"]
    assert len(slices) >= len(result.schedule.graph.stages)

    # -- bubble decomposition sums to (makespan - busy) within 1e-6 ---------
    assert trace.validate() == []  # non-overlapping spans per rank
    bubbles = decompose_bubbles(trace)
    sim = result.schedule.predicted
    for rank, per_rank in enumerate(bubbles.per_rank):
        assert per_rank.busy_ms == pytest.approx(
            sim.busy_ms_per_rank[rank], abs=1e-9)
        assert per_rank.idle_ms == pytest.approx(
            sim.total_ms - sim.busy_ms_per_rank[rank], abs=1e-6)
    assert bubble_ratio(trace) == pytest.approx(sim.bubble_ratio, abs=1e-9)

    # -- critical path spans the makespan with zero slack -------------------
    path = critical_path(trace)
    assert path.length_ms == pytest.approx(sim.total_ms, rel=1e-12)
    assert path.slack_ms == pytest.approx(0.0, abs=1e-9)

    # -- recalibration recovers the perturbed reference factors -------------
    assert recal.improved, "trace fit must beat the uncalibrated model"
    assert recal.mean_abs_error_after < recal.mean_abs_error_before / 2
    # The fitted factors move toward the hidden truth on the dominant axes.
    base = CostModel()
    for factor in ("compute_efficiency", "saturation_tokens"):
        hidden = getattr(reference, factor)
        assert abs(getattr(recal.calibrated, factor) - hidden) <= abs(
            getattr(base, factor) - hidden)

    totals = bubbles.totals()
    rows = [
        {"metric": "trace spans", "value": len(trace)},
        {"metric": "makespan (ms)", "value": trace.total_ms},
        {"metric": "bubble ratio", "value": bubbles.bubble_ratio},
        {"metric": "warmup (ms)", "value": totals["warmup"]},
        {"metric": "dependency (ms)", "value": totals["dependency"]},
        {"metric": "cooldown (ms)", "value": totals["cooldown"]},
        {"metric": "critical-path stages", "value": len(path.uids)},
        {"metric": "cp comm (ms)", "value": path.comm_ms},
        {"metric": "recal samples", "value": recal.samples},
        {"metric": "MAE before", "value": recal.mean_abs_error_before},
        {"metric": "MAE after", "value": recal.mean_abs_error_after},
    ]
    print_table("Trace subsystem on VLM-S", rows, ["metric", "value"])
    save_results("trace", {
        "spans": len(trace),
        "makespan_ms": trace.total_ms,
        "bubble_ratio": bubbles.bubble_ratio,
        "bubble_breakdown_ms": totals,
        "critical_path_stages": len(path.uids),
        "critical_path_comm_ms": path.comm_ms,
        "recalibration_samples": recal.samples,
        "recalibration_shapes": recal.distinct_shapes,
        "mae_before": recal.mean_abs_error_before,
        "mae_after": recal.mean_abs_error_after,
        "accuracy_after": recal.accuracy_after,
    })
