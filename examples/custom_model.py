"""Composing a custom LMM: two parallel encoders feeding one backbone.

DIP's machinery is not limited to the paper's two-module models.  This
example builds the general Fig. 1 architecture — an image encoder *and*
an audio-style second encoder feeding an LLM backbone — and shows that
partitioning, scheduling, simulation and deployment all work unchanged.

Run with::

    python examples/custom_model.py
"""

from repro.cluster.topology import ParallelConfig, cluster_h800
from repro.core.graphbuilder import build_iteration_graph
from repro.core.partitioner import ModalityPartitioner
from repro.core.searcher import ScheduleSearcher
from repro.data.batching import GlobalBatch, Microbatch
from repro.models.config import Modality, ModalityModuleSpec, ModuleRole
from repro.models.lmm import LMMArchitecture, ModuleBinding
from repro.models.zoo import LLAMA3_8B, VIT_5B
from repro.runtime.compiler import compile_schedule
from repro.runtime.engine import execute_plan
from repro.sim.costmodel import CostModel

AUDIO_ENCODER = ModalityModuleSpec(
    name="audio-1b",
    role=ModuleRole.ENCODER,
    modality=Modality.VIDEO,  # instance-parallel, clip-like inputs
    num_layers=24,
    hidden_size=1536,
    ffn_hidden_size=6144,
    num_attention_heads=12,
    num_query_groups=12,
    gated_mlp=False,
)


def main() -> None:
    arch = LMMArchitecture(
        name="omni-14b",
        kind="vlm",
        bindings=(
            ModuleBinding(VIT_5B, ModuleRole.ENCODER, level=0),
            ModuleBinding(AUDIO_ENCODER, ModuleRole.ENCODER, level=0),
            ModuleBinding(LLAMA3_8B, ModuleRole.BACKBONE, level=1),
        ),
    )
    print(f"model: {arch.name}, {arch.parameters_billion():.1f}B parameters")
    print("dataflow levels:",
          [" | ".join(b.name for b in level) for level in arch.levels()])

    parallel = ParallelConfig(dp=1, tp=4, pp=4)
    cluster = cluster_h800(num_nodes=2)
    cost_model = CostModel()

    # A mixed microbatch: images for the ViT, audio clips for the second
    # encoder (reusing the clip fields), text for the backbone.
    reference = Microbatch(index=0, kind="vlm", num_images=24,
                           text_tokens=4136, num_clips=4,
                           video_seconds=12.0, caption_tokens=0)
    partitioner = ModalityPartitioner(arch, cluster, parallel, cost_model)
    plan = partitioner.plan(reference)
    print(f"partition plan: {plan.describe()}\n")

    batch = GlobalBatch([
        Microbatch(index=i, kind="vlm", num_images=6 + 4 * i,
                   text_tokens=8192 - (6 + 4 * i) * 169,
                   num_clips=2 + i, video_seconds=4.0 + 2.5 * i)
        for i in range(4)
    ])
    graph = build_iteration_graph(arch, plan, batch, cluster, parallel,
                                  cost_model, partitioner=partitioner)
    print(f"iteration graph: {len(graph.stages)} stages, "
          f"{len(graph.groups())} segment groups")

    searcher = ScheduleSearcher(cluster, parallel, cost_model,
                                budget_evaluations=25, seed=0)
    result = searcher.search(graph)
    print(f"searched schedule: {result.total_ms / 1e3:.2f}s, "
          f"bubble {result.schedule.predicted.bubble_ratio * 100:.1f}%")

    exec_plan = compile_schedule(graph, result.schedule.order, cluster,
                                 parallel, cost_model)
    engine = execute_plan(exec_plan)
    print(f"deployed replay: {engine.total_ms / 1e3:.2f}s over "
          f"{engine.messages} P2P messages — matches the prediction: "
          f"{abs(engine.total_ms - result.total_ms) < 1e-6}")


if __name__ == "__main__":
    main()
