"""Dynamic-workload adaptation: the Fig. 8b experiment as a script.

Replays one rise-and-fall image-count pattern against both DIP and
Megatron-LM, printing an ASCII timeline of the gap.  The Megatron/DIP
ratio should peak with the image count and shrink towards text-only
batches.

Run with::

    python examples/dynamic_workload.py
"""

from repro.baselines.megatron import megatron_schedule
from repro.cluster.topology import ParallelConfig, cluster_h800
from repro.core.graphbuilder import build_iteration_graph
from repro.core.partitioner import ModalityPartitioner
from repro.core.planner import reference_microbatch
from repro.core.searcher import ScheduleSearcher
from repro.data.workload import DynamicImageBoundsSchedule
from repro.models.lmm import build_vlm
from repro.models.zoo import LLAMA3_8B, VIT_5B
from repro.sim.costmodel import CostModel

MICROBATCHES = 4


def main() -> None:
    arch = build_vlm(VIT_5B, LLAMA3_8B, "VLM-S")
    parallel = ParallelConfig(dp=1, tp=4, pp=4)
    cluster = cluster_h800(num_nodes=2)
    cost_model = CostModel()
    partitioner = ModalityPartitioner(arch, cluster, parallel, cost_model)
    plan = partitioner.plan(reference_microbatch("vlm"))
    searcher = ScheduleSearcher(cluster, parallel, cost_model,
                                budget_evaluations=20, seed=0)

    schedule = DynamicImageBoundsSchedule(
        num_microbatches=MICROBATCHES, num_patterns=1, seed=0
    )
    print(f"{'iter':>4} {'avg #img':>9} {'DIP (s)':>8} {'Megatron (s)':>13} "
          f"{'gap':>6}  timeline")
    for iteration in range(schedule.total_iterations):
        batch = schedule.batch(iteration)
        graph = build_iteration_graph(arch, plan, batch, cluster, parallel,
                                      cost_model, partitioner=partitioner)
        dip_ms = searcher.search(graph).total_ms
        meg_ms = megatron_schedule(arch, batch, cluster, parallel,
                                   cost_model).total_ms
        gap = meg_ms / dip_ms
        bar = "#" * int(round(batch.average_images))
        print(f"{iteration + 1:>4} {batch.average_images:>9.1f} "
              f"{dip_ms / 1e3:>8.2f} {meg_ms / 1e3:>13.2f} "
              f"{gap:>5.2f}x  {bar}")

    print("\nThe Megatron/DIP gap follows the image count: static 1F1B")
    print("cannot adapt, DIP re-plans every iteration.")


if __name__ == "__main__":
    main()
