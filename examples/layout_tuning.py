"""Auto-tuning the 3D-parallel layout before training (Fig. 13 workflow).

Before committing a cluster to a training run, enumerate the valid
DP x TP x PP layouts, simulate each on a representative workload, and
rank them by MFU — the grid search the paper performs for VLM-M, offered
as a one-call API.

Run with::

    python examples/layout_tuning.py
"""

from repro.cluster.topology import ClusterSpec, cluster_h800
from repro.core.autotuner import tune_layout
from repro.models.lmm import build_vlm
from repro.models.zoo import LLAMA3_8B, VIT_5B


def main() -> None:
    arch = build_vlm(VIT_5B, LLAMA3_8B, "VLM-S")
    cluster = cluster_h800(num_nodes=2)  # 16 GPUs
    print(f"tuning {arch.name} ({arch.parameters_billion():.1f}B) on "
          f"{cluster.world_size} H800 GPUs, 16-microbatch global batch\n")

    candidates = tune_layout(arch, cluster, global_microbatches=16,
                             min_pp=2, seed=0)
    print(f"{'rank':>4}  layout")
    for position, cand in enumerate(candidates, start=1):
        print(f"{position:>4}  {cand.describe()}")

    best = candidates[0]
    print(f"\nrecommended: {best.parallel.describe()} "
          f"(MFU {best.mfu:.3f}, {best.iteration_ms / 1e3:.2f}s/iteration)")
    print("deeper pipelines amortise weights but add bubbles; wider TP")
    print("shrinks per-rank compute but pays all-reduce latency — the")
    print("simulator quantifies the trade for this specific workload.")


if __name__ == "__main__":
    main()
