"""Quickstart: plan and simulate two iterations of VLM-S training.

Run with::

    python examples/quickstart.py

This uses the one-call convenience API; see ``vlm_training.py`` for the
full object-level workflow.
"""

from repro import quick_plan


def main() -> None:
    print("Planning 2 iterations of VLM-S (ViT 5B + Llama3 8B) ...")
    reports = quick_plan("VLM-S", num_microbatches=4, iterations=2, seed=0)
    for report in reports:
        search = report.search
        print(
            f"iteration {report.iteration}: "
            f"train {report.train_ms / 1e3:.2f}s  "
            f"search {report.search_seconds:.2f}s  "
            f"bubble {search.schedule.predicted.bubble_ratio * 100:.1f}%  "
            f"avg images/microbatch {report.average_images:.1f}"
        )
    print("\nEach iteration received its own schedule, searched while the")
    print("previous iteration was (simulated to be) running on the GPUs.")


if __name__ == "__main__":
    main()
