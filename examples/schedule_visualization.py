"""Visualising schedules: pipeline diagrams, memory sparklines, traces.

Compares Megatron-LM's static 1F1B against DIP's searched schedule on
the *same* batch, rendering both as ASCII pipeline diagrams (the style
of the paper's Fig. 3/5), then exports the DIP schedule as a Chrome
trace for interactive inspection.

Run with::

    python examples/schedule_visualization.py
"""

import os
import tempfile

from repro.baselines.megatron import megatron_schedule
from repro.cluster.topology import ParallelConfig, cluster_h800
from repro.core.graphbuilder import build_iteration_graph
from repro.core.partitioner import ModalityPartitioner
from repro.core.planner import reference_microbatch
from repro.core.searcher import ScheduleSearcher
from repro.core.visualize import ascii_timeline, memory_sparkline, save_chrome_trace
from repro.data.analysis import analyze_workload
from repro.data.workload import vlm_workload
from repro.models.lmm import build_vlm
from repro.models.zoo import LLAMA3_8B, VIT_5B
from repro.sim.costmodel import CostModel


def main() -> None:
    arch = build_vlm(VIT_5B, LLAMA3_8B, "VLM-S")
    parallel = ParallelConfig(dp=1, tp=4, pp=4)
    cluster = cluster_h800(num_nodes=2)
    cost_model = CostModel()
    batch = vlm_workload(6, seed=1).next_batch()

    print("workload characterisation:")
    print(analyze_workload(arch, batch.microbatches).summary())

    print("\n--- Megatron-LM (static interleaved 1F1B) ---")
    baseline = megatron_schedule(arch, batch, cluster, parallel, cost_model)
    print(ascii_timeline(baseline.graph, baseline.predicted, width=96))

    print("\n--- DIP (searched dynamic schedule) ---")
    partitioner = ModalityPartitioner(arch, cluster, parallel, cost_model)
    plan = partitioner.plan(reference_microbatch("vlm"))
    graph = build_iteration_graph(arch, plan, batch, cluster, parallel,
                                  cost_model, partitioner=partitioner)
    searcher = ScheduleSearcher(cluster, parallel, cost_model,
                                budget_evaluations=30, seed=0)
    result = searcher.search(graph)
    print(ascii_timeline(graph, result.schedule.predicted, width=96))

    print("\nmemory, pipeline rank 0:")
    print("  Megatron  "
          + memory_sparkline(baseline.predicted, 0,
                             limit_bytes=baseline.graph.memory_limit_bytes))
    print("  DIP       "
          + memory_sparkline(result.schedule.predicted, 0,
                             limit_bytes=graph.memory_limit_bytes))

    path = os.path.join(tempfile.gettempdir(), "dip_schedule.trace.json")
    save_chrome_trace(graph, result.schedule.predicted, path, "DIP VLM-S")
    print(f"\nspeedup: {baseline.total_ms / result.total_ms:.2f}x; "
          f"Chrome trace written to {path}")


if __name__ == "__main__":
    main()
