"""Text-to-video diffusion training with DIP (T2V-S: Llama3 8B + DiT 5B).

Video workloads stress the pipeline differently from VLMs: the DiT
decoder dominates compute, batches land in different resolution buckets
(up to ~4x FLOPs spread), and activation volumes are large enough that
memory strategies matter.  This example shows DIP adapting its schedule
per batch and prints what the memory optimizer chose.

Run with::

    python examples/t2v_training.py
"""

from collections import Counter

from repro.cluster.topology import ParallelConfig, cluster_h800
from repro.core.planner import OnlinePlanner
from repro.core.searcher import ScheduleSearcher
from repro.data.workload import t2v_workload
from repro.models.lmm import build_t2v
from repro.models.zoo import DIT_5B, LLAMA3_8B
from repro.sim.costmodel import CostModel

ITERATIONS = 3
MICROBATCHES = 8


def main() -> None:
    arch = build_t2v(LLAMA3_8B, DIT_5B, "T2V-S")
    parallel = ParallelConfig(dp=1, tp=4, pp=4)
    cluster = cluster_h800(num_nodes=2)
    cost_model = CostModel()

    print(f"model: {arch.name}, {arch.parameters_billion():.1f}B parameters")
    print(f"loss module: {arch.loss_module.name} "
          f"(conditioned on {arch.bindings[0].name})\n")

    searcher = ScheduleSearcher(cluster, parallel, cost_model,
                                budget_evaluations=25, seed=0)
    planner = OnlinePlanner(arch, cluster, parallel, cost_model,
                            searcher=searcher)
    print(f"offline partition plan: {planner.plan.describe()}\n")

    stream = t2v_workload(MICROBATCHES, seed=0)
    for iteration in range(ITERATIONS):
        batch = stream.next_batch()
        result = planner.plan_iteration(batch)
        graph = result.schedule.graph
        strategies = Counter(
            pair.strategy.label.split("/")[0] for pair in graph.pairs
        )
        tokens = sum(m.video_tokens for m in batch)
        peak = max(result.schedule.predicted.peak_memory_bytes) / 2**30
        print(f"iteration {iteration}: "
              f"{tokens / 1e3:.0f}k video tokens, "
              f"iter {result.total_ms / 1e3:.2f}s, "
              f"bubble {result.schedule.predicted.bubble_ratio * 100:.0f}%, "
              f"peak {peak:.0f} GiB, "
              f"strategies {dict(strategies)}")

    print("\nheavier (high-resolution) batches trigger more checkpointing")
    print("and finer DiT sub-microbatches; light batches keep activations")
    print("resident and run faster — all decided per iteration.")


if __name__ == "__main__":
    main()
