"""Vision-language model training with DIP, compared against Megatron-LM.

Walks the full object-level workflow the paper describes (section 3.2):

1. compose the LMM and pick a cluster + 3D-parallel layout;
2. run the offline modality-aware partitioner (section 4);
3. stream packed multimodal batches;
4. let the online planner search a schedule per iteration and deploy it
   to the (simulated) runtime;
5. compare against Megatron-LM's static 1F1B on the same batches.

Run with::

    python examples/vlm_training.py
"""

from repro.baselines.megatron import megatron_schedule
from repro.cluster.topology import ParallelConfig, cluster_h800
from repro.core.planner import OnlinePlanner
from repro.core.searcher import ScheduleSearcher
from repro.data.workload import vlm_workload
from repro.metrics import mfu, speedup
from repro.models.lmm import build_vlm
from repro.models.zoo import LLAMA3_8B, VIT_5B
from repro.sim.costmodel import CostModel

ITERATIONS = 3
MICROBATCHES = 8


def main() -> None:
    arch = build_vlm(VIT_5B, LLAMA3_8B, "VLM-S")
    parallel = ParallelConfig(dp=1, tp=4, pp=4)
    cluster = cluster_h800(num_nodes=2)
    cost_model = CostModel()

    print(f"model: {arch.name}, {arch.parameters_billion():.1f}B parameters")
    print(f"layout: {parallel.describe()} on {cluster.world_size} H800s\n")

    searcher = ScheduleSearcher(cluster, parallel, cost_model,
                                budget_evaluations=30, seed=0)
    planner = OnlinePlanner(arch, cluster, parallel, cost_model,
                            searcher=searcher, deploy=True)
    print(f"offline partition plan: {planner.plan.describe()}\n")

    batches = vlm_workload(MICROBATCHES, seed=0).batches(ITERATIONS)
    reports = planner.run(batches, asynchronous=True)

    print(f"{'iter':>4} {'images':>7} {'DIP (s)':>8} {'Megatron (s)':>13} "
          f"{'speedup':>8} {'DIP MFU':>8}")
    for report, batch in zip(reports, batches):
        baseline = megatron_schedule(arch, batch, cluster, parallel,
                                     cost_model)
        graph = report.search.schedule.graph
        gain = speedup(baseline.total_ms, report.train_ms)
        value = mfu(graph.model_flops, report.train_ms, cluster.gpu, parallel)
        print(f"{report.iteration:>4} {report.average_images:>7.1f} "
              f"{report.train_ms / 1e3:>8.2f} "
              f"{baseline.total_ms / 1e3:>13.2f} "
              f"{gain * 100:>7.1f}% {value:>8.3f}")
        # The deployed plan's replay must agree with the prediction.
        assert abs(report.engine.total_ms - report.train_ms) < 1e-6

    print("\nevery compiled execution plan replayed to exactly the")
    print("planner-predicted iteration time (deployment invariant).")


if __name__ == "__main__":
    main()
