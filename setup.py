"""Setup shim for environments whose setuptools lacks PEP 517 wheel support."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of DIP: Efficient Large Multimodal Model Training "
        "with Dynamic Interleaved Pipeline (ASPLOS '26)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.21"],
)
