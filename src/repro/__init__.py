"""repro: reproduction of DIP - Dynamic Interleaved Pipeline (ASPLOS '26).

A dynamic, modality-aware pipeline-parallel scheduling framework for
large multimodal model (LMM) training, evaluated end-to-end on an
analytic cluster simulator.

Quickstart::

    from repro import quick_plan

    report = quick_plan("VLM-S", num_microbatches=4, iterations=2)
    for r in report:
        print(r.iteration, r.train_ms)

Package map:

* :mod:`repro.core` - DIP itself (partitioner, searcher, planner).
* :mod:`repro.models` / :mod:`repro.data` / :mod:`repro.cluster` - the
  model, data and hardware substrates.
* :mod:`repro.sim` - the operator-level training simulator.
* :mod:`repro.baselines` - Megatron-LM 1F1B/VPP, nnScaler*, Optimus and
  FSDP comparison systems.
* :mod:`repro.runtime` - execution-plan compilation and replay.
* :mod:`repro.trace` - per-rank event timelines, Chrome-trace export,
  critical-path / bubble analytics and trace-driven recalibration.
* :mod:`repro.service` - the concurrent multi-tenant planning service
  (request coalescing, shared plan cache, online recalibration).
"""

from repro.cluster import ClusterSpec, ParallelConfig
from repro.core import OnlinePlanner, ScheduleSearcher
from repro.core.autotuner import tune_layout
from repro.core.visualize import ascii_timeline, chrome_trace
from repro.data import vlm_workload, t2v_workload
from repro.data.analysis import analyze_workload
from repro.metrics import mfu, speedup
from repro.models import build_t2v, build_vlm, combination_by_name
from repro.models.lmm import build_combination
from repro.service import PlanService, RecalibrationPolicy, drive_replicas
from repro.sim import CostModel
from repro.trace import critical_path, decompose_bubbles, trace_from_sim

__version__ = "1.2.0"

__all__ = [
    "ClusterSpec",
    "ParallelConfig",
    "OnlinePlanner",
    "ScheduleSearcher",
    "CostModel",
    "build_vlm",
    "build_t2v",
    "build_combination",
    "combination_by_name",
    "vlm_workload",
    "t2v_workload",
    "mfu",
    "speedup",
    "quick_plan",
    "tune_layout",
    "analyze_workload",
    "ascii_timeline",
    "chrome_trace",
    "trace_from_sim",
    "critical_path",
    "decompose_bubbles",
    "PlanService",
    "RecalibrationPolicy",
    "drive_replicas",
]


def quick_plan(combo_name: str, num_microbatches: int = 4, iterations: int = 1,
               seed: int = 0, **searcher_kwargs):
    """One-call demo: plan and simulate a few iterations of a Table 3 model.

    Returns the planner reports (iteration time, search time, schedule).
    """
    from repro.cluster.topology import cluster_h800
    from repro.models.zoo import combination_by_name as _combo

    combo = _combo(combo_name)
    arch = build_combination(combo)
    parallel = ParallelConfig(dp=1, tp=combo.tp, pp=combo.pp)
    nodes = max(1, parallel.world_size // 8)
    cluster = cluster_h800(num_nodes=nodes)
    searcher_kwargs.setdefault("budget_evaluations", 30)
    searcher = ScheduleSearcher(cluster, parallel, seed=seed, **searcher_kwargs)
    planner = OnlinePlanner(arch, cluster, parallel, searcher=searcher)
    if combo.kind == "vlm":
        stream = vlm_workload(num_microbatches, seed=seed)
    else:
        stream = t2v_workload(num_microbatches, seed=seed)
    return planner.run(stream.batches(iterations))
