"""Baseline training systems the paper compares against (section 7.1).

* :mod:`repro.baselines.megatron` — Megatron-LM with interleaved 1F1B
  and approximately parameter-balanced chunk partitioning.
* :mod:`repro.baselines.nnscaler` — nnScaler*: a static latency-balanced
  plan pre-generated on a representative workload, restricted to 1F1B.
* :mod:`repro.baselines.optimus` — Optimus' coarse-grained bubble
  scheduling (all encoder computation sequenced around the backbone).
* :mod:`repro.baselines.fsdp` — PyTorch FSDP (ZeRO-3) analytic model.

All pipeline baselines produce schedules over the same stage/graph
machinery DIP uses and are evaluated by the same simulator, so measured
differences are differences in *schedule quality* — matching the paper's
methodology of implementing every baseline inside one framework.
"""

from repro.baselines.megatron import megatron_schedule
from repro.baselines.nnscaler import NnScalerPlan, nnscaler_schedule
from repro.baselines.optimus import optimus_schedule
from repro.baselines.fsdp import fsdp_iteration_ms

__all__ = [
    "megatron_schedule",
    "nnscaler_schedule",
    "NnScalerPlan",
    "optimus_schedule",
    "fsdp_iteration_ms",
]
