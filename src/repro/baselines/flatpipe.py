"""Shared machinery for flat-partitioned pipeline baselines.

Megatron-LM and nnScaler treat the LMM as one flat stack of layers:
every microbatch makes a single traversal through ``P * V`` model chunks
(V = virtual-pipeline degree), and chunks freely mix layers of different
modality modules — the *intra-segment imbalance* DIP eliminates.

This module builds :class:`IterationGraph` instances for such flat
partitionings, so baseline schedules run through the exact same simulator
as DIP's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.topology import ClusterSpec, ParallelConfig
from repro.core.stages import (
    Direction,
    IterationGraph,
    SegmentKey,
    StagePair,
    StageTask,
)
from repro.data.batching import GlobalBatch, Microbatch, iteration_flops, module_workload
from repro.models.flops import training_state_bytes
from repro.models.lmm import LMMArchitecture
from repro.sim.costmodel import CostModel, StageCost


@dataclass(frozen=True)
class LayerSlice:
    """A contiguous run of layers of one module inside a flat chunk."""

    module: str
    num_layers: int


@dataclass
class FlatPartition:
    """A flat chunk partitioning: ``P * V`` chunks of layer slices."""

    num_ranks: int
    virtual: int
    chunks: List[List[LayerSlice]]  # length P * V, traversal order

    def __post_init__(self) -> None:
        if len(self.chunks) != self.num_ranks * self.virtual:
            raise ValueError("chunk count must equal P * V")


def flat_layer_list(arch: LMMArchitecture) -> List[str]:
    """The LMM's layers as a flat module-name sequence (dataflow order)."""
    out: List[str] = []
    for binding in arch.bindings:
        out.extend([binding.name] * binding.spec.num_layers)
    return out


def partition_by_weight(
    arch: LMMArchitecture,
    num_ranks: int,
    virtual: int,
    weight_of: Dict[str, float],
) -> FlatPartition:
    """Split the flat layer list into chunks of near-equal total weight.

    ``weight_of`` maps module name to per-layer weight: parameter counts
    for Megatron's balanced-parameter partitioning, measured per-layer
    latencies for nnScaler's latency-balanced plan.
    """
    layers = flat_layer_list(arch)
    weights = [weight_of[m] for m in layers]
    num_chunks = num_ranks * virtual
    if len(layers) < num_chunks:
        raise ValueError(
            f"{len(layers)} layers cannot fill {num_chunks} chunks"
        )
    total = sum(weights)
    target = total / num_chunks
    # Greedy sweep: close a chunk when adding the next layer moves the
    # running sum further from the target than stopping, while leaving
    # enough layers for the remaining chunks.
    chunks: List[List[LayerSlice]] = []
    i = 0
    for c in range(num_chunks):
        remaining_chunks = num_chunks - c - 1
        acc = 0.0
        slice_counts: Dict[str, int] = {}
        order: List[str] = []
        # Must take at least one layer, and leave >= remaining_chunks.
        while i < len(layers) - remaining_chunks:
            w = weights[i]
            if acc > 0 and abs(acc + w - target) > abs(acc - target):
                break
            module = layers[i]
            if module not in slice_counts:
                slice_counts[module] = 0
                order.append(module)
            slice_counts[module] += 1
            acc += w
            i += 1
            if acc >= target and remaining_chunks > 0:
                break
        if not order:  # forced minimum of one layer
            module = layers[i]
            slice_counts = {module: 1}
            order = [module]
            i += 1
        chunks.append([LayerSlice(m, slice_counts[m]) for m in order])
    # Distribute any leftover layers onto the final chunk.
    if i < len(layers):
        tail = chunks[-1]
        extra: Dict[str, int] = {}
        t_order: List[str] = [s.module for s in tail]
        counts = {s.module: s.num_layers for s in tail}
        while i < len(layers):
            module = layers[i]
            if module not in counts:
                counts[module] = 0
                t_order.append(module)
            counts[module] += 1
            i += 1
        chunks[-1] = [LayerSlice(m, counts[m]) for m in t_order]
    return FlatPartition(num_ranks=num_ranks, virtual=virtual, chunks=chunks)


def _combine_costs(parts: Sequence[StageCost]) -> StageCost:
    """Sum stage costs of the slices inside one flat chunk."""
    return StageCost(
        forward_ms=sum(p.forward_ms for p in parts),
        backward_ms=sum(p.backward_ms for p in parts),
        act_bytes=sum(p.act_bytes for p in parts),
        act_ckpt_bytes=sum(p.act_ckpt_bytes for p in parts),
        recompute_ms=sum(p.recompute_ms for p in parts),
        offload_ms=sum(p.offload_ms for p in parts),
        p2p_bytes=parts[-1].p2p_bytes,
    )


def build_flat_iteration_graph(
    arch: LMMArchitecture,
    partition: FlatPartition,
    batch: GlobalBatch,
    cluster: ClusterSpec,
    parallel: ParallelConfig,
    cost_model: Optional[CostModel] = None,
) -> IterationGraph:
    """Stage DAG for a flat-partitioned pipeline (one traversal per mb)."""
    cost_model = cost_model or CostModel()
    p = partition.num_ranks
    stages: List[StageTask] = []
    pairs: List[StagePair] = []
    cost_cache: Dict[Tuple, StageCost] = {}

    def slice_cost(module: str, layers: int, mb: Microbatch) -> StageCost:
        binding = arch.binding(module)
        instances, seq, ctx = module_workload(binding, mb)
        if instances == 0:
            instances, seq = 1, 1  # empty modality: negligible epsilon work
        key = (module, layers, instances, seq, ctx)
        cached = cost_cache.get(key)
        if cached is None:
            cached = cost_model.stage_cost(
                cluster.gpu, binding.spec, layers, instances, seq,
                tp=parallel.tp, context=ctx,
            )
            cost_cache[key] = cached
        return cached

    for mb in batch:
        fw_uids: List[int] = []
        fw_pairs: List[int] = []
        prev: Optional[int] = None
        for position, chunk in enumerate(partition.chunks):
            segment, rank = divmod(position, p)
            parts = [slice_cost(s.module, s.num_layers, mb) for s in chunk]
            cost = _combine_costs(parts)
            pair = StagePair(
                pair_id=len(pairs),
                microbatch=mb.index,
                module=chunk[0].module,
                sub_index=0,
                chunk=segment,
                rank=rank,
                num_layers=sum(s.num_layers for s in chunk),
                cost=cost,
            )
            pairs.append(pair)
            key = SegmentKey(mb.index, "flat", 0, segment, Direction.FORWARD)
            deps = () if prev is None else (prev,)
            stage = StageTask(
                uid=len(stages),
                key=key,
                rank=rank,
                pair_id=pair.pair_id,
                deps=deps,
                p2p_bytes=cost.p2p_bytes if prev is not None else 0.0,
            )
            stages.append(stage)
            prev = stage.uid
            fw_uids.append(stage.uid)
            fw_pairs.append(pair.pair_id)
        # Backward: exact reverse traversal.
        prev_bw: Optional[int] = None
        for position in range(len(partition.chunks) - 1, -1, -1):
            segment, rank = divmod(position, p)
            fw_uid = fw_uids[position]
            deps = (fw_uid,) if prev_bw is None else (prev_bw, fw_uid)
            key = SegmentKey(mb.index, "flat", 0, segment, Direction.BACKWARD)
            stage = StageTask(
                uid=len(stages),
                key=key,
                rank=rank,
                pair_id=fw_pairs[position],
                deps=deps,
                p2p_bytes=pairs[fw_pairs[position]].cost.p2p_bytes,
            )
            stages.append(stage)
            prev_bw = stage.uid

    static = [0.0] * p
    for position, chunk in enumerate(partition.chunks):
        rank = position % p
        for s in chunk:
            per_layer = arch.binding(s.module).spec.layer_parameters()
            static[rank] += training_state_bytes(
                s.num_layers * per_layer, tp=parallel.tp
            )
    return IterationGraph(
        num_ranks=p,
        stages=stages,
        pairs=pairs,
        static_bytes_per_rank=static,
        memory_limit_bytes=cluster.gpu.memory_bytes * 0.92,
        model_flops=iteration_flops(arch, batch),
    )
