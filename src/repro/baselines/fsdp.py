"""PyTorch FSDP (ZeRO-3) analytic cost model.

FSDP shards parameters, gradients and optimizer state across all data-
parallel workers and materialises each layer's weights via all-gather
just-in-time (``reshard_after_forward=True``).  There is no pipeline:
every GPU runs the full depth over its local microbatches, overlapping
parameter collectives with compute.  Iteration time is therefore the sum
over layers of max(compute, communication), plus gradient
reduce-scatter in the backward pass — the standard ZeRO-3 roofline.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.topology import ClusterSpec
from repro.data.batching import GlobalBatch, module_workload
from repro.models.flops import BYTES_PER_ELEMENT
from repro.models.lmm import LMMArchitecture
from repro.sim.costmodel import CostModel


def fsdp_iteration_ms(
    arch: LMMArchitecture,
    batch: GlobalBatch,
    cluster: ClusterSpec,
    cost_model: Optional[CostModel] = None,
    world_size: Optional[int] = None,
) -> float:
    """Iteration latency of FSDP/ZeRO-3 training on ``world_size`` GPUs.

    Microbatches spread evenly across workers; the slowest worker (most
    loaded, by ceiling division) bounds the iteration.
    """
    cost_model = cost_model or CostModel()
    world = cluster.world_size if world_size is None else world_size
    if world < 1:
        raise ValueError("world_size must be >= 1")
    device = cluster.gpu
    # Inter-node fabric bounds the collectives once world > one node.
    if world > cluster.gpus_per_node:
        coll_bandwidth = device.nic_bandwidth
    else:
        coll_bandwidth = device.nvlink_bandwidth

    microbatches = list(batch)
    local_count = -(-len(microbatches) // world)  # ceil: slowest worker
    # The slowest worker sees the heaviest microbatches under any greedy
    # assignment; approximate its load by the mean of the top-k.
    per_mb_ms = []
    for mb in microbatches:
        fw = bw = 0.0
        for binding in arch.bindings:
            instances, seq, ctx = module_workload(binding, mb)
            if instances == 0:
                continue
            cost = cost_model.stage_cost(
                device, binding.spec, binding.spec.num_layers, instances,
                seq, tp=1, context=ctx,
            )
            fw += cost.forward_ms
            bw += cost.backward_ms
        per_mb_ms.append((fw, bw))
    per_mb_ms.sort(key=lambda t: -(t[0] + t[1]))
    heavy = per_mb_ms[:local_count]
    compute_fw = sum(t[0] for t in heavy)
    compute_bw = sum(t[1] for t in heavy)

    # Parameter all-gathers: once per layer per local microbatch in fw,
    # once in bw (resharded in between); gradient reduce-scatter in bw.
    ring = 2.0 * (world - 1) / world
    gather_ms = 0.0
    for binding in arch.bindings:
        layer_bytes = binding.spec.layer_parameters() * BYTES_PER_ELEMENT
        per_gather = cost_model.op_latency_ms(
            device,
            net_bytes=ring * layer_bytes / 2.0,  # all-gather moves half a ring
            net_bandwidth=coll_bandwidth,
        )
        gather_ms += binding.spec.num_layers * per_gather
    fw_comm = gather_ms * local_count
    bw_comm = gather_ms * local_count * 2.0  # re-gather + reduce-scatter

    # Compute/communication overlap: each phase is bounded by its max.
    fw_ms = max(compute_fw, fw_comm) + 0.05 * min(compute_fw, fw_comm)
    bw_ms = max(compute_bw, bw_comm) + 0.05 * min(compute_bw, bw_comm)
    return fw_ms + bw_ms
