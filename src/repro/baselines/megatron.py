"""Megatron-LM baseline: (interleaved) 1F1B with parameter-balanced chunks.

The paper's configuration (section 7.1): "interleaved pipeline
parallelism (VPP) and partition LMM layers into model chunks with
approximately balanced parameter distribution".  The schedule is the
fixed 1F1B pattern — identical for every iteration regardless of batch
content, which is exactly the static behaviour DIP improves upon.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cluster.topology import ClusterSpec, ParallelConfig
from repro.core.memopt import apply_uniform_memory_policy
from repro.core.schedule import PipelineSchedule
from repro.core.stages import Direction, IterationGraph
from repro.data.batching import GlobalBatch
from repro.models.lmm import LMMArchitecture
from repro.baselines.flatpipe import (
    FlatPartition,
    build_flat_iteration_graph,
    partition_by_weight,
)
from repro.sim.costmodel import CostModel


def megatron_partition(
    arch: LMMArchitecture, parallel: ParallelConfig, virtual: int = 2
) -> FlatPartition:
    """Parameter-balanced flat chunks (Megatron's default placement)."""
    weight_of = {
        b.name: float(b.spec.layer_parameters()) for b in arch.bindings
    }
    total_layers = sum(b.spec.num_layers for b in arch.bindings)
    while virtual > 1 and total_layers < parallel.pp * virtual:
        virtual -= 1
    return partition_by_weight(arch, parallel.pp, virtual, weight_of)


def one_f_one_b_order(
    graph: IterationGraph, num_microbatches: int, virtual: int
) -> List[List[int]]:
    """The fixed (interleaved) 1F1B execution order.

    For ``virtual == 1`` this is the classic schedule: rank ``r`` warms up
    with ``P - 1 - r`` forwards, alternates fw/bw through the steady
    state, then drains backwards.  For ``virtual > 1`` the interleaved
    variant cycles chunks in groups of ``P`` microbatches (requires
    ``num_microbatches % P == 0``; callers fall back to ``virtual=1``
    otherwise).
    """
    p = graph.num_ranks
    # Index stages by (microbatch, traversal position).
    fw_uid = {}
    bw_uid = {}
    for stage in graph.stages:
        mb = stage.key.microbatch
        position = stage.key.chunk * p + stage.rank
        if stage.direction is Direction.FORWARD:
            fw_uid[(mb, position)] = stage.uid
        else:
            bw_uid[(mb, position)] = stage.uid
    mb_indices = sorted({s.key.microbatch for s in graph.stages})
    n = len(mb_indices)

    order: List[List[int]] = []
    for rank in range(p):
        if virtual == 1:
            fw_seq = [(m, rank) for m in mb_indices]
            bw_seq = list(fw_seq)
            warmup = min(n, p - 1 - rank)
        else:
            fw_seq = _interleaved_sequence(mb_indices, rank, p, virtual, False)
            bw_seq = _interleaved_sequence(mb_indices, rank, p, virtual, True)
            warmup = min(len(fw_seq), (p - 1 - rank) * 2 + (virtual - 1) * p)
        uids: List[int] = []
        total = len(fw_seq)
        f = b = 0
        for _ in range(warmup):
            uids.append(fw_uid[fw_seq[f]])
            f += 1
        while f < total:
            uids.append(fw_uid[fw_seq[f]])
            f += 1
            uids.append(bw_uid[bw_seq[b]])
            b += 1
        while b < total:
            uids.append(bw_uid[bw_seq[b]])
            b += 1
        order.append(uids)
    return order


def _interleaved_sequence(
    mb_indices: List[int], rank: int, p: int, virtual: int, backward: bool
) -> List[Tuple[int, int]]:
    """Interleaved-VPP visit order for one rank.

    Microbatches advance in groups of ``P``; within each group the rank
    runs chunk 0 for all P microbatches, then chunk 1, etc.  Backward
    visits chunks in reverse order.
    """
    chunk_order = range(virtual - 1, -1, -1) if backward else range(virtual)
    seq: List[Tuple[int, int]] = []
    for group_start in range(0, len(mb_indices), p):
        group = mb_indices[group_start: group_start + p]
        for chunk in chunk_order:
            for m in group:
                seq.append((m, chunk * p + rank))
    return seq


def megatron_schedule(
    arch: LMMArchitecture,
    batch: GlobalBatch,
    cluster: ClusterSpec,
    parallel: ParallelConfig,
    cost_model: Optional[CostModel] = None,
    virtual: int = 2,
) -> PipelineSchedule:
    """Build and simulate Megatron-LM's schedule for one iteration."""
    cost_model = cost_model or CostModel()
    n = len(batch)
    if virtual > 1 and n % parallel.pp != 0:
        virtual = 1  # interleaved VPP requires n_mb % P == 0
    partition = megatron_partition(arch, parallel, virtual)
    virtual = partition.virtual
    graph = build_flat_iteration_graph(
        arch, partition, batch, cluster, parallel, cost_model
    )
    apply_uniform_memory_policy(graph)
    order = one_f_one_b_order(graph, n, virtual)
    schedule = PipelineSchedule(graph=graph, order=order, label="megatron-1f1b")
    schedule.simulate(cluster, parallel, cost_model)
    return schedule
