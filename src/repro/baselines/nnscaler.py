"""nnScaler* baseline: a static pre-generated parallelization plan.

Following the paper's methodology, nnScaler's chunk partitioning and
memory optimizations are re-implemented inside the common framework
("nnScaler*").  nnScaler searches a high-quality plan *offline* on a
representative workload — here: a latency-balanced flat partition, an
optimised stage order found by search on the representative batch, and
per-chunk memory strategies — and then reuses that frozen plan for every
training iteration, because regenerating takes minutes and requires a
restart.  Its 1F1B restriction keeps all modality modules inside one
pipeline segment (section 7.2), and the frozen schedule cannot react to
batch-content changes: both are exactly the weaknesses DIP addresses.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cluster.topology import ClusterSpec, ParallelConfig
from repro.core.interleaver import interleave_stages
from repro.core.memopt import generate_candidates, optimize_memory
from repro.core.mcts import natural_ordering
from repro.core.schedule import PipelineSchedule
from repro.core.stages import IterationGraph
from repro.data.batching import GlobalBatch, module_workload
from repro.models.lmm import LMMArchitecture
from repro.baselines.flatpipe import (
    FlatPartition,
    build_flat_iteration_graph,
    partition_by_weight,
)
from repro.sim.costmodel import CostModel


class NnScalerPlan:
    """The static plan: balanced partition + frozen order + strategies.

    Args:
        arch: LMM architecture.
        cluster / parallel: Hardware and layout.
        cost_model: Latency model used for "profiling" the representative
            workload.
    """

    def __init__(
        self,
        arch: LMMArchitecture,
        cluster: ClusterSpec,
        parallel: ParallelConfig,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        self.arch = arch
        self.cluster = cluster
        self.parallel = parallel
        self.cost_model = cost_model or CostModel()
        self.partition: Optional[FlatPartition] = None
        self._frozen_order: Optional[List[List[int]]] = None
        self._frozen_chunk_strategy: Dict[Tuple[int, int], str] = {}
        self._num_microbatches: int = 0

    def fit(self, representative: GlobalBatch) -> "NnScalerPlan":
        """Generate the plan from a representative workload (offline)."""
        # Per-layer latency under the representative batch's first
        # microbatch drives the balanced partitioning.
        mb = representative.microbatches[0]
        weight_of: Dict[str, float] = {}
        for binding in self.arch.bindings:
            instances, seq, ctx = module_workload(binding, mb)
            instances = max(instances, 1)
            cost = self.cost_model.stage_cost(
                self.cluster.gpu, binding.spec, 1, instances, max(seq, 1),
                tp=self.parallel.tp, context=ctx,
            )
            weight_of[binding.name] = cost.forward_ms + cost.backward_ms
        self.partition = partition_by_weight(
            self.arch, self.parallel.pp, 1, weight_of
        )
        self._num_microbatches = len(representative)

        # Offline schedule search on the representative iteration: an
        # optimised but *static* stage order, frozen for reuse.
        graph = self._graph(representative)
        generate_candidates(graph)
        graph.select_most_memory_efficient()
        ordering = natural_ordering(list(graph.groups().keys()))
        priorities = {g: len(ordering) - i for i, g in enumerate(ordering)}
        graph.apply_group_priorities(priorities)
        inter = interleave_stages(graph, self.cluster, self.parallel,
                                  self.cost_model)
        optimize_memory(graph, inter.start_ms, inter.end_ms, exact=False)
        self._frozen_order = inter.order
        self._frozen_chunk_strategy = {}
        for pair in graph.pairs:
            self._frozen_chunk_strategy[(pair.chunk, pair.rank)] = (
                pair.strategy.label
            )
        return self

    def _graph(self, batch: GlobalBatch) -> IterationGraph:
        if self.partition is None:
            raise RuntimeError("call fit() before scheduling")
        return build_flat_iteration_graph(
            self.arch, self.partition, batch, self.cluster, self.parallel,
            self.cost_model,
        )

    def schedule(self, batch: GlobalBatch) -> PipelineSchedule:
        """Apply the frozen plan to a new iteration's batch.

        The batch must have the plan's microbatch count (stage uids of a
        flat graph depend only on that), mirroring nnScaler's fixed
        execution plan.
        """
        if len(batch) != self._num_microbatches:
            raise ValueError(
                f"frozen plan covers {self._num_microbatches} microbatches, "
                f"got {len(batch)}"
            )
        graph = self._graph(batch)
        generate_candidates(graph)
        for pair in graph.pairs:
            wanted = self._frozen_chunk_strategy.get((pair.chunk, pair.rank))
            pair.selected = 0
            if wanted is not None:
                for i, cand in enumerate(pair.candidates):
                    if cand.label == wanted:
                        pair.selected = i
                        break
        schedule = PipelineSchedule(graph=graph, order=self._frozen_order,
                                    label="nnscaler*")
        schedule.simulate(self.cluster, self.parallel, self.cost_model)
        return schedule


def nnscaler_schedule(
    arch: LMMArchitecture,
    batch: GlobalBatch,
    cluster: ClusterSpec,
    parallel: ParallelConfig,
    cost_model: Optional[CostModel] = None,
    representative: Optional[GlobalBatch] = None,
) -> PipelineSchedule:
    """Convenience one-shot: fit on ``representative`` (or the batch
    itself) and schedule ``batch``."""
    plan = NnScalerPlan(arch, cluster, parallel, cost_model)
    plan.fit(representative if representative is not None else batch)
    return plan.schedule(batch)
