"""Optimus baseline: coarse-grained encoder bubble scheduling.

Per the paper (section 7.1): "The coarse-grained strategy sequences all
modality encoder computations before backbone model execution at the
pipeline level".  We realise it on DIP's separated partitioning machinery
but *without* sub-microbatch splitting or schedule search: encoder
forwards for the whole batch run first, the backbone follows the 1F1B
pattern, and encoder backwards drain at the end.  Activation memory from
all queued encoder outputs accumulates until the backbone consumes them —
producing the elevated memory profile of Fig. 10.

Optimus does not support diffusion decoders, so T2V models are rejected,
matching its exclusion from the paper's T2V comparisons.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cluster.topology import ClusterSpec, ParallelConfig
from repro.core.graphbuilder import build_iteration_graph
from repro.core.interleaver import interleave_stages
from repro.core.memopt import apply_uniform_memory_policy
from repro.core.partitioner import ModalityPartitioner, ModulePartition
from repro.core.planner import reference_microbatch
from repro.core.schedule import PipelineSchedule
from repro.core.stages import Direction, GroupKey
from repro.data.batching import GlobalBatch
from repro.models.config import ModuleRole
from repro.models.lmm import LMMArchitecture
from repro.sim.costmodel import CostModel


def optimus_schedule(
    arch: LMMArchitecture,
    batch: GlobalBatch,
    cluster: ClusterSpec,
    parallel: ParallelConfig,
    cost_model: Optional[CostModel] = None,
) -> PipelineSchedule:
    """Build and simulate Optimus' coarse-grained schedule."""
    if arch.kind == "t2v":
        raise ValueError("Optimus does not support diffusion decoders (T2V)")
    cost_model = cost_model or CostModel()
    partitioner = ModalityPartitioner(arch, cluster, parallel, cost_model)
    reference = reference_microbatch(arch.kind)
    plan = partitioner.plan(reference)
    # No sub-microbatch splitting: one pass per modality per microbatch.
    # Optimus still partitions each module across all ranks; segment
    # counts re-derive from *unsplit* module latencies so a full-batch
    # encoder pass breaks into comparably sized stages.
    from repro.data.batching import module_workload
    from repro.core.partitioner import split_layers

    full_latency = {}
    for binding in arch.bindings:
        instances, seq, ctx = module_workload(binding, reference)
        cost = cost_model.stage_cost(
            cluster.gpu, binding.spec, binding.spec.num_layers,
            max(instances, 1), seq, tp=parallel.tp, context=ctx,
        )
        full_latency[binding.name] = cost.forward_ms
    t_min = min(full_latency.values())
    for name, mp in list(plan.modules.items()):
        spec = arch.binding(name).spec
        k = max(1, int(full_latency[name] / t_min))
        k = min(k, partitioner.max_segments, spec.num_layers // parallel.pp)
        k = max(k, 1)
        plan.modules[name] = ModulePartition(
            module=name,
            sub_batch_size=None,
            num_segments=k,
            layers_per_chunk=split_layers(spec.num_layers, parallel.pp * k),
        )
    graph = build_iteration_graph(
        arch, plan, batch, cluster, parallel, cost_model, partitioner=partitioner
    )
    apply_uniform_memory_policy(graph)

    # Priority tiers: encoder forwards first, backbone 1F1B, encoder
    # backwards last.  Within a tier, earlier microbatches first.
    n_mb = len(batch)
    priorities: Dict[GroupKey, int] = {}
    encoder_names = {
        b.name for b in arch.bindings if b.role is ModuleRole.ENCODER
    }
    for group in graph.groups():
        base: int
        if group.module in encoder_names:
            if group.direction is Direction.FORWARD:
                base = 4 * n_mb + (n_mb - group.microbatch)
            else:
                base = -n_mb + (n_mb - group.microbatch)
        else:
            base = 2 * n_mb + (n_mb - group.microbatch)
        priorities[group] = base
    graph.apply_group_priorities(priorities)
    result = interleave_stages(graph, cluster, parallel, cost_model)
    schedule = PipelineSchedule(
        graph=graph, order=result.order, label="optimus-coarse"
    )
    schedule.simulate(cluster, parallel, cost_model)
    return schedule
