"""Chaos engineering for the planning fleet: deterministic fault
injection plus an invariant-checking driver.

Two pieces:

* :mod:`repro.chaos.faults` — :class:`FaultPlan`, a seedable,
  replay-verifiable fault schedule.  The RPC server and the disk cache
  tier consult it at their injection sites (response send, request
  receive, tier get/put); every decision is a pure function of
  ``(seed, site, per-site op index)``, so the exact injected-fault
  sequence of any run can be re-derived from the seed and checked
  against the shards' fault logs.
* :mod:`repro.chaos.drive` — ``repro chaos drive``: spin up a live
  fleet under a named scenario (crash-restart, straggler, partition,
  blackout, disk-errors, corruption), hammer it with routed clients,
  and assert the resilience invariants: every submit terminates within
  its deadline with either a canonical plan *bit-identical* to the
  fault-free baseline or a typed error; degraded-mode local plans have
  makespans identical to fleet-served ones; the fault logs replay.
"""

from repro.chaos.faults import (
    FAULT_KINDS,
    FAULT_SITES,
    FaultDecision,
    FaultPlan,
    FaultSpec,
    SCENARIOS,
    Scenario,
    scenario_by_name,
)

__all__ = [
    "FAULT_KINDS",
    "FAULT_SITES",
    "FaultDecision",
    "FaultPlan",
    "FaultSpec",
    "SCENARIOS",
    "Scenario",
    "scenario_by_name",
]
