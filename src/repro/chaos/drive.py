"""``repro chaos drive`` — run a client workload against a live fleet
under a named fault scenario and assert the resilience invariants.

The driver is deliberately *sequential*: one batch at a time, one
client at a time, so "fleet-wide progress" (the trigger for
progress-based shard kills) and the per-shard fault schedules are
reproducible run to run.  Chaos lives in the injected faults, not in
racy driver scheduling.

Invariants checked, per planned batch:

1. **Termination** — every ``plan_batch`` call returns (plan or typed
   error) within the scenario deadline plus a scheduling slack.  A
   hang is the one failure mode retries cannot paper over.
2. **Canonical plans** — every successful plan's makespan is
   *bit-identical* to the fault-free local baseline for the same
   signature.  Near-miss warm starts are disabled everywhere, so a
   plan is a pure function of (signature, context, seed): a corrupted
   frame or a half-written disk entry that slipped through would show
   up here as a makespan mismatch.
3. **Typed errors only** — the only exceptions allowed out of the
   client are :class:`~repro.service.requests.RemotePlanError` and its
   subclasses (deadline exhaustion included).  Raw transport errors
   escaping the retry/breaker/degraded stack are violations.

After the drive, two more checks run:

4. **Degraded-mode identity** — with every breaker forced open, the
   client must serve a local plan flagged ``degraded=True`` whose
   makespan equals the baseline exactly.
5. **Fault-log replay** — each shard's dumped fault log is verified
   against that shard's deterministic :class:`FaultPlan` schedule
   (both directions: nothing logged that was not scheduled, nothing
   scheduled below the observed horizon that was not logged).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.chaos.faults import FaultPlan, Scenario
from repro.fleet.client import FleetClient
from repro.fleet.launcher import FleetConfig, PlanFleet
from repro.service.requests import DeadlineExceededError, RemotePlanError
from repro.service.retry import RetryPolicy


@dataclass
class ChaosReport:
    """Everything one scenario run learned, JSON-serialisable."""

    scenario: str
    model: str
    shards: int
    replicas: int
    fault_seed: int
    deadline_s: float
    planned: int = 0
    degraded_plans: int = 0
    typed_errors: int = 0
    makespan_matches: int = 0
    retries: int = 0
    failovers: int = 0
    shard_restarts: int = 0
    shed_total: int = 0
    injected_faults: int = 0
    elapsed_s: float = 0.0
    violations: List[str] = field(default_factory=list)
    fault_log_problems: List[str] = field(default_factory=list)

    def ok(self) -> bool:
        return not self.violations and not self.fault_log_problems

    def to_dict(self) -> Dict:
        return {
            "scenario": self.scenario,
            "model": self.model,
            "shards": self.shards,
            "replicas": self.replicas,
            "fault_seed": self.fault_seed,
            "deadline_s": self.deadline_s,
            "planned": self.planned,
            "degraded_plans": self.degraded_plans,
            "typed_errors": self.typed_errors,
            "makespan_matches": self.makespan_matches,
            "retries": self.retries,
            "failovers": self.failovers,
            "shard_restarts": self.shard_restarts,
            "shed_total": self.shed_total,
            "injected_faults": self.injected_faults,
            "elapsed_s": round(self.elapsed_s, 3),
            "violations": list(self.violations),
            "fault_log_problems": list(self.fault_log_problems),
            "ok": self.ok(),
        }


def _baseline_planner(model: str, budget: int, seed: int,
                      cache_size: int, use_kernel: bool):
    """A fault-free local planner with near-miss warm starts disabled
    — the oracle every fleet-served and degraded plan is compared to."""
    from repro.cli import _setup

    _arch, _cluster, _parallel, planner = _setup(
        model, budget, seed, plan_cache=True, cache_size=cache_size,
        use_kernel=use_kernel,
    )
    if planner.cache is not None:
        planner.cache.near_miss = False
    return planner


def run_scenario(
    model: str,
    scenario: Scenario,
    *,
    shards: int = 2,
    replicas: int = 2,
    iterations: int = 4,
    microbatches: int = 3,
    budget: int = 8,
    seed: int = 0,
    fault_seed: int = 1,
    runtime_dir: str = "/tmp/repro-chaos",
    deadline_s: Optional[float] = None,
    cache_size: int = 64,
    use_kernel: bool = True,
    slack_s: float = 30.0,
    max_restarts: int = 4,
    log=print,
) -> ChaosReport:
    """Run one scenario end to end; returns the :class:`ChaosReport`.

    ``deadline_s`` overrides the scenario's default deadline.  The
    termination invariant allows ``slack_s`` on top of the deadline
    for local degraded searches and scheduler noise — real hangs are
    unbounded, so any finite slack separates them cleanly.
    """
    from repro.cli import _workload
    from repro.fleet import fleet_stats
    from repro.models.lmm import build_combination
    from repro.models.zoo import combination_by_name

    deadline = (scenario.deadline_s if deadline_s is None
                else float(deadline_s))
    report = ChaosReport(scenario=scenario.name, model=model,
                         shards=shards, replicas=replicas,
                         fault_seed=fault_seed, deadline_s=deadline)
    os.makedirs(runtime_dir, exist_ok=True)
    fault_log = os.path.join(runtime_dir, "faults")

    # Workload + fault-free baseline makespans, keyed by signature.
    arch = build_combination(combination_by_name(model))
    batches = list(_workload(arch, microbatches, seed)
                   .batches(iterations))
    baseline = _baseline_planner(model, budget, seed, cache_size,
                                 use_kernel)
    baseline_ms: Dict[str, float] = {}
    for batch in batches:
        prepared = baseline.prepare(batch)
        result = baseline.plan_prepared(prepared)
        baseline_ms[prepared.signature.digest] = result.total_ms
    log(f"baseline: {len(batches)} batch(es), "
        f"{len(baseline_ms)} signature(s)")

    config = FleetConfig(
        models=[model],
        shards=shards,
        cache_dir=os.path.join(runtime_dir, "cache"),
        runtime_dir=runtime_dir,
        budget=budget,
        seed=seed,
        cache_size=cache_size,
        near_miss=False,
        legacy_eval=not use_kernel,
        restart_crashed=True,
        max_restarts=max_restarts,
        fault_specs=scenario.specs,
        fault_seed=fault_seed,
        fault_log=fault_log,
    )
    fleet = PlanFleet(config).start()
    log(f"started {fleet.describe()}")
    started = time.monotonic()
    clients: List[FleetClient] = []
    try:
        clients = [
            FleetClient(
                fleet.addresses, model, replica, batches,
                planner=_baseline_planner(model, budget, seed,
                                          cache_size, use_kernel),
                timeout_s=deadline,
                retry_policy=RetryPolicy(max_attempts=4, base_s=0.05,
                                         cap_s=0.5, seed=fault_seed),
                deadline_s=deadline,
                attempt_timeout_s=min(10.0, deadline),
                degraded=True,
                breaker_threshold=3,
                breaker_recovery_s=2.0,
            )
            for replica in range(replicas)
        ]
        pending_crashes = sorted(scenario.crash_points)
        for batch in batches:
            for client in clients:
                while (pending_crashes
                       and report.planned >= pending_crashes[0][0]):
                    _progress, shard = pending_crashes.pop(0)
                    log(f"chaos: SIGKILL shard {shard} after "
                        f"{report.planned} planned batch(es)")
                    fleet.kill_shard(shard)
                _drive_one(client, batch, deadline, slack_s,
                           baseline_ms, report)
        if scenario.crash_points:
            # The drive often outruns the monitor poll; wait for the
            # respawn so the scenario proves crash *recovery*, not just
            # failover, then sweep once more through the restarted
            # fleet (cold memory tier, warm disk tier).
            recover_by = time.monotonic() + 90.0
            while (fleet.alive_count() < shards
                   and time.monotonic() < recover_by):
                time.sleep(0.2)
            if fleet.alive_count() < shards:
                report.violations.append(
                    f"only {fleet.alive_count()}/{shards} shard(s) "
                    f"alive 90s after the injected crash — the "
                    f"launcher never respawned the victim")
            else:
                log("chaos: fleet recovered; post-restart sweep")
                for batch in batches:
                    _drive_one(clients[0], batch, deadline, slack_s,
                               baseline_ms, report)
        report.elapsed_s = time.monotonic() - started

        # Invariant 4: force every breaker open; the client must fall
        # back to a local plan flagged degraded, makespan-identical.
        probe = clients[0]
        probe.trip_breakers()
        try:
            result, plan_report = probe.plan_batch(batches[0])
        except Exception as exc:  # noqa: BLE001 — any raise is a finding
            report.violations.append(
                f"degraded probe raised {type(exc).__name__}: {exc}")
        else:
            if not plan_report.get("degraded"):
                report.violations.append(
                    "degraded probe was served without the degraded "
                    "flag while every breaker was open")
            else:
                report.degraded_plans += 1
            digest = probe.routes[-1][0]
            want = baseline_ms.get(digest)
            if want is not None and result.total_ms != want:
                report.violations.append(
                    f"degraded probe makespan {result.total_ms!r} != "
                    f"baseline {want!r} for signature {digest[:12]}")
        finally:
            probe.reset_breakers()

        for client in clients:
            report.retries += client.retries
            report.failovers += client.failovers
            report.degraded_plans += client.degraded_plans
        try:
            stats = fleet_stats(fleet.addresses, timeout_s=10.0)
            report.shed_total = int(stats["service"].get("shed", 0))
        except Exception:  # noqa: BLE001 — shards may be dark (blackout)
            pass
    finally:
        for client in clients:
            client.close()
        fleet.stop()
        report.shard_restarts = sum(s.restarts for s in fleet.shards)

    # Invariant 5: every dumped fault log must replay exactly from the
    # shard's deterministic schedule.  Shards that died hard (SIGKILL)
    # never dump — an absent/partial log is vacuously consistent; a
    # *wrong* entry never is.
    for index in range(shards):
        path = f"{fault_log}.shard{index}.jsonl"
        if not os.path.exists(path):
            continue
        entries = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    entries.append(json.loads(line))
        report.injected_faults += len(entries)
        plan = FaultPlan(seed=fault_seed + index, specs=scenario.specs,
                         shard_index=index)
        for problem in plan.verify_log(entries):
            report.fault_log_problems.append(f"shard {index}: {problem}")
    return report


def _drive_one(client: FleetClient, batch, deadline: float,
               slack_s: float, baseline_ms: Dict[str, float],
               report: ChaosReport) -> None:
    """Plan one batch on one client and charge the invariants."""
    t0 = time.monotonic()
    try:
        result, _plan_report = client.plan_batch(batch)
    except DeadlineExceededError:
        report.typed_errors += 1
    except RemotePlanError:
        report.typed_errors += 1
    except Exception as exc:  # noqa: BLE001 — untyped escape is the finding
        report.violations.append(
            f"untyped error escaped the client: "
            f"{type(exc).__name__}: {exc}")
    else:
        report.planned += 1
        digest = client.routes[-1][0]
        want = baseline_ms.get(digest)
        if want is None:
            report.violations.append(
                f"plan for unknown signature {str(digest)[:12]}")
        elif result.total_ms != want:
            report.violations.append(
                f"makespan {result.total_ms!r} != baseline {want!r} "
                f"for signature {digest[:12]}")
        else:
            report.makespan_matches += 1
    elapsed = time.monotonic() - t0
    if elapsed > deadline + slack_s:
        report.violations.append(
            f"plan_batch took {elapsed:.1f}s — past the {deadline:.0f}s "
            f"deadline plus {slack_s:.0f}s slack (hang)")


def render_report(report: ChaosReport) -> str:
    lines = [
        f"chaos scenario {report.scenario!r} on {report.model}: "
        f"{report.shards} shard(s) x {report.replicas} replica(s), "
        f"fault seed {report.fault_seed}",
        f"  planned {report.planned} batch(es) in "
        f"{report.elapsed_s:.1f}s; {report.makespan_matches} "
        f"makespan-identical, {report.degraded_plans} degraded, "
        f"{report.typed_errors} typed error(s)",
        f"  resilience: {report.retries} retried attempt(s), "
        f"{report.failovers} failover(s), {report.shard_restarts} "
        f"shard restart(s), {report.shed_total} shed, "
        f"{report.injected_faults} injected fault(s) logged",
    ]
    if report.fault_log_problems:
        lines.append(f"  fault-log replay problems "
                     f"({len(report.fault_log_problems)}):")
        lines += [f"    {p}" for p in report.fault_log_problems]
    if report.violations:
        lines.append(f"  INVARIANT VIOLATIONS ({len(report.violations)}):")
        lines += [f"    {v}" for v in report.violations]
    else:
        lines.append("  invariants: all held")
    return "\n".join(lines)
