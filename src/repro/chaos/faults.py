"""Deterministic, seedable fault injection for the planning fleet.

A :class:`FaultPlan` is a schedule of faults that the serving stack
consults at fixed *injection sites*:

* ``rpc.response`` — just before the server sends a response frame
  (:meth:`~repro.service.rpc.PlanServiceServer._try_send`): ``slow``
  delays the send (straggler shard), ``drop`` closes the connection
  without responding, ``corrupt`` flips bytes inside the frame body so
  the client sees a framing violation.
* ``rpc.recv`` — after the server receives a request frame: ``stall``
  delays processing (slow shard), ``drop`` closes the connection
  without reading further (partition: the request is lost).
* ``disk.get`` / ``disk.put`` — inside
  :class:`~repro.core.cachetier.DiskCacheTier`: ``error`` makes the
  operation behave as an I/O failure (the tier already degrades to a
  pass-through; the fault proves it).

Determinism is the whole point: whether operation *n* at a site faults
is a pure function of ``(seed, site, n)`` — a SHA-256 of that triple,
scaled to [0, 1) and compared against the spec's rate.  Two runs with
the same seed inject the identical fault sequence; the chaos driver
re-derives every decision from the seed and asserts the shards' fault
logs match (:meth:`FaultPlan.verify_log`).  No wall-clock, no RNG
state, no cross-site coupling.

``FaultSpec.shards`` scopes a spec to particular shard indices — one
fleet-wide plan JSON can make shard 0 a straggler while leaving its
siblings clean.  Windows (``after``/``until``) and ``max_events`` are
in per-site *operation counts*, not seconds, for the same determinism
reason.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

FAULT_KINDS = ("drop", "stall", "slow", "corrupt", "error")
FAULT_SITES = ("rpc.response", "rpc.recv", "disk.get", "disk.put")

#: Kinds that make sense per site (checked at spec construction so a
#: typo'd scenario fails loudly, not silently never-fires).
_SITE_KINDS = {
    "rpc.response": ("slow", "drop", "corrupt"),
    "rpc.recv": ("stall", "drop"),
    "disk.get": ("error",),
    "disk.put": ("error",),
}


@dataclass(frozen=True)
class FaultSpec:
    """One fault rule: *where*, *what*, *how often*, *when*.

    Args:
        site: Injection site (see :data:`FAULT_SITES`).
        kind: Fault kind, valid for the site (see :data:`FAULT_KINDS`).
        rate: Probability in [0, 1] that an in-window operation faults
            (1.0 = every operation).
        delay_s: Sleep length for ``slow``/``stall`` faults.
        after: First per-site operation index (0-based) the spec arms
            at.
        until: Operation index the spec disarms at (exclusive);
            ``None`` = never.
        max_events: Cap on faults this spec may fire; ``None`` = no
            cap.
        shards: Shard indices the spec applies to; ``None`` = all.
    """

    site: str
    kind: str
    rate: float = 1.0
    delay_s: float = 0.0
    after: int = 0
    until: Optional[int] = None
    max_events: Optional[int] = None
    shards: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ValueError(f"unknown fault site {self.site!r} "
                             f"(sites: {FAULT_SITES})")
        if self.kind not in _SITE_KINDS[self.site]:
            raise ValueError(
                f"fault kind {self.kind!r} is not valid at site "
                f"{self.site!r} (valid: {_SITE_KINDS[self.site]})")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.delay_s < 0:
            raise ValueError("delay_s must be >= 0")
        if self.shards is not None:
            object.__setattr__(self, "shards",
                               tuple(int(s) for s in self.shards))

    def applies_to_shard(self, shard_index: Optional[int]) -> bool:
        if self.shards is None:
            return True
        return shard_index is not None and shard_index in self.shards

    def in_window(self, index: int) -> bool:
        if index < self.after:
            return False
        return self.until is None or index < self.until

    def to_dict(self) -> Dict:
        payload = asdict(self)
        if payload["shards"] is not None:
            payload["shards"] = list(payload["shards"])
        return payload

    @classmethod
    def from_dict(cls, payload: Dict) -> "FaultSpec":
        shards = payload.get("shards")
        return cls(
            site=payload["site"],
            kind=payload["kind"],
            rate=float(payload.get("rate", 1.0)),
            delay_s=float(payload.get("delay_s", 0.0)),
            after=int(payload.get("after", 0)),
            until=(int(payload["until"])
                   if payload.get("until") is not None else None),
            max_events=(int(payload["max_events"])
                        if payload.get("max_events") is not None else None),
            shards=tuple(shards) if shards is not None else None,
        )


@dataclass(frozen=True)
class FaultDecision:
    """One fired fault: which operation it hit and what it did.
    Exactly what the shards' fault logs record (JSONL, one per line)
    and what :meth:`FaultPlan.verify_log` replays."""

    site: str
    index: int  # per-site operation index the fault fired at
    kind: str
    delay_s: float = 0.0

    def to_dict(self) -> Dict:
        return asdict(self)


def _unit_hash(seed: int, site: str, index: int) -> float:
    """Deterministic uniform draw in [0, 1) for one operation."""
    digest = hashlib.sha256(
        f"{seed}:{site}:{index}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


class FaultPlan:
    """A seeded fault schedule plus its per-site operation counters.

    One instance lives inside each faulted process (server or tier
    owner); :meth:`decide` is called once per operation at each site
    and returns the :class:`FaultDecision` to apply, or ``None``.
    Decisions are appended to :attr:`events` so the process can dump a
    fault log for replay verification.

    The pure-function twin :meth:`expected_decision` computes what
    operation ``n`` *would* do without advancing any state — the chaos
    driver uses it to re-derive a run's entire fault sequence from the
    seed.
    """

    def __init__(self, seed: int = 0,
                 specs: Sequence[FaultSpec] = (),
                 shard_index: Optional[int] = None) -> None:
        self.seed = int(seed)
        self.specs = list(specs)
        self.shard_index = shard_index
        self.events: List[FaultDecision] = []
        self._counters: Dict[str, int] = {site: 0 for site in FAULT_SITES}
        self._fired: Dict[int, int] = {}  # spec position -> events fired
        self._lock = threading.Lock()

    # -- the decision function ----------------------------------------------

    def expected_decision(self, site: str,
                          index: int) -> Optional[FaultDecision]:
        """What operation ``index`` at ``site`` does under this plan —
        stateless except for ``max_events`` accounting, which callers
        replaying a whole run get for free by iterating indices in
        order (see :meth:`replay_site`)."""
        draw = _unit_hash(self.seed, site, index)
        for spec in self.specs:
            if spec.site != site:
                continue
            if not spec.applies_to_shard(self.shard_index):
                continue
            if not spec.in_window(index):
                continue
            if draw < spec.rate:
                return FaultDecision(site=site, index=index,
                                     kind=spec.kind,
                                     delay_s=spec.delay_s)
        return None

    def replay_site(self, site: str, count: int) -> List[FaultDecision]:
        """The full deterministic fault sequence for the first
        ``count`` operations at ``site`` (honouring ``max_events``)."""
        fired_by_spec: Dict[int, int] = {}
        out: List[FaultDecision] = []
        for index in range(count):
            decision = self._decide_stateless(site, index, fired_by_spec)
            if decision is not None:
                out.append(decision)
        return out

    def _decide_stateless(self, site: str, index: int,
                          fired_by_spec: Dict[int, int],
                          ) -> Optional[FaultDecision]:
        draw = _unit_hash(self.seed, site, index)
        for pos, spec in enumerate(self.specs):
            if spec.site != site:
                continue
            if not spec.applies_to_shard(self.shard_index):
                continue
            if not spec.in_window(index):
                continue
            if (spec.max_events is not None
                    and fired_by_spec.get(pos, 0) >= spec.max_events):
                continue
            if draw < spec.rate:
                fired_by_spec[pos] = fired_by_spec.get(pos, 0) + 1
                return FaultDecision(site=site, index=index,
                                     kind=spec.kind,
                                     delay_s=spec.delay_s)
        return None

    def decide(self, site: str) -> Optional[FaultDecision]:
        """Consume one operation at ``site``; the live injection hook."""
        with self._lock:
            index = self._counters[site]
            self._counters[site] = index + 1
            decision = self._decide_stateless(site, index, self._fired)
            if decision is not None:
                self.events.append(decision)
            return decision

    def operation_counts(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counters)

    # -- replay verification -------------------------------------------------

    def verify_log(self, entries: Iterable[Dict]) -> List[str]:
        """Check a fault log (dicts shaped like
        :meth:`FaultDecision.to_dict`) against the deterministic
        schedule; returns one message per disagreement (empty ==
        faithful replay).

        Verifies both directions per site: every logged event must be
        exactly what the schedule predicts at its index, and no
        predicted event below the highest logged/observed index may be
        missing from the log.
        """
        problems: List[str] = []
        by_site: Dict[str, List[Dict]] = {}
        for entry in entries:
            site = entry.get("site")
            if site not in FAULT_SITES:
                problems.append(f"log entry with unknown site: {entry!r}")
                continue
            by_site.setdefault(site, []).append(entry)
        for site, logged in by_site.items():
            top = max(int(e.get("index", -1)) for e in logged) + 1
            expected = {d.index: d for d in self.replay_site(site, top)}
            seen = set()
            for entry in logged:
                index = int(entry.get("index", -1))
                seen.add(index)
                want = expected.get(index)
                if want is None:
                    problems.append(
                        f"{site}[{index}]: logged "
                        f"{entry.get('kind')!r} but the schedule "
                        f"predicts no fault there")
                    continue
                if (entry.get("kind") != want.kind
                        or abs(float(entry.get("delay_s", 0.0))
                               - want.delay_s) > 1e-9):
                    problems.append(
                        f"{site}[{index}]: logged "
                        f"{entry.get('kind')!r}/{entry.get('delay_s')} "
                        f"!= scheduled {want.kind!r}/{want.delay_s}")
            for index, want in expected.items():
                if index not in seen:
                    problems.append(
                        f"{site}[{index}]: schedule predicts "
                        f"{want.kind!r} but the log has no event there")
        return problems

    # -- (de)serialisation ---------------------------------------------------

    def to_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "shard_index": self.shard_index,
            "specs": [spec.to_dict() for spec in self.specs],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), separators=(",", ":"))

    @classmethod
    def from_dict(cls, payload: Dict) -> "FaultPlan":
        return cls(
            seed=int(payload.get("seed", 0)),
            specs=[FaultSpec.from_dict(s)
                   for s in payload.get("specs", ())],
            shard_index=payload.get("shard_index"),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        payload = json.loads(text)
        if not isinstance(payload, dict):
            raise ValueError("fault plan JSON must be an object")
        return cls.from_dict(payload)


# -- named scenarios ---------------------------------------------------------


@dataclass(frozen=True)
class Scenario:
    """A named chaos experiment: server-side fault specs plus
    driver-side actions (shard kills) and knobs the chaos driver
    applies uniformly.

    ``crash_points`` are *client progress counts*: after the driver has
    collected that many planned batches fleet-wide, it SIGKILLs the
    named shard — progress-based, not time-based, so the experiment is
    reproducible across machine speeds.
    """

    name: str
    description: str
    specs: Tuple[FaultSpec, ...] = ()
    crash_points: Tuple[Tuple[int, int], ...] = ()  # (progress, shard)
    #: Deadline handed to every submit (seconds); scenarios with long
    #: stalls need more road than clean ones.
    deadline_s: float = 60.0

    def shard_specs(self) -> List[Dict]:
        return [spec.to_dict() for spec in self.specs]


SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            name="crash-restart",
            description=(
                "SIGKILL one shard mid-drive; the launcher respawns it "
                "with a cold memory tier and requests fail over along "
                "the ring meanwhile"),
            crash_points=((3, 0),),
        ),
        Scenario(
            name="straggler",
            description=(
                "shard 0 answers slowly (injected response delay on "
                "roughly half its responses); plans must stay "
                "bit-identical and within deadline"),
            specs=(FaultSpec(site="rpc.response", kind="slow",
                             rate=0.5, delay_s=0.25, shards=(0,)),),
        ),
        Scenario(
            name="partition",
            description=(
                "shard 0 drops a window of requests after receiving "
                "them (one-way partition); clients see dead "
                "connections and retry ring successors"),
            specs=(FaultSpec(site="rpc.recv", kind="drop",
                             rate=1.0, after=2, until=8, shards=(0,)),),
        ),
        Scenario(
            name="blackout",
            description=(
                "every shard drops every request — the entire ring "
                "preference list goes dark and every plan must come "
                "from degraded-mode local search"),
            specs=(FaultSpec(site="rpc.recv", kind="drop", rate=1.0,
                             after=1),),
        ),
        Scenario(
            name="disk-errors",
            description=(
                "the shared disk tier fails every read and write; the "
                "cache degrades to a pass-through and planning "
                "continues (more searches, same plans)"),
            specs=(FaultSpec(site="disk.get", kind="error", rate=1.0),
                   FaultSpec(site="disk.put", kind="error", rate=1.0)),
        ),
        Scenario(
            name="corruption",
            description=(
                "a third of shard 0's response frames are "
                "byte-corrupted; clients must reject them as protocol "
                "errors and retry, never mis-deliver a plan"),
            specs=(FaultSpec(site="rpc.response", kind="corrupt",
                             rate=0.34, shards=(0,),
                             max_events=4),),
        ),
    )
}


def scenario_by_name(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown chaos scenario {name!r} "
            f"(available: {', '.join(sorted(SCENARIOS))})") from None
