"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``plan``      — plan + simulate iterations of a Table 3/6 model and
                  print per-iteration statistics and the schedule diagram.
* ``compare``   — run all systems on a shared workload (a mini Fig. 8a).
* ``models``    — list the model zoo and combinations.
* ``trace``     — the trace & telemetry subsystem: ``export`` /
                  ``analyze`` / ``compare`` / ``recalibrate`` /
                  ``validate`` over per-rank event timelines.
* ``serve``     — run the concurrent planning service: DP replicas of
                  one or more jobs hammer a shared service (request
                  coalescing, shared plan cache, optional online
                  recalibration).  With ``--listen HOST:PORT`` or
                  ``--uds PATH`` the service is exposed over a socket
                  to *other processes* instead.
* ``plan-client`` — drive a remote ``repro serve --listen/--uds``
                  service from this process: graphs are built and
                  replayed locally, searches run on the server, and
                  identical in-flight batches coalesce across
                  processes.
* ``fleet``     — the sharded planning fleet: ``serve`` spawns N
                  server subprocesses over one shared on-disk cache
                  tier and supervises them (crash restart, drain on
                  stop); ``drive`` hammers a running fleet with
                  signature-routed clients; ``bench`` measures
                  plans/sec vs shard count on the fig. 11 workload.
* ``service-bench`` — coalescing + aggregate-throughput comparison of
                  the service against serial per-replica planning.
* ``perf-bench``— evaluation-core throughput: the compiled kernel
                  (graph arrays + heap interleaver + one-pass simulator)
                  vs the legacy object-graph evaluators, with equal
                  search quality asserted.  Planner commands accept
                  ``--legacy-eval`` to force the original evaluators.

Examples::

    python -m repro models
    python -m repro plan VLM-S --microbatches 6 --iterations 2 --diagram
    python -m repro compare T2V-S --microbatches 8
    python -m repro trace export VLM-S --output /tmp/vlm_s.trace.json
    python -m repro trace export VLM-S --merge --iterations 4
    python -m repro trace analyze VLM-S --microbatches 4
    python -m repro trace compare VLM-S --against natural
    python -m repro trace recalibrate VLM-S
    python -m repro trace validate /tmp/vlm_s.trace.json
    python -m repro serve VLM-S T2V-S --replicas 4 --iterations 3
    python -m repro serve VLM-S --uds /tmp/plan.sock --cache-file cache.json
    python -m repro plan-client VLM-S --uds /tmp/plan.sock --replicas 4
    python -m repro fleet serve VLM-S --shards 2 --cache-dir /tmp/plans
    python -m repro fleet drive VLM-S --address-file /tmp/fleet.json
    python -m repro fleet bench --shards 1 2 4 --output fleet.json
    python -m repro service-bench VLM-S --replicas 4 --iterations 2
    python -m repro perf-bench VLM-M --rollouts 60 --budget 120
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.cluster.topology import ParallelConfig, cluster_h100, cluster_h800
from repro.core.plancache import PlanCache
from repro.core.planner import OnlinePlanner
from repro.core.searcher import ScheduleSearcher
from repro.core.visualize import ascii_timeline, memory_sparkline
from repro.data.workload import t2v_workload, vlm_workload
from repro.metrics import mfu
from repro.models.lmm import build_combination
from repro.models.zoo import COMBINATIONS, MODEL_ZOO, combination_by_name
from repro.sim.costmodel import CostModel


def _setup(combo_name: str, budget: int, seed: int,
           plan_cache: bool = True, cache_size: int = 64,
           cache_file: Optional[str] = None, strategy: str = "mcts",
           use_kernel: bool = True):
    combo = combination_by_name(combo_name)
    arch = build_combination(combo)
    parallel = ParallelConfig(dp=1, tp=combo.tp, pp=combo.pp)
    nodes = max(1, parallel.world_size // 8)
    if combo_name.endswith(("-8k", "-16k", "-3k", "-6k")):
        cluster = cluster_h100(nodes)
    else:
        cluster = cluster_h800(nodes)
    cost_model = CostModel()
    searcher = ScheduleSearcher(cluster, parallel, cost_model,
                                strategy=strategy,
                                budget_evaluations=budget, seed=seed,
                                use_kernel=use_kernel)
    shared_cache = None
    if plan_cache and cache_file:
        shared_cache = PlanCache.load(cache_file, capacity=cache_size)
    planner = OnlinePlanner(arch, cluster, parallel, cost_model,
                            searcher=searcher,
                            plan_cache=shared_cache,
                            enable_plan_cache=plan_cache,
                            cache_size=cache_size)
    return arch, cluster, parallel, planner


def _use_kernel(args) -> bool:
    """Whether the compiled evaluation core is enabled (--legacy-eval)."""
    return not getattr(args, "legacy_eval", False)


def _save_cache(planner: OnlinePlanner, args) -> None:
    """Persist the plan cache when ``--cache-file`` was given."""
    cache_file = getattr(args, "cache_file", None)
    if cache_file and planner.cache is not None:
        planner.cache.save(cache_file)


def _workload(arch, microbatches: int, seed: int):
    if arch.kind == "t2v":
        return t2v_workload(microbatches, seed=seed)
    return vlm_workload(microbatches, seed=seed)


def cmd_models(_args) -> int:
    print("Modules (Table 2):")
    for name, spec in MODEL_ZOO.items():
        print(f"  {name:12s} {spec.parameters_billion():7.2f}B  "
              f"{spec.num_layers} layers, d={spec.hidden_size}")
    print("\nCombinations (Tables 3 and 6):")
    for name, combo in COMBINATIONS.items():
        print(f"  {name:12s} {' + '.join(combo.module_names):24s} "
              f"TP{combo.tp} PP{combo.pp} DP{combo.dp} "
              f"({combo.num_gpus} GPUs)")
    return 0


def cmd_plan(args) -> int:
    arch, cluster, parallel, planner = _setup(args.model, args.budget,
                                              args.seed, args.plan_cache,
                                              args.cache_size,
                                              args.cache_file,
                                              use_kernel=_use_kernel(args))
    print(f"{arch.name}: {arch.parameters_billion():.1f}B on "
          f"{parallel.describe()}  |  plan: {planner.plan.describe()}")
    stream = _workload(arch, args.microbatches, args.seed)
    reports = planner.run(stream.batches(args.iterations))
    for report in reports:
        predicted = report.search.schedule.predicted
        graph = report.search.schedule.graph
        value = mfu(graph.model_flops, report.train_ms, cluster.gpu, parallel)
        if report.cache_hit:
            plan_src = "cache hit"
        elif report.warm_start:
            plan_src = "warm search"
        else:
            plan_src = "cold search"
        print(f"iter {report.iteration}: {report.train_ms / 1e3:6.2f}s  "
              f"MFU {value:.3f}  bubble {predicted.bubble_ratio * 100:4.1f}%  "
              f"search {report.search_seconds:.2f}s  [{plan_src}]")
        if args.diagram:
            print(ascii_timeline(graph, predicted, width=args.width))
            print("mem PP0: "
                  + memory_sparkline(predicted, 0,
                                     limit_bytes=graph.memory_limit_bytes))
    stats = planner.cache_stats
    if stats is not None:
        print(f"plan cache: {stats.describe()}")
    _save_cache(planner, args)
    return 0


def cmd_compare(args) -> int:
    import importlib

    sys.path.insert(0, "benchmarks")
    try:
        common = importlib.import_module("common")
    except ImportError:
        print("compare requires the benchmarks/ directory", file=sys.stderr)
        return 2
    setup = common.make_setup(args.model)
    systems = ["megatron", "nnscaler", "dip"]
    if setup.arch.kind == "vlm":
        systems.insert(2, "optimus")
    times = common.average_times(setup, systems, args.iterations,
                                 args.microbatches, seed=args.seed,
                                 budget=args.budget)
    base = times["megatron"]
    print(f"{args.model}: normalized iteration time (Megatron-LM = 1.0)")
    for system, ms in times.items():
        bar = "#" * int(round(ms / base * 40))
        print(f"  {system:10s} {ms / base:5.3f}  {bar}")
    return 0


def cmd_tune(args) -> int:
    from repro.core.autotuner import tune_layout
    from repro.models.lmm import build_combination

    combo = combination_by_name(args.model)
    arch = build_combination(combo)
    nodes = max(1, combo.tp * combo.pp // 8)
    cluster = cluster_h800(nodes)
    candidates = tune_layout(arch, cluster, args.microbatches,
                             world_size=combo.tp * combo.pp,
                             min_pp=2, seed=args.seed,
                             search_budget=args.budget if args.search else 0)
    print(f"layout candidates for {arch.name} on "
          f"{combo.tp * combo.pp} GPUs (best first):")
    for cand in candidates:
        print("  " + cand.describe())
    return 0


def _planned_trace(args, strategy: str = "mcts"):
    """Plan one batch and build its trace (shared by trace subcommands)."""
    from repro.trace import trace_from_sim

    arch, cluster, parallel, planner = _setup(
        args.model, args.budget, args.seed, args.plan_cache,
        args.cache_size, getattr(args, "cache_file", None),
        strategy=strategy, use_kernel=_use_kernel(args),
    )
    batch = _workload(arch, args.microbatches, args.seed).next_batch()
    result = planner.plan_iteration(batch)
    trace = trace_from_sim(
        result.schedule.graph, result.schedule.predicted,
        cluster, parallel, planner.cost_model,
        label=f"{args.model} ({result.schedule.label})",
        schedule_uid=result.signature or "",
    )
    return trace, planner


def _merged_trace(args):
    """Plan several iterations and merge the last K into one timeline."""
    from repro.trace import TraceRing, merge_traces, trace_from_sim

    arch, cluster, parallel, planner = _setup(
        args.model, args.budget, args.seed, args.plan_cache,
        args.cache_size, getattr(args, "cache_file", None),
        use_kernel=_use_kernel(args),
    )
    stream = _workload(arch, args.microbatches, args.seed)
    ring = TraceRing(capacity=args.ring)
    for i, batch in enumerate(stream.batches(args.iterations)):
        result = planner.plan_iteration(batch)
        ring.append(trace_from_sim(
            result.schedule.graph, result.schedule.predicted,
            cluster, parallel, planner.cost_model,
            label=f"{args.model} iter {i}",
            schedule_uid=result.signature or "",
        ))
    merged = merge_traces(ring.snapshot(), label=f"{args.model} steady state")
    print(f"merged last {len(ring)} of {ring.appended} iterations "
          f"({merged.total_ms:.1f} ms steady-state timeline)")
    return merged, planner


def cmd_trace_export(args) -> int:
    from repro.trace import save_chrome

    if args.merge:
        trace, planner = _merged_trace(args)
    else:
        trace, planner = _planned_trace(args)
    if args.format == "chrome":
        path = save_chrome(trace, args.output, process_name=args.model)
        print(f"wrote {path} — open in chrome://tracing or ui.perfetto.dev")
    else:
        path = trace.save(args.output)
        print(f"wrote {path} (native format — analyze with "
              f"'repro trace analyze --input {path}')")
    _save_cache(planner, args)
    return 0


def _load_or_plan(args):
    import json

    from repro.trace import Trace, TraceValidationError

    if args.input:
        try:
            return Trace.load(args.input)
        except (OSError, json.JSONDecodeError,
                TraceValidationError) as exc:
            print(f"cannot load trace {args.input}: {exc}", file=sys.stderr)
            return None
    if not args.model:
        print("trace analyze needs a model name or --input FILE",
              file=sys.stderr)
        return None
    trace, planner = _planned_trace(args)
    _save_cache(planner, args)
    return trace


def cmd_trace_analyze(args) -> int:
    from repro.trace import critical_path, decompose_bubbles

    trace = _load_or_plan(args)
    if trace is None:
        return 2
    problems = trace.validate()
    if problems:
        print(f"invalid trace: {problems[0]}", file=sys.stderr)
        return 1
    report = decompose_bubbles(trace)
    print(f"{trace.meta.label or 'trace'}: {len(trace)} spans over "
          f"{trace.num_ranks} ranks, makespan {trace.total_ms:.2f} ms")
    print(report.describe())
    print(f"bubble ratio (event stream): {report.bubble_ratio * 100:.2f}%")
    header = (f"{'rank':>4} {'busy':>10} {'warmup':>10} {'depend':>10} "
              f"{'straggl':>10} {'cooldown':>10}")
    print(header)
    for bubbles in report.per_rank:
        print(f"{bubbles.rank:>4} {bubbles.busy_ms:>10.2f} "
              f"{bubbles.warmup_ms:>10.2f} {bubbles.dependency_ms:>10.2f} "
              f"{bubbles.straggler_ms:>10.2f} {bubbles.cooldown_ms:>10.2f}")
    print(critical_path(trace).describe())
    return 0


def cmd_trace_compare(args) -> int:
    from repro.trace import diff_traces, trace_from_sim

    if args.against == "replay":
        # Plan the identical batch twice through one *fresh private*
        # cache: the first pass must be a genuine cold search, the second
        # an exact-hit replay whose timeline must match.  A pre-loaded
        # --cache-file would silently turn the "cold" leg into a replay
        # too, so the flag is ignored (and never overwritten) here.
        arch, cluster, parallel, planner = _setup(
            args.model, args.budget, args.seed, True, args.cache_size,
            use_kernel=_use_kernel(args))
        batch = _workload(arch, args.microbatches, args.seed).next_batch()

        def build(tag):
            result = planner.plan_iteration(batch)
            assert result.cache_hit == (tag == "replay")
            return trace_from_sim(
                result.schedule.graph, result.schedule.predicted,
                cluster, parallel, planner.cost_model,
                label=f"{args.model} ({tag})")

        trace_a, trace_b = build("cold"), build("replay")
    else:
        trace_a, planner_a = _planned_trace(args)
        trace_b, _ = _planned_trace(args, strategy=args.against)
        # Persist only the primary (mcts) planner's cache — the baseline
        # strategy's entries live under a different context fingerprint.
        _save_cache(planner_a, args)
    print(f"A: {trace_a.meta.label}   B: {trace_b.meta.label} "
          f"({args.against})")
    print(diff_traces(trace_a, trace_b).describe())
    return 0


def cmd_trace_recalibrate(args) -> int:
    from repro.sim.reference import ReferenceCostModel
    from repro.trace import measure_reference_traces, recalibrate_from_traces

    arch, cluster, parallel, planner = _setup(args.model, args.budget,
                                              args.seed, False,
                                              use_kernel=_use_kernel(args))
    reference = ReferenceCostModel(seed=args.ref_seed)
    stream = _workload(arch, args.microbatches, args.seed)
    traces = measure_reference_traces(
        arch, planner.plan, stream.batches(args.iterations), cluster,
        parallel, reference, partitioner=planner.partitioner,
        label=args.model)
    report = recalibrate_from_traces(
        traces, planner.cost_model, cluster.gpu,
        {b.name: b.spec for b in arch.bindings}, tp=parallel.tp)
    print(report.describe())
    base = planner.cost_model
    fitted = report.calibrated
    print(f"{'factor':<22} {'analytic':>10} {'fitted':>10} {'hidden':>10}")
    for factor in ("compute_efficiency", "memory_efficiency",
                   "saturation_tokens", "kernel_overhead_us",
                   "stage_overhead_us"):
        print(f"{factor:<22} {getattr(base, factor):>10.3f} "
              f"{getattr(fitted, factor):>10.3f} "
              f"{getattr(reference, factor):>10.3f}")
    return 0 if report.improved else 1


def cmd_trace_validate(args) -> int:
    import json

    from repro.trace import Trace, validate_chrome_trace

    try:
        with open(args.file) as f:
            payload = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"cannot load {args.file}: {exc}", file=sys.stderr)
        return 1
    if isinstance(payload, dict) and "traceEvents" in payload:
        problems = validate_chrome_trace(payload)
        flavor = "chrome"
    else:
        try:
            problems = Trace.from_dict(payload).validate()
        except Exception as exc:  # noqa: BLE001 — report, don't crash
            problems = [str(exc)]
        flavor = "native"
    if problems:
        print(f"{args.file}: INVALID {flavor} trace", file=sys.stderr)
        for problem in problems[:10]:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print(f"{args.file}: valid {flavor} trace")
    return 0


def _parse_fault_plan(args):
    """``--fault-plan`` accepts inline JSON or ``@/path/to/plan.json``;
    returns a :class:`~repro.chaos.faults.FaultPlan` or ``None``."""
    spec = getattr(args, "fault_plan", None)
    if not spec:
        return None
    from repro.chaos.faults import FaultPlan

    if spec.startswith("@"):
        with open(spec[1:], encoding="utf-8") as handle:
            spec = handle.read()
    return FaultPlan.from_json(spec)


def _service_with_jobs(args, models, budget=None, fault_plan=None):
    """Build a PlanService with one registered job per model name."""
    from repro.service import PlanService, RecalibrationPolicy

    recalibration = None
    if getattr(args, "recalibrate", 0):
        recalibration = RecalibrationPolicy(interval=args.recalibrate,
                                            window=2 * args.recalibrate,
                                            sweeps=2)
    shared_cache = None
    cache_file = getattr(args, "cache_file", None)
    cache_dir = getattr(args, "cache_dir", None)
    disk_tier = None
    if cache_dir:
        from repro.core.cachetier import DiskCacheTier

        # One FaultPlan instance serves the whole process (RPC server
        # and disk tier), so per-site operation counters and the fault
        # log stay unified.
        disk_tier = DiskCacheTier(cache_dir, fault_plan=fault_plan)
    near_miss = getattr(args, "near_miss", True)
    if cache_file:
        shared_cache = PlanCache.load(cache_file, capacity=args.cache_size,
                                      disk_tier=disk_tier,
                                      near_miss=near_miss)
    elif disk_tier is not None or not near_miss:
        shared_cache = PlanCache(capacity=args.cache_size,
                                 disk_tier=disk_tier, near_miss=near_miss)
    service = PlanService(num_workers=args.workers, max_queue=args.queue,
                          cache_size=args.cache_size,
                          plan_cache=shared_cache,
                          recalibration=recalibration,
                          aging_s=getattr(args, "aging", None))
    for model in models:
        _arch, _cluster, _parallel, planner = _setup(
            model, budget if budget is not None else args.budget, args.seed,
            plan_cache=True, cache_size=args.cache_size,
            use_kernel=_use_kernel(args),
        )
        service.register_job(model, planner=planner)
    return service


def _serve_socket(args, models) -> int:
    """Run the planning service behind a TCP / Unix socket.

    Blocks until a client sends ``shutdown`` (``repro plan-client
    --shutdown``), ``--serve-seconds`` elapses, or Ctrl-C.
    """
    from repro.service import PlanServiceServer

    try:
        fault_plan = _parse_fault_plan(args)
    except (OSError, ValueError, KeyError) as exc:
        print(f"bad --fault-plan: {exc}", file=sys.stderr)
        return 2
    service = _service_with_jobs(args, models, fault_plan=fault_plan)
    tracer = None
    trace_dir = getattr(args, "trace_dir", None)
    if trace_dir:
        import os

        from repro.obs import RequestTracer

        os.makedirs(trace_dir, exist_ok=True)
        tracer = RequestTracer(role="shard")
        service.tracer = tracer
    try:
        server = PlanServiceServer(
            service,
            listen=args.listen if args.uds is None else None,
            uds=args.uds,
            cache_path=getattr(args, "cache_file", None),
            shard_index=getattr(args, "shard_index", None),
            restarts=getattr(args, "shard_restarts", 0) or 0,
            fault_plan=fault_plan,
            fault_log=getattr(args, "fault_log", None),
        )
    except (OSError, ValueError) as exc:
        print(f"cannot serve on "
              f"{args.uds or args.listen}: {exc}", file=sys.stderr)
        service.close()
        return 2
    print(f"plan service listening on {server.address} "
          f"({len(models)} job(s): {', '.join(models)}; "
          f"{args.workers} workers, queue {args.queue})", flush=True)
    try:
        closed = server.wait_closed(timeout=args.serve_seconds)
        if not closed:
            print(f"--serve-seconds {args.serve_seconds} elapsed; "
                  f"shutting down")
    except KeyboardInterrupt:
        print("interrupted; shutting down")
    server.close()
    if tracer is not None:
        import os

        path = os.path.join(trace_dir, tracer.default_filename())
        tracer.save(path)
        print(f"saved {len(tracer)} request span(s) to {path}")
    cache_file = getattr(args, "cache_file", None)
    if cache_file:
        service.cache.save(cache_file)
        print(f"saved plan cache to {cache_file} "
              f"({len(service.cache)} entries)")
    print(service.describe())
    remote = server.remote.snapshot()
    print(f"remote: {remote['connections_opened']} connections, "
          f"{remote['requests']} requests, "
          f"{remote['errors']} errors, "
          f"{remote['protocol_errors']} protocol errors, "
          f"{remote['disconnects_mid_request']} mid-request disconnects")
    service.close()
    return 0


def _print_drive_report(report, models, iterations) -> None:
    """Per-iteration makespans/spread, outcome mix, first errors —
    shared by the in-process and remote drive commands."""
    for model in models:
        for i in range(iterations):
            makespans = report.makespans(model, i)
            if not makespans:
                print(f"  {model} iter {i}: no replica received a plan")
                continue
            spread = max(makespans) - min(makespans)
            print(f"  {model} iter {i}: {len(makespans)} replicas, "
                  f"makespan {makespans[0] / 1e3:6.2f}s "
                  f"(spread {spread:.2e} ms)")
    outcomes = report.by_outcome()
    print("outcomes: " + ", ".join(f"{k}={v}"
                                   for k, v in sorted(outcomes.items())))
    for job, replica, iteration, error in report.errors[:5]:
        print(f"  ERROR {job} replica {replica} iter {iteration}: {error}",
              file=sys.stderr)


def cmd_serve(args) -> int:
    from repro.service import drive_replicas, run_recalibrating_replica
    from repro.sim.reference import ReferenceCostModel

    models = args.models
    if args.uds or args.listen:
        return _serve_socket(args, models)
    service = _service_with_jobs(args, models)
    streams = {}
    for model in models:
        arch = service.job(model).planner.arch
        streams[model] = _workload(arch, args.microbatches,
                                   args.seed).batches(args.iterations)
    print(f"serving {len(models)} job(s) x {args.replicas} replicas x "
          f"{args.iterations} iterations on {args.workers} workers "
          f"(queue {args.queue})")
    report = drive_replicas(service, streams, replicas=args.replicas)
    _print_drive_report(report, models, args.iterations)
    if args.recalibrate:
        reference = ReferenceCostModel(seed=args.ref_seed)
        for model in models:
            recal_report = run_recalibrating_replica(
                service, model,
                streams[model][:args.iterations], reference)
            errors = [r.sim_error for r in recal_report.records]
            print(f"  {model} recal loop: sim error "
                  + " -> ".join(f"{e * 100:.1f}%" for e in errors))
            for event in recal_report.recal_events:
                print(f"    {event.describe()}")
    print(service.describe())
    service.close()
    cache_file = getattr(args, "cache_file", None)
    if cache_file:
        service.cache.save(cache_file)
    return 1 if report.errors else 0


def cmd_plan_client(args) -> int:
    """Drive a remote planning service from this (client) process.

    Builds a local planner mirror per replica — the planning context
    (model, budget, seed, kernel flags) must match what the server was
    started with, or signatures will not line up.
    """
    from repro.service import (
        PlanServiceClient,
        ProtocolError,
        drive_remote_replicas,
    )

    address = args.uds if args.uds else args.connect
    if not address:
        print("plan-client needs --uds PATH or --connect HOST:PORT",
              file=sys.stderr)
        return 2

    def planner_factory(model):
        _arch, _cluster, _parallel, planner = _setup(
            model, args.budget, args.seed, plan_cache=True,
            cache_size=args.cache_size, use_kernel=_use_kernel(args),
        )
        return planner

    try:
        probe = PlanServiceClient(address, timeout_s=args.timeout)
        info = probe.ping()
    except (OSError, TimeoutError, ProtocolError) as exc:
        print(f"cannot connect to {address}: {exc}", file=sys.stderr)
        return 2
    missing = [m for m in args.models if m not in info.get("jobs", [])]
    if missing:
        print(f"server at {address} does not serve {missing} "
              f"(jobs: {info.get('jobs')})", file=sys.stderr)
        probe.close()
        return 2
    streams = {}
    for model in args.models:
        arch = build_combination(combination_by_name(model))
        streams[model] = _workload(arch, args.microbatches,
                                   args.seed).batches(args.iterations)
    print(f"driving {address}: {len(args.models)} job(s) x "
          f"{args.replicas} replicas x {args.iterations} iterations")
    report = drive_remote_replicas(address, streams,
                                   replicas=args.replicas,
                                   planner_factory=planner_factory,
                                   timeout_s=args.timeout)
    _print_drive_report(report, args.models, args.iterations)
    failed = bool(report.errors)
    if args.show_stats or args.min_coalesced:
        stats = probe.stats()
        svc = stats["service"]
        print(f"server: {svc['completed']} plans, {svc['searches']} "
              f"searches, {svc['replays']} replays, {svc['coalesced']} "
              f"coalesced ({svc['coalesce_rate'] * 100:.0f}%), "
              f"cache {stats['cache']['entries']} entries "
              f"({stats['cache']['hits']} hits)")
        remote = stats["remote"]
        print(f"server connections: {remote['connections_opened']} opened, "
              f"{remote['connections_active']} active, "
              f"{remote['requests']} requests")
        if args.min_coalesced and svc["coalesced"] < args.min_coalesced:
            print(f"server coalesced only {svc['coalesced']} requests "
                  f"(< {args.min_coalesced})", file=sys.stderr)
            failed = True
    if args.save_cache:
        saved = probe.save_cache()
        print(f"server saved its plan cache to {saved['path']} "
              f"({saved['entries']} entries)")
    if args.shutdown:
        probe.shutdown()
        print("sent shutdown")
    probe.close()
    return 1 if failed else 0


def _fleet_addresses(args) -> List[str]:
    """Shard addresses from repeated ``--address`` flags and/or the
    ``--address-file`` a ``repro fleet serve`` wrote."""
    addresses = list(args.address or [])
    if args.address_file:
        import json

        try:
            with open(args.address_file) as f:
                payload = json.load(f)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"cannot read {args.address_file}: {exc}",
                  file=sys.stderr)
            return []
        addresses.extend(payload.get("addresses", []))
    return addresses


def cmd_fleet_serve(args) -> int:
    import os

    from repro.fleet import FleetConfig, PlanFleet

    config = FleetConfig(
        models=args.models, shards=args.shards, cache_dir=args.cache_dir,
        runtime_dir=args.runtime_dir,
        transport="tcp" if args.tcp else "uds",
        budget=args.budget, seed=args.seed, workers=args.workers,
        queue=args.queue, cache_size=args.cache_size,
        near_miss=args.near_miss,
        serve_seconds=args.serve_seconds,
        legacy_eval=not _use_kernel(args),
        restart_crashed=not args.no_restart,
        max_restarts=args.max_restarts,
        trace_dir=args.trace_dir,
    )
    fleet = PlanFleet(config)
    try:
        fleet.start()
    except RuntimeError as exc:
        print(f"fleet failed to start: {exc}", file=sys.stderr)
        return 2
    print(fleet.describe(), flush=True)
    for shard in fleet.shards:
        print(f"  shard {shard.index}: {shard.address}", flush=True)
    if args.address_file:
        from repro.core.plancache import atomic_write_json

        atomic_write_json(args.address_file,
                          {"addresses": fleet.addresses,
                           "models": list(args.models),
                           "pid": os.getpid()})
        print(f"wrote {args.address_file}", flush=True)
    try:
        # Blocks until every shard exits for good — a client's fleet-wide
        # shutdown, --serve-seconds elapsing, or Ctrl-C.
        fleet.wait()
        print("all shards exited; stopping")
    except KeyboardInterrupt:
        print("interrupted; stopping fleet")
    finally:
        fleet.stop()
        if args.address_file:
            try:
                os.unlink(args.address_file)
            except OSError:
                pass
    return 0


def cmd_fleet_drive(args) -> int:
    from repro.fleet import drive_fleet, fleet_stats
    from repro.service import PlanServiceClient

    addresses = _fleet_addresses(args)
    if not addresses:
        print("fleet drive needs --address ADDR (repeatable) or "
              "--address-file PATH", file=sys.stderr)
        return 2

    def planner_factory(model):
        _arch, _cluster, _parallel, planner = _setup(
            model, args.budget, args.seed, plan_cache=True,
            cache_size=args.cache_size, use_kernel=_use_kernel(args),
        )
        return planner

    streams = {}
    for model in args.models:
        arch = build_combination(combination_by_name(model))
        streams[model] = _workload(arch, args.microbatches,
                                   args.seed).batches(args.iterations)
    tracer = None
    if args.trace_dir:
        import os

        from repro.obs import RequestTracer

        os.makedirs(args.trace_dir, exist_ok=True)
        tracer = RequestTracer(role="client")
    print(f"driving fleet of {len(addresses)} shard(s): "
          f"{len(args.models)} job(s) x {args.replicas} replicas x "
          f"{args.iterations} iterations")
    report, clients = drive_fleet(
        addresses, streams, replicas=args.replicas,
        planner_factory=planner_factory, timeout_s=args.timeout,
        failover=not args.no_failover, tracer=tracer,
        deadline_s=args.deadline, degraded=args.degraded,
    )
    if args.client_metrics_out:
        import json

        from repro.obs.registry import merge_snapshots

        merged_clients = merge_snapshots(
            [c.metrics_snapshot() for c in clients])
        with open(args.client_metrics_out, "w", encoding="utf-8") as f:
            json.dump(merged_clients, f, indent=2)
        print(f"wrote client metrics snapshot to "
              f"{args.client_metrics_out}")
    if tracer is not None:
        import os

        path = os.path.join(args.trace_dir, tracer.default_filename())
        tracer.save(path)
        print(f"saved {len(tracer)} client span(s) to {path}")
    _print_drive_report(report, args.models, args.iterations)
    failed = bool(report.errors)
    # Routing audit: absent failovers, every signature must have been
    # served by exactly one shard (the coalescing-locality invariant).
    shard_of = {}
    for client in clients:
        for digest, address in client.routes:
            shard_of.setdefault(digest, set()).add(address)
    failovers = sum(client.failovers for client in clients)
    split = sorted(d for d, s in shard_of.items() if len(s) > 1)
    print(f"routing: {len(shard_of)} signature(s) over "
          f"{len(addresses)} shard(s), {failovers} failover(s), "
          f"{len(split)} split signature(s)")
    if split and not failovers:
        print(f"signatures served by >1 shard without failover: "
              f"{[d[:12] for d in split]}", file=sys.stderr)
        failed = True
    stats = fleet_stats(addresses, timeout_s=args.timeout)
    svc = stats["service"]
    if args.show_stats:
        print(f"fleet: {svc['completed']} plans, {svc['searches']} "
              f"searches, {svc['replays']} replays, {svc['coalesced']} "
              f"coalesced ({svc['coalesce_rate'] * 100:.0f}%), "
              f"{svc['memory_hits']} memory hits, {svc['disk_hits']} "
              f"disk hits; {stats['reachable']}/{len(addresses)} shards "
              f"reachable")
        cache = stats["cache"]
        print(f"fleet cache: {cache.get('entries', 0):.0f} in-memory "
              f"entries, {cache.get('hits', 0):.0f} hits "
              f"({cache.get('disk_hits', 0):.0f} served from disk)")
    if (args.expect_searches is not None
            and svc["searches"] != args.expect_searches):
        print(f"fleet ran {svc['searches']} searches, expected exactly "
              f"{args.expect_searches} — same-signature requests should "
              f"land on one shard and coalesce/replay there",
              file=sys.stderr)
        failed = True
    if args.min_coalesced and svc["coalesced"] < args.min_coalesced:
        print(f"fleet coalesced only {svc['coalesced']} requests "
              f"(< {args.min_coalesced})", file=sys.stderr)
        failed = True
    if args.min_disk_hits and svc["disk_hits"] < args.min_disk_hits:
        print(f"fleet served only {svc['disk_hits']} disk-tier hits "
              f"(< {args.min_disk_hits})", file=sys.stderr)
        failed = True
    if args.shutdown:
        for address in addresses:
            try:
                client = PlanServiceClient(address,
                                           timeout_s=args.timeout)
                try:
                    client.shutdown()
                finally:
                    client.close()
            except (OSError, TimeoutError) as exc:
                print(f"shutdown {address}: {exc}", file=sys.stderr)
        print("sent shutdown to every shard")
    return 1 if failed else 0


def cmd_fleet_bench(args) -> int:
    import json

    from repro.fleet.bench import (
        makespan_conflicts,
        print_fleet_bench,
        run_fleet_bench,
    )

    result = run_fleet_bench(
        shard_counts=tuple(args.shards), model=args.model,
        microbatches=args.microbatches, iterations=args.iterations,
        clients=args.clients, budget=args.budget, seed=args.seed,
        workers=args.workers, timeout_s=args.timeout,
    )
    print_fleet_bench(result)
    failed = False
    conflicts = makespan_conflicts(result)
    if conflicts:
        print(f"best makespans differ across fleet sizes for "
              f"{[d[:12] for d in conflicts]}", file=sys.stderr)
        failed = True
    errors = [e for size in result["sizes"].values()
              for e in size["errors"]]
    for error in errors[:5]:
        print(f"  ERROR {error}", file=sys.stderr)
    failed = failed or bool(errors)
    if args.output:
        with open(args.output, "w") as f:
            json.dump(result, f, indent=2)
        print(f"wrote {args.output}")
    if args.min_scaling and result["scaling"] < args.min_scaling:
        print(f"plans/sec scaled only {result['scaling']:.2f}x from the "
              f"smallest to the largest fleet (< {args.min_scaling}x)",
              file=sys.stderr)
        failed = True
    return 1 if failed else 0


def cmd_fleet(args) -> int:
    handlers = {
        "serve": cmd_fleet_serve,
        "drive": cmd_fleet_drive,
        "bench": cmd_fleet_bench,
    }
    return handlers[args.fleet_command](args)


def cmd_obs_scrape(args) -> int:
    import json

    from repro.obs import render_exposition
    from repro.obs.scrape import check_scrape, merged_snapshot, scrape_fleet

    addresses = _fleet_addresses(args)
    if not addresses:
        print("obs scrape needs --address ADDR (repeatable) or "
              "--address-file PATH", file=sys.stderr)
        return 2
    scrapes = scrape_fleet(addresses, timeout_s=args.timeout)
    merged = merged_snapshot(scrapes)
    if args.format == "json":
        text = json.dumps(merged, indent=2) + "\n"
    else:
        text = render_exposition(merged)
    if args.output:
        with open(args.output, "w") as f:
            f.write(text)
        print(f"wrote {args.output} "
              f"({sum(1 for s in scrapes if s.ok)}/{len(scrapes)} "
              f"shards scraped)")
    else:
        sys.stdout.write(text)
    failed = False
    if args.check:
        client_metrics = _load_client_metrics(args)
        if client_metrics is _BAD_CLIENT_METRICS:
            return 2
        problems = check_scrape(scrapes, client_metrics=client_metrics)
        for problem in problems:
            print(f"CHECK FAILED: {problem}", file=sys.stderr)
        failed = bool(problems)
        if not problems:
            extra = (" + client metrics"
                     if client_metrics is not None else "")
            print(f"checks passed on {len(scrapes)} shard(s){extra}")
    return 1 if failed else 0


#: Sentinel for "the --client-metrics file could not be read" — lets
#: callers tell a missing flag (None) from a broken file.
_BAD_CLIENT_METRICS = object()


def _load_client_metrics(args):
    """Read the --client-metrics JSON snapshot, if the flag was given."""
    import json

    path = getattr(args, "client_metrics", None)
    if not path:
        return None
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"cannot read client metrics {path}: {exc}",
              file=sys.stderr)
        return _BAD_CLIENT_METRICS


def cmd_obs_report(args) -> int:
    from repro.obs.scrape import render_report, scrape_fleet

    addresses = _fleet_addresses(args)
    if not addresses:
        print("obs report needs --address ADDR (repeatable) or "
              "--address-file PATH", file=sys.stderr)
        return 2
    scrapes = scrape_fleet(addresses, timeout_s=args.timeout)
    client_metrics = _load_client_metrics(args)
    if client_metrics is _BAD_CLIENT_METRICS:
        return 2
    print(render_report(scrapes, client_metrics=client_metrics))
    return 0 if any(s.ok for s in scrapes) else 1


def cmd_obs_merge(args) -> int:
    import json

    from repro.obs import merge_trace_files
    from repro.trace.export import validate_chrome_trace

    try:
        merged = merge_trace_files(args.traces, output=args.output)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
        print(f"cannot merge: {exc}", file=sys.stderr)
        return 2
    slices = sum(1 for e in merged["traceEvents"]
                 if e.get("ph") == "X")
    flows = sum(1 for e in merged["traceEvents"] if e.get("ph") == "s")
    print(f"merged {len(args.traces)} trace file(s): {slices} span(s), "
          f"{flows} cross-process flow(s)"
          + (f" -> {args.output}" if args.output else ""))
    if args.validate:
        problems = validate_chrome_trace(merged)
        if problems:
            print("INVALID merged timeline:", file=sys.stderr)
            for problem in problems[:10]:
                print(f"  - {problem}", file=sys.stderr)
            return 1
        print("merged timeline validates clean")
    if not args.output:
        sys.stdout.write(json.dumps(merged) + "\n")
    return 0


def cmd_obs(args) -> int:
    handlers = {
        "scrape": cmd_obs_scrape,
        "report": cmd_obs_report,
        "merge": cmd_obs_merge,
    }
    return handlers[args.obs_command](args)


def cmd_chaos_scenarios(_args) -> int:
    from repro.chaos import SCENARIOS

    for scenario in SCENARIOS.values():
        print(f"{scenario.name:14s} {len(scenario.specs)} fault "
              f"spec(s), {len(scenario.crash_points)} crash point(s), "
              f"deadline {scenario.deadline_s:.0f}s")
        print(f"{'':14s} {scenario.description}")
    return 0


def cmd_chaos_drive(args) -> int:
    import json

    from repro.chaos import scenario_by_name
    from repro.chaos.drive import render_report, run_scenario

    try:
        scenario = scenario_by_name(args.scenario)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    if args.runtime_dir:
        runtime_dir = args.runtime_dir
    else:
        import tempfile

        runtime_dir = tempfile.mkdtemp(
            prefix=f"repro-chaos-{scenario.name}-")
    report = run_scenario(
        args.model,
        scenario,
        shards=args.shards,
        replicas=args.replicas,
        iterations=args.iterations,
        microbatches=args.microbatches,
        budget=args.budget,
        seed=args.seed,
        fault_seed=args.fault_seed,
        runtime_dir=runtime_dir,
        deadline_s=args.deadline,
        cache_size=args.cache_size,
        use_kernel=_use_kernel(args),
        slack_s=args.slack,
    )
    print(render_report(report))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2)
        print(f"wrote JSON report to {args.json}")
    if args.expect_degraded and report.degraded_plans < args.expect_degraded:
        print(f"only {report.degraded_plans} degraded plan(s), "
              f"expected at least {args.expect_degraded}",
              file=sys.stderr)
        return 1
    return 0 if report.ok() else 1


def cmd_chaos(args) -> int:
    handlers = {
        "scenarios": cmd_chaos_scenarios,
        "drive": cmd_chaos_drive,
    }
    return handlers[args.chaos_command](args)


def cmd_service_bench(args) -> int:
    import time as _time

    from repro.service import drive_replicas

    models = args.models
    streams = {}
    serial_s = 0.0
    serial_makespans = {}
    # Serial per-replica baseline: every replica plans alone.
    for model in models:
        _arch, _cluster, _parallel, probe = _setup(
            model, args.budget, args.seed, plan_cache=True,
            cache_size=args.cache_size, use_kernel=_use_kernel(args))
        streams[model] = _workload(probe.arch, args.microbatches,
                                   args.seed).batches(args.iterations)
        for _replica in range(args.replicas):
            _a, _c, _p, planner = _setup(model, args.budget, args.seed,
                                         plan_cache=True,
                                         cache_size=args.cache_size,
                                         use_kernel=_use_kernel(args))
            t0 = _time.monotonic()
            for i, batch in enumerate(streams[model]):
                result = planner.plan_iteration(batch)
                serial_makespans[(model, i)] = result.total_ms
            serial_s += _time.monotonic() - t0
    service = _service_with_jobs(args, models)
    t0 = _time.monotonic()
    report = drive_replicas(service, streams, replicas=args.replicas)
    service_s = _time.monotonic() - t0
    stats = service.stats.snapshot()
    total = len(models) * args.replicas * args.iterations
    mismatched = sum(
        1 for r in report.records
        if abs(r.predicted_ms - serial_makespans[(r.job, r.iteration)])
        > 1e-6 * serial_makespans[(r.job, r.iteration)]
    )
    gain = serial_s / max(service_s, 1e-9)
    print(f"plans: {len(report.records)}/{total}  "
          f"searches: {stats['searches']}  "
          f"coalesced: {stats['coalesced']} "
          f"({stats['coalesce_rate'] * 100:.0f}%)")
    print(f"serial {serial_s:.2f}s  service {service_s:.2f}s  "
          f"gain {gain:.2f}x")
    print(f"latency p50 {stats['plan_latency_p50_s'] * 1e3:.0f}ms  "
          f"p99 {stats['plan_latency_p99_s'] * 1e3:.0f}ms  "
          f"queue peak {stats['max_queue_depth']}")
    print(f"makespan mismatches vs serial: {mismatched}")
    print(service.describe())
    service.close()
    failed = (bool(report.errors) or mismatched
              or len(report.records) != total)
    return 1 if failed else 0


def cmd_perf_bench(args) -> int:
    import json

    from repro.perfbench import (
        EvalCoreMismatchError,
        describe_eval_core_bench,
        run_eval_core_bench,
    )

    try:
        report = run_eval_core_bench(
            model=args.model,
            microbatches=args.microbatches,
            budget=args.budget,
            rollouts=args.rollouts,
            repeats=args.repeats,
            seed=args.seed,
        )
    except EvalCoreMismatchError as exc:
        print(f"EVAL-CORE MISMATCH: {exc}", file=sys.stderr)
        return 1
    print(describe_eval_core_bench(report))
    if args.output:
        with open(args.output, "w") as f:
            json.dump(report, f, indent=2)
        print(f"wrote {args.output}")
    if args.min_speedup and report["rollouts"]["speedup"] < args.min_speedup:
        print(f"rollout speedup {report['rollouts']['speedup']:.2f}x below "
              f"required {args.min_speedup:.2f}x", file=sys.stderr)
        return 1
    return 0


def cmd_trace(args) -> int:
    handlers = {
        "export": cmd_trace_export,
        "analyze": cmd_trace_analyze,
        "compare": cmd_trace_compare,
        "recalibrate": cmd_trace_recalibrate,
        "validate": cmd_trace_validate,
    }
    return handlers[args.trace_command](args)


def _positive_int(value: str) -> int:
    parsed = int(value)
    if parsed < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {parsed}")
    return parsed


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DIP (ASPLOS '26) reproduction — dynamic interleaved "
                    "pipeline planning on a simulated cluster",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list the model zoo")

    def common_args(p):
        p.add_argument("model", help="combination name, e.g. VLM-S")
        p.add_argument("--microbatches", type=int, default=6)
        p.add_argument("--iterations", type=int, default=2)
        p.add_argument("--budget", type=int, default=25,
                       help="schedule-search evaluations per iteration")
        p.add_argument("--seed", type=int, default=0)

    def cache_args(p):
        # Only commands that drive an OnlinePlanner take these.
        p.add_argument("--plan-cache", action=argparse.BooleanOptionalAction,
                       default=True,
                       help="reuse/warm-start plans for repeated batch "
                            "shapes (--no-plan-cache disables)")
        p.add_argument("--cache-size", type=_positive_int, default=64,
                       help="plan-cache capacity (LRU entries)")
        p.add_argument("--cache-file", default=None,
                       help="persist the plan cache to this JSON file "
                            "(loaded on start, saved on exit) so restarts "
                            "keep their amortization")
        legacy_eval_arg(p)

    def legacy_eval_arg(p):
        p.add_argument("--legacy-eval", action="store_true",
                       help="evaluate schedules through the original "
                            "object-graph interleaver/simulator instead "
                            "of the compiled kernel (same plans, slower "
                            "— the differential-test oracle)")

    plan = sub.add_parser("plan", help="plan + simulate training iterations")
    common_args(plan)
    cache_args(plan)
    plan.add_argument("--diagram", action="store_true",
                      help="print ASCII pipeline diagrams")
    plan.add_argument("--width", type=int, default=100)

    compare = sub.add_parser("compare", help="compare all systems")
    common_args(compare)

    trace = sub.add_parser(
        "trace", help="trace & telemetry: export / analyze / compare / "
                      "recalibrate / validate")
    tsub = trace.add_subparsers(dest="trace_command", required=True)

    def trace_batch_args(p, optional_model=False):
        # Trace subcommands plan exactly one batch — no --iterations,
        # which would otherwise be accepted and silently ignored.
        if optional_model:
            p.add_argument("model", nargs="?", default=None,
                           help="combination name, e.g. VLM-S (omit when "
                                "using --input)")
        else:
            p.add_argument("model", help="combination name, e.g. VLM-S")
        p.add_argument("--microbatches", type=int, default=6)
        p.add_argument("--budget", type=int, default=25,
                       help="schedule-search evaluations")
        p.add_argument("--seed", type=int, default=0)

    texport = tsub.add_parser("export",
                              help="plan one batch and export its trace")
    trace_batch_args(texport)
    cache_args(texport)
    texport.add_argument("--output", default="schedule.trace.json")
    texport.add_argument("--format", choices=("chrome", "native"),
                         default="chrome",
                         help="chrome://tracing JSON or the compact "
                              "native format (lossless, re-analyzable)")
    texport.add_argument("--merge", action="store_true",
                         help="plan --iterations batches, keep the last "
                              "--ring traces, and export one merged "
                              "steady-state timeline")
    texport.add_argument("--iterations", type=_positive_int, default=4,
                         help="iterations to plan when --merge is given")
    texport.add_argument("--ring", type=_positive_int, default=4,
                         help="ring-buffer capacity: how many trailing "
                              "iterations the merged export keeps")

    tanalyze = tsub.add_parser(
        "analyze", help="critical path + per-rank bubble decomposition")
    trace_batch_args(tanalyze, optional_model=True)
    tanalyze.add_argument("--input", default=None,
                          help="analyze a saved native trace instead of "
                               "planning a fresh batch")
    cache_args(tanalyze)

    tcompare = tsub.add_parser(
        "compare", help="diff two schedules of the same batch")
    trace_batch_args(tcompare)
    cache_args(tcompare)
    tcompare.add_argument("--against",
                          choices=("natural", "dfs", "random", "replay"),
                          default="natural",
                          help="baseline: another search strategy, or "
                               "'replay' to diff a cold search against "
                               "its plan-cache replay")

    trecal = tsub.add_parser(
        "recalibrate",
        help="fit cost-model efficiency factors from reference-system "
             "traces")
    common_args(trecal)
    legacy_eval_arg(trecal)
    trecal.add_argument("--ref-seed", type=int, default=7,
                        help="hidden-factor seed of the reference "
                             "'hardware' being traced")

    tvalidate = tsub.add_parser(
        "validate", help="validate a trace file against the event schema")
    tvalidate.add_argument("file", help="chrome or native trace JSON")

    tune = sub.add_parser("tune", help="rank DP x TP x PP layouts")
    common_args(tune)
    tune.add_argument("--search", action="store_true",
                      help="run schedule search per layout (slower)")

    def service_args(p):
        p.add_argument("models", nargs="+",
                       help="combination name(s), e.g. VLM-S T2V-S — one "
                            "registered job per model")
        p.add_argument("--replicas", type=_positive_int, default=4,
                       help="concurrent DP replicas per job")
        p.add_argument("--iterations", type=_positive_int, default=3)
        p.add_argument("--microbatches", type=int, default=4)
        p.add_argument("--budget", type=int, default=16,
                       help="schedule-search evaluations per search")
        p.add_argument("--workers", type=_positive_int, default=2,
                       help="search worker threads")
        p.add_argument("--queue", type=_positive_int, default=32,
                       help="bounded plan-queue capacity")
        p.add_argument("--cache-size", type=_positive_int, default=64,
                       help="shared plan-cache capacity")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--recalibrate", type=int, default=0, metavar="N",
                       help="online recalibration every N observed "
                            "iterations (0 disables)")
        p.add_argument("--ref-seed", type=int, default=7,
                       help="hidden-factor seed of the reference hardware "
                            "observed by the recalibration loop")
        p.add_argument("--aging", type=float, default=None, metavar="S",
                       help="priority-aging rate: queued requests gain one "
                            "effective priority level per S seconds waited, "
                            "so low-priority leaders cannot starve "
                            "(default: strict priority order)")
        p.add_argument("--cache-file", default=None,
                       help="persist the shared plan cache to this JSON "
                            "file (loaded on start, saved atomically on "
                            "exit / 'save-cache')")
        legacy_eval_arg(p)

    serve = sub.add_parser(
        "serve", help="concurrent planning service: DP replicas of one or "
                      "more jobs share one plan cache + worker pool; with "
                      "--listen/--uds, serve other processes over a socket")
    service_args(serve)
    serve.add_argument("--listen", default=None, metavar="HOST:PORT",
                       help="serve the planning service over TCP instead "
                            "of driving in-process replicas (port 0 picks "
                            "a free port)")
    serve.add_argument("--uds", default=None, metavar="PATH",
                       help="serve over a Unix-domain socket at PATH")
    serve.add_argument("--serve-seconds", type=float, default=None,
                       help="socket mode: shut down after this many "
                            "seconds (default: wait for a client's "
                            "shutdown request / Ctrl-C)")
    serve.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="back the in-memory plan cache with a shared "
                            "on-disk tier under DIR (one file per "
                            "signature; cross-process safe — fleet "
                            "shards share one directory)")
    serve.add_argument("--no-near-miss", dest="near_miss",
                       action="store_false",
                       help="disable near-miss warm starts so every "
                            "search depends only on (signature, "
                            "context, seed) — makes plans reproducible "
                            "across cache states and fleet sizes")
    serve.add_argument("--trace-dir", default=None, metavar="DIR",
                       help="socket mode: emit per-request spans "
                            "(queue wait, cache lookup, search/replay) "
                            "tagged with client trace ids, saved to "
                            "DIR on exit for 'repro obs merge'")
    serve.add_argument("--shard-index", type=int, default=None,
                       help="this server's shard slot in a fleet "
                            "(reported over ping/metrics; set by the "
                            "fleet launcher)")
    serve.add_argument("--shard-restarts", type=int, default=0,
                       help="crash respawns this shard slot has seen "
                            "(reported over ping/metrics; set by the "
                            "fleet launcher)")
    serve.add_argument("--fault-plan", default=None, metavar="JSON|@FILE",
                       help="chaos: arm this server with a deterministic "
                            "FaultPlan (inline JSON or @file); faults "
                            "fire at rpc.response/rpc.recv/disk.* sites "
                            "(set by the chaos driver)")
    serve.add_argument("--fault-log", default=None, metavar="PATH",
                       help="chaos: append fired-fault decisions as "
                            "JSONL to PATH on shutdown, for replay "
                            "verification against the plan's seed")

    pclient = sub.add_parser(
        "plan-client",
        help="drive a remote 'repro serve --listen/--uds' service from "
             "this process: local graphs, remote searches, canonical-"
             "plan replay (flags must match the server's)")
    # Only the flags that shape the *client's* planner mirror and
    # workload — server-side knobs (--workers, --queue, --recalibrate,
    # --aging, --cache-file) belong to `repro serve` and accepting them
    # here would silently do nothing.
    pclient.add_argument("models", nargs="+",
                         help="job name(s) registered on the server, "
                              "e.g. VLM-S")
    pclient.add_argument("--replicas", type=_positive_int, default=4,
                         help="concurrent DP replicas (connections) "
                              "per job")
    pclient.add_argument("--iterations", type=_positive_int, default=3)
    pclient.add_argument("--microbatches", type=int, default=4)
    pclient.add_argument("--budget", type=int, default=16,
                         help="schedule-search evaluations (must match "
                              "the server's --budget: it is part of the "
                              "planning-context signature)")
    pclient.add_argument("--cache-size", type=_positive_int, default=64,
                         help="local planner-mirror cache capacity")
    pclient.add_argument("--seed", type=int, default=0)
    legacy_eval_arg(pclient)
    pclient.add_argument("--connect", default=None, metavar="HOST:PORT",
                         help="TCP address of the serving process")
    pclient.add_argument("--uds", default=None, metavar="PATH",
                         help="Unix-domain socket of the serving process")
    pclient.add_argument("--timeout", type=float, default=300.0,
                         help="per-request timeout (seconds)")
    pclient.add_argument("--show-stats", action="store_true",
                         help="print the server's service/cache/remote "
                              "stats after driving")
    pclient.add_argument("--min-coalesced", type=int, default=0,
                         metavar="N",
                         help="exit nonzero unless the server coalesced "
                              "at least N requests (CI gate for cross-"
                              "process coalescing)")
    pclient.add_argument("--save-cache", action="store_true",
                         help="ask the server to persist its shared plan "
                              "cache (atomic save to its --cache-file)")
    pclient.add_argument("--shutdown", action="store_true",
                         help="send a shutdown request after driving")

    fleet = sub.add_parser(
        "fleet",
        help="sharded planning fleet: N server shards over one shared "
             "on-disk cache tier, signature-routed clients, plans/sec "
             "scaling benchmark")
    fsub = fleet.add_subparsers(dest="fleet_command", required=True)

    fserve = fsub.add_parser(
        "serve",
        help="spawn and supervise N 'repro serve' shard subprocesses "
             "sharing one --cache-dir (crash restarts, graceful drain)")
    fserve.add_argument("models", nargs="+",
                        help="combination name(s) registered on every "
                             "shard, e.g. VLM-S")
    fserve.add_argument("--shards", type=_positive_int, default=2)
    fserve.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="shared on-disk plan tier for every shard "
                             "(plans survive restarts, spread across "
                             "shards)")
    fserve.add_argument("--runtime-dir", default="/tmp/repro-fleet",
                        help="sockets + per-shard logs live here")
    fserve.add_argument("--tcp", action="store_true",
                        help="serve over TCP on 127.0.0.1 (default: one "
                             "Unix socket per shard)")
    fserve.add_argument("--workers", type=_positive_int, default=2,
                        help="search worker threads per shard")
    fserve.add_argument("--queue", type=_positive_int, default=32,
                        help="bounded plan-queue capacity per shard")
    fserve.add_argument("--budget", type=int, default=16,
                        help="schedule-search evaluations per search "
                             "(part of the planning context — clients "
                             "must match)")
    fserve.add_argument("--cache-size", type=_positive_int, default=64,
                        help="in-memory plan-cache capacity per shard")
    fserve.add_argument("--seed", type=int, default=0)
    fserve.add_argument("--no-near-miss", dest="near_miss",
                        action="store_false",
                        help="disable near-miss warm starts on every "
                             "shard (plans then depend only on "
                             "signature + context + seed, identical "
                             "across fleet sizes)")
    fserve.add_argument("--serve-seconds", type=float, default=None,
                        help="shards shut down after this many seconds "
                             "(default: wait for fleet-wide shutdown / "
                             "Ctrl-C)")
    fserve.add_argument("--address-file", default=None, metavar="PATH",
                        help="write the shard addresses to this JSON "
                             "file once every shard answers pings "
                             "(clients wait on it)")
    fserve.add_argument("--max-restarts", type=int, default=3,
                        help="crash-restart budget per shard")
    fserve.add_argument("--no-restart", action="store_true",
                        help="never restart crashed shards")
    fserve.add_argument("--trace-dir", default=None, metavar="DIR",
                        help="every shard saves its request-span trace "
                             "file here on exit (merge with "
                             "'repro obs merge')")
    legacy_eval_arg(fserve)

    fdrive = fsub.add_parser(
        "drive",
        help="drive a fleet from this process: each batch is routed to "
             "its signature's shard through the consistent-hash ring")
    fdrive.add_argument("models", nargs="+",
                        help="job name(s) registered on the shards")
    fdrive.add_argument("--address", action="append", default=None,
                        metavar="ADDR",
                        help="shard address (repeat per shard); every "
                             "client must be given the same set")
    fdrive.add_argument("--address-file", default=None, metavar="PATH",
                        help="JSON address file a 'repro fleet serve "
                             "--address-file' wrote")
    fdrive.add_argument("--replicas", type=_positive_int, default=4,
                        help="concurrent routed clients per job")
    fdrive.add_argument("--iterations", type=_positive_int, default=3)
    fdrive.add_argument("--microbatches", type=int, default=4)
    fdrive.add_argument("--budget", type=int, default=16,
                        help="must match the fleet's --budget (planning "
                             "context)")
    fdrive.add_argument("--cache-size", type=_positive_int, default=64,
                        help="local planner-mirror cache capacity")
    fdrive.add_argument("--seed", type=int, default=0)
    fdrive.add_argument("--timeout", type=float, default=300.0,
                        help="per-request timeout (seconds)")
    fdrive.add_argument("--no-failover", action="store_true",
                        help="surface shard loss as per-batch errors "
                             "instead of retrying ring successors")
    fdrive.add_argument("--show-stats", action="store_true",
                        help="print merged fleet service/cache stats "
                             "after driving")
    fdrive.add_argument("--expect-searches", type=int, default=None,
                        metavar="N",
                        help="exit nonzero unless the whole fleet ran "
                             "exactly N searches (CI gate: same-"
                             "signature requests land on one shard)")
    fdrive.add_argument("--min-coalesced", type=int, default=0,
                        metavar="N",
                        help="exit nonzero unless the fleet coalesced "
                             "at least N requests")
    fdrive.add_argument("--min-disk-hits", type=int, default=0,
                        metavar="N",
                        help="exit nonzero unless at least N hits were "
                             "served from the shared disk tier (CI "
                             "gate: restarts keep amortization)")
    fdrive.add_argument("--shutdown", action="store_true",
                        help="send shutdown to every shard after "
                             "driving")
    fdrive.add_argument("--trace-dir", default=None, metavar="DIR",
                        help="stamp every submit with a distributed "
                             "trace id and save the client-side span "
                             "file here (merge with the shards' files "
                             "via 'repro obs merge')")
    fdrive.add_argument("--deadline", type=float, default=None,
                        help="per-submit deadline (seconds), carried "
                             "in the RPC envelope; shards shed expired "
                             "work instead of searching for a waiter "
                             "that already gave up")
    fdrive.add_argument("--degraded", action="store_true",
                        help="when a signature's whole ring preference "
                             "list is down/open, plan locally on the "
                             "client mirror (flagged degraded) instead "
                             "of erroring")
    fdrive.add_argument("--client-metrics-out", default=None,
                        metavar="PATH",
                        help="write the merged client-side metrics "
                             "snapshot (breaker states, retry/"
                             "degraded counters) as JSON for 'repro "
                             "obs scrape --check --client-metrics' / "
                             "'repro obs report --client-metrics'")
    legacy_eval_arg(fdrive)

    fbench = fsub.add_parser(
        "bench",
        help="plans/sec vs shard count on the fig. 11 workload, many "
             "concurrent client processes")
    fbench.add_argument("model", nargs="?", default="VLM-M",
                        help="combination name (default: VLM-M)")
    fbench.add_argument("--shards", type=_positive_int, nargs="+",
                        default=[1, 2, 4],
                        help="fleet sizes to measure")
    fbench.add_argument("--clients", type=_positive_int, default=6,
                        help="concurrent client OS processes")
    fbench.add_argument("--iterations", type=_positive_int, default=8,
                        help="distinct batches per client stream")
    fbench.add_argument("--microbatches", type=int, default=12)
    fbench.add_argument("--budget", type=int, default=10)
    fbench.add_argument("--seed", type=int, default=0)
    fbench.add_argument("--workers", type=_positive_int, default=2,
                        help="search worker threads per shard")
    fbench.add_argument("--timeout", type=float, default=300.0)
    fbench.add_argument("--output", default=None,
                        help="write the JSON report to this path")
    fbench.add_argument("--min-scaling", type=float, default=None,
                        help="exit nonzero when plans/sec scales less "
                             "than this factor from the smallest to "
                             "the largest fleet (CI gate)")

    obs = sub.add_parser(
        "obs",
        help="fleet telemetry plane: scrape per-shard metrics into "
             "Prometheus exposition, render a health report, merge "
             "client + shard request traces into one timeline")
    osub = obs.add_subparsers(dest="obs_command", required=True)

    def obs_addressing(p) -> None:
        p.add_argument("--address", action="append", default=None,
                       metavar="ADDR",
                       help="shard address (repeat per shard)")
        p.add_argument("--address-file", default=None, metavar="PATH",
                       help="JSON address file a 'repro fleet serve "
                            "--address-file' wrote")
        p.add_argument("--timeout", type=float, default=10.0,
                       help="per-shard RPC timeout (seconds)")

    oscrape = osub.add_parser(
        "scrape",
        help="poll every shard's metrics RPC and merge label-wise "
             "(each series gains a shard=\"N\" label)")
    obs_addressing(oscrape)
    oscrape.add_argument("--format", choices=("expo", "json"),
                         default="expo",
                         help="output format: Prometheus text "
                              "exposition (default) or the raw merged "
                              "JSON snapshot")
    oscrape.add_argument("--output", default=None, metavar="PATH",
                         help="write to PATH instead of stdout")
    oscrape.add_argument("--check", action="store_true",
                         help="exit nonzero unless cross-subsystem "
                              "consistency holds on every shard "
                              "(tier-split hits sum to totals, metrics "
                              "agree with the stats RPC, shed counter "
                              "matches)")
    oscrape.add_argument("--client-metrics", default=None,
                         metavar="PATH",
                         help="client-side metrics snapshot JSON "
                              "('repro fleet drive "
                              "--client-metrics-out') to include in "
                              "--check (breaker state codes legal, "
                              "resilience counters sane)")

    oreport = osub.add_parser(
        "report",
        help="human health summary per shard: identity, uptime, "
             "restarts, queue depth, hit rates, shed counts, latency "
             "percentiles — plus breaker states with --client-metrics")
    obs_addressing(oreport)
    oreport.add_argument("--client-metrics", default=None,
                         metavar="PATH",
                         help="client-side metrics snapshot JSON to "
                              "render a resilience section from "
                              "(breaker states, retry/degraded "
                              "counters)")

    omerge = osub.add_parser(
        "merge",
        help="join client + shard request-span files into one Chrome/"
             "Perfetto timeline with cross-process flow arrows per "
             "trace id")
    omerge.add_argument("traces", nargs="+", metavar="TRACE",
                        help="span files written by --trace-dir runs")
    omerge.add_argument("--output", default=None, metavar="PATH",
                        help="write the merged Chrome JSON here "
                             "(default: stdout)")
    omerge.add_argument("--validate", action="store_true",
                        help="exit nonzero unless the merged timeline "
                             "passes the Chrome-trace validator")

    chaos = sub.add_parser(
        "chaos",
        help="chaos-test a live fleet: deterministic fault injection "
             "(drops, stalls, corruption, crashes, disk errors) under "
             "named scenarios, with resilience invariants asserted")
    chsub = chaos.add_subparsers(dest="chaos_command", required=True)

    chsub.add_parser("scenarios",
                     help="list the named fault scenarios")

    chdrive = chsub.add_parser(
        "drive",
        help="spin up a fleet under a scenario, drive a client "
             "workload through it, and check that every submit "
             "terminates in-deadline with a baseline-identical plan "
             "or a typed error")
    chdrive.add_argument("model", nargs="?", default="VLM-S",
                         help="combination name (default: VLM-S)")
    chdrive.add_argument("--scenario", required=True,
                         help="scenario name (see 'repro chaos "
                              "scenarios')")
    chdrive.add_argument("--shards", type=_positive_int, default=2)
    chdrive.add_argument("--replicas", type=_positive_int, default=2)
    chdrive.add_argument("--iterations", type=_positive_int, default=4)
    chdrive.add_argument("--microbatches", type=int, default=3)
    chdrive.add_argument("--budget", type=int, default=8)
    chdrive.add_argument("--cache-size", type=int, default=64)
    chdrive.add_argument("--seed", type=int, default=0,
                         help="workload + search seed (shared by the "
                              "baseline, the shards and the mirrors)")
    chdrive.add_argument("--fault-seed", type=int, default=1,
                         help="base seed of the per-shard fault "
                              "schedules (shard i uses fault-seed+i)")
    chdrive.add_argument("--deadline", type=float, default=None,
                         help="per-submit deadline (seconds); default "
                              "is the scenario's")
    chdrive.add_argument("--slack", type=float, default=30.0,
                         help="termination-invariant slack on top of "
                              "the deadline (seconds)")
    chdrive.add_argument("--runtime-dir", default=None,
                         help="sockets / cache / fault logs live here "
                              "(default: fresh temp dir)")
    chdrive.add_argument("--json", default=None, metavar="PATH",
                         help="also write the report as JSON")
    chdrive.add_argument("--expect-degraded", type=int, default=None,
                         metavar="N",
                         help="exit nonzero unless at least N degraded "
                              "local plans were served (CI gate)")
    chdrive.add_argument("--legacy-eval", action="store_true",
                         help="disable the compiled evaluation core")

    sbench = sub.add_parser(
        "service-bench",
        help="coalescing + throughput: planning service vs serial "
             "per-replica planning")
    service_args(sbench)

    pbench = sub.add_parser(
        "perf-bench",
        help="evaluation-core throughput: compiled kernel vs legacy "
             "evaluators (rollouts/sec + end-to-end search, equal "
             "quality asserted)")
    pbench.add_argument("model", nargs="?", default="VLM-M",
                        help="combination name (default: VLM-M, the "
                             "Fig. 11 stand-in workload)")
    pbench.add_argument("--microbatches", type=int, default=12)
    pbench.add_argument("--budget", type=int, default=120,
                        help="evaluations for the end-to-end search leg")
    pbench.add_argument("--rollouts", type=_positive_int, default=60,
                        help="random orderings per throughput repeat")
    pbench.add_argument("--repeats", type=_positive_int, default=5,
                        help="alternating timing repeats (best of N reported)")
    pbench.add_argument("--seed", type=int, default=0)
    pbench.add_argument("--output", default=None,
                        help="write the JSON report to this path")
    pbench.add_argument("--min-speedup", type=float, default=None,
                        help="exit nonzero when the rollout speedup falls "
                             "below this factor (CI gate)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "models": cmd_models,
        "plan": cmd_plan,
        "compare": cmd_compare,
        "trace": cmd_trace,
        "tune": cmd_tune,
        "serve": cmd_serve,
        "plan-client": cmd_plan_client,
        "fleet": cmd_fleet,
        "obs": cmd_obs,
        "chaos": cmd_chaos,
        "service-bench": cmd_service_bench,
        "perf-bench": cmd_perf_bench,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
