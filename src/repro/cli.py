"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``plan``      — plan + simulate iterations of a Table 3/6 model and
                  print per-iteration statistics and the schedule diagram.
* ``compare``   — run all systems on a shared workload (a mini Fig. 8a).
* ``models``    — list the model zoo and combinations.
* ``trace``     — export a searched schedule as a Chrome trace JSON.

Examples::

    python -m repro models
    python -m repro plan VLM-S --microbatches 6 --iterations 2 --diagram
    python -m repro compare T2V-S --microbatches 8
    python -m repro trace VLM-S --output /tmp/vlm_s.trace.json
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.cluster.topology import ParallelConfig, cluster_h100, cluster_h800
from repro.core.planner import OnlinePlanner
from repro.core.searcher import ScheduleSearcher
from repro.core.visualize import ascii_timeline, memory_sparkline, save_chrome_trace
from repro.data.workload import t2v_workload, vlm_workload
from repro.metrics import mfu
from repro.models.lmm import build_combination
from repro.models.zoo import COMBINATIONS, MODEL_ZOO, combination_by_name
from repro.sim.costmodel import CostModel


def _setup(combo_name: str, budget: int, seed: int,
           plan_cache: bool = True, cache_size: int = 64):
    combo = combination_by_name(combo_name)
    arch = build_combination(combo)
    parallel = ParallelConfig(dp=1, tp=combo.tp, pp=combo.pp)
    nodes = max(1, parallel.world_size // 8)
    if combo_name.endswith(("-8k", "-16k", "-3k", "-6k")):
        cluster = cluster_h100(nodes)
    else:
        cluster = cluster_h800(nodes)
    cost_model = CostModel()
    searcher = ScheduleSearcher(cluster, parallel, cost_model,
                                budget_evaluations=budget, seed=seed)
    planner = OnlinePlanner(arch, cluster, parallel, cost_model,
                            searcher=searcher,
                            enable_plan_cache=plan_cache,
                            cache_size=cache_size)
    return arch, cluster, parallel, planner


def _workload(arch, microbatches: int, seed: int):
    if arch.kind == "t2v":
        return t2v_workload(microbatches, seed=seed)
    return vlm_workload(microbatches, seed=seed)


def cmd_models(_args) -> int:
    print("Modules (Table 2):")
    for name, spec in MODEL_ZOO.items():
        print(f"  {name:12s} {spec.parameters_billion():7.2f}B  "
              f"{spec.num_layers} layers, d={spec.hidden_size}")
    print("\nCombinations (Tables 3 and 6):")
    for name, combo in COMBINATIONS.items():
        print(f"  {name:12s} {' + '.join(combo.module_names):24s} "
              f"TP{combo.tp} PP{combo.pp} DP{combo.dp} "
              f"({combo.num_gpus} GPUs)")
    return 0


def cmd_plan(args) -> int:
    arch, cluster, parallel, planner = _setup(args.model, args.budget,
                                              args.seed, args.plan_cache,
                                              args.cache_size)
    print(f"{arch.name}: {arch.parameters_billion():.1f}B on "
          f"{parallel.describe()}  |  plan: {planner.plan.describe()}")
    stream = _workload(arch, args.microbatches, args.seed)
    reports = planner.run(stream.batches(args.iterations))
    for report in reports:
        predicted = report.search.schedule.predicted
        graph = report.search.schedule.graph
        value = mfu(graph.model_flops, report.train_ms, cluster.gpu, parallel)
        if report.cache_hit:
            plan_src = "cache hit"
        elif report.warm_start:
            plan_src = "warm search"
        else:
            plan_src = "cold search"
        print(f"iter {report.iteration}: {report.train_ms / 1e3:6.2f}s  "
              f"MFU {value:.3f}  bubble {predicted.bubble_ratio * 100:4.1f}%  "
              f"search {report.search_seconds:.2f}s  [{plan_src}]")
        if args.diagram:
            print(ascii_timeline(graph, predicted, width=args.width))
            print("mem PP0: "
                  + memory_sparkline(predicted, 0,
                                     limit_bytes=graph.memory_limit_bytes))
    stats = planner.cache_stats
    if stats is not None:
        print(f"plan cache: {stats.describe()}")
    return 0


def cmd_compare(args) -> int:
    import importlib

    sys.path.insert(0, "benchmarks")
    try:
        common = importlib.import_module("common")
    except ImportError:
        print("compare requires the benchmarks/ directory", file=sys.stderr)
        return 2
    setup = common.make_setup(args.model)
    systems = ["megatron", "nnscaler", "dip"]
    if setup.arch.kind == "vlm":
        systems.insert(2, "optimus")
    times = common.average_times(setup, systems, args.iterations,
                                 args.microbatches, seed=args.seed,
                                 budget=args.budget)
    base = times["megatron"]
    print(f"{args.model}: normalized iteration time (Megatron-LM = 1.0)")
    for system, ms in times.items():
        bar = "#" * int(round(ms / base * 40))
        print(f"  {system:10s} {ms / base:5.3f}  {bar}")
    return 0


def cmd_tune(args) -> int:
    from repro.core.autotuner import tune_layout
    from repro.models.lmm import build_combination

    combo = combination_by_name(args.model)
    arch = build_combination(combo)
    nodes = max(1, combo.tp * combo.pp // 8)
    cluster = cluster_h800(nodes)
    candidates = tune_layout(arch, cluster, args.microbatches,
                             world_size=combo.tp * combo.pp,
                             min_pp=2, seed=args.seed,
                             search_budget=args.budget if args.search else 0)
    print(f"layout candidates for {arch.name} on "
          f"{combo.tp * combo.pp} GPUs (best first):")
    for cand in candidates:
        print("  " + cand.describe())
    return 0


def cmd_trace(args) -> int:
    arch, cluster, parallel, planner = _setup(args.model, args.budget,
                                              args.seed, args.plan_cache,
                                              args.cache_size)
    batch = _workload(arch, args.microbatches, args.seed).next_batch()
    result = planner.plan_iteration(batch)
    path = save_chrome_trace(result.schedule.graph, result.schedule.predicted,
                             args.output, process_name=args.model)
    print(f"wrote {path} — open in chrome://tracing or ui.perfetto.dev")
    return 0


def _positive_int(value: str) -> int:
    parsed = int(value)
    if parsed < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {parsed}")
    return parsed


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DIP (ASPLOS '26) reproduction — dynamic interleaved "
                    "pipeline planning on a simulated cluster",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list the model zoo")

    def common_args(p):
        p.add_argument("model", help="combination name, e.g. VLM-S")
        p.add_argument("--microbatches", type=int, default=6)
        p.add_argument("--iterations", type=int, default=2)
        p.add_argument("--budget", type=int, default=25,
                       help="schedule-search evaluations per iteration")
        p.add_argument("--seed", type=int, default=0)

    def cache_args(p):
        # Only commands that drive an OnlinePlanner take these.
        p.add_argument("--plan-cache", action=argparse.BooleanOptionalAction,
                       default=True,
                       help="reuse/warm-start plans for repeated batch "
                            "shapes (--no-plan-cache disables)")
        p.add_argument("--cache-size", type=_positive_int, default=64,
                       help="plan-cache capacity (LRU entries)")

    plan = sub.add_parser("plan", help="plan + simulate training iterations")
    common_args(plan)
    cache_args(plan)
    plan.add_argument("--diagram", action="store_true",
                      help="print ASCII pipeline diagrams")
    plan.add_argument("--width", type=int, default=100)

    compare = sub.add_parser("compare", help="compare all systems")
    common_args(compare)

    trace = sub.add_parser("trace", help="export a Chrome trace")
    common_args(trace)
    cache_args(trace)
    trace.add_argument("--output", default="schedule.trace.json")

    tune = sub.add_parser("tune", help="rank DP x TP x PP layouts")
    common_args(tune)
    tune.add_argument("--search", action="store_true",
                      help="run schedule search per layout (slower)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "models": cmd_models,
        "plan": cmd_plan,
        "compare": cmd_compare,
        "trace": cmd_trace,
        "tune": cmd_tune,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
