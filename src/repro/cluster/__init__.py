"""Hardware substrate: GPU device specifications and cluster topology.

The paper evaluates DIP on 64x H800, 16x H20 and (in simulation) up to
16384x H100 GPUs.  This package models those devices and the node/network
topology analytically, which is the substrate the paper's own training
simulator (section 6.1) runs against.
"""

from repro.cluster.devices import (
    GPU_A100_80G,
    GPU_H100_80G,
    GPU_H20_96G,
    GPU_H800_80G,
    GpuSpec,
    gpu_by_name,
)
from repro.cluster.topology import ClusterSpec, ParallelConfig, RankLocation

__all__ = [
    "GpuSpec",
    "GPU_H800_80G",
    "GPU_H20_96G",
    "GPU_H100_80G",
    "GPU_A100_80G",
    "gpu_by_name",
    "ClusterSpec",
    "ParallelConfig",
    "RankLocation",
]
