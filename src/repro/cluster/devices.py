"""GPU device specifications used by the analytic cost model.

Numbers are public datasheet values (dense BF16 tensor-core throughput,
HBM bandwidth, interconnect bandwidth).  The cost model multiplies these
peaks by empirical efficiency factors (see :mod:`repro.sim.costmodel`), so
only the *relative* magnitudes matter for schedule quality, mirroring the
paper's simulator design (section 6.1).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GpuSpec:
    """Static description of a single GPU device.

    Attributes:
        name: Human-readable device name, e.g. ``"H800-80G"``.
        bf16_tflops: Peak dense BF16 tensor-core throughput in teraFLOPs.
        memory_gb: HBM capacity in gibibytes usable for training state.
        memory_bandwidth_gbps: HBM bandwidth in GB/s.
        nvlink_gbps: Per-GPU unidirectional NVLink bandwidth in GB/s
            (intra-node point-to-point and collectives).
        nic_gbps: Per-GPU share of the inter-node network in GB/s.  The
            paper's testbed uses an 8x200Gbps rail-optimised RoCEv2 fabric,
            i.e. 25 GB/s per GPU.
        pcie_gbps: Host<->device bandwidth in GB/s, used by activation
            offloading strategies.
    """

    name: str
    bf16_tflops: float
    memory_gb: float
    memory_bandwidth_gbps: float
    nvlink_gbps: float
    nic_gbps: float
    pcie_gbps: float = 55.0

    @property
    def flops(self) -> float:
        """Peak throughput in FLOP/s."""
        return self.bf16_tflops * 1e12

    @property
    def memory_bytes(self) -> float:
        """HBM capacity in bytes."""
        return self.memory_gb * (1024.0**3)

    @property
    def memory_bandwidth(self) -> float:
        """HBM bandwidth in bytes/s."""
        return self.memory_bandwidth_gbps * 1e9

    @property
    def nvlink_bandwidth(self) -> float:
        """NVLink bandwidth in bytes/s."""
        return self.nvlink_gbps * 1e9

    @property
    def nic_bandwidth(self) -> float:
        """Inter-node network bandwidth in bytes/s."""
        return self.nic_gbps * 1e9

    @property
    def pcie_bandwidth(self) -> float:
        """Host link bandwidth in bytes/s."""
        return self.pcie_gbps * 1e9


#: NVIDIA H800 80GB (the paper's main 64-GPU testbed).  H800 keeps H100's
#: compute but caps NVLink at 400 GB/s bidirectional (200 GB/s per
#: direction), matching the paper's "200 GB/s NVLink" description.
GPU_H800_80G = GpuSpec(
    name="H800-80G",
    bf16_tflops=989.0,
    memory_gb=80.0,
    memory_bandwidth_gbps=3350.0,
    nvlink_gbps=200.0,
    nic_gbps=25.0,
)

#: NVIDIA H20 96GB (the paper's 16-GPU comparison cluster).  Low compute,
#: large and fast memory.
GPU_H20_96G = GpuSpec(
    name="H20-96G",
    bf16_tflops=148.0,
    memory_gb=96.0,
    memory_bandwidth_gbps=4000.0,
    nvlink_gbps=450.0,
    nic_gbps=25.0,
)

#: NVIDIA H100 80GB (the paper's large-scale simulation target, Fig. 14).
GPU_H100_80G = GpuSpec(
    name="H100-80G",
    bf16_tflops=989.0,
    memory_gb=80.0,
    memory_bandwidth_gbps=3350.0,
    nvlink_gbps=450.0,
    nic_gbps=50.0,
)

#: NVIDIA A100 80GB, included for users reproducing on older clusters.
GPU_A100_80G = GpuSpec(
    name="A100-80G",
    bf16_tflops=312.0,
    memory_gb=80.0,
    memory_bandwidth_gbps=2039.0,
    nvlink_gbps=300.0,
    nic_gbps=25.0,
)

_REGISTRY = {
    spec.name: spec
    for spec in (GPU_H800_80G, GPU_H20_96G, GPU_H100_80G, GPU_A100_80G)
}


def gpu_by_name(name: str) -> GpuSpec:
    """Look up a registered GPU spec by its :attr:`GpuSpec.name`.

    Raises:
        KeyError: if ``name`` is not a registered device.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown GPU {name!r}; known devices: {known}") from None
