"""Cluster topology and 3D-parallel rank mapping.

Follows Megatron-LM's convention: the world is factored as
``DP x PP x TP`` with TP innermost (ranks within one tensor-parallel group
are consecutive, hence co-located on NVLink), then PP, then DP outermost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.cluster.devices import GpuSpec


@dataclass(frozen=True)
class ParallelConfig:
    """A 3D parallelism layout.

    Attributes:
        dp: Data-parallel degree.
        tp: Tensor-parallel degree.
        pp: Pipeline-parallel degree (number of pipeline ranks).
    """

    dp: int
    tp: int
    pp: int

    def __post_init__(self) -> None:
        for field_name in ("dp", "tp", "pp"):
            value = getattr(self, field_name)
            if value < 1:
                raise ValueError(f"{field_name} must be >= 1, got {value}")

    @property
    def world_size(self) -> int:
        """Total number of GPUs the layout requires."""
        return self.dp * self.tp * self.pp

    def describe(self) -> str:
        """Short human-readable form, e.g. ``"DP2,TP4,PP4"``."""
        return f"DP{self.dp},TP{self.tp},PP{self.pp}"


@dataclass(frozen=True)
class RankLocation:
    """Physical placement of a logical (dp, pp, tp) rank."""

    global_rank: int
    node: int
    local_gpu: int


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous GPU cluster.

    Attributes:
        gpu: Per-device specification.
        gpus_per_node: GPUs per server (8 on the paper's testbed).
        num_nodes: Number of servers.
        cpu_cores_per_node: Host cores available; DIP's planner uses at
            most half of them for schedule search (section 6.2).
    """

    gpu: GpuSpec
    gpus_per_node: int = 8
    num_nodes: int = 1
    cpu_cores_per_node: int = 128

    @property
    def world_size(self) -> int:
        """Total GPU count."""
        return self.gpus_per_node * self.num_nodes

    @property
    def search_worker_budget(self) -> int:
        """CPU cores the planner may use (<=50% of one node, section 6.2)."""
        return max(1, self.cpu_cores_per_node // 2)

    def validate(self, parallel: ParallelConfig) -> None:
        """Check that a parallel layout fits this cluster.

        Raises:
            ValueError: if the layout needs more GPUs than available, or
                a TP group would span nodes (TP requires NVLink).
        """
        if parallel.world_size > self.world_size:
            raise ValueError(
                f"{parallel.describe()} needs {parallel.world_size} GPUs but "
                f"cluster has {self.world_size}"
            )
        if parallel.tp > self.gpus_per_node:
            raise ValueError(
                f"TP={parallel.tp} exceeds GPUs per node "
                f"({self.gpus_per_node}); TP groups must stay on NVLink"
            )

    def locate(self, parallel: ParallelConfig, dp: int, pp: int, tp: int) -> RankLocation:
        """Map a logical (dp, pp, tp) coordinate to a physical GPU.

        TP is the innermost dimension so TP groups occupy consecutive
        local GPUs; PP next; DP outermost.
        """
        if not (0 <= dp < parallel.dp and 0 <= pp < parallel.pp and 0 <= tp < parallel.tp):
            raise ValueError(
                f"coordinate (dp={dp}, pp={pp}, tp={tp}) out of range for "
                f"{parallel.describe()}"
            )
        global_rank = (dp * parallel.pp + pp) * parallel.tp + tp
        return RankLocation(
            global_rank=global_rank,
            node=global_rank // self.gpus_per_node,
            local_gpu=global_rank % self.gpus_per_node,
        )

    def pipeline_neighbors_same_node(self, parallel: ParallelConfig) -> List[bool]:
        """For each pipeline hop ``pp -> pp+1``, whether it stays intra-node.

        The result has ``parallel.pp - 1`` entries (for dp group 0; the
        mapping is homogeneous across dp groups).
        """
        hops = []
        for pp in range(parallel.pp - 1):
            a = self.locate(parallel, 0, pp, 0)
            b = self.locate(parallel, 0, pp + 1, 0)
            hops.append(a.node == b.node)
        return hops

    def p2p_bandwidth(self, parallel: ParallelConfig, src_pp: int, dst_pp: int) -> float:
        """Point-to-point bandwidth (bytes/s) between two pipeline ranks."""
        a = self.locate(parallel, 0, src_pp % parallel.pp, 0)
        b = self.locate(parallel, 0, dst_pp % parallel.pp, 0)
        if a.node == b.node:
            return self.gpu.nvlink_bandwidth
        return self.gpu.nic_bandwidth


def cluster_h800(num_nodes: int = 8) -> ClusterSpec:
    """The paper's main testbed: ``num_nodes`` x 8 H800, 128 cores/node."""
    from repro.cluster.devices import GPU_H800_80G

    return ClusterSpec(gpu=GPU_H800_80G, gpus_per_node=8, num_nodes=num_nodes)


def cluster_h20(num_nodes: int = 2) -> ClusterSpec:
    """The paper's comparison cluster: ``num_nodes`` x 8 H20."""
    from repro.cluster.devices import GPU_H20_96G

    return ClusterSpec(gpu=GPU_H20_96G, gpus_per_node=8, num_nodes=num_nodes)


def cluster_h100(num_nodes: int) -> ClusterSpec:
    """Large-scale H100 cluster used by the paper's Fig. 14 simulations."""
    from repro.cluster.devices import GPU_H100_80G

    return ClusterSpec(gpu=GPU_H100_80G, gpus_per_node=8, num_nodes=num_nodes)
