"""DIP core: the paper's primary contribution.

* :mod:`repro.core.stages` — pipeline stages, segments, stage pairs.
* :mod:`repro.core.partitioner` — modality-aware partitioning (section 4).
* :mod:`repro.core.graphbuilder` — per-iteration stage DAG construction.
* :mod:`repro.core.mcts` — segment reordering via MCTS (section 5.1).
* :mod:`repro.core.interleaver` — dual-queue greedy stage interleaving
  (section 5.2).
* :mod:`repro.core.evalcore` — the compiled rollout-evaluation core:
  graph arrays, the heap-based interleaver kernel and the cross-worker
  rollout memo.
* :mod:`repro.core.memopt` — per-layer memory optimization (section 5.3).
* :mod:`repro.core.searcher` — the three-phase decomposed search loop.
* :mod:`repro.core.signature` — canonical iteration-graph signatures
  for incremental planning.
* :mod:`repro.core.plancache` — LRU plan cache with exact replay and
  near-miss warm starts.
* :mod:`repro.core.planner` — the asynchronous online planner
  (section 3.2).
"""

from repro.core.stages import (
    Direction,
    IterationGraph,
    SegmentGroup,
    SegmentKey,
    StagePair,
    StageTask,
    StrategyCandidate,
)
from repro.core.partitioner import (
    ModalityPartitioner,
    ModulePartition,
    PartitionPlan,
)
from repro.core.graphbuilder import build_iteration_graph
from repro.core.schedule import PipelineSchedule, validate_schedule
from repro.core.interleaver import interleave_stages
from repro.core.evalcore import (
    EvalCore,
    GraphArrays,
    RolloutMemo,
    interleave_kernel,
)
from repro.core.signature import GraphSignature, compute_signature
from repro.core.plancache import CacheStats, PlanCache
from repro.core.searcher import ScheduleSearcher, SearchResult
from repro.core.planner import OnlinePlanner, PlannerReport

__all__ = [
    "Direction",
    "SegmentKey",
    "SegmentGroup",
    "StageTask",
    "StagePair",
    "StrategyCandidate",
    "IterationGraph",
    "ModalityPartitioner",
    "ModulePartition",
    "PartitionPlan",
    "build_iteration_graph",
    "PipelineSchedule",
    "validate_schedule",
    "interleave_stages",
    "EvalCore",
    "GraphArrays",
    "RolloutMemo",
    "interleave_kernel",
    "GraphSignature",
    "compute_signature",
    "PlanCache",
    "CacheStats",
    "ScheduleSearcher",
    "SearchResult",
    "OnlinePlanner",
    "PlannerReport",
]
