"""Parallel-layout auto-tuning via the training simulator.

The paper's Fig. 13 grid-searches DP x TP x PP for VLM-M by hand; this
module offers that search as a first-class API: enumerate the valid
3D-parallel layouts for a cluster, simulate each one on a representative
workload, and rank them by MFU — the "automated training parallelization"
capability the related-work section situates DIP against, powered by the
same simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.cluster.topology import ClusterSpec, ParallelConfig
from repro.core.graphbuilder import build_iteration_graph
from repro.core.partitioner import ModalityPartitioner
from repro.core.planner import reference_microbatch
from repro.core.searcher import ScheduleSearcher
from repro.data.batching import GlobalBatch
from repro.metrics import mfu
from repro.models.lmm import LMMArchitecture
from repro.sim.costmodel import CostModel


@dataclass(frozen=True)
class LayoutCandidate:
    """One evaluated layout."""

    parallel: ParallelConfig
    iteration_ms: float
    mfu: float
    peak_memory_gb: float
    fits_memory: bool

    def describe(self) -> str:
        flag = "" if self.fits_memory else "  (OOM)"
        return (f"{self.parallel.describe():16s} MFU {self.mfu:.3f}  "
                f"{self.iteration_ms / 1e3:6.2f}s  "
                f"peak {self.peak_memory_gb:5.1f} GiB{flag}")


def enumerate_layouts(
    cluster: ClusterSpec,
    world_size: Optional[int] = None,
    max_tp: int = 8,
    min_pp: int = 1,
    max_pp: int = 64,
) -> List[ParallelConfig]:
    """All power-of-two DP x TP x PP layouts filling ``world_size`` GPUs.

    TP stays within a node (NVLink constraint); PP bounded by
    ``[min_pp, max_pp]``.
    """
    world = world_size or cluster.world_size
    layouts: List[ParallelConfig] = []
    tp = 1
    while tp <= min(max_tp, cluster.gpus_per_node):
        dp = 1
        while dp * tp <= world:
            pp, rem = divmod(world, tp * dp)
            if rem == 0 and min_pp <= pp <= max_pp:
                layouts.append(ParallelConfig(dp=dp, tp=tp, pp=pp))
            dp *= 2
        tp *= 2
    return layouts


def evaluate_layout(
    arch: LMMArchitecture,
    cluster: ClusterSpec,
    parallel: ParallelConfig,
    batch: GlobalBatch,
    cost_model: Optional[CostModel] = None,
    search_budget: int = 0,
    seed: int = 0,
) -> LayoutCandidate:
    """Simulate one layout on one (per-replica) batch.

    ``search_budget=0`` uses the natural-order schedule (fast, adequate
    for ranking layouts); a positive budget runs MCTS per layout.
    """
    cost_model = cost_model or CostModel()
    partitioner = ModalityPartitioner(arch, cluster, parallel, cost_model)
    plan = partitioner.plan(reference_microbatch(arch.kind))
    graph = build_iteration_graph(arch, plan, batch, cluster, parallel,
                                  cost_model, partitioner=partitioner)
    strategy = "mcts" if search_budget > 0 else "natural"
    searcher = ScheduleSearcher(cluster, parallel, cost_model,
                                strategy=strategy,
                                budget_evaluations=max(search_budget, 1),
                                seed=seed)
    result = searcher.search(graph)
    predicted = result.schedule.predicted
    peak = max(predicted.peak_memory_bytes)
    return LayoutCandidate(
        parallel=parallel,
        iteration_ms=result.total_ms,
        mfu=mfu(graph.model_flops, result.total_ms, cluster.gpu, parallel),
        peak_memory_gb=peak / 2**30,
        fits_memory=not predicted.memory_exceeded,
    )


def tune_layout(
    arch: LMMArchitecture,
    cluster: ClusterSpec,
    global_microbatches: int,
    cost_model: Optional[CostModel] = None,
    world_size: Optional[int] = None,
    layouts: Optional[Sequence[ParallelConfig]] = None,
    search_budget: int = 0,
    min_pp: int = 1,
    seed: int = 0,
) -> List[LayoutCandidate]:
    """Rank candidate layouts for training ``arch`` on ``cluster``.

    The global batch splits evenly across DP replicas, so deeper DP gets
    fewer per-replica microbatches — the fundamental DP-vs-PP trade the
    tuner navigates.  Returns candidates sorted best-first (memory-
    feasible layouts before infeasible ones, then by MFU).

    Raises:
        ValueError: if no layout fits the cluster.
    """
    cost_model = cost_model or CostModel()
    if layouts is None:
        layouts = enumerate_layouts(cluster, world_size, min_pp=min_pp)
    if not layouts:
        raise ValueError("no candidate layouts for this cluster")

    from repro.data.workload import t2v_workload, vlm_workload

    results: List[LayoutCandidate] = []
    for parallel in layouts:
        per_replica = max(1, global_microbatches // parallel.dp)
        if arch.kind == "t2v":
            batch = t2v_workload(per_replica, seed=seed).next_batch()
        else:
            batch = vlm_workload(per_replica, seed=seed).next_batch()
        try:
            results.append(
                evaluate_layout(arch, cluster, parallel, batch, cost_model,
                                search_budget=search_budget, seed=seed)
            )
        except ValueError:
            continue  # layout structurally invalid for this model
    results.sort(key=lambda c: (not c.fits_memory, -c.mfu))
    return results
