"""Shared on-disk plan tier: one file per signature digest.

The in-memory :class:`~repro.core.plancache.PlanCache` is per process —
a planning-fleet shard that restarts (or a sibling shard that never saw
a signature) loses every amortized search.  This module adds the second
tier: a directory of small JSON files, one per signature digest, that
any number of shard processes share.

Cross-process safety comes from the same discipline ``PlanCache.save``
uses: writers dump to a temp file in the cache directory, fsync, and
``os.replace`` it over the final name — readers observe either the old
complete file or the new complete file, never a torn write.  The store
is *content addressed*: the file name is the signature digest, and the
digest already folds in the planning-context fingerprint (see
``compute_signature``), so two shards racing to store the same digest
write equivalent payloads and the race is idempotent.

Reads are tolerant by design: a corrupt, truncated, or schema-stale
file is a miss, never an error — the tier is an amortization, not a
correctness input.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Optional

from repro.core.plancache import (
    CachedPlan,
    atomic_write_json,
    plan_from_dict,
    plan_to_dict,
)
from repro.core.signature import SIGNATURE_VERSION

#: Bumped whenever the per-digest file schema changes shape.
TIER_FILE_VERSION = 1
TIER_FILE_FORMAT = "repro-plan-tier"

#: Suffix of every plan file in a tier directory (temp files use ".tmp"
#: and are ignored by scans).
TIER_SUFFIX = ".plan.json"


@dataclass
class TierStats:
    """Disk-tier telemetry (per process — the directory is shared, the
    counters are not)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalidations: int = 0
    errors: int = 0  # unreadable/stale files and failed writes

    def describe(self) -> str:
        return (
            f"{self.hits} disk hits, {self.misses} disk misses, "
            f"{self.stores} stores, {self.invalidations} invalidated, "
            f"{self.errors} errors"
        )


class DiskCacheTier:
    """Content-addressed plan files under one shared directory.

    Args:
        directory: Cache directory (created if missing).  Safe to share
            between any number of processes on one filesystem that
            honours ``os.replace`` atomicity (i.e. a local disk).
    """

    def __init__(self, directory: str, fault_plan=None) -> None:
        self.directory = os.path.abspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.stats = TierStats()
        #: Optional :class:`~repro.chaos.faults.FaultPlan` consulted at
        #: ``disk.get`` / ``disk.put``; an injected fault takes the same
        #: error path a full or failing disk would (count + degrade to
        #: pass-through) — chaos exercises real code paths, not stubs.
        self.fault_plan = fault_plan
        self._lock = threading.Lock()  # guards stats only; files are
        # cross-process safe on their own via os.replace.

    def __len__(self) -> int:
        return len(self.digests())

    def __contains__(self, digest: str) -> bool:
        return os.path.exists(self.path_for(digest))

    def path_for(self, digest: str) -> str:
        """File path for a digest; rejects anything that is not a plain
        hex digest so a hostile signature can never escape the tier
        directory."""
        if not digest or not all(c in "0123456789abcdef" for c in digest):
            raise ValueError(f"not a hex signature digest: {digest!r}")
        return os.path.join(self.directory, digest + TIER_SUFFIX)

    def _count(self, counter: str, delta: int = 1) -> None:
        with self._lock:
            setattr(self.stats, counter,
                    getattr(self.stats, counter) + delta)

    # -- reads ---------------------------------------------------------------

    def get(self, digest: str) -> Optional[CachedPlan]:
        """Load the plan stored for ``digest``; ``None`` on any miss.

        Stale schema versions, torn/corrupt files, and digest mismatches
        (a file renamed by hand) all count as misses; genuinely
        unreadable files additionally bump ``stats.errors``.
        """
        if (self.fault_plan is not None
                and self.fault_plan.decide("disk.get") is not None):
            self._count("misses")
            self._count("errors")
            return None
        try:
            with open(self.path_for(digest)) as f:
                payload = json.load(f)
        except FileNotFoundError:
            self._count("misses")
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError,
                ValueError):
            self._count("misses")
            self._count("errors")
            return None
        plan = self._decode(payload)
        if plan is None or plan.signature.digest != digest:
            self._count("misses")
            self._count("errors")
            return None
        self._count("hits")
        return plan

    @staticmethod
    def _decode(payload) -> Optional[CachedPlan]:
        if not isinstance(payload, dict):
            return None
        if (payload.get("format") != TIER_FILE_FORMAT
                or payload.get("version") != TIER_FILE_VERSION
                or payload.get("signature_version") != SIGNATURE_VERSION):
            return None
        try:
            return plan_from_dict(payload["plan"])
        except (KeyError, TypeError, ValueError, AttributeError,
                IndexError):
            return None

    def digests(self) -> List[str]:
        """Digests currently stored (temp files excluded)."""
        try:
            names = os.listdir(self.directory)
        except OSError:
            return []
        return sorted(
            name[:-len(TIER_SUFFIX)] for name in names
            if name.endswith(TIER_SUFFIX)
        )

    # -- writes --------------------------------------------------------------

    def put(self, plan: CachedPlan) -> Optional[str]:
        """Write ``plan`` under its digest atomically; returns the file
        path, or ``None`` when the write failed (a full or read-only
        disk must never take planning down — the tier degrades to a
        pass-through)."""
        payload = {
            "format": TIER_FILE_FORMAT,
            "version": TIER_FILE_VERSION,
            "signature_version": SIGNATURE_VERSION,
            "context_digest": plan.signature.context_digest,
            "plan": plan_to_dict(plan),
        }
        if (self.fault_plan is not None
                and self.fault_plan.decide("disk.put") is not None):
            self._count("errors")
            return None
        try:
            path = atomic_write_json(self.path_for(plan.signature.digest),
                                     payload)
        except OSError:
            self._count("errors")
            return None
        self._count("stores")
        return path

    def remove(self, digest: str) -> bool:
        try:
            os.unlink(self.path_for(digest))
            return True
        except OSError:
            return False

    def invalidate_contexts(self, context_digests: Iterable[str]) -> int:
        """Unlink every plan file stored under any of the given context
        digests (the recalibration path, extended to disk).

        The context digest is mirrored at the top level of each file
        exactly so this scan can avoid decoding full plans.
        """
        context_digests = set(context_digests)
        removed = 0
        for digest in self.digests():
            path = self.path_for(digest)
            try:
                with open(path) as f:
                    payload = json.load(f)
                context = payload.get("context_digest") if isinstance(
                    payload, dict) else None
            except (OSError, json.JSONDecodeError, UnicodeDecodeError,
                    ValueError):
                continue  # unreadable files are dealt with on get()
            if context in context_digests:
                if self.remove(digest):
                    removed += 1
        self._count("invalidations", removed)
        return removed

    def clear(self) -> int:
        removed = 0
        for digest in self.digests():
            if self.remove(digest):
                removed += 1
        return removed

    # -- reads (telemetry) ---------------------------------------------------

    def snapshot(self) -> Dict:
        """JSON-serialisable telemetry (stats + directory occupancy)."""
        with self._lock:
            snap = asdict(self.stats)
        snap["entries"] = len(self)
        snap["directory"] = self.directory
        return snap

    def export_metrics(self, registry) -> None:
        """Bridge :class:`TierStats` into a metrics registry (absolute
        values, per-process — the directory is shared, the counters are
        not)."""
        with self._lock:
            stats = asdict(self.stats)
        ops = registry.counter(
            "repro_disk_tier_ops_total",
            "Disk-tier operations by kind", labels=("op",))
        for op, value in stats.items():
            ops.set_value(value, op=op)
        registry.gauge(
            "repro_disk_tier_entries",
            "Plan files currently in the shared tier directory",
            agg="max",  # shards share one directory; don't multi-count
        ).set(len(self))
