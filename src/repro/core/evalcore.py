"""Compiled evaluation core for schedule search rollouts (section 6.2).

Every search strategy — MCTS, DFS, random — scores a candidate group
ordering by running the greedy interleaver over the iteration graph,
~120 times per search.  The legacy path re-derives per-stage latency /
residency / dependency lists from the object graph on *every* rollout
and rescans every rank's ready queues on every scheduling step
(``_pick`` is O(ranks × ready) per stage).  This module compiles the
graph once per search and replaces the inner loop with heaps:

* :class:`GraphArrays` — an immutable flat-array view of an
  :class:`~repro.core.stages.IterationGraph`: per-stage latency,
  residency, rank, direction, CSR dependencies/dependents, precomputed
  per-edge P2P wire latencies (through the shared
  :class:`~repro.sim.kernel.P2PTable`) and the stage→group index used
  to expand an ordering into a priority array.  Built once after the
  memory-strategy selection is fixed; reused by every rollout.
* :func:`interleave_kernel` — a heap-based rewrite of
  :func:`~repro.core.interleaver.interleave_stages` that is
  semantics-identical (same 1F1B alternation, memory gating, greedy-fill
  ablation and tie-breaking) but answers "earliest schedulable stage"
  and "highest-priority ready stage" queries from per-rank heaps keyed
  ``(t_start, -priority, uid)`` / ``(-priority, uid)`` instead of list
  rescans.  Differential property tests assert order-for-order equality
  with the legacy implementation.
* :class:`RolloutMemo` — a thread-safe per-search memo keyed on the
  canonical ordering tuple.  Concurrent MCTS workers (and DFS revisits)
  frequently evaluate the same permutation; a hit returns the cached
  makespan without re-running the interleaver.  Hits still count
  against the evaluation budget, so the search trajectory — and hence
  the best schedule found at a given budget — is bit-identical to the
  unmemoised path.
* :class:`EvalCore` — ties the three together behind the evaluator
  interface :class:`~repro.core.searcher.ScheduleSearcher` consumes.
"""

from __future__ import annotations

import threading
from heapq import heappop, heappush
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.topology import ClusterSpec, ParallelConfig
from repro.core.interleaver import InterleaveResult
from repro.core.stages import GroupKey, IterationGraph
from repro.sim.costmodel import CostModel
from repro.sim.kernel import P2PTable

_INF = float("inf")


class GraphArrays:
    """One-shot array compilation of an iteration graph.

    Captures the graph's *current* memory-strategy selections (latency
    and residency depend on ``pair.selected``); call :meth:`refresh`
    after the memory optimizer changes them.  Everything else —
    topology, ranks, groups, wire latencies — is immutable, so one
    compilation serves every rollout of a search and is safe to share
    across rollout threads.
    """

    __slots__ = (
        "graph", "p2p", "num_ranks", "n",
        "latency", "resident", "rank", "is_forward", "releases",
        "p2p_bytes", "base_pending",
        "dep_edges", "succs",
        "group_index", "group_keys", "group_pos",
        "static_bytes", "limit",
    )

    def __init__(
        self,
        graph: IterationGraph,
        cluster: ClusterSpec,
        parallel: ParallelConfig,
        cost_model: CostModel,
        p2p: Optional[P2PTable] = None,
    ) -> None:
        self.graph = graph
        self.p2p = p2p if p2p is not None else P2PTable(
            cluster, parallel, cost_model
        )
        stages = graph.stages
        n = len(stages)
        self.num_ranks = graph.num_ranks
        self.n = n
        self.rank = [s.rank for s in stages]
        self.is_forward = [s.is_forward for s in stages]
        self.releases = [
            (not s.is_forward) and s.releases_memory for s in stages
        ]
        self.p2p_bytes = [s.p2p_bytes for s in stages]
        self.base_pending = [len(s.deps) for s in stages]
        self.static_bytes = list(graph.static_bytes_per_rank)
        self.limit = graph.memory_limit_bytes

        # Per-stage dependency edges with the wire latency precomputed:
        # arrival(succ) = max over (dep, wire) of end[dep] + wire.
        latency_ms = self.p2p.latency_ms
        self.dep_edges = [
            [
                (dep, latency_ms(stages[dep].rank, stage.rank,
                                 stage.p2p_bytes))
                for dep in stage.deps
            ]
            for stage in stages
        ]
        # Dependent lists are read-only in the kernel; share the graph's.
        self.succs = graph.dependents

        # Stage -> segment-group index, for ordering -> priority expansion.
        self.group_keys: List[GroupKey] = list(graph.groups().keys())
        self.group_pos: Dict[GroupKey, int] = {
            g: i for i, g in enumerate(self.group_keys)
        }
        self.group_index = [
            self.group_pos[s.key.group] for s in stages
        ]

        self.latency: List[float] = []
        self.resident: List[float] = []
        self.refresh()

    def refresh(self) -> None:
        """Re-read per-stage latency/residency from the current strategy
        selections (cheap; topology arrays are untouched)."""
        graph = self.graph
        self.latency = [graph.latency_ms(s) for s in graph.stages]
        self.resident = [graph.resident_bytes(s) for s in graph.stages]

    def priorities(self, ordering: Sequence[GroupKey]) -> List[int]:
        """Expand a group ordering into the per-stage priority array
        (mirrors ``ScheduleSearcher._priorities_array``)."""
        by_group = [0] * len(self.group_keys)
        size = len(ordering)
        pos = self.group_pos
        for i, g in enumerate(ordering):
            idx = pos.get(g)
            if idx is not None:
                by_group[idx] = size - i
        index = self.group_index
        return [by_group[index[uid]] for uid in range(self.n)]


def interleave_kernel(
    ga: GraphArrays,
    priorities: List[int],
    respect_memory: bool = True,
    greedy_fill: bool = True,
    score_only: bool = False,
) -> InterleaveResult:
    """Heap-based greedy interleaving over compiled graph arrays.

    Semantics-identical to
    :func:`repro.core.interleaver.interleave_stages` (the legacy
    implementation remains the differential oracle): the same dual-queue
    policy, 1F1B alternation, per-stage and queue-level memory gating,
    forced-progress fallback and ``greedy_fill`` ablation, with the same
    deterministic tie-breaking — differential property tests assert
    order-for-order equality on randomized graphs.

    Data layout, per rank (lazy deletion everywhere via ``in_ready``):

    * ``all_t`` — every ready stage keyed ``(t_start, pk)``, where
      ``pk = uid - priority * n`` packs the legacy
      ``max(priority, -uid)`` tie-break into one integer.  One peek
      answers phase 1 ("earliest schedulable stage") whenever the
      memory gate is open, and the bubble-filling pick reads the same
      heap with gated forwards stashed aside.
    * ``mig`` — ready stages that arrive after the rank's clock, keyed
      ``(t_start, pk)``.  Clocks only move forward, so each stage
      migrates into a ripe heap at most once.
    * ``fw_ripe_p`` / ``bw_ripe_p`` — already-arrived stages keyed
      ``pk``: the top is the highest-priority ready stage of that
      direction, which the 1F1B alternation consumes.
    * ``fw_res`` — ready forwards keyed residency; the top drives the
      queue-level memory gate (cheapest forward must fit).

    The phase-1 summary per rank is cached and maintained
    incrementally — an arrival can only lower it while the gate state
    is unchanged, so a full recompute happens only when the scheduled
    stage may have been the minimum or the gate flipped.

    The body is deliberately flat — the pick runs once per scheduled
    stage and closure calls were the dominant cost of a structured
    version.
    """
    n = ga.n
    if n == 0:
        return InterleaveResult(
            order=[[] for _ in range(ga.num_ranks)],
            start_ms=[], end_ms=[], total_ms=0.0,
        )
    num_ranks = ga.num_ranks
    latency = ga.latency
    resident = ga.resident
    stage_rank = ga.rank
    is_forward = ga.is_forward
    releases = ga.releases
    limit = ga.limit
    dep_edges = ga.dep_edges
    succs = ga.succs
    push, pop = heappush, heappop
    stride = n  # pk = uid - priority * stride; uid recovered as pk % stride

    t_start = [_INF] * n
    start = [0.0] * n
    end = [0.0] * n
    pending = list(ga.base_pending)
    in_ready = [False] * n

    clock = [0.0] * num_ranks
    act = list(ga.static_bytes)
    last_fw = [False] * num_ranks  # last scheduled kind was forward
    # score_only rollouts skip the per-rank order and start-time
    # bookkeeping: the search only consumes the makespan.
    orders: List[List[int]] = [[] for _ in range(num_ranks)]
    order_append = [o.append for o in orders]

    all_t: List[list] = [[] for _ in range(num_ranks)]
    mig: List[list] = [[] for _ in range(num_ranks)]
    fw_ripe_p: List[list] = [[] for _ in range(num_ranks)]
    bw_ripe_p: List[list] = [[] for _ in range(num_ranks)]
    fw_res: List[list] = [[] for _ in range(num_ranks)]
    fw_count = [0] * num_ranks
    # Plain uid sets, maintained only for the static-order ablation's
    # min-uid scan (greedy_fill=False is a cold path).
    track_sets = not greedy_fill
    fw_set: List[set] = [set() for _ in range(num_ranks)]
    bw_set: List[set] = [set() for _ in range(num_ranks)]

    # Cached phase-1 summaries (earliest eligible t_start per rank,
    # computed under respect_memory; the forced fallback rescans
    # without the gate) and the cached forward-gate state.
    rank_tmin = [_INF] * num_ranks
    gate_open = [False] * num_ranks
    dirty = [True] * num_ranks
    dirty_ranks = list(range(num_ranks))

    def bw_only_tmin(r: int) -> float:
        """Min t_start over ready backwards (the gate-closed summary):
        scan ``all_t`` with forwards stashed aside and restored."""
        heap = all_t[r]
        stash = None
        t_min = _INF
        while heap:
            item = heap[0]
            uid = item[1] % stride
            if not in_ready[uid]:
                pop(heap)
                continue
            if is_forward[uid]:
                pop(heap)
                if stash is None:
                    stash = [item]
                else:
                    stash.append(item)
                continue
            t_min = item[0]
            break
        if stash is not None:
            for item in stash:
                push(heap, item)
        return t_min

    def best_t_key(r: int, respect: bool):
        """Min (t_start, pk) over rank ``r``'s admissible ready set —
        the bubble-filling choice.  Gated forwards are stashed aside
        and restored; the caller guarantees a candidate exists."""
        heap = all_t[r]
        stash = None
        best = None
        budget = act[r]
        while heap:
            item = heap[0]
            uid = item[1] % stride
            if not in_ready[uid]:
                pop(heap)
                continue
            if (respect and is_forward[uid]
                    and budget + resident[uid] > limit):
                pop(heap)
                if stash is None:
                    stash = [item]
                else:
                    stash.append(item)
                continue
            best = item
            break
        if stash is not None:
            for item in stash:
                push(heap, item)
        return best

    def pick_on(r: int, respect: bool) -> int:
        """Phase 2: the dual-queue policy on the chosen rank.

        Returns a uid; the caller guarantees the rank has an eligible
        ready stage (phase 1 found a finite t_min), which implies the
        candidate pool below is never empty.
        """
        # Ripen stages that arrive before the rank next idles.
        heap = mig[r]
        if heap:
            c = clock[r]
            while heap:
                item = heap[0]
                pk = item[1]
                uid = pk % stride
                if not in_ready[uid]:
                    pop(heap)
                    continue
                if item[0] > c:
                    break
                pop(heap)
                if is_forward[uid]:
                    push(fw_ripe_p[r], pk)
                else:
                    push(bw_ripe_p[r], pk)

        fw_ok = fw_count[r] > 0
        if fw_ok and respect:
            heap = fw_res[r]
            while heap and not in_ready[heap[0][1]]:
                pop(heap)
            fw_ok = bool(heap) and act[r] + heap[0][0] <= limit
        fw_pick = -1
        if fw_ok:
            heap = fw_ripe_p[r]
            stash = None
            budget = act[r]
            while heap:
                pk = heap[0]
                uid = pk % stride
                if not in_ready[uid]:
                    pop(heap)
                    continue
                if respect and budget + resident[uid] > limit:
                    pop(heap)
                    if stash is None:
                        stash = [pk]
                    else:
                        stash.append(pk)
                    continue
                fw_pick = uid
                break
            if stash is not None:
                for pk in stash:
                    push(heap, pk)
        heap = bw_ripe_p[r]
        while heap and not in_ready[heap[0] % stride]:
            pop(heap)
        bw_pick = (heap[0] % stride) if heap else -1

        if fw_pick >= 0 and bw_pick >= 0:
            # 1F1B alternation: flip relative to the last scheduled kind.
            return bw_pick if last_fw[r] else fw_pick
        if fw_pick >= 0:
            return fw_pick
        if bw_pick >= 0:
            return bw_pick

        # Nothing ready before the rank idles: take the earliest stage
        # (or, under the static-order ablation, the next in program
        # order) among all admissible candidates.
        if not greedy_fill:
            candidates = list(bw_set[r])
            if fw_ok:
                if respect:
                    budget = act[r]
                    candidates.extend(
                        u for u in fw_set[r]
                        if budget + resident[u] <= limit
                    )
                else:
                    candidates.extend(fw_set[r])
            return min(candidates)
        return best_t_key(r, respect)[1] % stride

    def pick_forced():
        """The memory-override pick: re-run both phases ignoring the cap."""
        best_rank = -1
        best_t = _INF
        for r in range(num_ranks):
            heap = all_t[r]
            while heap and not in_ready[heap[0][1] % stride]:
                pop(heap)
            if heap and heap[0][0] < best_t:
                best_t = heap[0][0]
                best_rank = r
        if best_rank < 0:
            return None
        return pick_on(best_rank, False)

    # Initial ready set: stages with no dependencies arrive at t=0,
    # which is never after the rank's clock — push straight into ripe.
    for uid in range(n):
        if pending[uid] == 0:
            t_start[uid] = 0.0
            in_ready[uid] = True
            r = stage_rank[uid]
            pk = uid - priorities[uid] * stride
            push(all_t[r], (0.0, pk))
            if is_forward[uid]:
                push(fw_ripe_p[r], pk)
                push(fw_res[r], (resident[uid], uid))
                fw_count[r] += 1
                if track_sets:
                    fw_set[r].add(uid)
            else:
                push(bw_ripe_p[r], pk)
                if track_sets:
                    bw_set[r].add(uid)

    memory_forced = False
    scheduled = 0
    while scheduled < n:
        # Phase 1: the rank whose earliest schedulable stage is soonest.
        # Summaries are cached; only ranks on the dirty stack are
        # recomputed, and the argmin scan runs at C speed (ties resolve
        # to the lowest rank, as in the legacy scan).
        while dirty_ranks:
            r = dirty_ranks.pop()
            if not dirty[r]:
                continue  # duplicate mark
            dirty[r] = False
            fwc = fw_count[r]
            if fwc > 0 and respect_memory:
                heap = fw_res[r]
                while heap and not in_ready[heap[0][1]]:
                    pop(heap)
                open_ = bool(heap) and act[r] + heap[0][0] <= limit
            else:
                open_ = fwc > 0
            gate_open[r] = open_
            if open_ or fwc == 0:
                heap = all_t[r]
                while heap and not in_ready[heap[0][1] % stride]:
                    pop(heap)
                rank_tmin[r] = heap[0][0] if heap else _INF
            else:
                rank_tmin[r] = bw_only_tmin(r)
        best_t = min(rank_tmin)
        if best_t < _INF:
            uid = pick_on(rank_tmin.index(best_t), respect_memory)
        else:
            # Every rank is memory-blocked; force the globally earliest
            # stage to guarantee progress (mirrors the legacy fallback).
            uid = pick_forced()
            memory_forced = True
            if uid is None:
                raise RuntimeError("interleaver stalled with stages remaining")

        r = stage_rank[uid]
        in_ready[uid] = False
        fw = is_forward[uid]
        if fw:
            fw_count[r] -= 1
            if track_sets:
                fw_set[r].discard(uid)
        elif track_sets:
            bw_set[r].discard(uid)
        begin = clock[r]
        ts = t_start[uid]
        if ts > begin:
            begin = ts
        finish = begin + latency[uid]
        end[uid] = finish
        clock[r] = finish
        if not score_only:
            start[uid] = begin
            order_append[r](uid)
        last_fw[r] = fw
        if fw:
            act[r] += resident[uid]
        elif releases[uid]:
            act[r] -= resident[uid]
        scheduled += 1

        # Incremental phase-1 summary maintenance for the scheduled
        # rank: a full refresh is needed only when the removed stage may
        # have been the minimum, or when the memory gate flipped (the
        # eligible forward set changed wholesale).
        if not dirty[r]:
            need = ts <= rank_tmin[r]
            if respect_memory and not need:
                if fw_count[r] > 0:
                    heap = fw_res[r]
                    while heap and not in_ready[heap[0][1]]:
                        pop(heap)
                    open_now = bool(heap) and act[r] + heap[0][0] <= limit
                else:
                    open_now = False
                if open_now != gate_open[r]:
                    need = True
            if need:
                dirty[r] = True
                dirty_ranks.append(r)

        for succ in succs[uid]:
            left = pending[succ] - 1
            pending[succ] = left
            if left == 0:
                arrival = 0.0
                for dep, wire in dep_edges[succ]:
                    t = end[dep] + wire
                    if t > arrival:
                        arrival = t
                t_start[succ] = arrival
                in_ready[succ] = True
                sr = stage_rank[succ]
                pk = succ - priorities[succ] * stride
                key = (arrival, pk)
                push(all_t[sr], key)
                if is_forward[succ]:
                    push(fw_res[sr], (resident[succ], succ))
                    fw_count[sr] += 1
                    if arrival <= clock[sr]:
                        push(fw_ripe_p[sr], pk)
                    else:
                        push(mig[sr], key)
                    if track_sets:
                        fw_set[sr].add(succ)
                    if not dirty[sr]:
                        # A cheaper forward can only open the gate (act
                        # is unchanged); while it stays open the arrival
                        # lowers the summary directly, and while it
                        # stays closed the summary is unaffected.  A
                        # closed->open flip re-admits every forward
                        # t_start, so recompute.
                        if gate_open[sr] or not respect_memory:
                            if arrival < rank_tmin[sr]:
                                rank_tmin[sr] = arrival
                        else:
                            heap = fw_res[sr]
                            while heap and not in_ready[heap[0][1]]:
                                pop(heap)
                            if act[sr] + heap[0][0] <= limit:
                                dirty[sr] = True
                                dirty_ranks.append(sr)
                else:
                    if arrival <= clock[sr]:
                        push(bw_ripe_p[sr], pk)
                    else:
                        push(mig[sr], key)
                    if track_sets:
                        bw_set[sr].add(succ)
                    # A backward arrival can only lower the summary.
                    if not dirty[sr] and arrival < rank_tmin[sr]:
                        rank_tmin[sr] = arrival

    total = max(end) if end else 0.0
    return InterleaveResult(
        order=orders,
        start_ms=start,
        end_ms=end,
        total_ms=total,
        memory_forced=memory_forced,
    )


class RolloutMemo:
    """Thread-safe ordering → makespan memo shared by rollout workers.

    The evaluator is a pure function of the ordering (the graph arrays
    are frozen for the duration of a search), so a repeated permutation
    — MCTS workers rolling the same completion, DFS re-entering a
    subtree, the seed ordering re-sampled — can return its cached score.
    Hits are counted for telemetry; both hits and misses still consume
    search budget, keeping trajectories identical to the unmemoised
    path.
    """

    def __init__(self) -> None:
        self._scores: Dict[Tuple[GroupKey, ...], float] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._scores)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def get(self, key: Tuple[GroupKey, ...]) -> Optional[float]:
        with self._lock:
            value = self._scores.get(key)
            if value is None:
                self.misses += 1
            else:
                self.hits += 1
            return value

    def put(self, key: Tuple[GroupKey, ...], value: float) -> None:
        with self._lock:
            self._scores[key] = value

    def clear(self) -> None:
        with self._lock:
            self._scores.clear()


class EvalCore:
    """Compiled evaluator for one graph: arrays + kernel + rollout memo.

    Built by :class:`~repro.core.searcher.ScheduleSearcher` once per
    search, after the memory-strategy selection is fixed.  ``evaluate``
    is the rollout scorer handed to MCTS/DFS/random; ``interleave``
    returns the full timeline for the winning ordering.
    """

    def __init__(
        self,
        graph: IterationGraph,
        cluster: ClusterSpec,
        parallel: ParallelConfig,
        cost_model: Optional[CostModel] = None,
        respect_memory: bool = True,
        greedy_fill: bool = True,
        memoize: bool = True,
    ) -> None:
        self.arrays = GraphArrays(
            graph, cluster, parallel, cost_model or CostModel()
        )
        self.respect_memory = respect_memory
        self.greedy_fill = greedy_fill
        self.memo: Optional[RolloutMemo] = RolloutMemo() if memoize else None

    @property
    def p2p(self) -> P2PTable:
        return self.arrays.p2p

    @property
    def memo_hits(self) -> int:
        return self.memo.hits if self.memo is not None else 0

    def interleave(self, ordering: Sequence[GroupKey]) -> InterleaveResult:
        """Full interleaved timeline under ``ordering`` (no memo)."""
        return interleave_kernel(
            self.arrays,
            self.arrays.priorities(ordering),
            respect_memory=self.respect_memory,
            greedy_fill=self.greedy_fill,
        )

    def evaluate(self, ordering: Sequence[GroupKey]) -> float:
        """Rollout score: interleaved makespan in milliseconds.

        Runs the kernel in score-only mode (no per-rank order or
        start-time bookkeeping — the search consumes just the makespan)
        and memoises by ordering when the memo is enabled.
        """
        if self.memo is None:
            return self._score(ordering)
        key = tuple(ordering)
        cached = self.memo.get(key)
        if cached is not None:
            return cached
        total = self._score(ordering)
        self.memo.put(key, total)
        return total

    def _score(self, ordering: Sequence[GroupKey]) -> float:
        return interleave_kernel(
            self.arrays,
            self.arrays.priorities(ordering),
            respect_memory=self.respect_memory,
            greedy_fill=self.greedy_fill,
            score_only=True,
        ).total_ms

    def refresh(self) -> None:
        """Re-read stage costs after strategy selections changed; any
        memoised scores are stale and dropped."""
        self.arrays.refresh()
        if self.memo is not None:
            self.memo.clear()
