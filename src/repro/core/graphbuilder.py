"""Build the per-iteration stage DAG from a partition plan and a batch.

Dataflow encoded here (matching Fig. 5c of the paper):

* Within one (microbatch, module, sub-microbatch): forward stages chain
  chunk 0 rank 0 -> rank P-1 -> chunk 1 rank 0 -> ... ; backward stages
  chain in exact reverse.
* Across modules: the first forward stage of a level-``l+1`` module
  depends on the *last* forward stage of every level-``l`` sub-microbatch
  of the same microbatch (adapter outputs gathered back to rank 0).
  Backward mirrors this: upstream backward starts after downstream
  backward finishes at rank 0.
* The loss module's backward follows its own forward directly.

Stages are emitted in a topological order (uid ascending), which the
:class:`repro.core.stages.IterationGraph` constructor verifies.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cluster.topology import ClusterSpec, ParallelConfig
from repro.data.batching import GlobalBatch, Microbatch, iteration_flops, module_workload
from repro.models.flops import boundary_p2p_bytes, training_state_bytes
from repro.models.lmm import LMMArchitecture
from repro.core.partitioner import ModalityPartitioner, PartitionPlan
from repro.core.stages import (
    Direction,
    IterationGraph,
    SegmentKey,
    StagePair,
    StageTask,
)
from repro.sim.costmodel import CostModel, StageCost

#: Fraction of device memory usable for weights + activations (the rest
#: covers CUDA context, NCCL buffers and fragmentation).
MEMORY_UTILIZATION = 0.92

#: Under decoupled backward, the input-gradient (dgrad) share of the
#: backward latency; the remainder is the deferrable weight gradient.
DGRAD_SHARE = 0.55


class _Builder:
    """Single-use helper accumulating stages and pairs for one batch."""

    def __init__(
        self,
        arch: LMMArchitecture,
        plan: PartitionPlan,
        cluster: ClusterSpec,
        parallel: ParallelConfig,
        cost_model: CostModel,
        decoupled_backward: bool = False,
    ) -> None:
        self.arch = arch
        self.plan = plan
        self.cluster = cluster
        self.parallel = parallel
        self.cost_model = cost_model
        self.decoupled_backward = decoupled_backward
        self.stages: List[StageTask] = []
        self.pairs: List[StagePair] = []
        self._cost_cache: Dict[Tuple, StageCost] = {}

    def stage_cost(
        self, module: str, layers: int, instances: int, seq: int, context: int
    ) -> StageCost:
        key = (module, layers, instances, seq, context)
        cached = self._cost_cache.get(key)
        if cached is None:
            spec = self.arch.binding(module).spec
            cached = self.cost_model.stage_cost(
                self.cluster.gpu,
                spec,
                layers,
                instances,
                seq,
                tp=self.parallel.tp,
                context=context,
            )
            self._cost_cache[key] = cached
        return cached

    def _new_stage(
        self,
        key: SegmentKey,
        rank: int,
        pair_id: int,
        deps: Tuple[int, ...],
        p2p_bytes: float,
    ) -> StageTask:
        stage = StageTask(
            uid=len(self.stages),
            key=key,
            rank=rank,
            pair_id=pair_id,
            deps=deps,
            p2p_bytes=p2p_bytes,
        )
        self.stages.append(stage)
        return stage

    def emit_forward_chain(
        self,
        microbatch: Microbatch,
        module: str,
        sub_index: int,
        instances: int,
        entry_deps: Tuple[int, ...],
        entry_bytes: float,
    ) -> Tuple[List[int], List[int]]:
        """Emit the forward traversal of one sub-microbatch.

        Returns:
            (stage_uids in traversal order, pair_ids in traversal order).
        """
        binding = self.arch.binding(module)
        mp = self.plan.partition(module)
        p = self.plan.num_ranks
        _n, seq, context = module_workload(binding, microbatch)
        uids: List[int] = []
        pair_ids: List[int] = []
        prev_uid: Optional[int] = None
        hop_bytes = boundary_p2p_bytes(binding.spec, instances, seq)
        for segment in range(mp.num_segments):
            for rank in range(p):
                layers = mp.chunk_layers(segment, rank, p)
                cost = self.stage_cost(module, layers, instances, seq, context)
                pair = StagePair(
                    pair_id=len(self.pairs),
                    microbatch=microbatch.index,
                    module=module,
                    sub_index=sub_index,
                    chunk=segment,
                    rank=rank,
                    num_layers=layers,
                    cost=cost,
                    instances=instances,
                    seq=seq,
                    context=context,
                )
                self.pairs.append(pair)
                if prev_uid is None:
                    deps = entry_deps
                    p2p = entry_bytes
                else:
                    deps = (prev_uid,)
                    p2p = hop_bytes
                key = SegmentKey(
                    microbatch.index, module, sub_index, segment, Direction.FORWARD
                )
                stage = self._new_stage(key, rank, pair.pair_id, deps, p2p)
                prev_uid = stage.uid
                uids.append(stage.uid)
                pair_ids.append(pair.pair_id)
        return uids, pair_ids

    def emit_backward_chain(
        self,
        microbatch: Microbatch,
        module: str,
        sub_index: int,
        instances: int,
        fw_uids: List[int],
        fw_pair_ids: List[int],
        entry_deps: Tuple[int, ...],
        entry_bytes: float,
    ) -> List[int]:
        """Emit the backward traversal (reverse of the forward chain).

        Under decoupled backward (zero-bubble style), each position emits
        a dgrad stage — the only stage on the inter-rank critical path —
        plus a weight-gradient stage the scheduler may defer into
        bubbles; activations stay resident until the wgrad completes.
        """
        binding = self.arch.binding(module)
        mp = self.plan.partition(module)
        p = self.plan.num_ranks
        _n, seq, _context = module_workload(binding, microbatch)
        hop_bytes = boundary_p2p_bytes(binding.spec, instances, seq)
        uids: List[int] = []
        prev_uid: Optional[int] = None
        for position in range(len(fw_uids) - 1, -1, -1):
            segment, rank = divmod(position, p)
            fw_uid = fw_uids[position]
            if prev_uid is None:
                deps = tuple(entry_deps) + (fw_uid,)
                p2p = entry_bytes
            else:
                deps = (prev_uid, fw_uid)
                p2p = hop_bytes
            key = SegmentKey(
                microbatch.index, module, sub_index, segment, Direction.BACKWARD
            )
            if not self.decoupled_backward:
                stage = self._new_stage(key, rank, fw_pair_ids[position], deps, p2p)
                prev_uid = stage.uid
                uids.append(stage.uid)
                continue
            dgrad = self._new_stage(key, rank, fw_pair_ids[position], deps, p2p)
            dgrad.latency_share = DGRAD_SHARE
            dgrad.releases_memory = False
            wgrad = self._new_stage(
                key, rank, fw_pair_ids[position], (dgrad.uid,), 0.0
            )
            wgrad.latency_share = 1.0 - DGRAD_SHARE
            prev_uid = dgrad.uid
            uids.append(dgrad.uid)
            uids.append(wgrad.uid)
        return uids

    def emit_microbatch(
        self, microbatch: Microbatch, splits: Dict[str, List[int]]
    ) -> None:
        """Emit all stages of one microbatch, forward then backward."""
        levels = self.arch.levels()
        # Forward sweep, level by level.
        fw_chains: Dict[Tuple[str, int], Tuple[List[int], List[int]]] = {}
        level_exit_uids: List[List[int]] = []  # last fw uid of each sub, per level
        for level_index, level in enumerate(levels):
            exits: List[int] = []
            if level_index == 0:
                entry_deps: Tuple[int, ...] = ()
                entry_bytes = 0.0
            else:
                entry_deps = tuple(level_exit_uids[level_index - 1])
                entry_bytes = self._adapter_bytes(levels, level_index, microbatch)
            for binding in level:
                for sub_index, instances in enumerate(splits.get(binding.name, [])):
                    chain = self.emit_forward_chain(
                        microbatch,
                        binding.name,
                        sub_index,
                        instances,
                        entry_deps,
                        entry_bytes,
                    )
                    fw_chains[(binding.name, sub_index)] = chain
                    exits.append(chain[0][-1])
            level_exit_uids.append(exits)

        # Backward sweep, last level first.
        prev_level_bw_exit: List[int] = []
        for level_index in range(len(levels) - 1, -1, -1):
            exits = []
            entry_deps = tuple(prev_level_bw_exit)
            entry_bytes = (
                self._adapter_bytes(levels, level_index + 1, microbatch)
                if prev_level_bw_exit
                else 0.0
            )
            for binding in levels[level_index]:
                for sub_index, instances in enumerate(splits.get(binding.name, [])):
                    fw_uids, fw_pairs = fw_chains[(binding.name, sub_index)]
                    bw_uids = self.emit_backward_chain(
                        microbatch,
                        binding.name,
                        sub_index,
                        instances,
                        fw_uids,
                        fw_pairs,
                        entry_deps,
                        entry_bytes,
                    )
                    exits.append(bw_uids[-1])
            prev_level_bw_exit = exits

    def _adapter_bytes(self, levels, level_index: int, microbatch: Microbatch) -> float:
        """Bytes crossing the adapter into level ``level_index``."""
        if level_index >= len(levels):
            return 0.0
        target = levels[level_index][0]
        _n, seq, _ctx = module_workload(target, microbatch)
        return boundary_p2p_bytes(target.spec, 1, min(seq, 1 << 16))

    def static_bytes_per_rank(self) -> List[float]:
        """Weights + optimizer state resident on each pipeline rank."""
        p = self.plan.num_ranks
        static = [0.0] * p
        for binding in self.arch.bindings:
            mp = self.plan.partition(binding.name)
            per_layer = binding.spec.layer_parameters()
            for segment in range(mp.num_segments):
                for rank in range(p):
                    layers = mp.chunk_layers(segment, rank, p)
                    static[rank] += training_state_bytes(
                        layers * per_layer, tp=self.parallel.tp
                    )
            if binding.spec.vocab_size:
                embed = binding.spec.vocab_size * binding.spec.hidden_size
                static[0] += training_state_bytes(embed, tp=self.parallel.tp)
                static[p - 1] += training_state_bytes(embed, tp=self.parallel.tp)
        return static


def build_iteration_graph(
    arch: LMMArchitecture,
    plan: PartitionPlan,
    batch: GlobalBatch,
    cluster: ClusterSpec,
    parallel: ParallelConfig,
    cost_model: Optional[CostModel] = None,
    partitioner: Optional[ModalityPartitioner] = None,
    memory_utilization: float = MEMORY_UTILIZATION,
    decoupled_backward: bool = False,
) -> IterationGraph:
    """Construct the stage DAG for one training iteration.

    Args:
        arch: LMM architecture.
        plan: Offline partition plan (chunk placement, ``B_i``, ``K_i``).
        batch: The iteration's microbatch metadata.
        cluster: Hardware description.
        parallel: 3D-parallel layout.
        cost_model: Latency model (defaults to the uncalibrated analytic
            model).
        partitioner: Reused for the online sub-microbatch split; built on
            demand when omitted.
        memory_utilization: Fraction of HBM usable by training state.
        decoupled_backward: Split backward stages into input-gradient and
            deferrable weight-gradient stages (zero-bubble style) — the
            custom-schedule extension the paper's related-work section
            points at.
    """
    cost_model = cost_model or CostModel()
    if partitioner is None:
        partitioner = ModalityPartitioner(arch, cluster, parallel, cost_model)
    builder = _Builder(arch, plan, cluster, parallel, cost_model,
                       decoupled_backward=decoupled_backward)
    for microbatch in batch:
        splits = partitioner.split_microbatch(plan, microbatch)
        builder.emit_microbatch(microbatch, splits)
    graph = IterationGraph(
        num_ranks=parallel.pp,
        stages=builder.stages,
        pairs=builder.pairs,
        static_bytes_per_rank=builder.static_bytes_per_rank(),
        memory_limit_bytes=cluster.gpu.memory_bytes * memory_utilization,
        model_flops=iteration_flops(arch, batch),
    )
    return graph
