"""Greedy dual-queue pipeline stage interleaving (section 5.2).

Builds a per-rank execution order from stage priorities:

* Per rank, ready forward and backward stages live in two priority
  queues; ``t_start`` of a stage is the earliest time its inputs arrive.
* The scheduler repeatedly picks the rank whose earliest schedulable
  stage is soonest, then — when both a forward and a backward stage are
  ready before the rank goes idle — alternates forward/backward like
  Megatron's 1F1B to bound activation memory; otherwise it greedily takes
  the stage with the smallest ``t_start`` to minimise the bubble.
* When a rank's activation memory would exceed the limit, its forward
  queue is temporarily disabled until backward stages free memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cluster.topology import ClusterSpec, ParallelConfig
from repro.core.stages import Direction, IterationGraph, StageTask
from repro.sim.costmodel import CostModel
from repro.sim.kernel import P2PTable

_INF = float("inf")


@dataclass
class InterleaveResult:
    """Output of the greedy interleaver."""

    order: List[List[int]]
    start_ms: List[float]
    end_ms: List[float]
    total_ms: float
    memory_forced: bool = False  # True if the memory cap had to be broken


class _RankState:
    """Mutable scheduling state of one pipeline rank."""

    __slots__ = ("ready_fw", "ready_bw", "clock", "act_bytes", "last_dir", "order")

    def __init__(self, static_bytes: float) -> None:
        self.ready_fw: List[int] = []
        self.ready_bw: List[int] = []
        self.clock = 0.0
        self.act_bytes = static_bytes
        self.last_dir = Direction.BACKWARD  # so the first pick prefers forward
        self.order: List[int] = []


def interleave_stages(
    graph: IterationGraph,
    cluster: ClusterSpec,
    parallel: ParallelConfig,
    cost_model: Optional[CostModel] = None,
    respect_memory: bool = True,
    priorities: Optional[List[int]] = None,
    greedy_fill: bool = True,
    p2p: Optional[P2PTable] = None,
) -> InterleaveResult:
    """Run the dual-queue greedy algorithm over a prioritised graph.

    Higher priority wins ties among simultaneously-ready stages.  When
    ``priorities`` (indexed by stage uid) is omitted, each stage's own
    ``priority`` attribute is used — passing an explicit array keeps the
    graph immutable, which makes concurrent rollouts safe (section 6.2).

    ``greedy_fill=False`` disables the bubble-filling rule: when nothing
    is ready before the rank idles, the stage that comes next in program
    order is awaited instead of the earliest-arriving one.  This models
    static Megatron-style sequencing and is used by the Table 5 ablation
    to isolate the interleaving algorithm's contribution.
    """
    cost_model = cost_model or CostModel()
    n = len(graph.stages)
    stages = graph.stages
    if priorities is None:
        priorities = [s.priority for s in stages]
    latency = [graph.latency_ms(s) for s in stages]
    resident = [graph.resident_bytes(s) for s in stages]
    pending = [len(s.deps) for s in stages]
    t_start = [0.0 if not s.deps else _INF for s in stages]
    start = [0.0] * n
    end = [0.0] * n
    done = [False] * n

    limit = graph.memory_limit_bytes
    ranks = [_RankState(graph.static_bytes_per_rank[r]) for r in range(graph.num_ranks)]
    for s in stages:
        if not s.deps:
            _enqueue(ranks[s.rank], s)

    if p2p is None:
        p2p = P2PTable(cluster, parallel, cost_model)
    p2p_ms = p2p.latency_ms

    memory_forced = False
    scheduled = 0
    while scheduled < n:
        choice = _pick(graph, ranks, t_start, resident, limit, respect_memory,
                       priorities, greedy_fill)
        if choice is None:
            # Every rank is memory-blocked; force the globally earliest
            # forward stage to guarantee progress.
            choice = _pick(graph, ranks, t_start, resident, limit, False,
                           priorities, greedy_fill)
            memory_forced = True
            if choice is None:
                raise RuntimeError("interleaver stalled with stages remaining")
        rank_id, uid = choice
        state = ranks[rank_id]
        stage = stages[uid]
        (state.ready_fw if stage.is_forward else state.ready_bw).remove(uid)
        begin = max(state.clock, t_start[uid])
        start[uid] = begin
        end[uid] = begin + latency[uid]
        state.clock = end[uid]
        state.order.append(uid)
        state.last_dir = stage.direction
        if stage.is_forward:
            state.act_bytes += resident[uid]
        elif stage.releases_memory:
            state.act_bytes -= resident[uid]
        done[uid] = True
        scheduled += 1
        for succ_uid in graph.dependents[uid]:
            pending[succ_uid] -= 1
            if pending[succ_uid] == 0:
                succ = stages[succ_uid]
                arrival = 0.0
                for dep in succ.deps:
                    dep_stage = stages[dep]
                    arrival = max(
                        arrival,
                        end[dep] + p2p_ms(dep_stage.rank, succ.rank, succ.p2p_bytes),
                    )
                t_start[succ_uid] = arrival
                _enqueue(ranks[succ.rank], succ)

    total = max(end) if end else 0.0
    return InterleaveResult(
        order=[state.order for state in ranks],
        start_ms=start,
        end_ms=end,
        total_ms=total,
        memory_forced=memory_forced,
    )


def _enqueue(state: _RankState, stage: StageTask) -> None:
    if stage.is_forward:
        state.ready_fw.append(stage.uid)
    else:
        state.ready_bw.append(stage.uid)


def _pick(
    graph: IterationGraph,
    ranks: List[_RankState],
    t_start: List[float],
    resident: List[float],
    limit: float,
    respect_memory: bool,
    priorities: List[int],
    greedy_fill: bool = True,
) -> Optional[Tuple[int, int]]:
    """Choose (rank, stage uid) per the dual-queue policy; None if stuck."""
    best_rank = -1
    best_t = _INF
    for rank_id, state in enumerate(ranks):
        fw_ok = _fw_allowed(state, resident, limit, respect_memory)
        t_min = _INF
        for uid in state.ready_bw:
            if t_start[uid] < t_min:
                t_min = t_start[uid]
        if fw_ok:
            for uid in state.ready_fw:
                if t_start[uid] < t_min:
                    t_min = t_start[uid]
        if t_min < best_t:
            best_t = t_min
            best_rank = rank_id
    if best_rank < 0 or best_t == _INF:
        return None

    state = ranks[best_rank]
    stages = graph.stages
    t_last = state.clock
    fw_ok = _fw_allowed(state, resident, limit, respect_memory)

    def ready_before(uids: List[int]) -> List[int]:
        return [u for u in uids if t_start[u] <= t_last]

    fw_ready = ready_before(state.ready_fw) if fw_ok else []
    if respect_memory and fw_ready:
        fw_ready = [
            u for u in fw_ready if state.act_bytes + resident[u] <= limit
        ]
    bw_ready = ready_before(state.ready_bw)

    if fw_ready and bw_ready:
        # 1F1B alternation: flip relative to the last scheduled kind.
        pool = bw_ready if state.last_dir is Direction.FORWARD else fw_ready
    elif fw_ready or bw_ready:
        pool = fw_ready or bw_ready
    else:
        # Nothing ready before the rank idles: take the earliest stage.
        candidates = list(state.ready_bw)
        if fw_ok:
            if respect_memory:
                candidates += [
                    u
                    for u in state.ready_fw
                    if state.act_bytes + resident[u] <= limit
                ]
            else:
                candidates += state.ready_fw
        if not candidates:
            return None
        if greedy_fill:
            earliest = min(t_start[u] for u in candidates)
            pool = [u for u in candidates if t_start[u] == earliest]
        else:
            pool = [min(candidates)]  # static program order

    uid = max(pool, key=lambda u: (priorities[u], -u))
    return best_rank, uid


def _fw_allowed(
    state: _RankState, resident: List[float], limit: float, respect_memory: bool
) -> bool:
    """Whether the rank's forward queue is enabled (memory headroom)."""
    if not state.ready_fw:
        return False
    if not respect_memory:
        return True
    cheapest = min(resident[u] for u in state.ready_fw)
    return state.act_bytes + cheapest <= limit
