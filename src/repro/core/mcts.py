"""Pipeline segment reordering via Monte Carlo tree search (section 5.1).

The search space is the permutation of *segment groups* — the paper's
optimization collapses segments of the same (microbatch, module,
direction) to one orderable unit with a fixed internal order.  A sequence
position ``i`` confers priority ``n - i``; priorities steer the greedy
interleaver (section 5.2).

MCTS builds a tree over sequence prefixes.  Each node keeps the best
score observed among its descendants; selection follows the upper
confidence bound ``s_v**alpha + beta * sqrt(log(N_x) / N_v)``; rollouts
randomly complete the sequence and evaluate it end-to-end.

DFS and purely random exploration are provided as the Fig. 11 baselines.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.stages import GroupKey

Evaluator = Callable[[Sequence[GroupKey]], float]


@dataclass
class ReorderResult:
    """Outcome of an ordering search.

    Attributes:
        ordering: Best group sequence found (first = highest priority).
        best_ms: Its evaluated iteration time.
        evaluations: Number of evaluator calls.
        trace: ``(elapsed_seconds, evaluations, best_ms)`` checkpoints,
            recorded whenever the incumbent improves (Fig. 11's
            search-progress curves).
    """

    ordering: List[GroupKey]
    best_ms: float
    evaluations: int
    trace: List[Tuple[float, int, float]] = field(default_factory=list)

    def priorities(self) -> Dict[GroupKey, int]:
        """Position-based priorities: earlier groups get higher values."""
        n = len(self.ordering)
        return {g: n - i for i, g in enumerate(self.ordering)}


class _Node:
    """One MCTS tree node (a sequence prefix)."""

    __slots__ = ("children", "untried", "visits", "best_score")

    def __init__(self, remaining: Sequence[GroupKey]) -> None:
        self.children: Dict[GroupKey, "_Node"] = {}
        self.untried: List[GroupKey] = list(remaining)
        self.visits = 0
        self.best_score = -math.inf


class _SearchState:
    """Bookkeeping shared by all search strategies."""

    def __init__(self, evaluator: Evaluator, sign: float) -> None:
        self.evaluator = evaluator
        self.sign = sign
        self.best_ms = math.inf
        self.best_ordering: Optional[List[GroupKey]] = None
        self.evaluations = 0
        self.trace: List[Tuple[float, int, float]] = []
        self.t0 = time.monotonic()
        self.lock = threading.Lock()

    def evaluate(self, ordering: Sequence[GroupKey]) -> float:
        """Evaluate an ordering; returns a maximisation score."""
        ms = self.evaluator(ordering)
        with self.lock:
            self.evaluations += 1
            effective = ms * (1.0 if self.sign > 0 else -1.0)
            if effective < self.best_ms:
                self.best_ms = effective
                self.best_ordering = list(ordering)
                self.trace.append(
                    (time.monotonic() - self.t0, self.evaluations, ms)
                )
        return -ms * self.sign  # maximise: lower time is better when sign=+1

    def result(self) -> ReorderResult:
        if self.best_ordering is None:
            raise RuntimeError("search made no evaluations")
        best_ms = self.best_ms if self.sign > 0 else -self.best_ms
        return ReorderResult(
            ordering=self.best_ordering,
            best_ms=best_ms,
            evaluations=self.evaluations,
            trace=self.trace,
        )


def natural_ordering(groups: Sequence[GroupKey]) -> List[GroupKey]:
    """The no-search default: microbatch-major, forward first.

    Approximates Megatron's 1F1B visit order and is what "DIP (no-opt)"
    uses in the Fig. 8b ablation.
    """
    return sorted(
        groups,
        key=lambda g: (g.microbatch, g.direction.value != "fw", g.module),
    )


def align_seed_ordering(
    seed: Optional[Sequence[GroupKey]], groups: Sequence[GroupKey]
) -> Optional[List[GroupKey]]:
    """Fit a (possibly foreign) seed ordering onto ``groups``.

    Keeps the seed's relative order for groups that exist here, drops
    stale ones, and appends uncovered groups in natural order — so a
    warm start from a *similar* cached graph always yields a valid
    permutation.  Returns ``None`` when there is nothing to keep.
    """
    if seed is None:
        return None
    present = set(groups)
    aligned: List[GroupKey] = []
    taken = set()
    for key in seed:
        if key in present and key not in taken:
            aligned.append(key)
            taken.add(key)
    if not aligned:
        return None
    aligned.extend(g for g in natural_ordering(groups) if g not in taken)
    return aligned


def _validate_seed(
    seed: Sequence[GroupKey], items: Sequence[GroupKey]
) -> List[GroupKey]:
    seed_list = list(seed)
    if len(seed_list) != len(items) or set(seed_list) != set(items):
        raise ValueError(
            "seed_ordering must be a permutation of the searched groups "
            f"(got {len(seed_list)} keys for {len(items)} groups); align it "
            "with align_seed_ordering() first"
        )
    return seed_list


def mcts_reorder(
    groups: Sequence[GroupKey],
    evaluator: Evaluator,
    budget_evaluations: int = 200,
    time_budget_s: Optional[float] = None,
    rollouts_per_expansion: int = 4,
    alpha: float = 1.0,
    beta: float = 0.35,
    seed: int = 0,
    invert: bool = False,
    num_workers: int = 1,
    seed_ordering: Optional[Sequence[GroupKey]] = None,
) -> ReorderResult:
    """Search group orderings with MCTS (the DIP default).

    Args:
        groups: The orderable segment groups.
        evaluator: Maps a full ordering to iteration milliseconds.
        budget_evaluations: Evaluator-call budget (deterministic).
        time_budget_s: Optional wall-clock budget; whichever limit hits
            first stops the search.
        rollouts_per_expansion: Random completions evaluated per MCTS
            iteration (the paper uses ~10 trials).
        alpha / beta: UCB hyper-parameters.
        seed: RNG seed.
        invert: Maximise iteration time instead (the Fig. 9 worst-case
            schedule derivation).
        num_workers: Worker threads sharing the tree (section 6.2); each
            performs full rollouts between lock-protected tree updates.
        seed_ordering: Optional warm-start permutation of ``groups``
            (e.g. the winning ordering of a similar cached graph).  It is
            evaluated first — seeding the incumbent — and its path is
            expanded into the tree with its score backpropagated, so
            selection starts biased toward the prior best instead of
            uniform.
    """
    state = _SearchState(evaluator, sign=-1.0 if invert else 1.0)
    items = list(groups)
    if not items:
        raise ValueError("no groups to order")
    root = _Node(items)
    tree_lock = threading.Lock()
    # Score normalisation bounds, updated as results arrive.
    seen_scores: List[float] = []

    if seed_ordering is not None:
        seed_list = _validate_seed(seed_ordering, items)
        score = state.evaluate(seed_list)
        seen_scores.append(score)
        # Expand the tree along the seed path and credit every node on
        # it, so UCB selection is primed with the prior best.
        node = root
        remaining = list(items)
        node.visits += 1
        node.best_score = max(node.best_score, score)
        for key in seed_list:
            if key in node.untried:
                node.untried.remove(key)
                node.children[key] = _Node(
                    [g for g in remaining if g != key]
                )
            node = node.children[key]
            remaining.remove(key)
            node.visits += 1
            node.best_score = max(node.best_score, score)

    def normalised(score: float) -> float:
        if not seen_scores:
            return 0.5
        lo, hi = min(seen_scores), max(seen_scores)
        if hi - lo < 1e-12:
            return 0.5
        return (score - lo) / (hi - lo)

    def out_of_budget() -> bool:
        if state.evaluations >= budget_evaluations:
            return True
        if time_budget_s is not None and time.monotonic() - state.t0 > time_budget_s:
            return True
        return False

    def worker(worker_seed: int) -> None:
        rng = np.random.default_rng(worker_seed)
        while not out_of_budget():
            # 1. Selection + 2. Expansion (tree under lock).
            with tree_lock:
                node = root
                prefix: List[GroupKey] = []
                remaining = list(items)
                while not node.untried and node.children:
                    best_child = None
                    best_ucb = -math.inf
                    log_nx = math.log(max(node.visits, 1))
                    for key, child in node.children.items():
                        exploit = normalised(child.best_score) ** alpha
                        explore = beta * math.sqrt(log_nx / max(child.visits, 1))
                        ucb = exploit + explore
                        if ucb > best_ucb:
                            best_ucb = ucb
                            best_child = (key, child)
                    key, node = best_child
                    prefix.append(key)
                    remaining.remove(key)
                path = [root]
                cursor = root
                for key in prefix:
                    cursor = cursor.children[key]
                    path.append(cursor)
                if node.untried:
                    pick = node.untried.pop(int(rng.integers(len(node.untried))))
                    child = _Node([g for g in remaining if g != pick])
                    node.children[pick] = child
                    prefix.append(pick)
                    remaining.remove(pick)
                    path.append(child)
                    node = child

            # 3. Rollouts (outside the lock).
            best_rollout = -math.inf
            for _ in range(rollouts_per_expansion):
                if out_of_budget():
                    break
                tail = list(remaining)
                rng.shuffle(tail)
                score = state.evaluate(prefix + tail)
                best_rollout = max(best_rollout, score)
            if best_rollout == -math.inf:
                break

            # 4. Backpropagation (under lock).
            with tree_lock:
                seen_scores.append(best_rollout)
                for visited in path:
                    visited.visits += 1
                    visited.best_score = max(visited.best_score, best_rollout)

    if num_workers <= 1:
        worker(seed)
    else:
        threads = [
            threading.Thread(target=worker, args=(seed + i,), daemon=True)
            for i in range(num_workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    return state.result()


def random_reorder(
    groups: Sequence[GroupKey],
    evaluator: Evaluator,
    budget_evaluations: int = 200,
    time_budget_s: Optional[float] = None,
    seed: int = 0,
    invert: bool = False,
    seed_ordering: Optional[Sequence[GroupKey]] = None,
) -> ReorderResult:
    """Uniformly random permutation sampling (Fig. 11 baseline).

    ``seed_ordering`` (a permutation of ``groups``) is evaluated first so
    a warm start can never do worse than the prior best.
    """
    state = _SearchState(evaluator, sign=-1.0 if invert else 1.0)
    rng = np.random.default_rng(seed)
    items = list(groups)
    if seed_ordering is not None and budget_evaluations > 0:
        state.evaluate(_validate_seed(seed_ordering, items))
    while state.evaluations < budget_evaluations:
        if time_budget_s is not None and time.monotonic() - state.t0 > time_budget_s:
            break
        ordering = list(items)
        rng.shuffle(ordering)
        state.evaluate(ordering)
    return state.result()


def dfs_reorder(
    groups: Sequence[GroupKey],
    evaluator: Evaluator,
    budget_evaluations: int = 200,
    time_budget_s: Optional[float] = None,
    seed: int = 0,
    invert: bool = False,
    seed_ordering: Optional[Sequence[GroupKey]] = None,
) -> ReorderResult:
    """Depth-first systematic enumeration (Fig. 11 baseline).

    Exhausts the first subtree of an arbitrary (seeded) base order before
    moving on — precisely the unguided behaviour the paper contrasts
    with MCTS.  The base order is shuffled so DFS does not accidentally
    start from a hand-tuned ordering — unless a warm-start
    ``seed_ordering`` is given, in which case it becomes the base order:
    the first leaf DFS evaluates is the seed itself and enumeration
    explores its neighbourhood first.
    """
    state = _SearchState(evaluator, sign=-1.0 if invert else 1.0)
    items = list(groups)
    if seed_ordering is not None:
        items = _validate_seed(seed_ordering, items)
    else:
        rng = np.random.default_rng(seed)
        rng.shuffle(items)

    def dfs(prefix: List[GroupKey], remaining: List[GroupKey]) -> bool:
        if state.evaluations >= budget_evaluations:
            return False
        if time_budget_s is not None and time.monotonic() - state.t0 > time_budget_s:
            return False
        if not remaining:
            state.evaluate(prefix)
            return True
        for i in range(len(remaining)):
            nxt = remaining[i]
            rest = remaining[:i] + remaining[i + 1:]
            if not dfs(prefix + [nxt], rest):
                return False
        return True

    dfs([], items)
    return state.result()
