"""Per-layer memory optimization (section 5.3 of the paper).

Offline, every stage pair receives up to ``S`` candidate strategies drawn
from the combinatorial per-layer space {keep, checkpoint, offload}: the
fastest candidate, the most memory-efficient one, and the most
time-efficient candidate inside each of ``S-2`` evenly spaced memory
buckets (selected with a multiple-choice knapsack).

Online, with the stage interleaving fixed, each pipeline rank solves an
ILP choosing one candidate per stage pair to minimise total latency under
the memory limit at every probe time — warm-started greedily and allowed
a small optimality gap, as in the paper.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core.stages import IterationGraph, StagePair, StrategyCandidate
from repro.sim.costmodel import StageCost
from repro.solver.bnb import (
    McIntervalProblem,
    greedy_warm_start,
    solve_mc_interval,
)
from repro.solver.mckp import mckp_min_latency

#: Default number of candidate strategies retained per stage pair.
DEFAULT_NUM_CANDIDATES = 10

#: Fraction of activations still resident under offloading (pinned
#: staging buffers).
OFFLOAD_RESIDENT_FRACTION = 0.05

#: Distinct (cost profile, layers, S) candidate sets remembered across
#: graphs.  Candidate generation is a pure function of the stage-pair
#: cost — signature-identical cache replays and repeated batch shapes
#: re-solve the same MCKP instances otherwise.
CANDIDATE_MEMO_CAPACITY = 4096

_candidate_memo: "OrderedDict[Tuple[StageCost, int, int], Tuple[StrategyCandidate, ...]]" = OrderedDict()
_candidate_memo_lock = threading.Lock()


def candidate_memo_size() -> int:
    """Entries currently held in the cross-graph candidate memo."""
    with _candidate_memo_lock:
        return len(_candidate_memo)


def clear_candidate_memo() -> None:
    """Drop the cross-graph candidate memo (tests / benchmarks)."""
    with _candidate_memo_lock:
        _candidate_memo.clear()


def _layer_options(pair: StagePair) -> Tuple[List[float], List[float], List[float]]:
    """Per-layer (fw_extra, bw_extra, resident) for keep/ckpt/offload."""
    layers = max(pair.num_layers, 1)
    act = pair.cost.act_bytes / layers
    ckpt = pair.cost.act_ckpt_bytes / layers
    recompute = pair.cost.recompute_ms / layers
    offload = pair.cost.offload_ms / layers
    fw_extra = [0.0, 0.0, offload]
    bw_extra = [0.0, recompute, offload]
    resident = [act, ckpt, act * OFFLOAD_RESIDENT_FRACTION + ckpt * 0.0]
    return fw_extra, bw_extra, resident


def generate_candidates(
    graph: IterationGraph,
    num_candidates: int = DEFAULT_NUM_CANDIDATES,
) -> None:
    """Populate ``pair.candidates`` for every stage pair in the graph.

    Candidates are a pure function of the pair's cost profile, so they
    are memoised at two levels:

    * **per graph object** — a second call with the same ``S`` is a
      no-op apart from resetting the selections, so cache replays and
      repeated searches over one graph never re-derive anything;
    * **across graphs** (:data:`CANDIDATE_MEMO_CAPACITY`-bounded LRU
      keyed on the frozen :class:`~repro.sim.costmodel.StageCost`) —
      signature-identical replays and repeated batch shapes reuse the
      solved candidate sets instead of re-running the MCKP sweeps.

    The memoised :class:`StrategyCandidate` values are frozen; each pair
    receives a fresh list around the shared instances.
    """
    if getattr(graph, "_candidates_key", None) == num_candidates:
        for pair in graph.pairs:
            pair.selected = 0
        return
    for pair in graph.pairs:
        key = (pair.cost, pair.num_layers, num_candidates)
        with _candidate_memo_lock:
            candidates = _candidate_memo.get(key)
            if candidates is not None:
                _candidate_memo.move_to_end(key)
        if candidates is None:
            candidates = tuple(_candidates_for_pair(pair, num_candidates))
            with _candidate_memo_lock:
                _candidate_memo[key] = candidates
                _candidate_memo.move_to_end(key)
                while len(_candidate_memo) > CANDIDATE_MEMO_CAPACITY:
                    _candidate_memo.popitem(last=False)
        pair.candidates = list(candidates)
        pair.selected = 0
    graph._candidates_key = num_candidates


def _candidates_for_pair(
    pair: StagePair, num_candidates: int
) -> List[StrategyCandidate]:
    """Build the candidate set for one stage pair."""
    layers = max(pair.num_layers, 1)
    fw_extra, bw_extra, resident = _layer_options(pair)

    def combo(n_keep: int, n_ckpt: int, n_off: int) -> StrategyCandidate:
        counts = (n_keep, n_ckpt, n_off)
        return StrategyCandidate(
            label=f"keep{n_keep}/ckpt{n_ckpt}/off{n_off}",
            fw_extra_ms=sum(c * fw_extra[k] for k, c in enumerate(counts)),
            bw_extra_ms=sum(c * bw_extra[k] for k, c in enumerate(counts)),
            resident_bytes=sum(c * resident[k] for k, c in enumerate(counts)),
        )

    fastest = combo(layers, 0, 0)
    # Most memory-efficient: whichever of all-ckpt / all-offload is smaller.
    all_ckpt = combo(0, layers, 0)
    all_off = combo(0, 0, layers)
    leanest = min((all_ckpt, all_off), key=lambda c: c.resident_bytes)

    chosen: List[StrategyCandidate] = [fastest, leanest]
    buckets = max(num_candidates - 2, 0)
    if buckets > 0 and fastest.resident_bytes > leanest.resident_bytes:
        span = fastest.resident_bytes - leanest.resident_bytes
        groups_lat = [[0.0, bw_extra[1], fw_extra[2] + bw_extra[2]]] * layers
        groups_mem = [[resident[0], resident[1], resident[2]]] * layers
        for b in range(buckets):
            upper = leanest.resident_bytes + span * (b + 1) / (buckets + 1)
            solved = mckp_min_latency(groups_lat, groups_mem, upper, resolution=256)
            if solved is None:
                continue
            selection, _total = solved
            counts = [selection.count(k) for k in range(3)]
            chosen.append(combo(counts[0], counts[1], counts[2]))

    # Deduplicate and keep the pareto frontier (resident vs extra time).
    unique: Dict[Tuple[float, float], StrategyCandidate] = {}
    for cand in chosen:
        key = (round(cand.resident_bytes, 3), round(cand.total_extra_ms, 6))
        unique.setdefault(key, cand)
    frontier = _pareto(list(unique.values()))
    frontier.sort(key=lambda c: -c.resident_bytes)  # fastest (biggest) first
    return frontier[:num_candidates]


def _pareto(candidates: List[StrategyCandidate]) -> List[StrategyCandidate]:
    """Drop candidates dominated in both residency and extra latency."""
    kept: List[StrategyCandidate] = []
    for cand in candidates:
        dominated = any(
            other.resident_bytes <= cand.resident_bytes
            and other.total_extra_ms <= cand.total_extra_ms
            and (
                other.resident_bytes < cand.resident_bytes
                or other.total_extra_ms < cand.total_extra_ms
            )
            for other in candidates
        )
        if not dominated:
            kept.append(cand)
    return kept


def apply_uniform_memory_policy(graph: IterationGraph) -> bool:
    """Megatron-style global memory policy: recompute everything or nothing.

    If holding every activation resident fits the worst case, keep them
    all; otherwise switch every pair to full checkpointing (the
    ``--recompute-granularity full`` switch).  This is the baseline that
    per-layer optimization (section 5.3) improves on.

    Returns:
        True when full recomputation was required.
    """
    # The uniform policy overwrites the candidate sets; a later
    # generate_candidates() on this graph must not be skipped.
    graph._candidates_key = None
    worst = list(graph.static_bytes_per_rank)
    for pair in graph.pairs:
        worst[pair.rank] += pair.cost.act_bytes
    needs_recompute = max(worst) > graph.memory_limit_bytes
    for pair in graph.pairs:
        if needs_recompute:
            pair.candidates = [
                StrategyCandidate(
                    label="full-recompute",
                    fw_extra_ms=0.0,
                    bw_extra_ms=pair.cost.recompute_ms,
                    resident_bytes=pair.cost.act_ckpt_bytes,
                )
            ]
        else:
            pair.candidates = [
                StrategyCandidate(
                    label="none",
                    fw_extra_ms=0.0,
                    bw_extra_ms=0.0,
                    resident_bytes=pair.cost.act_bytes,
                )
            ]
        pair.selected = 0
    return needs_recompute


@dataclass
class MemoptReport:
    """Result of the per-rank memory optimization pass."""

    extra_ms_before: float
    extra_ms_after: float
    per_rank_optimal: List[bool] = field(default_factory=list)
    per_rank_nodes: List[int] = field(default_factory=list)

    @property
    def improvement_ms(self) -> float:
        return self.extra_ms_before - self.extra_ms_after


def _rank_problem(
    graph: IterationGraph,
    rank: int,
    fw_start: Dict[int, float],
    bw_end: Dict[int, float],
) -> Tuple[List[int], McIntervalProblem]:
    """Build the section 5.3 ILP instance for one pipeline rank."""
    pair_ids = sorted(
        {
            graph.stages[uid].pair_id
            for uid in range(len(graph.stages))
            if graph.stages[uid].rank == rank
        }
    )
    index_of = {pid: i for i, pid in enumerate(pair_ids)}
    intervals = []
    latencies: List[List[float]] = []
    memories: List[List[float]] = []
    for pid in pair_ids:
        pair = graph.pairs[pid]
        s = fw_start.get(pid, 0.0)
        t = bw_end.get(pid, s)
        intervals.append((s, t))
        latencies.append([c.total_extra_ms for c in pair.candidates])
        memories.append([c.resident_bytes for c in pair.candidates])
    cliques: List[List[int]] = []
    for i, (s_i, _t_i) in enumerate(intervals):
        active = [
            j
            for j, (s_j, t_j) in enumerate(intervals)
            if s_j <= s_i <= t_j
        ]
        cliques.append(active)
    limit = graph.memory_limit_bytes - graph.static_bytes_per_rank[rank]
    return pair_ids, McIntervalProblem(
        latencies=latencies, memories=memories, cliques=cliques, limit=limit
    )


def optimize_memory(
    graph: IterationGraph,
    start_ms: Sequence[float],
    end_ms: Sequence[float],
    rel_gap: float = 0.05,
    exact: bool = True,
    node_limit: int = 20_000,
) -> MemoptReport:
    """Select per-pair strategies rank by rank (section 5.3).

    Args:
        graph: Iteration graph; ``pair.candidates`` must be populated.
        start_ms / end_ms: Tentative stage timestamps from the
            interleaver, defining each pair's residency interval.
        rel_gap: Allowed optimality gap (the paper permits 5%).
        exact: Run branch-and-bound after the greedy warm start; the
            searcher's inner loop disables this for speed and only the
            final schedule gets the exact pass.
        node_limit: Branch-and-bound node budget per rank.
    """
    fw_start: Dict[int, float] = {}
    bw_end: Dict[int, float] = {}
    for stage in graph.stages:
        if stage.is_forward:
            fw_start[stage.pair_id] = start_ms[stage.uid]
        else:
            bw_end[stage.pair_id] = end_ms[stage.uid]

    before = sum(p.strategy.total_extra_ms for p in graph.pairs)
    optimal_flags: List[bool] = []
    nodes: List[int] = []
    for rank in range(graph.num_ranks):
        pair_ids, problem = _rank_problem(graph, rank, fw_start, bw_end)
        if not pair_ids:
            optimal_flags.append(True)
            nodes.append(0)
            continue
        warm = greedy_warm_start(problem)
        if warm is None:
            # Even minimum memory violates the cap; fall back to the most
            # memory-efficient candidate everywhere.
            for pid in pair_ids:
                pair = graph.pairs[pid]
                pair.selected = min(
                    range(len(pair.candidates)),
                    key=lambda i: pair.candidates[i].resident_bytes,
                )
            optimal_flags.append(False)
            nodes.append(0)
            continue
        if exact:
            solution = solve_mc_interval(
                problem, warm_start=warm, rel_gap=rel_gap, node_limit=node_limit
            )
            selection = solution.selection
            optimal_flags.append(solution.optimal)
            nodes.append(solution.nodes_expanded)
        else:
            selection = warm
            optimal_flags.append(False)
            nodes.append(0)
        for pid, choice in zip(pair_ids, selection):
            graph.pairs[pid].selected = choice

    after = sum(p.strategy.total_extra_ms for p in graph.pairs)
    return MemoptReport(
        extra_ms_before=before,
        extra_ms_after=after,
        per_rank_optimal=optimal_flags,
        per_rank_nodes=nodes,
    )
