"""Modality-aware partitioner (section 4 of the paper).

Three responsibilities:

1. **Determine sub-microbatch size** ``B_i`` per modality module: the
   smallest size keeping at least 95% of the peak per-instance GPU
   efficiency observed across profiled sizes.
2. **Partition model chunks**: with module latencies ``T_1 <= ... <= T_n``
   (measured at their ``B_i``), module ``i`` receives
   ``K_i = floor(T_i / T_1)`` pipeline segments, i.e. ``P * K_i`` chunks
   of ``L_i / (P * K_i)`` consecutive layers (offline, before training).
3. **Construct sub-microbatches** online: a microbatch holding ``N_i``
   instances for module ``i`` splits into ``M_i = ceil(N_i / B_i)``
   uniformly sized sub-microbatches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cluster.topology import ClusterSpec, ParallelConfig
from repro.data.batching import Microbatch, module_is_splittable, module_workload
from repro.models.lmm import LMMArchitecture, ModuleBinding
from repro.sim.costmodel import CostModel


@dataclass(frozen=True)
class ModulePartition:
    """Partitioning decision for one modality module.

    Attributes:
        module: Module name.
        sub_batch_size: ``B_i`` in instances; ``None`` for unsplittable
            (packed-text) modules.
        num_segments: ``K_i`` pipeline segments per traversal.
        layers_per_chunk: Layer counts of the ``P * K_i`` model chunks, in
            traversal order (chunk ``c`` lives on rank ``c % P``).
    """

    module: str
    sub_batch_size: Optional[int]
    num_segments: int
    layers_per_chunk: Sequence[int]

    def chunk_layers(self, segment: int, rank: int, num_ranks: int) -> int:
        """Layer count of the chunk at (segment, rank)."""
        return self.layers_per_chunk[segment * num_ranks + rank]


@dataclass
class PartitionPlan:
    """The full offline partitioning of an LMM across pipeline ranks."""

    num_ranks: int
    modules: Dict[str, ModulePartition] = field(default_factory=dict)

    def partition(self, module: str) -> ModulePartition:
        return self.modules[module]

    def describe(self) -> str:
        parts = []
        for name, mp in self.modules.items():
            b = "packed" if mp.sub_batch_size is None else f"B={mp.sub_batch_size}"
            parts.append(f"{name}[{b},K={mp.num_segments}]")
        return " + ".join(parts)


def split_layers(num_layers: int, num_chunks: int) -> List[int]:
    """Distribute ``num_layers`` over ``num_chunks`` as evenly as possible.

    Earlier chunks receive the remainder, matching Megatron's convention.
    """
    if num_chunks < 1:
        raise ValueError("num_chunks must be >= 1")
    if num_layers < num_chunks:
        raise ValueError(
            f"cannot split {num_layers} layers into {num_chunks} chunks"
        )
    base, rem = divmod(num_layers, num_chunks)
    return [base + (1 if i < rem else 0) for i in range(num_chunks)]


class ModalityPartitioner:
    """Implements the paper's section 4 decisions against the simulator.

    Args:
        arch: The LMM being trained.
        cluster: Hardware description.
        parallel: 3D-parallel layout (``pp`` ranks, ``tp`` sharding).
        cost_model: Analytic latency model standing in for profiling runs.
        efficiency_threshold: Keep at least this fraction of peak
            per-instance efficiency when shrinking ``B_i`` (0.95 in the
            paper).
        max_segments: Safety cap on ``K_i``.
    """

    def __init__(
        self,
        arch: LMMArchitecture,
        cluster: ClusterSpec,
        parallel: ParallelConfig,
        cost_model: Optional[CostModel] = None,
        efficiency_threshold: float = 0.95,
        max_segments: int = 8,
    ) -> None:
        cluster.validate(parallel)
        self.arch = arch
        self.cluster = cluster
        self.parallel = parallel
        self.cost_model = cost_model or CostModel()
        self.efficiency_threshold = efficiency_threshold
        self.max_segments = max_segments

    # -- profiling -----------------------------------------------------------

    def _module_latency_ms(
        self, binding: ModuleBinding, instances: int, seq: int, context: int
    ) -> float:
        """Forward latency of the whole module at a given input shape."""
        cost = self.cost_model.stage_cost(
            self.cluster.gpu,
            binding.spec,
            binding.spec.num_layers,
            instances,
            seq,
            tp=self.parallel.tp,
            context=context,
        )
        return cost.forward_ms

    def profile_sub_batch_size(
        self, binding: ModuleBinding, reference: Microbatch
    ) -> Optional[int]:
        """Pick ``B_i`` by systematic profiling (section 4).

        Returns ``None`` for unsplittable modules.  Otherwise scans sizes
        ``1..N_max`` and returns the smallest size whose per-instance
        latency stays within ``1/efficiency_threshold`` of the best.
        """
        if not module_is_splittable(binding):
            return None
        max_instances, seq, context = module_workload(binding, reference)
        if max_instances < 1:
            raise ValueError(
                f"reference microbatch has no instances for {binding.name}"
            )
        per_instance = {}
        for size in range(1, max_instances + 1):
            latency = self._module_latency_ms(binding, size, seq, context)
            per_instance[size] = latency / size
        peak = min(per_instance.values())
        for size in range(1, max_instances + 1):
            if per_instance[size] <= peak / self.efficiency_threshold:
                return size
        return max_instances

    # -- offline planning -----------------------------------------------------

    def plan(self, reference: Microbatch) -> PartitionPlan:
        """Produce the offline model-chunk partitioning.

        ``reference`` should be a representative (near-capacity)
        microbatch; the paper profiles with full packed batches.
        """
        p = self.parallel.pp
        sub_sizes: Dict[str, Optional[int]] = {}
        latencies: Dict[str, float] = {}
        for binding in self.arch.bindings:
            b = self.profile_sub_batch_size(binding, reference)
            sub_sizes[binding.name] = b
            instances, seq, context = module_workload(binding, reference)
            measured = b if b is not None else instances
            measured = max(1, measured)
            latencies[binding.name] = self._module_latency_ms(
                binding, measured, seq, context
            )

        t_min = min(latencies.values())
        plan = PartitionPlan(num_ranks=p)
        for binding in self.arch.bindings:
            name = binding.name
            k = max(1, int(latencies[name] / t_min))
            k = min(k, self.max_segments, binding.spec.num_layers // p)
            k = max(k, 1)
            num_chunks = p * k
            if binding.spec.num_layers < num_chunks:
                k = max(1, binding.spec.num_layers // p)
                num_chunks = p * k
            layers = split_layers(binding.spec.num_layers, num_chunks)
            plan.modules[name] = ModulePartition(
                module=name,
                sub_batch_size=sub_sizes[name],
                num_segments=k,
                layers_per_chunk=layers,
            )
        return plan

    # -- online sub-microbatch construction -----------------------------------

    def split_microbatch(
        self, plan: PartitionPlan, microbatch: Microbatch
    ) -> Dict[str, List[int]]:
        """Split one microbatch into per-module instance counts.

        Returns:
            For each module name, the list of sub-microbatch instance
            counts (``M_i`` entries, uniformly partitioned).  Unsplittable
            modules get a single entry.
        """
        out: Dict[str, List[int]] = {}
        for binding in self.arch.bindings:
            mp = plan.partition(binding.name)
            instances, _seq, _ctx = module_workload(binding, microbatch)
            if instances == 0:
                out[binding.name] = []
                continue
            if mp.sub_batch_size is None:
                out[binding.name] = [instances]
                continue
            num_subs = -(-instances // mp.sub_batch_size)  # ceil division
            base, rem = divmod(instances, num_subs)
            out[binding.name] = [base + (1 if i < rem else 0) for i in range(num_subs)]
        return out


def fixed_sub_batch_plan(
    partitioner: ModalityPartitioner,
    reference: Microbatch,
    overrides: Dict[str, int],
) -> PartitionPlan:
    """A partition plan with forced ``B_i`` values (the Fig. 9 sweep).

    ``overrides`` maps module names to sub-microbatch sizes; other modules
    keep their profiled values.
    """
    plan = partitioner.plan(reference)
    p = partitioner.parallel.pp
    for name, size in overrides.items():
        binding = partitioner.arch.binding(name)
        old = plan.modules[name]
        instances, seq, context = module_workload(binding, reference)
        latency = partitioner._module_latency_ms(binding, max(1, size), seq, context)
        # Re-derive K against the fastest module's latency at its own size.
        others = [
            partitioner._module_latency_ms(
                b,
                max(1, plan.modules[b.name].sub_batch_size or 1)
                if b.name != name
                else max(1, size),
                *module_workload(b, reference)[1:],
            )
            for b in partitioner.arch.bindings
        ]
        t_min = min(others + [latency])
        k = max(1, min(int(latency / t_min), partitioner.max_segments,
                       binding.spec.num_layers // p))
        plan.modules[name] = ModulePartition(
            module=name,
            sub_batch_size=size,
            num_segments=k,
            layers_per_chunk=split_layers(binding.spec.num_layers, p * k),
        )
    return plan
