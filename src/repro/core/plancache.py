"""LRU plan cache with a near-miss warm-start tier.

Sits between the online planner and the schedule searcher:

* **Exact hit** — the incoming graph's canonical signature matches a
  cached entry: the cached schedule (per-rank order, memory-strategy
  selections, group ordering) is *replayed* onto the new graph through
  the signature's uid/pair translation tables.  Replay costs one
  pipeline simulation instead of a full MCTS + memopt-ILP search.
* **Near miss** — no exact match, but a cached signature with the same
  planning context lies within ``near_miss_max_distance`` of the new
  graph's feature vector: its winning group ordering is remapped onto
  the new graph and used to *warm-start* the search
  (:meth:`repro.core.searcher.ScheduleSearcher.search` with
  ``seed_ordering``), so the tree is primed with the prior best instead
  of starting uniform.
* **Miss** — cold search; the result is stored for future iterations.

All telemetry (hits, near hits, misses, evictions) is tracked in
:class:`CacheStats`; the cache is thread-safe so the planner's
asynchronous search thread can share it with the caller.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.signature import (
    SIGNATURE_VERSION,
    BlockInfo,
    GraphSignature,
    feature_distance,
)
from repro.core.stages import GroupKey, IterationGraph

#: Default number of cached plans the planner keeps.
DEFAULT_CACHE_SIZE = 64

#: Default feature-distance ceiling for the near-miss tier.
DEFAULT_NEAR_MISS_DISTANCE = 0.25

#: Bumped whenever the persisted cache-file schema changes shape.
CACHE_FILE_VERSION = 1
CACHE_FILE_FORMAT = "repro-plan-cache"

#: Process umask, probed once at import (single-threaded) — os.umask is
#: process-global, so probing it per save would race against other
#: threads of a live service creating files.
_UMASK = os.umask(0)
os.umask(_UMASK)

CanonicalGroup = Tuple[int, str, str]


def atomic_write_json(path: str, payload: Dict) -> str:
    """Dump ``payload`` to ``path`` atomically (temp + fsync + replace).

    The shared write discipline of every persisted planning artifact
    (cache file, disk-tier plan files): the payload lands in a temporary
    file in the destination directory, is flushed + fsynced, then
    renamed over ``path`` with :func:`os.replace`.  A crash mid-dump
    leaves either the previous complete file or the new complete file —
    never a truncated JSON document.  Concurrent writers to the same
    path are safe: each replace publishes one complete file.
    """
    path = os.path.abspath(path)
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp",
        dir=os.path.dirname(path),
    )
    try:
        # mkstemp creates 0600; restore what open(path, "w") would have
        # produced (existing file's mode, else umask default) so a
        # shared file stays readable after the rename.
        try:
            mode = os.stat(path).st_mode & 0o777
        except OSError:
            mode = 0o666 & ~_UMASK
        os.chmod(tmp_path, mode)
        with os.fdopen(fd, "w") as f:
            json.dump(payload, f)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        # Never leave the temp file behind on a failed dump; the
        # previous file (if any) is untouched.
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    return path


@dataclass
class CachedPlan:
    """One cached schedule, stored in canonical (signature) space."""

    signature: GraphSignature
    ordering: List[CanonicalGroup]
    order: List[List[int]]  # per rank, canonical stage uids
    selected: List[int]  # per canonical pair, chosen strategy index
    total_ms: float
    interleave_ms: float
    evaluations: int
    label: str = ""


@dataclass
class CacheStats:
    """Hit/miss/eviction telemetry.

    ``hits`` counts every exact hit regardless of the tier that served
    it; ``disk_hits`` counts the subset answered by the on-disk tier
    (so ``hits - disk_hits`` hits came straight from memory).  Keeping
    ``hits`` tier-blind is the accounting half of the tier-parity
    invariant: which tier serves a plan must not change what callers
    observe.
    """

    hits: int = 0
    near_hits: int = 0
    misses: int = 0
    evictions: int = 0
    stores: int = 0
    invalidations: int = 0
    disk_hits: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.near_hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered without a cold search."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    @property
    def warm_rate(self) -> float:
        """Fraction of lookups answered with at least a warm start."""
        if self.lookups == 0:
            return 0.0
        return (self.hits + self.near_hits) / self.lookups

    def describe(self) -> str:
        text = (
            f"{self.hits} hits, {self.near_hits} near, {self.misses} misses "
            f"({self.hit_rate * 100:.0f}% exact, {self.warm_rate * 100:.0f}% "
            f"warm), {self.evictions} evictions"
        )
        if self.disk_hits:
            text += f", {self.disk_hits} from disk"
        if self.invalidations:
            text += f", {self.invalidations} invalidated"
        return text


@dataclass
class CacheLookup:
    """Outcome of one :meth:`PlanCache.lookup`.

    ``tier`` labels which tier answered an exact hit — ``"memory"`` or
    ``"disk"`` — and is ``None`` for near misses and misses.
    """

    kind: str  # "hit" | "near" | "miss"
    entry: Optional[CachedPlan] = None
    distance: float = float("inf")
    tier: Optional[str] = None
    #: Wall-clock seconds the lookup took (includes any disk-tier read
    #: and promotion) — the request tracer's cache-lookup span duration.
    elapsed_s: float = 0.0


class PlanCache:
    """LRU signature → :class:`CachedPlan` store with near-miss retrieval.

    Optionally two-tiered: the in-memory LRU is the hot set, backed by a
    shared on-disk tier (:class:`repro.core.cachetier.DiskCacheTier`, or
    anything with the same ``get``/``put``/``invalidate_contexts``
    surface).  A memory miss consults disk before reporting a miss; a
    disk hit is promoted into memory; a fresh store writes through to
    both tiers.  Near-miss retrieval stays memory-only — warm-start
    seeds come from the hot set, a full directory scan per miss would
    put disk latency on the search path for a heuristic.

    Args:
        capacity: Maximum number of cached plans (LRU eviction beyond).
        near_miss: Enable the warm-start tier.
        near_miss_max_distance: Feature-distance ceiling for a cached
            entry to count as a near miss.
        disk_tier: Optional shared on-disk tier behind the memory LRU.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CACHE_SIZE,
        near_miss: bool = True,
        near_miss_max_distance: float = DEFAULT_NEAR_MISS_DISTANCE,
        disk_tier=None,
    ) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self.near_miss = near_miss
        self.near_miss_max_distance = near_miss_max_distance
        self.disk_tier = disk_tier
        self.stats = CacheStats()
        self._entries: "OrderedDict[str, CachedPlan]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, digest: str) -> bool:
        return digest in self._entries

    def lookup(self, signature: GraphSignature,
               allow_near: bool = True) -> CacheLookup:
        """Find the cached plan for ``signature`` (exact, then nearest).

        ``allow_near=False`` restricts the lookup to exact hits — the
        planner passes it when the searcher cannot consume a seed
        ordering (natural strategy, single-group graph), so near-hit
        telemetry only counts retrievals that actually warm a search.
        """
        start = time.perf_counter()
        result = self._lookup(signature, allow_near)
        result.elapsed_s = time.perf_counter() - start
        return result

    def _lookup(self, signature: GraphSignature,
                allow_near: bool) -> CacheLookup:
        with self._lock:
            entry = self._entries.get(signature.digest)
            if entry is not None:
                self._entries.move_to_end(signature.digest)
                self.stats.hits += 1
                return CacheLookup(kind="hit", entry=entry, distance=0.0,
                                   tier="memory")
            if self.disk_tier is not None:
                entry = self.disk_tier.get(signature.digest)
                if entry is not None:
                    # Promote into the hot set so the next lookup is a
                    # memory hit.  A promotion is not a fresh store
                    # (stats.stores describes plans *produced*), but it
                    # does respect capacity like one.
                    self._entries[signature.digest] = entry
                    while len(self._entries) > self.capacity:
                        self._entries.popitem(last=False)
                        self.stats.evictions += 1
                    self.stats.hits += 1
                    self.stats.disk_hits += 1
                    return CacheLookup(kind="hit", entry=entry,
                                       distance=0.0, tier="disk")
            if self.near_miss and allow_near:
                best: Optional[CachedPlan] = None
                best_distance = float("inf")
                for candidate in self._entries.values():
                    sig = candidate.signature
                    if sig.context_digest != signature.context_digest:
                        continue
                    if sig.num_ranks != signature.num_ranks:
                        continue
                    if not candidate.ordering:
                        continue  # no transferable ordering to warm with
                    distance = feature_distance(sig.features,
                                                signature.features)
                    if distance < best_distance:
                        best_distance = distance
                        best = candidate
                if best is not None and best_distance <= self.near_miss_max_distance:
                    self._entries.move_to_end(best.signature.digest)
                    self.stats.near_hits += 1
                    return CacheLookup(kind="near", entry=best,
                                       distance=best_distance)
            self.stats.misses += 1
            return CacheLookup(kind="miss")

    def store(self, plan: CachedPlan) -> None:
        """Insert (or refresh) a plan, evicting the LRU entry if full.

        With a disk tier attached the store writes through: memory gets
        the hot copy, disk gets the shared one (atomically, outside the
        cache lock — sibling shards may read it the moment it lands).
        """
        with self._lock:
            digest = plan.signature.digest
            if digest in self._entries:
                self._entries.move_to_end(digest)
            self._entries[digest] = plan
            self.stats.stores += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
        if self.disk_tier is not None:
            self.disk_tier.put(plan)

    def export_metrics(self, registry) -> None:
        """Bridge :class:`CacheStats` into a metrics registry.

        Absolute values via ``set_value`` — the cache keeps counting in
        its own stats object and every snapshot re-exports the current
        totals, so repeated ``metrics`` RPCs never double-count.  The
        tier-labelled ``repro_cache_hits_total`` series sum to
        ``repro_cache_lookups_total{result="hit"}`` by construction
        (``hits`` is tier-blind, ``disk_hits`` is its disk subset) —
        the scrape checker asserts exactly that.
        """
        stats = self.stats
        hits = registry.counter(
            "repro_cache_hits_total",
            "Exact plan-cache hits by serving tier", labels=("tier",))
        hits.set_value(stats.hits - stats.disk_hits, tier="memory")
        hits.set_value(stats.disk_hits, tier="disk")
        lookups = registry.counter(
            "repro_cache_lookups_total",
            "Plan-cache lookups by result", labels=("result",))
        lookups.set_value(stats.hits, result="hit")
        lookups.set_value(stats.near_hits, result="near")
        lookups.set_value(stats.misses, result="miss")
        for name, value, help_text in (
            ("repro_cache_evictions_total", stats.evictions,
             "LRU evictions from the in-memory tier"),
            ("repro_cache_stores_total", stats.stores,
             "Fresh plans stored (write-through when a disk tier "
             "is attached)"),
            ("repro_cache_invalidations_total", stats.invalidations,
             "Entries dropped by context invalidation"),
        ):
            registry.counter(name, help_text).set_value(value)
        registry.gauge(
            "repro_cache_entries",
            "Plans currently resident in the in-memory tier",
        ).set(len(self._entries))
        if self.disk_tier is not None and hasattr(self.disk_tier,
                                                  "export_metrics"):
            self.disk_tier.export_metrics(registry)

    def invalidate_context(self, context_digest: str) -> int:
        """Drop every entry stored under ``context_digest``.

        The online-recalibration path: when a job's cost model is refit,
        plans searched under the old model keep their old context digest
        — they could never match a new lookup, but they still occupy LRU
        capacity and would keep serving any planner left on the stale
        model.  Returns the number of entries removed (also counted in
        ``stats.invalidations``).
        """
        return self.invalidate_contexts((context_digest,))

    def invalidate_contexts(self, context_digests) -> int:
        """Drop entries under any of ``context_digests`` in one pass.

        With a disk tier attached the stale plan files are unlinked too
        (``stats.invalidations`` keeps counting memory entries only; the
        tier tracks its own).  Returns the total removed across tiers.
        """
        context_digests = set(context_digests)
        with self._lock:
            stale = [
                digest for digest, plan in self._entries.items()
                if plan.signature.context_digest in context_digests
            ]
            for digest in stale:
                del self._entries[digest]
            self.stats.invalidations += len(stale)
            removed = len(stale)
        if self.disk_tier is not None:
            removed += self.disk_tier.invalidate_contexts(context_digests)
        return removed

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    # -- persistence ---------------------------------------------------------

    def to_payload(self) -> Dict:
        """JSON-serialisable snapshot (entries in LRU -> MRU order)."""
        with self._lock:
            return {
                "format": CACHE_FILE_FORMAT,
                "version": CACHE_FILE_VERSION,
                "signature_version": SIGNATURE_VERSION,
                "capacity": self.capacity,
                "near_miss": self.near_miss,
                "near_miss_max_distance": self.near_miss_max_distance,
                "entries": [plan_to_dict(p) for p in self._entries.values()],
            }

    def save(self, path: str) -> str:
        """Persist the memory tier to ``path`` so restarts keep
        amortization.  The write is atomic (see
        :func:`atomic_write_json`): a crash mid-dump leaves either the
        previous complete file or the new complete file on disk — never
        a truncated JSON document that would silently lose the whole
        cache on restart.
        """
        return atomic_write_json(path, self.to_payload())

    @classmethod
    def from_payload(cls, payload: Dict, capacity: Optional[int] = None,
                     **kwargs) -> "PlanCache":
        """Rebuild a cache from :meth:`to_payload` output.

        Entries persisted under a different file-schema or signature
        version are dropped (they could never match a lookup anyway);
        ``capacity`` and the near-miss knobs default to the persisted
        values but can be overridden.  Telemetry starts fresh — stats
        describe the current run, not the file's history.
        """
        stale = (
            payload.get("format") != CACHE_FILE_FORMAT
            or payload.get("version") != CACHE_FILE_VERSION
            or payload.get("signature_version") != SIGNATURE_VERSION
        )
        cache = cls(
            capacity=capacity or int(payload.get("capacity",
                                                 DEFAULT_CACHE_SIZE)),
            near_miss=kwargs.get("near_miss",
                                 payload.get("near_miss", True)),
            near_miss_max_distance=kwargs.get(
                "near_miss_max_distance",
                payload.get("near_miss_max_distance",
                            DEFAULT_NEAR_MISS_DISTANCE)),
            disk_tier=kwargs.get("disk_tier"),
        )
        if stale:
            return cache
        entries = payload.get("entries", [])
        if not isinstance(entries, list):
            return cache
        for entry in entries[-cache.capacity:]:
            # A malformed entry is dropped, never fatal — the cache is an
            # amortization, and the rest of the file may still be good.
            try:
                plan = plan_from_dict(entry)
            except (KeyError, TypeError, ValueError, AttributeError):
                continue
            cache._entries[plan.signature.digest] = plan
        return cache

    @classmethod
    def load(cls, path: str, capacity: Optional[int] = None,
             **kwargs) -> "PlanCache":
        """Load a persisted cache; unreadable files yield an empty cache.

        A training restart must never fail on a corrupt or stale cache
        file — the cache is an amortization, not a correctness input.
        """
        try:
            with open(path) as f:
                payload = json.load(f)
            if not isinstance(payload, dict):
                raise ValueError("cache file is not a JSON object")
            return cls.from_payload(payload, capacity=capacity, **kwargs)
        except (OSError, json.JSONDecodeError, ValueError, KeyError,
                TypeError):
            return cls(capacity=capacity or DEFAULT_CACHE_SIZE, **kwargs)


def signature_to_dict(signature: GraphSignature) -> Dict:
    """JSON codec for :class:`GraphSignature` — shared by the persisted
    cache file and the planning service's wire protocol (one schema, not
    two)."""
    return {
        "digest": signature.digest,
        "context_digest": signature.context_digest,
        "features": list(signature.features),
        "num_ranks": signature.num_ranks,
        "blocks": [
            [b.microbatch, b.uid_start, b.uid_stop, b.pair_start,
             b.pair_stop, b.digest]
            for b in signature.blocks
        ],
    }


def signature_from_dict(payload: Dict) -> GraphSignature:
    """Inverse of :func:`signature_to_dict`."""
    return GraphSignature(
        digest=payload["digest"],
        context_digest=payload["context_digest"],
        features=tuple(payload["features"]),
        blocks=[BlockInfo(*entry) for entry in payload["blocks"]],
        num_ranks=payload["num_ranks"],
    )


def plan_to_dict(plan: CachedPlan) -> Dict:
    """JSON codec for :class:`CachedPlan` (cache file + wire protocol)."""
    return {
        "signature": signature_to_dict(plan.signature),
        "ordering": [list(g) for g in plan.ordering],
        "order": plan.order,
        "selected": plan.selected,
        "total_ms": plan.total_ms,
        "interleave_ms": plan.interleave_ms,
        "evaluations": plan.evaluations,
        "label": plan.label,
    }


def plan_from_dict(payload: Dict) -> CachedPlan:
    """Inverse of :func:`plan_to_dict`; raises on malformed payloads."""
    return CachedPlan(
        signature=signature_from_dict(payload["signature"]),
        ordering=[tuple(g) for g in payload["ordering"]],
        order=[list(rank_order) for rank_order in payload["order"]],
        selected=list(payload["selected"]),
        total_ms=payload["total_ms"],
        interleave_ms=payload["interleave_ms"],
        evaluations=payload["evaluations"],
        label=payload.get("label", ""),
    )


# -- canonical-space encode / decode ----------------------------------------


def encode_plan(result, signature: GraphSignature,
                graph: IterationGraph) -> CachedPlan:
    """Translate a :class:`~repro.core.searcher.SearchResult` into
    canonical space for storage."""
    order = [
        [signature.canonical_uid(uid) for uid in rank_order]
        for rank_order in result.schedule.order
    ]
    selected = [0] * signature.num_pairs
    for pair in graph.pairs:
        selected[signature.canonical_pair(pair.pair_id)] = pair.selected
    try:
        ordering = [signature.canonical_group(g) for g in result.ordering]
    except KeyError:
        ordering = []  # whole-graph fallback signature: no group mapping
    return CachedPlan(
        signature=signature,
        ordering=ordering,
        order=order,
        selected=selected,
        total_ms=result.total_ms,
        interleave_ms=result.interleave_ms,
        evaluations=result.evaluations,
        label=result.schedule.label,
    )


def decode_order(plan: CachedPlan,
                 signature: GraphSignature) -> List[List[int]]:
    """Map a cached per-rank order onto a new, signature-equal graph."""
    return [
        [signature.actual_uid(uid) for uid in rank_order]
        for rank_order in plan.order
    ]


def decode_selection(plan: CachedPlan, signature: GraphSignature,
                     graph: IterationGraph) -> None:
    """Apply cached memory-strategy selections to the new graph's pairs."""
    for canonical, choice in enumerate(plan.selected):
        pair = graph.pairs[signature.actual_pair(canonical)]
        pair.selected = min(choice, len(pair.candidates) - 1)


def decode_ordering(plan: CachedPlan,
                    signature: GraphSignature) -> List[GroupKey]:
    """Map a cached group ordering onto a (possibly merely similar) graph.

    Canonical microbatch slots beyond the new graph's block count are
    dropped; the searcher appends any groups the seed does not cover.
    """
    out: List[GroupKey] = []
    for canonical in plan.ordering:
        if canonical[0] >= len(signature.blocks):
            continue
        out.append(signature.actual_group(canonical))
    return out
