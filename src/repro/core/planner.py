"""The asynchronous online planner (section 3.2 of the paper).

Per training iteration the planner:

1. prefetches the *metadata* of the next batch (token/image counts),
2. splits microbatches into modality-specific sub-microbatches,
3. searches a pipeline schedule on CPU, concurrently with the current
   iteration's (simulated) GPU execution,
4. deploys the compiled execution plan to the runtime.

Schedule search for batch ``k+1`` overlaps the training of batch ``k``;
the planner reports any *stall* — search time exceeding the iteration it
hides behind — which the paper's design keeps at zero.

Planning is *incremental*: every built iteration graph is fingerprinted
(:mod:`repro.core.signature`) and looked up in an LRU plan cache
(:mod:`repro.core.plancache`) before searching.  Repeated batch shapes —
common in real dynamic workloads — replay their cached schedule in one
simulation; similar shapes warm-start the search from the closest cached
ordering.
"""

from __future__ import annotations

import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.cluster.topology import ClusterSpec, ParallelConfig
from repro.core.graphbuilder import build_iteration_graph
from repro.core.partitioner import ModalityPartitioner, PartitionPlan
from repro.core.plancache import (
    DEFAULT_CACHE_SIZE,
    CacheStats,
    PlanCache,
    decode_ordering,
    encode_plan,
)
from repro.core.searcher import ScheduleSearcher, SearchResult
from repro.core.signature import (
    GraphSignature,
    compute_signature,
    context_fingerprint,
)
from repro.core.stages import IterationGraph
from repro.data import constants
from repro.data.batching import GlobalBatch, Microbatch
from repro.data.packing import controlled_vlm_microbatch
from repro.models.lmm import LMMArchitecture
from repro.runtime.compiler import compile_schedule
from repro.runtime.deployment import DeploymentController
from repro.runtime.engine import EngineResult
from repro.sim.costmodel import CostModel


def reference_microbatch(kind: str) -> Microbatch:
    """A near-capacity microbatch used for offline profiling."""
    if kind == "vlm":
        return controlled_vlm_microbatch(
            index=0, num_images=constants.MAX_IMAGES_PER_MICROBATCH
        )
    if kind == "t2v":
        return Microbatch(
            index=0,
            kind="t2v",
            num_clips=constants.MAX_CLIPS_PER_MICROBATCH,
            video_seconds=constants.MAX_VIDEO_SECONDS,
            caption_tokens=int(constants.MAX_VIDEO_SECONDS * 25),
        )
    return Microbatch(index=0, kind="lm", text_tokens=constants.CONTEXT_LENGTH)


@dataclass
class PreparedIteration:
    """Stages 1-2 of planning one batch, split out for the service layer.

    Building the iteration graph and fingerprinting it are cheap relative
    to the schedule search, and the signature is what the planning
    service's request coalescing keys on — so
    :meth:`OnlinePlanner.prepare` runs in the *submitting* thread
    (mirroring each DP replica prefetching its own batch metadata) while
    the search itself queues behind the service's worker pool.

    Attributes:
        graph: The batch's freshly built iteration graph.
        signature: Canonical graph signature; ``None`` when the plan
            cache is disabled.
        allow_near: Whether a near-miss lookup could warm this search
            (the searcher consumes seeds and the graph has >1 group).
    """

    graph: IterationGraph
    signature: Optional[GraphSignature] = None
    allow_near: bool = False


@dataclass
class PlannerReport:
    """Per-iteration planner telemetry.

    Attributes:
        cache_hit: This iteration's plan was replayed from the plan
            cache (no search ran).
        warm_start: The search was seeded with a near-miss cached
            ordering.
        signature: Canonical graph-signature digest of the batch (None
            when the plan cache is disabled).
        memo_hits: Rollout evaluations this iteration's search answered
            from the kernel's ordering memo (0 on the legacy-eval path
            and on cache replays).
        cache_tier: Tier that served a cache hit ("memory" / "disk");
            ``None`` unless ``cache_hit``.  The tier-parity invariant:
            the label is the *only* thing allowed to differ between a
            memory- and a disk-served hit.
        degraded: The plan was produced by *local* fallback search
            because every fleet shard in the signature's preference
            list was unreachable (circuit breakers open).  The plan is
            still correct — same search, same context — just not
            fleet-coalesced.
    """

    iteration: int
    train_ms: float
    search_seconds: float
    stall_seconds: float
    search: SearchResult
    engine: Optional[EngineResult] = None
    average_images: float = 0.0
    cache_hit: bool = False
    warm_start: bool = False
    signature: Optional[str] = None
    memo_hits: int = 0
    cache_tier: Optional[str] = None
    degraded: bool = False


class OnlinePlanner:
    """Drives DIP's per-iteration planning loop.

    Args:
        arch: The LMM being trained.
        cluster / parallel: Hardware and layout.
        cost_model: Shared latency model.
        searcher: Schedule searcher (a default MCTS searcher is built
            when omitted).
        plan: Offline partition plan; derived from a reference microbatch
            when omitted.
        deploy: Compile and execute plans on the runtime engine,
            verifying timeline agreement.
        plan_cache: Shared :class:`PlanCache` instance; built internally
            (capacity ``cache_size``) when omitted and ``enable_plan_cache``
            is true.
        enable_plan_cache: Consult the incremental plan cache before
            searching (exact hits replay, near misses warm-start).
            ``False`` disables caching even when ``plan_cache`` is given.
        cache_size: Capacity of the internally built cache.
        warm_budget_fraction: Cache-aware budget control — when a near
            miss closer than ``warm_budget_distance`` seeds the search,
            the evaluation budget shrinks to this fraction of the
            searcher's (the plan-cache benchmark shows half the budget
            matches cold-search quality at distance ~0.03).  ``1.0``
            disables the shrink.
        warm_budget_distance: Feature-distance ceiling below which the
            shrunken budget applies.
    """

    def __init__(
        self,
        arch: LMMArchitecture,
        cluster: ClusterSpec,
        parallel: ParallelConfig,
        cost_model: Optional[CostModel] = None,
        searcher: Optional[ScheduleSearcher] = None,
        plan: Optional[PartitionPlan] = None,
        deploy: bool = False,
        plan_cache: Optional[PlanCache] = None,
        enable_plan_cache: bool = True,
        cache_size: int = DEFAULT_CACHE_SIZE,
        warm_budget_fraction: float = 0.5,
        warm_budget_distance: float = 0.05,
    ) -> None:
        if not (0.0 < warm_budget_fraction <= 1.0):
            raise ValueError("warm_budget_fraction must be in (0, 1]")
        self.arch = arch
        self.cluster = cluster
        self.parallel = parallel
        self.cost_model = cost_model or CostModel()
        self.partitioner = ModalityPartitioner(
            arch, cluster, parallel, self.cost_model
        )
        if plan is None:
            plan = self.partitioner.plan(reference_microbatch(arch.kind))
        self.plan = plan
        self.searcher = searcher or ScheduleSearcher(
            cluster, parallel, self.cost_model
        )
        self.deploy = deploy
        self._controller = (
            DeploymentController(parallel.pp) if deploy else None
        )
        # enable_plan_cache=False always wins, even over an explicit
        # shared cache — a disabled planner must never serve cached plans.
        if not enable_plan_cache:
            self.cache: Optional[PlanCache] = None
        elif plan_cache is not None:
            self.cache = plan_cache
        else:
            self.cache = PlanCache(capacity=cache_size)
        self.warm_budget_fraction = warm_budget_fraction
        self.warm_budget_distance = warm_budget_distance

    @property
    def cache_stats(self) -> Optional[CacheStats]:
        """Aggregate plan-cache telemetry (None when caching is off)."""
        return self.cache.stats if self.cache is not None else None

    def context_digest(self) -> str:
        """Digest of the current planning context (cluster / parallel /
        cost model / searcher semantics) — the key under which this
        planner's cache entries are stored, and what recalibration
        invalidates when the cost model changes."""
        return context_fingerprint(
            self.cluster, self.parallel, self.cost_model,
            extra=self.searcher.fingerprint(),
        )

    def module_specs(self):
        """Modality module specs by name, as trace recalibration wants."""
        return {b.name: b.spec for b in self.arch.bindings}

    def set_cost_model(self, cost_model: CostModel) -> None:
        """Swap in a recalibrated cost model.

        Subsequent iteration graphs are built (and searches scored) under
        the new model; the offline partition plan is kept — re-splitting
        the layout mid-run would invalidate the deployed parameter
        placement.  Cache entries stored under the old context digest
        become unreachable; callers owning a shared cache should
        invalidate them explicitly
        (:meth:`repro.core.plancache.PlanCache.invalidate_context`).
        """
        self.cost_model = cost_model
        self.partitioner = ModalityPartitioner(
            self.arch, self.cluster, self.parallel, cost_model
        )
        self.searcher.cost_model = cost_model

    def prepare(self, batch: GlobalBatch) -> PreparedIteration:
        """Stages 1-2: prefetch metadata, partition, fingerprint.

        Cheap relative to the search; safe to run in the submitting
        thread.  The result feeds :meth:`plan_prepared` (directly, or
        through a :class:`~repro.service.PlanService` queue).
        """
        graph = build_iteration_graph(
            self.arch,
            self.plan,
            batch,
            self.cluster,
            self.parallel,
            self.cost_model,
            partitioner=self.partitioner,
        )
        if self.cache is None:
            return PreparedIteration(graph=graph)
        signature = compute_signature(
            graph,
            self.cluster,
            self.parallel,
            self.cost_model,
            extra=self.searcher.fingerprint(),
        )
        # Near misses only help when the search can consume a seed; keep
        # the warm-rate telemetry honest for natural / single-group runs.
        allow_near = (
            self.searcher.supports_warm_start and len(graph.groups()) > 1
        )
        return PreparedIteration(graph=graph, signature=signature,
                                 allow_near=allow_near)

    def plan_iteration(self, batch: GlobalBatch) -> SearchResult:
        """Stages 1-3: prefetch metadata, partition, search.

        With the plan cache enabled, the batch's canonical signature is
        consulted first: an exact hit replays the cached schedule (one
        simulation, no search), a near miss warm-starts the search from
        the closest cached ordering, and a miss falls back to the cold
        search — whose result is cached for future iterations.
        """
        return self.plan_prepared(self.prepare(batch))

    def replay_prepared(
        self, prepared: PreparedIteration
    ) -> Optional[SearchResult]:
        """Replay a prepared batch from an exact cache hit, or ``None``.

        The planning service's fan-out path: after a coalesced leader
        search stores its plan, every waiter replays it onto its own
        (signature-identical) graph in one simulation.  Returns ``None``
        when no exact entry exists (caching disabled, or the entry was
        evicted/invalidated between fan-out and replay) — callers fall
        back to :meth:`plan_prepared`.
        """
        if self.cache is None or prepared.signature is None:
            return None
        lookup = self.cache.lookup(prepared.signature, allow_near=False)
        if lookup.kind != "hit":
            return None
        result = self.searcher.replay(prepared.graph, lookup.entry,
                                      prepared.signature)
        result.cache_tier = lookup.tier
        result.lookup_s = lookup.elapsed_s
        return result

    def plan_prepared(self, prepared: PreparedIteration) -> SearchResult:
        """Stage 3: cache-assisted schedule search on a prepared batch."""
        graph = prepared.graph
        if self.cache is None or prepared.signature is None:
            return self.searcher.search(graph)

        signature = prepared.signature
        lookup = self.cache.lookup(signature,
                                   allow_near=prepared.allow_near)
        if lookup.kind == "hit":
            result = self.searcher.replay(graph, lookup.entry, signature)
            result.cache_tier = lookup.tier
            result.lookup_s = lookup.elapsed_s
            return result
        seed = (
            decode_ordering(lookup.entry, signature)
            if lookup.kind == "near"
            else None
        )
        # Cache-aware budget control: a close near miss starts the search
        # at the prior best, so far fewer evaluations reach cold quality.
        budget = None
        if (seed and self.warm_budget_fraction < 1.0
                and lookup.distance <= self.warm_budget_distance):
            budget = max(1, int(round(self.searcher.budget_evaluations
                                      * self.warm_budget_fraction)))
        result = self.searcher.search(graph, seed_ordering=seed or None,
                                      budget_evaluations=budget)
        result.signature = signature.digest
        result.lookup_s = lookup.elapsed_s
        self.cache.store(encode_plan(result, signature, graph))
        return result

    def run(
        self,
        batches: Sequence[GlobalBatch],
        asynchronous: bool = True,
    ) -> List[PlannerReport]:
        """Train over ``batches``, planning each one ahead of time.

        With ``asynchronous=True`` the next batch's search overlaps the
        current batch's execution (one planning thread, mirroring the
        idle-CPU design); otherwise planning happens inline.
        """
        reports: List[PlannerReport] = []
        batches = list(batches)
        if not batches:
            return reports

        if not asynchronous:
            for i, batch in enumerate(batches):
                t0 = time.monotonic()
                result = self.plan_iteration(batch)
                elapsed = time.monotonic() - t0
                reports.append(self._report(i, batch, result, elapsed, elapsed))
            return reports

        with ThreadPoolExecutor(max_workers=1) as pool:
            future: Future = pool.submit(self._timed_plan, batches[0])
            for i, batch in enumerate(batches):
                result, search_seconds = future.result()
                if i + 1 < len(batches):
                    future = pool.submit(self._timed_plan, batches[i + 1])
                # The search for batch i overlapped iteration i-1; stall is
                # any overrun beyond that iteration's duration.
                prev_train_s = reports[-1].train_ms / 1e3 if reports else 0.0
                stall = max(0.0, search_seconds - prev_train_s) if i > 0 else 0.0
                reports.append(
                    self._report(i, batch, result, search_seconds, stall)
                )
        return reports

    def _timed_plan(self, batch: GlobalBatch):
        t0 = time.monotonic()
        result = self.plan_iteration(batch)
        return result, time.monotonic() - t0

    def _report(
        self,
        iteration: int,
        batch: GlobalBatch,
        result: SearchResult,
        search_seconds: float,
        stall_seconds: float,
    ) -> PlannerReport:
        engine = None
        if self.deploy:
            plan = compile_schedule(
                result.schedule.graph,
                result.schedule.order,
                self.cluster,
                self.parallel,
                self.cost_model,
            )
            engine = self._controller.dispatch(plan).engine
        return PlannerReport(
            iteration=iteration,
            train_ms=result.total_ms,
            search_seconds=search_seconds,
            stall_seconds=stall_seconds,
            search=result,
            engine=engine,
            average_images=batch.average_images,
            cache_hit=result.cache_hit,
            warm_start=result.warm_started,
            signature=result.signature,
            memo_hits=result.memo_hits,
            cache_tier=result.cache_tier,
        )
