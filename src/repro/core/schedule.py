"""Pipeline schedule objects and invariant validation.

A schedule is an :class:`IterationGraph` plus a per-rank total order of
its stages.  Validation checks the invariants every correct schedule must
satisfy — these back the property-based tests:

1. Coverage: every stage appears exactly once, on its own rank's list.
2. Consistency: per-rank order edges plus dependency edges are acyclic
   (equivalently: the schedule simulates without deadlock).
3. Memory: no rank exceeds the device memory limit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.cluster.topology import ClusterSpec, ParallelConfig
from repro.core.stages import IterationGraph
from repro.sim.costmodel import CostModel
from repro.sim.pipeline import (
    PipelineSimResult,
    ScheduleDeadlockError,
    simulate_pipeline,
)


@dataclass
class PipelineSchedule:
    """A concrete schedule: stage DAG + per-rank execution order."""

    graph: IterationGraph
    order: List[List[int]]
    predicted: Optional[PipelineSimResult] = None
    label: str = ""

    @property
    def total_ms(self) -> float:
        if self.predicted is None:
            raise ValueError("schedule has not been simulated yet")
        return self.predicted.total_ms

    def simulate(
        self,
        cluster: ClusterSpec,
        parallel: ParallelConfig,
        cost_model: Optional[CostModel] = None,
        **kwargs,
    ) -> PipelineSimResult:
        """(Re-)simulate and cache the predicted timeline."""
        self.predicted = simulate_pipeline(
            self.graph, self.order, cluster, parallel, cost_model, **kwargs
        )
        return self.predicted


def validate_schedule(
    graph: IterationGraph,
    order: Sequence[Sequence[int]],
    check_memory: bool = False,
    cluster: Optional[ClusterSpec] = None,
    parallel: Optional[ParallelConfig] = None,
) -> List[str]:
    """Check schedule invariants; returns a list of violations (empty = ok)."""
    violations: List[str] = []

    # 1. Coverage.
    position = {}
    seen = set()
    for rank, uids in enumerate(order):
        for idx, uid in enumerate(uids):
            if uid in seen:
                violations.append(f"stage {uid} scheduled twice")
                continue
            seen.add(uid)
            if uid >= len(graph.stages) or uid < 0:
                violations.append(f"unknown stage {uid}")
                continue
            if graph.stages[uid].rank != rank:
                violations.append(
                    f"stage {uid} on rank {graph.stages[uid].rank} listed "
                    f"under rank {rank}"
                )
            position[uid] = (rank, idx)
    if len(seen) != len(graph.stages):
        violations.append(
            f"order covers {len(seen)} of {len(graph.stages)} stages"
        )
    if violations:
        return violations

    # 2. Consistency: Kahn over dependency edges + order edges.
    n = len(graph.stages)
    indegree = [0] * n
    adjacency: List[List[int]] = [[] for _ in range(n)]
    for stage in graph.stages:
        for dep in stage.deps:
            adjacency[dep].append(stage.uid)
            indegree[stage.uid] += 1
    for uids in order:
        for a, b in zip(uids, uids[1:]):
            adjacency[a].append(b)
            indegree[b] += 1
    ready = [u for u in range(n) if indegree[u] == 0]
    visited = 0
    while ready:
        u = ready.pop()
        visited += 1
        for v in adjacency[u]:
            indegree[v] -= 1
            if indegree[v] == 0:
                ready.append(v)
    if visited != n:
        violations.append("order conflicts with dependencies (cycle)")
        return violations

    # 3. Memory (requires simulation).
    if check_memory:
        if cluster is None or parallel is None:
            raise ValueError("memory check needs cluster and parallel")
        try:
            result = simulate_pipeline(graph, order, cluster, parallel)
        except ScheduleDeadlockError:
            violations.append("schedule deadlocks under simulation")
            return violations
        for rank in result.memory_exceeded:
            violations.append(
                f"rank {rank} exceeds memory limit: "
                f"{result.peak_memory_bytes[rank] / 2**30:.1f} GiB"
            )
    return violations
