"""Pipeline schedule searcher: the three-phase decomposed loop (section 5).

For each iteration graph the searcher:

1. explores segment-group orderings (MCTS by default; DFS / random / the
   natural no-search order are available as ablations),
2. interleaves stages greedily under each candidate ordering
   (section 5.2), using the interleaved makespan as the rollout score,
3. applies per-layer memory optimization to the winning schedule
   (section 5.3) and re-simulates for the final timeline.

All randomness is seeded; budgets can be expressed in evaluations (fully
deterministic, used by tests) and/or wall-clock seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cluster.topology import ClusterSpec, ParallelConfig
from repro.core.evalcore import EvalCore
from repro.core.interleaver import InterleaveResult, interleave_stages
from repro.core.mcts import (
    ReorderResult,
    align_seed_ordering,
    dfs_reorder,
    mcts_reorder,
    natural_ordering,
    random_reorder,
)
from repro.core.plancache import CachedPlan, decode_order, decode_ordering, decode_selection
from repro.core.signature import GraphSignature
from repro.core.memopt import (
    MemoptReport,
    apply_uniform_memory_policy,
    generate_candidates,
    optimize_memory,
)
from repro.core.schedule import PipelineSchedule
from repro.core.stages import GroupKey, IterationGraph
from repro.sim.costmodel import CostModel
from repro.sim.pipeline import simulate_pipeline


@dataclass
class SearchResult:
    """Everything the searcher learned about one iteration.

    Attributes:
        ordering: The winning segment-group ordering (the natural order
            when no reordering search ran) — what the plan cache stores
            and warm starts are seeded from.
        evaluations: Ordering evaluations actually performed; 0 on the
            natural / single-group path and on cache replays, where no
            ordering evaluation runs.
        cache_hit: The result was replayed from the plan cache.
        warm_started: The search was seeded with a cached near-miss
            ordering.
        signature: Canonical graph-signature digest, when the planner
            computed one.
        memo_hits: Rollout evaluations answered by the per-search
            ordering memo instead of re-running the interleaver (0 on
            the legacy evaluator path and on cache replays).
        cache_tier: Which cache tier served a hit ("memory" / "disk");
            ``None`` unless ``cache_hit`` — set by the planner, which is
            the layer that knows where the cached plan came from.
    """

    schedule: PipelineSchedule
    reorder: Optional[ReorderResult]
    memopt: Optional[MemoptReport]
    interleave_ms: float
    total_ms: float
    evaluations: int = 0
    ordering: List[GroupKey] = field(default_factory=list)
    cache_hit: bool = False
    warm_started: bool = False
    signature: Optional[str] = None
    memo_hits: int = 0
    cache_tier: Optional[str] = None
    #: Wall-clock seconds the planner spent in the cache lookup that
    #: preceded this result (0.0 when no cache was consulted) — feeds the
    #: request-tracing cache-lookup span.
    lookup_s: float = 0.0

    @property
    def trace(self) -> List:
        return self.reorder.trace if self.reorder is not None else []


class ScheduleSearcher:
    """Searches pipeline schedules for iteration graphs.

    Args:
        cluster / parallel: Hardware and layout.
        cost_model: Latency model shared with the graph builder.
        strategy: ``"mcts"`` (DIP), ``"dfs"``, ``"random"`` or
            ``"natural"`` (no reordering search — the "DIP (no-opt)"
            configuration keeps natural order *and* skips memopt).
        budget_evaluations: Ordering evaluations per search.
        time_budget_s: Optional wall-clock cap.
        num_workers: Parallel rollout threads (section 6.2).
        enable_memopt: Run the section 5.3 pass on the final schedule.
            When disabled, ``memopt_mode`` picks the fallback policy.
        memopt_mode: ``"full"`` (candidates + per-rank ILP), ``"uniform"``
            (Megatron's global keep-or-recompute policy; the default when
            ``enable_memopt=False``) or ``"lean"`` (stay at the most
            memory-efficient candidates — the paper's Fig. 10
            "DIP (non-adaptive)" configuration).
        memopt_exact: Exact branch-and-bound (else greedy warm start).
        rel_gap: Memopt optimality gap (paper: 5%).
        invert: Search for the *worst* schedule (Fig. 9's upper curves).
        seed: Seed for all stochastic components.
        use_kernel: Evaluate rollouts through the compiled kernel path
            (:mod:`repro.core.evalcore`): graph arrays built once per
            search, heap-based interleaving, one-pass simulation and a
            cross-worker rollout memo.  ``False`` (``--legacy-eval``)
            keeps the original object-graph evaluators, which the
            differential tests use as the oracle.  Both paths produce
            identical schedules; the flag is therefore excluded from
            :meth:`fingerprint`.
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        parallel: ParallelConfig,
        cost_model: Optional[CostModel] = None,
        strategy: str = "mcts",
        budget_evaluations: int = 120,
        time_budget_s: Optional[float] = None,
        num_workers: int = 1,
        enable_memopt: bool = True,
        memopt_mode: Optional[str] = None,
        memopt_exact: bool = True,
        rel_gap: float = 0.05,
        invert: bool = False,
        seed: int = 0,
        use_kernel: bool = True,
    ) -> None:
        if strategy not in ("mcts", "dfs", "random", "natural"):
            raise ValueError(f"unknown search strategy {strategy!r}")
        if memopt_mode is None:
            memopt_mode = "full" if enable_memopt else "uniform"
        if memopt_mode not in ("full", "uniform", "lean"):
            raise ValueError(f"unknown memopt_mode {memopt_mode!r}")
        self.cluster = cluster
        self.parallel = parallel
        self.cost_model = cost_model or CostModel()
        self.strategy = strategy
        self.budget_evaluations = budget_evaluations
        self.time_budget_s = time_budget_s
        self.num_workers = num_workers
        self.enable_memopt = enable_memopt and memopt_mode == "full"
        self.memopt_mode = memopt_mode
        self.memopt_exact = memopt_exact
        self.rel_gap = rel_gap
        self.invert = invert
        self.seed = seed
        self.use_kernel = use_kernel

    # -- evaluation ----------------------------------------------------------

    def _priorities_array(
        self, graph: IterationGraph, ordering: Sequence[GroupKey]
    ) -> List[int]:
        n = len(ordering)
        by_group: Dict[GroupKey, int] = {g: n - i for i, g in enumerate(ordering)}
        return [by_group.get(s.key.group, 0) for s in graph.stages]

    def _interleave(
        self, graph: IterationGraph, ordering: Sequence[GroupKey]
    ) -> InterleaveResult:
        return interleave_stages(
            graph,
            self.cluster,
            self.parallel,
            self.cost_model,
            priorities=self._priorities_array(graph, ordering),
        )

    def evaluate_ordering(
        self, graph: IterationGraph, ordering: Sequence[GroupKey]
    ) -> float:
        """Rollout score: interleaved makespan in milliseconds.

        This is the legacy (object-graph) evaluator — the differential
        oracle.  :meth:`search` compiles an :class:`EvalCore` once per
        search and scores rollouts through its kernel instead when
        ``use_kernel`` is set; both produce identical scores.
        """
        return self._interleave(graph, ordering).total_ms

    def _make_core(self, graph: IterationGraph) -> EvalCore:
        """Compile the kernel evaluator for one search over ``graph``.

        Must run *after* :meth:`_prepare_memory`: the arrays capture the
        current memory-strategy selections.
        """
        return EvalCore(graph, self.cluster, self.parallel, self.cost_model)

    # -- search --------------------------------------------------------------

    @property
    def supports_warm_start(self) -> bool:
        """Whether this searcher can consume a ``seed_ordering`` at all."""
        return self.strategy != "natural"

    def fingerprint(self) -> tuple:
        """Configuration tuple folded into graph signatures.

        Covers every setting that changes what a valid, comparable
        schedule *means* (strategy, objective direction, memory-policy
        semantics).  Effort knobs — evaluation/time budget, seed, worker
        count — are deliberately excluded: they tune how hard one search
        tries, and replaying a plan found with more effort is strictly
        better than re-searching with less.  Disable the plan cache when
        bitwise-identical cold-search runs are required.
        """
        return (
            "searcher",
            self.strategy,
            self.enable_memopt,
            self.memopt_mode,
            self.memopt_exact,
            self.rel_gap,
            self.invert,
        )

    def _prepare_memory(self, graph: IterationGraph) -> None:
        """Set up per-pair memory strategies ahead of interleaving."""
        if self.memopt_mode in ("full", "lean"):
            generate_candidates(graph)
            # Section 5.2: interleave with the most memory-efficient
            # scheme to leave headroom for the memory optimizer ("lean"
            # simply stops here — the Fig. 10 non-adaptive variant).
            graph.select_most_memory_efficient()
        else:
            # Without per-layer optimization, fall back to Megatron's
            # uniform keep-or-recompute policy so schedules stay
            # memory-feasible.
            apply_uniform_memory_policy(graph)

    def search(
        self,
        graph: IterationGraph,
        seed_ordering: Optional[Sequence[GroupKey]] = None,
        budget_evaluations: Optional[int] = None,
    ) -> SearchResult:
        """Run the full three-phase search on one iteration graph.

        Args:
            graph: The iteration graph to schedule.
            seed_ordering: Optional warm-start group ordering (typically a
                plan-cache near miss).  It is aligned onto this graph's
                groups — stale keys dropped, missing ones appended — and
                primes the reordering search so it starts from the prior
                best instead of uniform.
            budget_evaluations: Per-call override of the configured
                evaluation budget — the planner's cache-aware budget
                control passes a shrunken budget when a close near miss
                seeds the search.
        """
        budget = (self.budget_evaluations if budget_evaluations is None
                  else budget_evaluations)
        self._prepare_memory(graph)
        core = self._make_core(graph) if self.use_kernel else None

        groups = list(graph.groups().keys())
        seed_aligned = align_seed_ordering(seed_ordering, groups)
        reorder: Optional[ReorderResult] = None
        warm_started = False
        if self.strategy == "natural" or len(groups) <= 1:
            ordering = natural_ordering(groups)
        else:
            if core is not None:
                evaluator = core.evaluate
            else:
                evaluator = lambda seq: self.evaluate_ordering(graph, seq)  # noqa: E731
            if self.strategy == "mcts":
                reorder = mcts_reorder(
                    groups,
                    evaluator,
                    budget_evaluations=budget,
                    time_budget_s=self.time_budget_s,
                    seed=self.seed,
                    invert=self.invert,
                    num_workers=self.num_workers,
                    seed_ordering=seed_aligned,
                )
            elif self.strategy == "dfs":
                reorder = dfs_reorder(
                    groups,
                    evaluator,
                    budget_evaluations=budget,
                    time_budget_s=self.time_budget_s,
                    seed=self.seed,
                    invert=self.invert,
                    seed_ordering=seed_aligned,
                )
            else:
                reorder = random_reorder(
                    groups,
                    evaluator,
                    budget_evaluations=budget,
                    time_budget_s=self.time_budget_s,
                    seed=self.seed,
                    invert=self.invert,
                    seed_ordering=seed_aligned,
                )
            ordering = reorder.ordering
            warm_started = seed_aligned is not None

        if core is not None:
            interleaved = core.interleave(ordering)
        else:
            interleaved = self._interleave(graph, ordering)
        graph.apply_group_priorities(
            {g: len(ordering) - i for i, g in enumerate(ordering)}
        )

        memopt: Optional[MemoptReport] = None
        if self.enable_memopt:
            memopt = optimize_memory(
                graph,
                interleaved.start_ms,
                interleaved.end_ms,
                rel_gap=self.rel_gap,
                exact=self.memopt_exact,
            )

        predicted = simulate_pipeline(
            graph, interleaved.order, self.cluster, self.parallel,
            self.cost_model,
            p2p=core.p2p if core is not None else None,
            legacy=core is None,
        )
        schedule = PipelineSchedule(
            graph=graph,
            order=interleaved.order,
            predicted=predicted,
            label=f"dip-{self.strategy}",
        )
        return SearchResult(
            schedule=schedule,
            reorder=reorder,
            memopt=memopt,
            interleave_ms=interleaved.total_ms,
            total_ms=predicted.total_ms,
            # No ordering evaluation runs on the natural / single-group
            # path, so the count is honestly zero there.
            evaluations=reorder.evaluations if reorder else 0,
            ordering=list(ordering),
            warm_started=warm_started,
            memo_hits=core.memo_hits if core is not None else 0,
        )

    # -- cache replay --------------------------------------------------------

    def replay(
        self,
        graph: IterationGraph,
        cached: CachedPlan,
        signature: GraphSignature,
    ) -> SearchResult:
        """Re-instantiate a cached plan on a signature-identical graph.

        Skips the ordering search and the memory-optimization ILP
        entirely: memory candidates come from the memoised generator
        (they are a pure function of the hashed stage costs, so a
        signature-equal replay reuses the solved sets instead of
        re-running the MCKP sweeps), the cached per-pair strategy
        selections and per-rank order are translated through the
        signature's canonical mappings, and a single pipeline simulation
        recovers the timeline — which matches the cached one exactly
        because every stage latency is signature-equal.
        """
        if cached.signature.digest != signature.digest:
            raise ValueError(
                "cannot replay a plan across different signatures; use a "
                "warm-started search for near misses"
            )
        self._prepare_memory(graph)
        decode_selection(cached, signature, graph)
        ordering = decode_ordering(cached, signature)
        if ordering:
            graph.apply_group_priorities(
                {g: len(ordering) - i for i, g in enumerate(ordering)}
            )
        order = decode_order(cached, signature)
        predicted = simulate_pipeline(
            graph, order, self.cluster, self.parallel, self.cost_model,
            legacy=not self.use_kernel,
        )
        schedule = PipelineSchedule(
            graph=graph,
            order=order,
            predicted=predicted,
            label=cached.label or f"dip-{self.strategy}",
        )
        return SearchResult(
            schedule=schedule,
            reorder=None,
            memopt=None,
            interleave_ms=cached.interleave_ms,
            total_ms=predicted.total_ms,
            evaluations=0,
            ordering=ordering,
            cache_hit=True,
            signature=signature.digest,
        )
