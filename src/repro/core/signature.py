"""Canonical iteration-graph signatures for incremental planning.

The online planner re-plans every batch, but real dynamic workloads
(paper section 3.2, Fig. 8b) frequently repeat batch shapes across
iterations.  A :class:`GraphSignature` is a canonical, order-insensitive
fingerprint of one iteration graph: two batches whose microbatch
*multisets* are identical — even in a different order — hash to the same
digest, so a cached schedule can be replayed verbatim.

Structure exploited: :func:`repro.core.graphbuilder.build_iteration_graph`
emits each microbatch's stages and pairs as one contiguous, self-contained
block (all dependency edges stay inside the block).  Canonicalisation
therefore:

1. splits the graph into per-microbatch blocks,
2. hashes every block with uids, pair ids and microbatch indices
   rewritten relative to the block (shape, ranks, latencies, memory
   residency and dependency structure all contribute; the memory-
   optimization candidate space is a pure function of the hashed stage
   costs and layer counts, so it is fingerprinted implicitly),
3. sorts the blocks by their digest — the canonical block order — and
   hashes the sorted sequence together with the graph-level constants
   and a *context* digest covering the :class:`ClusterSpec`,
   :class:`ParallelConfig`, :class:`CostModel` and searcher
   configuration.

The signature also carries a small feature vector (microbatch count,
stage count, aggregate latencies, activation footprint) used by the plan
cache's near-miss tier to find the *closest* cached graph when no exact
match exists, plus the uid / pair-id / microbatch mappings needed to
translate a cached schedule between equivalent (or merely similar)
graphs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.cluster.topology import ClusterSpec, ParallelConfig
from repro.core.stages import GroupKey, IterationGraph
from repro.sim.costmodel import CostModel

#: Bumped whenever the hashed canonical form changes shape, so stale
#: cache entries from older code can never alias new signatures.
SIGNATURE_VERSION = 1


@dataclass(frozen=True)
class BlockInfo:
    """One microbatch's contiguous slice of the iteration graph."""

    microbatch: int  # the batch's actual ``Microbatch.index`` label
    uid_start: int
    uid_stop: int  # exclusive
    pair_start: int
    pair_stop: int  # exclusive
    digest: str

    @property
    def num_stages(self) -> int:
        return self.uid_stop - self.uid_start

    @property
    def num_pairs(self) -> int:
        return self.pair_stop - self.pair_start


@dataclass
class GraphSignature:
    """Canonical fingerprint of one iteration graph.

    Attributes:
        digest: Order-insensitive hex digest identifying the graph up to
            microbatch permutation (within a fixed planning context).
        context_digest: Digest of cluster/parallel/cost-model/searcher
            configuration alone.
        features: Scale features for near-miss distance computations.
        blocks: Per-microbatch blocks in *canonical* order.
        num_ranks: Pipeline width of the graph.
    """

    digest: str
    context_digest: str
    features: Tuple[float, ...]
    blocks: List[BlockInfo]
    num_ranks: int

    # Derived uid / pair translation tables (actual <-> canonical).
    _uid_to_canonical: List[int] = field(default_factory=list, repr=False)
    _canonical_to_uid: List[int] = field(default_factory=list, repr=False)
    _pair_to_canonical: List[int] = field(default_factory=list, repr=False)
    _canonical_to_pair: List[int] = field(default_factory=list, repr=False)
    _mb_to_canonical: Dict[int, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        num_stages = sum(b.num_stages for b in self.blocks)
        num_pairs = sum(b.num_pairs for b in self.blocks)
        self._uid_to_canonical = [0] * num_stages
        self._canonical_to_uid = [0] * num_stages
        self._pair_to_canonical = [0] * num_pairs
        self._canonical_to_pair = [0] * num_pairs
        uid_cursor = 0
        pair_cursor = 0
        for canon_index, block in enumerate(self.blocks):
            for offset in range(block.num_stages):
                actual = block.uid_start + offset
                canonical = uid_cursor + offset
                self._uid_to_canonical[actual] = canonical
                self._canonical_to_uid[canonical] = actual
            for offset in range(block.num_pairs):
                actual = block.pair_start + offset
                canonical = pair_cursor + offset
                self._pair_to_canonical[actual] = canonical
                self._canonical_to_pair[canonical] = actual
            self._mb_to_canonical[block.microbatch] = canon_index
            uid_cursor += block.num_stages
            pair_cursor += block.num_pairs

    # -- translation ---------------------------------------------------------

    @property
    def num_stages(self) -> int:
        return len(self._uid_to_canonical)

    @property
    def num_pairs(self) -> int:
        return len(self._pair_to_canonical)

    def canonical_uid(self, uid: int) -> int:
        return self._uid_to_canonical[uid]

    def actual_uid(self, canonical: int) -> int:
        return self._canonical_to_uid[canonical]

    def canonical_pair(self, pair_id: int) -> int:
        return self._pair_to_canonical[pair_id]

    def actual_pair(self, canonical: int) -> int:
        return self._canonical_to_pair[canonical]

    def canonical_group(self, key: GroupKey) -> Tuple[int, str, str]:
        """Rewrite a group key into canonical-microbatch space."""
        return (
            self._mb_to_canonical[key.microbatch],
            key.module,
            key.direction.value,
        )

    def actual_group(self, canonical: Tuple[int, str, str]) -> GroupKey:
        """Map a canonical group key back onto this graph's microbatches.

        Raises:
            IndexError: if the canonical microbatch slot does not exist in
                this graph (fewer microbatches than the cached one).
        """
        from repro.core.stages import Direction

        block_index, module, direction = canonical
        block = self.blocks[block_index]
        return GroupKey(block.microbatch, module, Direction(direction))


def _f(value: float) -> str:
    """Deterministic float rendering for hashing."""
    return repr(float(value))


def context_fingerprint(
    cluster: ClusterSpec,
    parallel: ParallelConfig,
    cost_model: CostModel,
    extra: Sequence = (),
) -> str:
    """Digest of everything that shapes a schedule besides the batch.

    ``extra`` carries the searcher's *semantic* configuration (see
    :meth:`repro.core.searcher.ScheduleSearcher.fingerprint`, which
    deliberately excludes effort knobs such as budget and seed) so
    schedules searched under incompatible settings never alias.
    """
    h = hashlib.sha256()
    h.update(f"v{SIGNATURE_VERSION}".encode())
    h.update(repr(cluster).encode())
    h.update(parallel.describe().encode())
    h.update(repr(cost_model).encode())
    h.update(repr(tuple(extra)).encode())
    return h.hexdigest()


def _block_digest(graph: IterationGraph, block_stages, pair_start: int,
                  uid_start: int) -> str:
    """Hash one microbatch block with block-relative identifiers."""
    h = hashlib.sha256()
    pair_seen = set()
    for stage in block_stages:
        key = stage.key
        h.update(
            "|".join(
                (
                    str(stage.uid - uid_start),
                    key.module,
                    str(key.sub_index),
                    str(key.chunk),
                    key.direction.value,
                    str(stage.rank),
                    str(stage.pair_id - pair_start),
                    ",".join(str(d - uid_start) for d in stage.deps),
                    _f(stage.p2p_bytes),
                    _f(stage.latency_share),
                    str(stage.releases_memory),
                )
            ).encode()
        )
        if stage.pair_id not in pair_seen:
            pair_seen.add(stage.pair_id)
            pair = graph.pairs[stage.pair_id]
            cost = pair.cost
            h.update(
                "|".join(
                    (
                        "pair",
                        str(pair.pair_id - pair_start),
                        str(pair.num_layers),
                        str(pair.rank),
                        _f(cost.forward_ms),
                        _f(cost.backward_ms),
                        _f(cost.act_bytes),
                        _f(cost.act_ckpt_bytes),
                        _f(cost.recompute_ms),
                        _f(cost.offload_ms),
                        _f(cost.p2p_bytes),
                    )
                ).encode()
            )
    return h.hexdigest()


def _split_blocks(graph: IterationGraph) -> List[Tuple[int, int, int, int, int]]:
    """(microbatch, uid_start, uid_stop, pair_start, pair_stop) slices.

    Falls back to a single whole-graph block if the builder's
    one-contiguous-block-per-microbatch invariant does not hold (e.g. a
    hand-built graph with cross-microbatch dependencies).
    """
    spans: List[Tuple[int, int, int, int, int]] = []
    current_mb = None
    for stage in graph.stages:
        mb = stage.key.microbatch
        if mb != current_mb:
            spans.append([mb, stage.uid, stage.uid + 1,
                          stage.pair_id, stage.pair_id + 1])
            current_mb = mb
        else:
            span = spans[-1]
            span[2] = stage.uid + 1
            span[3] = min(span[3], stage.pair_id)
            span[4] = max(span[4], stage.pair_id + 1)

    def whole_graph() -> List[Tuple[int, int, int, int, int]]:
        return [(-1, 0, len(graph.stages), 0, len(graph.pairs))]

    if len({s[0] for s in spans}) != len(spans):
        return whole_graph()  # a microbatch's stages are not contiguous
    for i, span in enumerate(spans):
        expected_uid = spans[i - 1][2] if i else 0
        expected_pair = spans[i - 1][4] if i else 0
        # Pair-range contiguity (checked here) implies pair ids cannot
        # interleave across blocks, since span pair bounds are the
        # min/max over the block's own stages.
        if span[1] != expected_uid or span[3] != expected_pair:
            return whole_graph()
        for stage in graph.stages[span[1]:span[2]]:
            for dep in stage.deps:
                if not (span[1] <= dep < span[2]):
                    return whole_graph()  # cross-block dependency
    if spans and spans[-1][4] != len(graph.pairs):
        return whole_graph()
    return [tuple(s) for s in spans]


def _features(graph: IterationGraph, num_blocks: int) -> Tuple[float, ...]:
    """Scale features driving the near-miss distance metric."""
    total_fw = 0.0
    total_bw = 0.0
    total_act = 0.0
    for pair in graph.pairs:
        total_fw += pair.cost.forward_ms
        total_bw += pair.cost.backward_ms
        total_act += pair.cost.act_bytes
    busy = graph.total_compute_ms_per_rank()
    return (
        float(num_blocks),
        float(len(graph.stages)),
        float(len(graph.groups())),
        total_fw,
        total_bw,
        total_act / 2**30,  # GiB
        max(busy) if busy else 0.0,
    )


def compute_signature(
    graph: IterationGraph,
    cluster: ClusterSpec,
    parallel: ParallelConfig,
    cost_model: CostModel,
    extra: Sequence = (),
) -> GraphSignature:
    """Fingerprint one iteration graph within a planning context.

    Args:
        graph: Freshly built iteration graph (before or after memory
            candidate generation — candidates are derived from the hashed
            costs, so either works and both hash identically).
        cluster / parallel / cost_model: The planning context.
        extra: Additional context (searcher fingerprint) folded into the
            digest.
    """
    context = context_fingerprint(cluster, parallel, cost_model, extra)
    spans = _split_blocks(graph)
    blocks = [
        BlockInfo(
            microbatch=mb,
            uid_start=uid_start,
            uid_stop=uid_stop,
            pair_start=pair_start,
            pair_stop=pair_stop,
            digest=_block_digest(
                graph, graph.stages[uid_start:uid_stop], pair_start, uid_start
            ),
        )
        for mb, uid_start, uid_stop, pair_start, pair_stop in spans
    ]
    # Canonical order: by block shape first, digest second, original
    # position as a stable tiebreak (fully tied blocks are identical,
    # hence interchangeable).  Leading with the shape means *similar*
    # graphs assign comparable microbatches to comparable canonical
    # slots, which is what makes near-miss ordering transfer meaningful;
    # any deterministic content-only key keeps the digest
    # order-insensitive.
    blocks.sort(key=lambda b: (b.num_stages, b.num_pairs, b.digest,
                               b.uid_start))

    h = hashlib.sha256()
    h.update(context.encode())
    h.update(str(graph.num_ranks).encode())
    h.update(_f(graph.memory_limit_bytes).encode())
    for value in graph.static_bytes_per_rank:
        h.update(_f(value).encode())
    for block in blocks:
        h.update(block.digest.encode())

    return GraphSignature(
        digest=h.hexdigest(),
        context_digest=context,
        features=_features(graph, len(blocks)),
        blocks=blocks,
        num_ranks=graph.num_ranks,
    )


def feature_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Mean per-dimension relative difference between feature vectors."""
    if len(a) != len(b):
        return float("inf")
    if not a:
        return 0.0
    total = 0.0
    for x, y in zip(a, b):
        total += abs(x - y) / max(abs(x), abs(y), 1.0)
    return total / len(a)
