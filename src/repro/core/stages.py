"""Pipeline stage / segment / iteration-graph data structures.

Terminology (section 3.1 of the paper):

* A **pipeline segment** is one forward or backward traversal of a model
  chunk group across all ``P`` pipeline ranks: ``P`` consecutive stages.
* A **stage** is one chunk execution on one rank for one sub-microbatch.
* A **stage pair** couples a forward stage with its backward stage; the
  pair shares a memory-optimization strategy and its activations stay
  resident from forward end to backward end.
* A **segment group** collects all segments of the same (microbatch,
  module, direction) — the paper's search-space reduction assigns one
  priority per group (section 5.1, "Optimization").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.costmodel import StageCost


class Direction(enum.Enum):
    """Forward or backward computation."""

    FORWARD = "fw"
    BACKWARD = "bw"

    @property
    def opposite(self) -> "Direction":
        if self is Direction.FORWARD:
            return Direction.BACKWARD
        return Direction.FORWARD


@dataclass(frozen=True)
class SegmentKey:
    """Identity of a pipeline segment.

    Attributes:
        microbatch: Microbatch index within the iteration.
        module: Modality module name.
        sub_index: Sub-microbatch index within the microbatch.
        chunk: Segment index along the module traversal (0..K_i-1).
        direction: Forward or backward.
    """

    microbatch: int
    module: str
    sub_index: int
    chunk: int
    direction: Direction

    @property
    def group(self) -> "GroupKey":
        return GroupKey(self.microbatch, self.module, self.direction)


@dataclass(frozen=True)
class GroupKey:
    """Identity of a segment group: (microbatch, module, direction)."""

    microbatch: int
    module: str
    direction: Direction


@dataclass(frozen=True)
class StrategyCandidate:
    """One memory-optimization strategy for a stage pair (section 5.3).

    Attributes:
        label: Human-readable strategy, e.g. ``"ckpt:4/8"``.
        fw_extra_ms: Latency added to the forward stage.
        bw_extra_ms: Latency added to the backward stage (recomputation,
            activation prefetch, ...).
        resident_bytes: Activation bytes resident from forward completion
            until backward completion.
    """

    label: str
    fw_extra_ms: float
    bw_extra_ms: float
    resident_bytes: float

    @property
    def total_extra_ms(self) -> float:
        return self.fw_extra_ms + self.bw_extra_ms


@dataclass
class StagePair:
    """A forward/backward stage couple sharing one strategy choice.

    ``instances`` / ``seq`` / ``context`` record the workload the pair's
    :class:`StageCost` was computed for — the attribution trace spans
    carry so observed durations can be fitted back into the cost model
    (:mod:`repro.trace.recalibrate`).
    """

    pair_id: int
    microbatch: int
    module: str
    sub_index: int
    chunk: int
    rank: int
    num_layers: int
    cost: StageCost
    instances: int = 0
    seq: int = 0
    context: int = 0
    candidates: List[StrategyCandidate] = field(default_factory=list)
    selected: int = 0

    def __post_init__(self) -> None:
        if not self.candidates:
            self.candidates = [
                StrategyCandidate(
                    label="none",
                    fw_extra_ms=0.0,
                    bw_extra_ms=0.0,
                    resident_bytes=self.cost.act_bytes,
                )
            ]

    @property
    def strategy(self) -> StrategyCandidate:
        return self.candidates[self.selected]

    def forward_ms(self, candidate: Optional[int] = None) -> float:
        c = self.candidates[self.selected if candidate is None else candidate]
        return self.cost.forward_ms + c.fw_extra_ms

    def backward_ms(self, candidate: Optional[int] = None) -> float:
        c = self.candidates[self.selected if candidate is None else candidate]
        return self.cost.backward_ms + c.bw_extra_ms

    def resident_bytes(self, candidate: Optional[int] = None) -> float:
        c = self.candidates[self.selected if candidate is None else candidate]
        return c.resident_bytes


@dataclass
class StageTask:
    """One stage execution: a chunk on a rank for one sub-microbatch.

    Attributes:
        latency_share: Fraction of the pair's backward latency this stage
            carries (1.0 normally; under decoupled backward the dgrad and
            wgrad stages split it).
        releases_memory: Whether completing this stage frees the pair's
            resident activations (the final backward stage of the pair).
    """

    uid: int
    key: SegmentKey
    rank: int
    pair_id: int
    deps: Tuple[int, ...] = ()
    p2p_bytes: float = 0.0  # bytes received from the dependency hop
    priority: int = 0
    latency_share: float = 1.0
    releases_memory: bool = True

    @property
    def direction(self) -> Direction:
        return self.key.direction

    @property
    def is_forward(self) -> bool:
        return self.key.direction is Direction.FORWARD


@dataclass
class SegmentGroup:
    """All segments of one (microbatch, module, direction)."""

    key: GroupKey
    segment_keys: List[SegmentKey] = field(default_factory=list)
    total_ms: float = 0.0  # summed stage latency, used by search heuristics


class IterationGraph:
    """The full stage DAG of one training iteration.

    Built once per incoming global batch by
    :func:`repro.core.graphbuilder.build_iteration_graph`; consumed by the
    interleaver, the memory optimizer and the pipeline simulator.
    """

    def __init__(
        self,
        num_ranks: int,
        stages: Sequence[StageTask],
        pairs: Sequence[StagePair],
        static_bytes_per_rank: Sequence[float],
        memory_limit_bytes: float,
        model_flops: float = 0.0,
    ) -> None:
        self.num_ranks = num_ranks
        self.stages: List[StageTask] = list(stages)
        self.pairs: List[StagePair] = list(pairs)
        self.static_bytes_per_rank = list(static_bytes_per_rank)
        self.memory_limit_bytes = memory_limit_bytes
        self.model_flops = model_flops
        self._validate()
        self.dependents: List[List[int]] = [[] for _ in self.stages]
        for stage in self.stages:
            for dep in stage.deps:
                self.dependents[dep].append(stage.uid)
        self._groups: Optional[Dict[GroupKey, SegmentGroup]] = None

    def _validate(self) -> None:
        for i, stage in enumerate(self.stages):
            if stage.uid != i:
                raise ValueError(f"stage uid {stage.uid} at position {i}")
            if not (0 <= stage.rank < self.num_ranks):
                raise ValueError(f"stage {i} on invalid rank {stage.rank}")
            for dep in stage.deps:
                if not (0 <= dep < len(self.stages)):
                    raise ValueError(f"stage {i} depends on unknown stage {dep}")
                if dep >= i:
                    raise ValueError(
                        f"stage {i} depends on later stage {dep}; stages must "
                        "be listed in a topological order"
                    )
        if len(self.static_bytes_per_rank) != self.num_ranks:
            raise ValueError("static_bytes_per_rank must have one entry per rank")

    # -- latency / memory accessors ----------------------------------------

    def pair(self, stage: StageTask) -> StagePair:
        return self.pairs[stage.pair_id]

    def latency_ms(self, stage: StageTask) -> float:
        pair = self.pairs[stage.pair_id]
        if stage.is_forward:
            return pair.forward_ms() * stage.latency_share
        return pair.backward_ms() * stage.latency_share

    def resident_bytes(self, stage: StageTask) -> float:
        return self.pairs[stage.pair_id].resident_bytes()

    def total_compute_ms_per_rank(self) -> List[float]:
        """Lower-bound busy time per rank (sum of stage latencies)."""
        busy = [0.0] * self.num_ranks
        for stage in self.stages:
            busy[stage.rank] += self.latency_ms(stage)
        return busy

    # -- groups --------------------------------------------------------------

    def groups(self) -> Dict[GroupKey, SegmentGroup]:
        """Segment groups (the MCTS ordering unit), computed lazily."""
        if self._groups is None:
            groups: Dict[GroupKey, SegmentGroup] = {}
            seen_segments: Dict[GroupKey, set] = {}
            for stage in self.stages:
                gkey = stage.key.group
                group = groups.get(gkey)
                if group is None:
                    group = SegmentGroup(key=gkey)
                    groups[gkey] = group
                    seen_segments[gkey] = set()
                if stage.key not in seen_segments[gkey]:
                    seen_segments[gkey].add(stage.key)
                    group.segment_keys.append(stage.key)
                group.total_ms += self.latency_ms(stage)
            self._groups = groups
        return self._groups

    def apply_group_priorities(self, priorities: Dict[GroupKey, int]) -> None:
        """Assign each stage the priority of its segment group."""
        for stage in self.stages:
            stage.priority = priorities.get(stage.key.group, 0)

    def stages_on_rank(self, rank: int) -> List[StageTask]:
        return [s for s in self.stages if s.rank == rank]

    def reset_strategies(self, candidate: int = 0) -> None:
        """Select one candidate index on every pair (bounds-checked)."""
        for pair in self.pairs:
            pair.selected = min(candidate, len(pair.candidates) - 1)

    def select_most_memory_efficient(self) -> None:
        """Pick the lowest-residency candidate on every pair.

        Used to initialise interleaving (section 5.2: "using the most
        memory-efficient scheme ... ensures sufficient optimization space
        for subsequent per-layer memory optimizations").
        """
        for pair in self.pairs:
            best = min(
                range(len(pair.candidates)),
                key=lambda i: (pair.candidates[i].resident_bytes,
                               pair.candidates[i].total_extra_ms),
            )
            pair.selected = best
