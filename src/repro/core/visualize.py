"""Schedule visualisation: ASCII timelines and Chrome trace export.

Two complementary views of a simulated pipeline schedule:

* :func:`ascii_timeline` renders the classic pipeline diagram (one row
  per rank, microbatch digits in boxes) — the style of the paper's
  Fig. 3/5 — directly in the terminal.
* :func:`chrome_trace` emits a ``chrome://tracing`` / Perfetto JSON
  object for interactive inspection — built on the trace subsystem's
  shared event stream (:mod:`repro.trace`), so the interactive view,
  the analytics and the CLI all read the same spans.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.stages import Direction, IterationGraph
from repro.sim.pipeline import PipelineSimResult
from repro.trace.builders import trace_from_sim
from repro.trace.export import save_chrome, to_chrome


def ascii_timeline(
    graph: IterationGraph,
    result: PipelineSimResult,
    width: int = 100,
    legend: bool = True,
) -> str:
    """Render the schedule as one text row per pipeline rank.

    Forward stages print their microbatch index (modulo 10); backward
    stages print letters (``a`` = microbatch 0).  Idle time is ``.``.
    """
    if result.total_ms <= 0:
        return "(empty schedule)"
    scale = width / result.total_ms
    rows: List[str] = []
    for rank in range(graph.num_ranks):
        cells = ["."] * width
        for stage in graph.stages:
            if stage.rank != rank:
                continue
            begin = int(result.start_ms[stage.uid] * scale)
            finish = max(begin + 1, int(result.end_ms[stage.uid] * scale))
            mb = stage.key.microbatch % 26
            if stage.direction is Direction.FORWARD:
                glyph = str(mb % 10)
            else:
                glyph = chr(ord("a") + mb)
            for x in range(begin, min(finish, width)):
                cells[x] = glyph
        rows.append(f"PP{rank} |" + "".join(cells) + "|")
    out = "\n".join(rows)
    if legend:
        out += (
            f"\n      0..9 forward (microbatch mod 10)   a..z backward   "
            f". idle   | {result.total_ms / 1e3:.2f}s total, "
            f"bubble {result.bubble_ratio * 100:.1f}%"
        )
    return out


def chrome_trace(
    graph: IterationGraph,
    result: PipelineSimResult,
    process_name: str = "pipeline",
) -> Dict:
    """Build a Chrome-tracing JSON object for the schedule.

    Load the returned object (serialised with :func:`save_chrome_trace`)
    in ``chrome://tracing`` or https://ui.perfetto.dev: one row per
    pipeline rank, one slice per stage, with module / microbatch /
    strategy metadata attached.  Thin wrapper over
    :func:`repro.trace.builders.trace_from_sim` +
    :func:`repro.trace.export.to_chrome`; pass the cluster/parallel
    context to ``trace_from_sim`` directly for comm spans too.
    """
    trace = trace_from_sim(graph, result, label=process_name, stalls=False)
    return to_chrome(trace, process_name=process_name)


def save_chrome_trace(
    graph: IterationGraph,
    result: PipelineSimResult,
    path: str,
    process_name: str = "pipeline",
) -> str:
    """Serialise :func:`chrome_trace` to ``path``; returns the path."""
    trace = trace_from_sim(graph, result, label=process_name, stalls=False)
    return save_chrome(trace, path, process_name=process_name)


def memory_sparkline(
    result: PipelineSimResult,
    rank: int = 0,
    width: int = 80,
    limit_bytes: Optional[float] = None,
) -> str:
    """A one-line unicode sparkline of a rank's memory usage over time."""
    timeline = result.memory_timeline[rank]
    if not timeline or result.total_ms <= 0:
        return "(no memory data)"
    blocks = " ▁▂▃▄▅▆▇█"
    # Sample the step function uniformly.
    samples = []
    idx = 0
    for x in range(width):
        t = x / width * result.total_ms
        while idx + 1 < len(timeline) and timeline[idx + 1][0] <= t:
            idx += 1
        samples.append(timeline[idx][1])
    top = limit_bytes if limit_bytes else max(samples)
    top = max(top, 1.0)
    chars = [blocks[min(8, int(s / top * 8))] for s in samples]
    peak_gb = max(s for s in samples) / 2**30
    return "".join(chars) + f"  peak {peak_gb:.0f} GiB"
