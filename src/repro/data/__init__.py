"""Multimodal data substrate.

The paper trains on open-source image-text and video-caption corpora
(OBELICS, LAION-2B, ScienceQA, ShareGPT4Video, InternVid, MMTrail-2M).
Those corpora are not shipped here; instead this package synthesises
samples whose *modality-ratio distributions* match the published
statistics (Fig. 4a-b), which is the only property the scheduler observes.
"""

from repro.data.batching import GlobalBatch, Microbatch, microbatch_module_flops
from repro.data.constants import (
    CONTEXT_LENGTH,
    IMAGE_LM_TOKENS,
    IMAGE_PATCH_TOKENS,
    MAX_CLIPS_PER_MICROBATCH,
    MAX_IMAGES_PER_MICROBATCH,
    MAX_VIDEO_SECONDS,
    VIDEO_TOKENS_PER_SECOND,
)
from repro.data.datasets import (
    ImageTextDataset,
    ImageTextSample,
    VideoDataset,
    VideoSample,
    image_dataset,
    mixture_image_dataset,
    mixture_video_dataset,
    video_dataset,
)
from repro.data.packing import pack_image_text, pack_video
from repro.data.workload import (
    DynamicImageBoundsSchedule,
    WorkloadStream,
    t2v_workload,
    vlm_workload,
)

__all__ = [
    "CONTEXT_LENGTH",
    "IMAGE_PATCH_TOKENS",
    "IMAGE_LM_TOKENS",
    "MAX_IMAGES_PER_MICROBATCH",
    "MAX_CLIPS_PER_MICROBATCH",
    "MAX_VIDEO_SECONDS",
    "VIDEO_TOKENS_PER_SECOND",
    "Microbatch",
    "GlobalBatch",
    "microbatch_module_flops",
    "ImageTextSample",
    "VideoSample",
    "ImageTextDataset",
    "VideoDataset",
    "image_dataset",
    "video_dataset",
    "mixture_image_dataset",
    "mixture_video_dataset",
    "pack_image_text",
    "pack_video",
    "WorkloadStream",
    "vlm_workload",
    "t2v_workload",
    "DynamicImageBoundsSchedule",
]
