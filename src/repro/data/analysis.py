"""Workload analysis utilities: the numbers behind Fig. 4 and section 2.

Quantifies the two imbalance sources the paper characterises —
cross-batch workload spread and inter-modality skew — for any
architecture/workload pair, so users can assess how much dynamic
imbalance *their* training mix exhibits before committing to a schedule
strategy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.data.batching import GlobalBatch, Microbatch, microbatch_module_flops
from repro.models.lmm import LMMArchitecture


@dataclass(frozen=True)
class ModuleLoadStats:
    """Per-module FLOPs statistics across a set of microbatches."""

    module: str
    mean_tflops: float
    min_tflops: float
    max_tflops: float
    cv: float  # coefficient of variation

    @property
    def spread(self) -> float:
        """Max/min ratio (the paper's 4.15x style statistic)."""
        if self.min_tflops <= 0:
            return float("inf")
        return self.max_tflops / self.min_tflops


@dataclass(frozen=True)
class WorkloadReport:
    """Dynamic-imbalance characterisation of a workload sample."""

    modules: List[ModuleLoadStats]
    total_spread: float
    modality_skew: float
    microbatches: int

    def summary(self) -> str:
        lines = [
            f"{len(self.modules)} modules over {self.microbatches} microbatches",
            f"total FLOPs spread (max/min): {self.total_spread:.2f}x",
            f"modality skew (max mean / min mean): {self.modality_skew:.2f}x",
        ]
        for m in self.modules:
            lines.append(
                f"  {m.module:14s} mean {m.mean_tflops:8.1f} TF  "
                f"range [{m.min_tflops:.1f}, {m.max_tflops:.1f}]  "
                f"cv {m.cv:.2f}"
            )
        return "\n".join(lines)


def analyze_workload(
    arch: LMMArchitecture,
    microbatches: Sequence[Microbatch],
) -> WorkloadReport:
    """Characterise the dynamic imbalance of a microbatch sample.

    Args:
        arch: The LMM whose modules map the data to compute.
        microbatches: Any iterable of microbatch metadata (e.g. the
            concatenation of several :class:`GlobalBatch` objects).

    Raises:
        ValueError: on an empty sample.
    """
    microbatches = list(microbatches)
    if not microbatches:
        raise ValueError("need at least one microbatch")
    per_module: Dict[str, List[float]] = {b.name: [] for b in arch.bindings}
    for mb in microbatches:
        for name, flops in microbatch_module_flops(arch, mb).items():
            per_module[name].append(flops / 1e12)

    stats: List[ModuleLoadStats] = []
    means: List[float] = []
    for name, values in per_module.items():
        arr = np.array(values)
        mean = float(arr.mean())
        means.append(mean)
        stats.append(
            ModuleLoadStats(
                module=name,
                mean_tflops=mean,
                min_tflops=float(arr.min()),
                max_tflops=float(arr.max()),
                cv=float(arr.std() / mean) if mean > 0 else 0.0,
            )
        )
    totals = np.sum([per_module[n] for n in per_module], axis=0)
    total_spread = (
        float(totals.max() / totals.min()) if totals.min() > 0 else float("inf")
    )
    positive = [m for m in means if m > 0]
    skew = max(positive) / min(positive) if positive else 1.0
    return WorkloadReport(
        modules=stats,
        total_spread=total_spread,
        modality_skew=skew,
        microbatches=len(microbatches),
    )


def flatten_batches(batches: Sequence[GlobalBatch]) -> List[Microbatch]:
    """Concatenate several global batches into one microbatch list."""
    out: List[Microbatch] = []
    for batch in batches:
        out.extend(batch.microbatches)
    return out


def imbalance_gain_estimate(report: WorkloadReport) -> float:
    """Rough upper bound on DIP's gain over a static schedule.

    A static pipeline must provision for near-worst-case per-module
    load; a dynamic one tracks the actual load.  The ratio of the
    provisioning (sum of per-module maxima) to the mean total load is a
    crude ceiling on what re-planning can recover.
    """
    worst = sum(m.max_tflops for m in report.modules)
    mean = sum(m.mean_tflops for m in report.modules)
    if mean <= 0:
        return 1.0
    return worst / mean
