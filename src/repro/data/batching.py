"""Microbatch metadata and per-module workload derivation.

A :class:`Microbatch` records only the *metadata* the planner needs
(token/image/clip counts) — mirroring DIP's metadata prefetching, which
never touches tensor data.  :func:`module_workload` maps a microbatch onto
each modality module's effective (instances, sequence length) input, the
quantity the FLOPs model and simulator consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.data import constants
from repro.models.config import Modality
from repro.models.flops import module_forward_flops
from repro.models.lmm import LMMArchitecture, ModuleBinding


@dataclass(frozen=True)
class Microbatch:
    """Metadata of one packed microbatch.

    Attributes:
        index: Position within its global batch.
        kind: ``"vlm"``, ``"t2v"`` or ``"lm"``.
        num_images: Packed image count (VLM).
        text_tokens: Raw text tokens (VLM: excludes image tokens).
        num_clips: Packed video clip count (T2V).
        video_seconds: Total seconds of footage (T2V).
        caption_tokens: Caption text tokens (T2V).
        video_tokens_total: Total DiT latent tokens; when zero it is
            derived from ``video_seconds`` at the default rate (clips in
            higher-resolution buckets carry more tokens per second).
    """

    index: int
    kind: str
    num_images: int = 0
    text_tokens: int = 0
    num_clips: int = 0
    video_seconds: float = 0.0
    caption_tokens: int = 0
    video_tokens_total: int = 0

    @property
    def lm_sequence_tokens(self) -> int:
        """Tokens the VLM backbone sees (text + merged image tokens)."""
        return self.text_tokens + self.num_images * constants.IMAGE_LM_TOKENS

    @property
    def video_tokens(self) -> int:
        """Latent tokens the DiT processes."""
        if self.video_tokens_total > 0:
            return self.video_tokens_total
        return int(round(self.video_seconds * constants.VIDEO_TOKENS_PER_SECOND))

    @property
    def tokens_per_clip(self) -> int:
        """Average latent tokens per clip (uniform-clip approximation)."""
        if self.num_clips == 0:
            return 0
        return max(1, self.video_tokens // self.num_clips)


@dataclass
class GlobalBatch:
    """One training iteration's worth of microbatches."""

    microbatches: List[Microbatch] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.microbatches)

    def __iter__(self):
        return iter(self.microbatches)

    @property
    def total_images(self) -> int:
        return sum(m.num_images for m in self.microbatches)

    @property
    def average_images(self) -> float:
        if not self.microbatches:
            return 0.0
        return self.total_images / len(self.microbatches)


def module_workload(
    binding: ModuleBinding, microbatch: Microbatch
) -> Tuple[int, int, int]:
    """Map a microbatch onto a module's input shape.

    Returns:
        ``(instances, seq_per_instance, context_tokens)`` where attention
        runs independently over each instance of ``seq_per_instance``
        tokens and ``context_tokens`` is the cross-attention conditioning
        length (DiT only).
    """
    spec = binding.spec
    if spec.modality is Modality.IMAGE:
        return microbatch.num_images, constants.IMAGE_PATCH_TOKENS, 0
    if spec.modality is Modality.VIDEO:
        return microbatch.num_clips, microbatch.tokens_per_clip, microbatch.caption_tokens
    # Text modules: the packed sequence is a single instance.
    if microbatch.kind == "t2v":
        # Captions pad into the fixed conditioning context window.
        return 1, max(microbatch.caption_tokens, constants.T2V_TEXT_CONTEXT), 0
    return 1, max(microbatch.lm_sequence_tokens, 1), 0


def module_is_splittable(binding: ModuleBinding) -> bool:
    """Whether sub-microbatch splitting applies to this module.

    Instance-parallel modules (image encoders over images, DiTs over
    clips) can split; packed text sequences are a single instance and
    cannot.
    """
    return binding.spec.modality in (Modality.IMAGE, Modality.VIDEO)


def microbatch_module_flops(
    arch: LMMArchitecture, microbatch: Microbatch
) -> Dict[str, float]:
    """Forward FLOPs per module for one microbatch (basis of Fig. 4c-d)."""
    out: Dict[str, float] = {}
    for binding in arch.bindings:
        instances, seq, context = module_workload(binding, microbatch)
        if instances == 0 or seq == 0:
            out[binding.name] = 0.0
            continue
        out[binding.name] = module_forward_flops(binding.spec, instances, seq, context)
    return out


def microbatch_total_flops(
    arch: LMMArchitecture, microbatch: Microbatch, with_backward: bool = True
) -> float:
    """Total train-step FLOPs of a microbatch (forward + 2x backward)."""
    fwd = sum(microbatch_module_flops(arch, microbatch).values())
    return fwd * (3.0 if with_backward else 1.0)


def iteration_flops(arch: LMMArchitecture, batch: GlobalBatch) -> float:
    """Total train-step FLOPs of a whole iteration."""
    return sum(microbatch_total_flops(arch, m) for m in batch)
