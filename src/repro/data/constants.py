"""Tokenisation constants from the paper's methodology (section 7.1).

VLM: images are scaled to 728px and patch-embedded with ``patch_size=14``
(52x52 = 2704 patches inside the ViT); ``spatial_merge_size=4`` merges
4x4 patch groups, so each image contributes 169 tokens to the language
model.  Samples pack into 8192-token sequences, capping images at
``floor(8192/169) = 48`` per microbatch.

T2V: MovieGen-style videos at 16 FPS, at most 16 seconds per microbatch,
grouping up to 8 clips.  The DiT consumes latent video tokens at a fixed
rate per second of footage.
"""

IMAGE_RESOLUTION = 728
PATCH_SIZE = 14
SPATIAL_MERGE_SIZE = 4

#: Patch tokens the ViT attends over, per image: (728/14)^2.
IMAGE_PATCH_TOKENS = (IMAGE_RESOLUTION // PATCH_SIZE) ** 2

#: Tokens each image contributes to the LM after 4x4 spatial merging.
IMAGE_LM_TOKENS = IMAGE_PATCH_TOKENS // (SPATIAL_MERGE_SIZE**2)

#: Packed sequence length for VLM training.
CONTEXT_LENGTH = 8192

#: Maximum images per packed microbatch: floor(8192 / 169) = 48.
MAX_IMAGES_PER_MICROBATCH = CONTEXT_LENGTH // IMAGE_LM_TOKENS

VIDEO_FPS = 16
MAX_VIDEO_SECONDS = 16.0
MAX_CLIPS_PER_MICROBATCH = 8

#: Latent video tokens the DiT processes per second of footage at the
#: default (mid) resolution bucket.  MovieGen-class models reach ~73K
#: tokens for 16 s of 768px footage (~4.5K/s); our default sits below
#: that to keep full-attention FLOPs comparable with Fig. 4d while still
#: exercising the activation-memory pressure DiTs create.
VIDEO_TOKENS_PER_SECOND = 1600

#: The text encoder of a T2V model processes captions padded/packed into
#: a fixed-length conditioning context, as in MovieGen-style training.
T2V_TEXT_CONTEXT = 2048
