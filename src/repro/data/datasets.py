"""Synthetic multimodal datasets with paper-matched ratio distributions.

Each dataset yields raw *samples* (documents / clips); the packing stage
(:mod:`repro.data.packing`) assembles them into fixed-capacity
microbatches exactly as described in section 7.1 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.data import constants
from repro.data.distributions import (
    IMAGE_RATIO_DISTRIBUTIONS,
    LogNormalRatio,
    VIDEO_RATIO_DISTRIBUTIONS,
)


@dataclass(frozen=True)
class ImageTextSample:
    """One image-text document: ``num_images`` images plus text tokens."""

    num_images: int
    text_tokens: int

    def __post_init__(self) -> None:
        if self.num_images < 0 or self.text_tokens < 0:
            raise ValueError("sample sizes must be non-negative")

    @property
    def lm_tokens(self) -> int:
        """Tokens this document occupies in the packed LM sequence."""
        return self.text_tokens + self.num_images * constants.IMAGE_LM_TOKENS


@dataclass(frozen=True)
class VideoSample:
    """One captioned video clip.

    ``tokens_per_second`` encodes the clip's resolution/aspect bucket:
    higher-resolution footage yields more latent tokens per second, the
    dominant source of cross-batch DiT workload variance (the paper's
    4.15x FLOPs spread, Fig. 4d).
    """

    duration_seconds: float
    caption_tokens: int
    tokens_per_second: int = constants.VIDEO_TOKENS_PER_SECOND

    def __post_init__(self) -> None:
        if self.duration_seconds <= 0:
            raise ValueError("duration must be positive")
        if self.caption_tokens < 0:
            raise ValueError("caption_tokens must be non-negative")
        if self.tokens_per_second <= 0:
            raise ValueError("tokens_per_second must be positive")

    @property
    def video_tokens(self) -> int:
        """Latent tokens the DiT processes for this clip."""
        return int(round(self.duration_seconds * self.tokens_per_second))


class ImageTextDataset:
    """Synthetic image-text corpus driven by a token/image ratio model.

    Args:
        ratio: Distribution of text tokens per image.
        images_per_doc_mean: Mean images per document (geometric law);
            interleaved corpora like OBELICS have multi-image documents,
            caption corpora like LAION have exactly one.
        seed: RNG seed; each dataset instance is deterministic.
    """

    def __init__(
        self,
        ratio: LogNormalRatio,
        images_per_doc_mean: float = 1.0,
        seed: int = 0,
    ) -> None:
        if images_per_doc_mean < 1.0:
            raise ValueError("images_per_doc_mean must be >= 1")
        self.ratio = ratio
        self.images_per_doc_mean = images_per_doc_mean
        self._rng = np.random.default_rng(seed)

    @property
    def name(self) -> str:
        return self.ratio.name

    def sample(self) -> ImageTextSample:
        """Draw one document."""
        if self.images_per_doc_mean == 1.0:
            num_images = 1
        else:
            p = 1.0 / self.images_per_doc_mean
            num_images = int(self._rng.geometric(p))
        ratio = float(self.ratio.sample(self._rng))
        text_tokens = max(1, int(round(ratio * num_images)))
        return ImageTextSample(num_images=num_images, text_tokens=text_tokens)

    def take(self, n: int) -> List[ImageTextSample]:
        """Draw ``n`` documents."""
        return [self.sample() for _ in range(n)]


class VideoDataset:
    """Synthetic video-caption corpus driven by a tokens/second model.

    Args:
        ratio: Distribution of caption tokens per second of footage.
        duration_mean: Mean clip duration in seconds (log-normal, clipped
            to the 16-second training maximum).
        seed: RNG seed.
    """

    #: (tokens/second, probability) resolution buckets: 480p / 720p-ish /
    #: high-resolution footage after VAE + patchification.  The 3x range
    #: between buckets yields the ~4x cross-batch FLOPs spread of Fig. 4d.
    RESOLUTION_BUCKETS = (
        (constants.VIDEO_TOKENS_PER_SECOND // 2, 0.30),
        (constants.VIDEO_TOKENS_PER_SECOND, 0.50),
        (constants.VIDEO_TOKENS_PER_SECOND * 3 // 2, 0.20),
    )

    def __init__(
        self,
        ratio: LogNormalRatio,
        duration_mean: float = 8.0,
        seed: int = 0,
    ) -> None:
        self.ratio = ratio
        self.duration_mean = duration_mean
        self._rng = np.random.default_rng(seed)

    @property
    def name(self) -> str:
        return self.ratio.name

    def sample(self) -> VideoSample:
        """Draw one clip."""
        duration = float(
            np.clip(
                self._rng.lognormal(np.log(self.duration_mean), 0.6),
                1.0,
                constants.MAX_VIDEO_SECONDS,
            )
        )
        caption_rate = float(self.ratio.sample(self._rng))
        caption = max(1, int(round(caption_rate * duration)))
        rates = [r for r, _ in self.RESOLUTION_BUCKETS]
        probs = [p for _, p in self.RESOLUTION_BUCKETS]
        tps = int(self._rng.choice(rates, p=probs))
        return VideoSample(duration_seconds=duration, caption_tokens=caption,
                           tokens_per_second=tps)

    def take(self, n: int) -> List[VideoSample]:
        """Draw ``n`` clips."""
        return [self.sample() for _ in range(n)]


class _Mixture:
    """Weighted mixture over component datasets (shared by both kinds)."""

    def __init__(self, components: Sequence, weights: Sequence[float], seed: int) -> None:
        if len(components) != len(weights) or not components:
            raise ValueError("components and weights must be equal-length, non-empty")
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        self.components = list(components)
        self.weights = [w / total for w in weights]
        self._rng = np.random.default_rng(seed)
        self.name = "mix(" + "+".join(c.name for c in components) + ")"

    def sample(self):
        idx = int(self._rng.choice(len(self.components), p=self.weights))
        return self.components[idx].sample()

    def take(self, n: int) -> list:
        return [self.sample() for _ in range(n)]


def image_dataset(name: str, seed: int = 0) -> ImageTextDataset:
    """Construct a named synthetic image-text dataset.

    OBELICS documents interleave ~2.5 images on average; caption corpora
    carry a single image per sample.
    """
    ratio = IMAGE_RATIO_DISTRIBUTIONS.get(name)
    if ratio is None:
        known = ", ".join(sorted(IMAGE_RATIO_DISTRIBUTIONS))
        raise KeyError(f"unknown image dataset {name!r}; known: {known}")
    images_per_doc = 2.5 if name == "OBELICS" else 1.0
    return ImageTextDataset(ratio, images_per_doc_mean=images_per_doc, seed=seed)


def video_dataset(name: str, seed: int = 0) -> VideoDataset:
    """Construct a named synthetic video dataset."""
    ratio = VIDEO_RATIO_DISTRIBUTIONS.get(name)
    if ratio is None:
        known = ", ".join(sorted(VIDEO_RATIO_DISTRIBUTIONS))
        raise KeyError(f"unknown video dataset {name!r}; known: {known}")
    # Web video clips are short (a few seconds), so grouped microbatches
    # typically hold several clips — the unit DIP's sub-microbatch
    # splitting operates on.
    duration_mean = {"ShareGPT4Video": 5.0, "InternVid": 3.5, "MMTrail-2M": 6.0}[name]
    return VideoDataset(ratio, duration_mean=duration_mean, seed=seed)


def mixture_image_dataset(seed: int = 0) -> _Mixture:
    """The paper's image-text training mix (OBELICS + LAION + ScienceQA).

    Interleaved documents dominate; caption corpora are a minority so a
    packed 8192-token batch carries a handful of images on average, with
    a long tail of caption-dense (image-heavy) batches — matching the
    spread of Fig. 4c.
    """
    parts = [image_dataset(n, seed=seed + i) for i, n in
             enumerate(("OBELICS", "LAION-2B", "ScienceQA"))]
    return _Mixture(parts, weights=[0.75, 0.10, 0.15], seed=seed + 101)


def mixture_video_dataset(seed: int = 0) -> _Mixture:
    """The paper's video training mix (ShareGPT4Video + InternVid + MMTrail)."""
    parts = [video_dataset(n, seed=seed + i) for i, n in
             enumerate(("ShareGPT4Video", "InternVid", "MMTrail-2M"))]
    return _Mixture(parts, weights=[0.4, 0.35, 0.25], seed=seed + 202)
