"""Statistical models of the paper's training corpora (Fig. 4a-b).

Each corpus is summarised by the distribution of its modality ratio:
text tokens per image for image-text datasets, caption tokens per second
of footage for video datasets.  Log-normal fits reproduce the published
shapes: LAION-2B is narrow around 16.4 tokens/image, OBELICS spans
0.4-3115 tokens/image, video corpora differ in caption density.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LogNormalRatio:
    """A clipped log-normal distribution over a modality ratio.

    Attributes:
        name: Dataset name.
        mu: Mean of ``log(ratio)``.
        sigma: Standard deviation of ``log(ratio)``.
        low: Lower clip bound.
        high: Upper clip bound.
    """

    name: str
    mu: float
    sigma: float
    low: float
    high: float

    def sample(self, rng: np.random.Generator, size: int | None = None):
        """Draw ratio samples (scalar when ``size`` is None)."""
        raw = rng.lognormal(self.mu, self.sigma, size=size)
        return np.clip(raw, self.low, self.high)

    def mean(self) -> float:
        """Analytic mean of the unclipped log-normal (good approximation)."""
        return float(np.exp(self.mu + 0.5 * self.sigma**2))


# --- Image-text corpora: text tokens per image (Fig. 4a) ------------------

#: Short alt-text captions; the paper reports 16.4 tokens/image.
LAION_2B = LogNormalRatio("LAION-2B", mu=np.log(15.0), sigma=0.42, low=3.0, high=77.0)

#: Science questions with one diagram and a paragraph of text.
SCIENCEQA = LogNormalRatio("ScienceQA", mu=np.log(160.0), sigma=0.7, low=20.0, high=800.0)

#: Interleaved web documents; the paper reports a 0.4-3115 range.  Long
#: text spans dominate, so packed batches carry only a few images.
OBELICS = LogNormalRatio("OBELICS", mu=np.log(1000.0), sigma=1.1, low=0.4, high=3115.0)

# --- Video corpora: caption tokens per second (Fig. 4b) -------------------

#: Dense GPT-4V re-captions.
SHAREGPT4VIDEO = LogNormalRatio(
    "ShareGPT4Video", mu=np.log(28.0), sigma=0.5, low=2.0, high=70.0
)

#: Sparse ASR-derived captions.
INTERNVID = LogNormalRatio("InternVid", mu=np.log(7.0), sigma=0.7, low=0.5, high=40.0)

#: Trailer videos with music/language descriptions.
MMTRAIL_2M = LogNormalRatio("MMTrail-2M", mu=np.log(14.0), sigma=0.6, low=1.0, high=60.0)

IMAGE_RATIO_DISTRIBUTIONS = {
    d.name: d for d in (LAION_2B, SCIENCEQA, OBELICS)
}
VIDEO_RATIO_DISTRIBUTIONS = {
    d.name: d for d in (SHAREGPT4VIDEO, INTERNVID, MMTRAIL_2M)
}


def ratio_histogram(
    dist: LogNormalRatio,
    rng: np.random.Generator,
    num_samples: int = 100_000,
    bins: int = 80,
):
    """Normalised histogram of a ratio distribution (Fig. 4a-b series).

    Returns:
        (bin_centers, proportions) arrays; proportions sum to 1.
    """
    samples = dist.sample(rng, size=num_samples)
    counts, edges = np.histogram(samples, bins=bins)
    centers = 0.5 * (edges[:-1] + edges[1:])
    proportions = counts / counts.sum()
    return centers, proportions
