"""Greedy data packing (section 7.1 of the paper).

Image-text documents pack into 8192-token sequences (image tokens count
towards capacity, at most 48 images).  Video clips group up to 8 per
microbatch while keeping total footage under 16 seconds.  Packing reduces
but does not remove workload variation — the residual spread across
packed batches is exactly the *training data dynamicity* DIP targets.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional

from repro.data import constants
from repro.data.batching import GlobalBatch, Microbatch
from repro.data.datasets import ImageTextSample, VideoSample


def pack_image_text(
    samples: Iterable[ImageTextSample],
    num_microbatches: int,
    context_length: int = constants.CONTEXT_LENGTH,
    max_images: int = constants.MAX_IMAGES_PER_MICROBATCH,
    start_index: int = 0,
) -> GlobalBatch:
    """Greedily pack documents into ``num_microbatches`` VLM microbatches.

    Documents too large for the remaining capacity close the current
    microbatch; documents larger than a whole microbatch are truncated to
    capacity (matching practical packers).

    Args:
        samples: Document stream; consumed lazily.
        num_microbatches: Microbatches to build.
        context_length: Packed sequence capacity in tokens.
        max_images: Image cap per microbatch.
        start_index: Index assigned to the first microbatch.
    """
    iterator: Iterator[ImageTextSample] = iter(samples)
    out: List[Microbatch] = []
    for i in range(num_microbatches):
        images = 0
        text = 0
        used = 0
        while True:
            try:
                doc = next(iterator)
            except StopIteration:
                break
            doc_images = min(doc.num_images, max_images - images)
            image_tokens = doc_images * constants.IMAGE_LM_TOKENS
            doc_text = min(doc.text_tokens, context_length - used - image_tokens)
            if doc_text < 0:
                # Not even the images fit; drop the remainder of this doc.
                break
            images += doc_images
            text += doc_text
            used += image_tokens + doc_text
            if used >= context_length or images >= max_images:
                break
        # Pad the remainder with text tokens, as packed training does.
        text += context_length - used
        out.append(
            Microbatch(
                index=start_index + i,
                kind="vlm",
                num_images=images,
                text_tokens=text,
            )
        )
    return GlobalBatch(out)


def pack_video(
    samples: Iterable[VideoSample],
    num_microbatches: int,
    max_seconds: float = constants.MAX_VIDEO_SECONDS,
    max_clips: int = constants.MAX_CLIPS_PER_MICROBATCH,
    start_index: int = 0,
    pool_size: int = 16,
) -> GlobalBatch:
    """Group clips into T2V microbatches (<= 16 s footage, <= 8 clips).

    A small candidate pool lets the packer pick any clip that still fits
    (best-fit), the way duration-bucketed video loaders group clips with
    similar lengths.  Clips only group with clips of the *same
    resolution bucket* (same tokens/second), mirroring the paper's
    aspect-ratio-grouped batching — so batches pack close to the
    16-second target and workload variance comes from which resolution
    bucket a batch lands in (Fig. 4d's 4.15x FLOPs spread).
    """
    iterator: Iterator[VideoSample] = iter(samples)
    pool: List[VideoSample] = []

    def refill() -> None:
        while len(pool) < pool_size:
            try:
                pool.append(next(iterator))
            except StopIteration:
                break

    out: List[Microbatch] = []
    for i in range(num_microbatches):
        refill()
        clips = 0
        seconds = 0.0
        caption = 0
        tokens = 0
        bucket: Optional[int] = None
        while clips < max_clips and pool:
            remaining = max_seconds - seconds
            fitting = [
                c for c in pool
                if c.duration_seconds <= remaining
                and (bucket is None or c.tokens_per_second == bucket)
            ]
            if not fitting:
                if clips == 0:
                    fitting = [min(pool, key=lambda c: c.duration_seconds)]
                else:
                    break
            # Best fit: the longest clip that still fits.
            clip = max(fitting, key=lambda c: c.duration_seconds)
            pool.remove(clip)
            bucket = clip.tokens_per_second
            clips += 1
            seconds += min(clip.duration_seconds, max_seconds)
            caption += clip.caption_tokens
            tokens += clip.video_tokens
            refill()
            if seconds >= max_seconds - 1.0:
                break
        if clips == 0:
            # Stream exhausted: emit a minimal single-clip microbatch so
            # the iteration shape stays fixed.
            clips, seconds, caption = 1, 4.0, 60
            tokens = int(4.0 * constants.VIDEO_TOKENS_PER_SECOND)
        out.append(
            Microbatch(
                index=start_index + i,
                kind="t2v",
                num_clips=clips,
                video_seconds=seconds,
                caption_tokens=caption,
                video_tokens_total=tokens,
            )
        )
    return GlobalBatch(out)


def pack_image_text_balanced(
    samples: Iterable[ImageTextSample],
    num_microbatches: int,
    context_length: int = constants.CONTEXT_LENGTH,
    max_images: int = constants.MAX_IMAGES_PER_MICROBATCH,
    start_index: int = 0,
) -> GlobalBatch:
    """DynaPipe-style balanced packing: even out image counts per batch.

    Consumes the same document stream a greedy packer would, but assigns
    each document to the microbatch currently holding the fewest images —
    the data-centric mitigation the paper discusses (section 2.3) and
    finds *insufficient*: it narrows cross-batch variance but cannot
    touch the inter-modality imbalance inside each batch.
    """
    bins = [{"images": 0, "text": 0, "used": 0} for _ in range(num_microbatches)]
    for doc in samples:
        candidates = sorted(range(num_microbatches),
                            key=lambda i: (bins[i]["images"], bins[i]["used"]))
        placed = False
        for i in candidates:
            b = bins[i]
            doc_images = min(doc.num_images, max_images - b["images"])
            image_tokens = doc_images * constants.IMAGE_LM_TOKENS
            doc_text = min(doc.text_tokens,
                           context_length - b["used"] - image_tokens)
            if doc_text < 0 or (doc_images == 0 and doc.num_images > 0):
                continue
            b["images"] += doc_images
            b["text"] += doc_text
            b["used"] += image_tokens + doc_text
            placed = True
            break
        if not placed:
            break  # every microbatch is full
    out = []
    for i, b in enumerate(bins):
        text = b["text"] + (context_length - b["used"])  # pad with text
        out.append(Microbatch(index=start_index + i, kind="vlm",
                              num_images=b["images"], text_tokens=text))
    return GlobalBatch(out)


def controlled_vlm_microbatch(
    index: int,
    num_images: int,
    context_length: int = constants.CONTEXT_LENGTH,
) -> Microbatch:
    """Build a VLM microbatch with an exact image count.

    Used by the Fig. 8b dynamic-workload experiment, where image counts
    are controlled directly; text fills the remaining capacity.
    """
    num_images = max(0, min(num_images, constants.MAX_IMAGES_PER_MICROBATCH))
    text = context_length - num_images * constants.IMAGE_LM_TOKENS
    return Microbatch(index=index, kind="vlm", num_images=num_images, text_tokens=text)


def unimodal_lm_microbatch(
    index: int, context_length: int = constants.CONTEXT_LENGTH
) -> Microbatch:
    """A pure-text microbatch (Table 1's unimodal baseline)."""
    return Microbatch(index=index, kind="lm", text_tokens=context_length)
