"""Training workload streams: one :class:`GlobalBatch` per iteration.

Also implements the controlled rise-and-fall image-count schedule used by
the paper's dynamic-workload study (Fig. 8b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from repro.data.batching import GlobalBatch
from repro.data.datasets import mixture_image_dataset, mixture_video_dataset
from repro.data.packing import controlled_vlm_microbatch, pack_image_text, pack_video


class WorkloadStream:
    """An endless stream of global batches drawn from a dataset mixture.

    Args:
        kind: ``"vlm"`` or ``"t2v"``.
        num_microbatches: Microbatches per iteration.
        seed: Seed for the underlying synthetic datasets.
    """

    def __init__(self, kind: str, num_microbatches: int, seed: int = 0) -> None:
        if kind not in ("vlm", "t2v"):
            raise ValueError(f"kind must be 'vlm' or 't2v', got {kind!r}")
        if num_microbatches < 1:
            raise ValueError("num_microbatches must be >= 1")
        self.kind = kind
        self.num_microbatches = num_microbatches
        if kind == "vlm":
            self._dataset = mixture_image_dataset(seed=seed)
        else:
            self._dataset = mixture_video_dataset(seed=seed)
        self._iteration = 0

    def _sample_stream(self):
        while True:
            yield self._dataset.sample()

    def next_batch(self) -> GlobalBatch:
        """Pack and return the next iteration's global batch."""
        start = self._iteration * self.num_microbatches
        if self.kind == "vlm":
            batch = pack_image_text(
                self._sample_stream(), self.num_microbatches, start_index=start
            )
        else:
            batch = pack_video(
                self._sample_stream(), self.num_microbatches, start_index=start
            )
        self._iteration += 1
        return batch

    def batches(self, n: int) -> List[GlobalBatch]:
        """Materialise ``n`` consecutive iterations."""
        return [self.next_batch() for _ in range(n)]

    def __iter__(self) -> Iterator[GlobalBatch]:
        while True:
            yield self.next_batch()


def vlm_workload(num_microbatches: int, seed: int = 0) -> WorkloadStream:
    """The paper's VLM training mix."""
    return WorkloadStream("vlm", num_microbatches, seed=seed)


def t2v_workload(num_microbatches: int, seed: int = 0) -> WorkloadStream:
    """The paper's T2V training mix."""
    return WorkloadStream("t2v", num_microbatches, seed=seed)


@dataclass
class DynamicImageBoundsSchedule:
    """Controlled per-iteration image-count bounds (Fig. 8b methodology).

    Two consecutive "rise-and-fall" patterns over 40 iterations: the
    lower bound climbs 0 -> 16 with the upper bound held at 32
    (iterations 1-5 of each pattern, peaking near 22 images/microbatch on
    average), then both bounds decay to zero (iterations 6-20).

    Args:
        num_microbatches: Microbatches per iteration.
        iterations_per_pattern: Length of one rise-and-fall pattern.
        num_patterns: How many patterns to emit.
        peak_lower: Lower bound reached at the end of the rise phase.
        peak_upper: Upper bound during the rise phase.
        seed: RNG seed for per-microbatch image draws.
    """

    num_microbatches: int = 8
    iterations_per_pattern: int = 20
    num_patterns: int = 2
    rise_iterations: int = 5
    peak_lower: int = 16
    peak_upper: int = 32
    seed: int = 0

    def bounds(self, iteration: int) -> Tuple[int, int]:
        """Image-count (lower, upper) bounds for a 0-based iteration."""
        local = iteration % self.iterations_per_pattern
        if local < self.rise_iterations:
            frac = (local + 1) / self.rise_iterations
            return int(round(self.peak_lower * frac)), self.peak_upper
        fall = self.iterations_per_pattern - self.rise_iterations
        frac = 1.0 - (local - self.rise_iterations + 1) / fall
        lower = int(round(self.peak_lower * frac))
        upper = max(lower, int(round(self.peak_upper * frac)))
        return lower, upper

    @property
    def total_iterations(self) -> int:
        return self.iterations_per_pattern * self.num_patterns

    def batch(self, iteration: int) -> GlobalBatch:
        """Build the controlled global batch for one iteration."""
        lower, upper = self.bounds(iteration)
        rng = np.random.default_rng(self.seed + iteration)
        microbatches = []
        for i in range(self.num_microbatches):
            count = int(rng.integers(lower, upper + 1)) if upper > lower else lower
            microbatches.append(
                controlled_vlm_microbatch(
                    index=iteration * self.num_microbatches + i, num_images=count
                )
            )
        return GlobalBatch(microbatches)

    def batches(self) -> List[GlobalBatch]:
        """All iterations of the schedule."""
        return [self.batch(i) for i in range(self.total_iterations)]
