"""Planning fleet: N shard processes behind signature-routed clients.

One :class:`~repro.service.rpc.PlanServiceServer` is a single process —
one GIL, one in-memory cache, one coalescing domain.  This package
scales it out while keeping the properties that make the service fast:

* :mod:`repro.fleet.ring` — consistent hashing of signature digests
  onto shards (virtual nodes, deterministic across processes), so every
  request for one signature lands on one shard and cross-client
  coalescing + cache locality survive at fleet scale.
* :mod:`repro.fleet.client` — :class:`FleetClient`: routes each batch
  by its locally computed signature, fails over along the ring on shard
  loss (loudly — locality is temporarily gone), and merges per-shard
  stats into one fleet view.
* :mod:`repro.fleet.launcher` — :class:`PlanFleet`: spawns and monitors
  the shard subprocesses over one shared on-disk cache tier
  (:mod:`repro.core.cachetier`), with graceful drain-and-stop and a
  crashed-shard restart policy.
* :mod:`repro.fleet.bench` — plans/sec vs shard count on the paper's
  fig. 11 workload (``benchmarks/test_fleet.py`` and ``repro fleet
  bench`` both drive it).
"""

from repro.fleet.breaker import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    CircuitBreaker,
)
from repro.fleet.client import (
    FleetClient,
    FleetFailoverWarning,
    WarningAggregator,
    drive_fleet,
    fleet_stats,
)
from repro.fleet.launcher import FleetConfig, PlanFleet, ShardHandle
from repro.fleet.ring import HashRing
from repro.service.retry import RetryPolicy

__all__ = [
    "CircuitBreaker",
    "FleetClient",
    "FleetFailoverWarning",
    "FleetConfig",
    "HashRing",
    "PlanFleet",
    "RetryPolicy",
    "STATE_CLOSED",
    "STATE_HALF_OPEN",
    "STATE_OPEN",
    "ShardHandle",
    "WarningAggregator",
    "drive_fleet",
    "fleet_stats",
]
