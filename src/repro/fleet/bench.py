"""Fleet throughput: plans/sec vs shard count, many client processes.

The scaling claim this measures: schedule search is CPU-bound Python,
so one server process is GIL-bound no matter how many worker threads it
has — a fleet of N single-GIL shards with signature routing should
approach N-way search parallelism whenever distinct signatures are in
flight concurrently, while keeping per-signature behaviour (one search,
coalesced replays, identical makespans) exactly as a single server.

Methodology:

* the paper's fig. 11 regime (VLM-M, dynamic workload) drives every
  fleet size with the *same* batch stream;
* each client process rotates the stream by its index, so at any
  instant the fleet sees several distinct signatures concurrently (the
  scaling headroom) while every signature is still requested by every
  client (the coalescing/replay regime);
* clients are real OS processes (``multiprocessing`` spawn — no shared
  GIL with the shards or each other), synchronised on a barrier so the
  measured wall excludes interpreter start-up and planner-mirror
  construction;
* a fresh cache directory per fleet size keeps search counts identical
  across sizes, making plans/sec comparable and letting the caller
  assert makespan identity per signature across fleet sizes.
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import tempfile
import time
from typing import Dict, List, Optional, Sequence

from repro.fleet.client import fleet_stats
from repro.fleet.launcher import FleetConfig, PlanFleet

#: The fig. 11 workload regime (mirrors benchmarks/test_service.py).
FIG11_MODEL = "VLM-M"
FIG11_MICROBATCHES = 12
FIG11_WORKLOAD_SEED = 9


def _client_worker(addresses: List[str], model: str, replica: int,
                   batch_payloads: List[Dict], budget: int, seed: int,
                   timeout_s: float, barrier, results) -> None:
    """One benchmark client process: build a local planner mirror, wait
    for the fleet-wide start barrier, drive the (rotated) stream through
    a routed :class:`~repro.fleet.client.FleetClient`."""
    from repro.cli import _setup
    from repro.data.batching import GlobalBatch
    from repro.fleet.client import FleetClient
    from repro.service.rpc import batch_from_dict

    _arch, _cluster, _parallel, planner = _setup(
        model, budget, seed, plan_cache=True, cache_size=256)
    batches: List[GlobalBatch] = [batch_from_dict(p)
                                  for p in batch_payloads]
    rotated = batches[replica % len(batches):] + \
        batches[:replica % len(batches)]
    client = FleetClient(addresses, model, replica, rotated,
                         planner=planner, timeout_s=timeout_s)
    barrier.wait(timeout=300.0)
    t0 = time.monotonic()
    client.run()
    wall = time.monotonic() - t0
    client.close()
    results.put({
        "replica": replica,
        "wall_s": wall,
        "records": [
            {"signature": r.signature, "predicted_ms": r.predicted_ms,
             "outcome": r.outcome, "iteration": r.iteration}
            for r in client.records
        ],
        "routes": client.routes,
        "errors": client.errors,
        "failovers": client.failovers,
    })


def run_fleet_bench(
    shard_counts: Sequence[int] = (1, 2, 4),
    model: str = FIG11_MODEL,
    microbatches: int = FIG11_MICROBATCHES,
    iterations: int = 8,
    clients: int = 6,
    budget: int = 10,
    seed: int = 0,
    workload_seed: int = FIG11_WORKLOAD_SEED,
    workers: int = 2,
    timeout_s: float = 300.0,
    cache_root: Optional[str] = None,
    keep_cache: bool = False,
) -> Dict:
    """Measure plans/sec against fleets of each size in ``shard_counts``.

    Returns a JSON-serialisable dict: per fleet size the wall time,
    plans/sec, merged service stats, per-signature best makespans and
    shard routing spread; plus the workload description and the
    1→max(shards) scaling factor.
    """
    from repro.cli import _setup, _workload
    from repro.service.rpc import batch_to_dict

    arch, _cluster, _parallel, _planner = _setup(
        model, budget, seed, plan_cache=True, cache_size=256)
    stream = _workload(arch, microbatches,
                       workload_seed).batches(iterations)
    batch_payloads = [batch_to_dict(b) for b in stream]

    root = cache_root or tempfile.mkdtemp(prefix="repro-fleet-bench-")
    context = multiprocessing.get_context("spawn")
    sizes: Dict[str, Dict] = {}
    try:
        for count in shard_counts:
            cache_dir = os.path.join(root, f"shards-{count}", "cache")
            runtime_dir = os.path.join(root, f"shards-{count}", "run")
            config = FleetConfig(
                models=[model], shards=count, cache_dir=cache_dir,
                runtime_dir=runtime_dir, budget=budget, seed=seed,
                workers=workers, queue=max(64, clients * iterations),
                cache_size=256,
                # Warm starts make a search's outcome depend on the
                # shard's cache contents, which differ with the shard
                # count; disabling them makes every plan a pure function
                # of (signature, context, seed) so makespans are
                # comparable across fleet sizes.
                near_miss=False,
            )
            with PlanFleet(config) as fleet:
                barrier = context.Barrier(clients + 1)
                results = context.Queue()
                processes = [
                    context.Process(
                        target=_client_worker,
                        args=(fleet.addresses, model, replica,
                              batch_payloads, budget, seed, timeout_s,
                              barrier, results),
                    )
                    for replica in range(clients)
                ]
                for process in processes:
                    process.start()
                barrier.wait(timeout=300.0)
                t0 = time.monotonic()
                payloads = [results.get(timeout=timeout_s)
                            for _ in range(clients)]
                wall = time.monotonic() - t0
                for process in processes:
                    process.join(timeout=30.0)
                stats = fleet_stats(fleet.addresses)
            sizes[str(count)] = _summarize(count, wall, payloads, stats)
    finally:
        if not keep_cache and cache_root is None:
            shutil.rmtree(root, ignore_errors=True)

    counts = [int(c) for c in sizes]
    low, high = str(min(counts)), str(max(counts))
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        cpus = os.cpu_count() or 1
    return {
        "workload": {
            "model": model, "microbatches": microbatches,
            "iterations": iterations, "clients": clients,
            "budget": budget, "seed": seed,
            "workload_seed": workload_seed, "workers": workers,
            # Shard processes scale search throughput only when the
            # machine can actually run them side by side; readers (and
            # the benchmark's own scaling gate) interpret ``scaling``
            # relative to this.
            "cpus": cpus,
        },
        "sizes": sizes,
        "scaling": (sizes[high]["plans_per_s"] / sizes[low]["plans_per_s"]
                    if sizes[low]["plans_per_s"] else 0.0),
    }


def _summarize(count: int, wall: float, payloads: List[Dict],
               stats: Dict) -> Dict:
    records = [r for p in payloads for r in p["records"]]
    errors = [e for p in payloads for e in p["errors"]]
    makespans: Dict[str, float] = {}
    conflicts: List[str] = []
    for record in records:
        digest = record["signature"]
        previous = makespans.setdefault(digest, record["predicted_ms"])
        if previous != record["predicted_ms"]:
            conflicts.append(digest)
    shard_of: Dict[str, set] = {}
    for payload in payloads:
        for digest, address in payload["routes"]:
            shard_of.setdefault(digest, set()).add(address)
    return {
        "shards": count,
        "wall_s": wall,
        "plans": len(records),
        "plans_per_s": len(records) / wall if wall > 0 else 0.0,
        "client_wall_s": [p["wall_s"] for p in payloads],
        "errors": errors,
        "failovers": sum(p["failovers"] for p in payloads),
        "makespans": makespans,
        # Every signature should be served by exactly one shard (the
        # coalescing-locality invariant); >1 only after failovers.
        "max_shards_per_signature": max(
            (len(s) for s in shard_of.values()), default=0),
        "makespan_conflicts": conflicts,
        "service": stats.get("service", {}),
        "cache": stats.get("cache", {}),
    }


def makespan_conflicts(result: Dict) -> List[str]:
    """Digests whose best makespan differs across fleet sizes (or
    within one) — must be empty: search is seeded and deterministic, so
    the shard count can never change a plan."""
    reference: Dict[str, float] = {}
    conflicts: List[str] = []
    for key in sorted(result["sizes"], key=int):
        size = result["sizes"][key]
        conflicts.extend(size["makespan_conflicts"])
        for digest, makespan in size["makespans"].items():
            if digest in reference and reference[digest] != makespan:
                conflicts.append(digest)
            reference.setdefault(digest, makespan)
    return sorted(set(conflicts))


def print_fleet_bench(result: Dict) -> None:
    """Human-readable table (the CLI's output half)."""
    workload = result["workload"]
    print(f"fleet bench: {workload['model']} x "
          f"{workload['iterations']} iterations x "
          f"{workload['clients']} client processes "
          f"(budget {workload['budget']}, "
          f"{workload['microbatches']} microbatches)")
    header = (f"{'shards':>7} {'wall_s':>8} {'plans':>6} "
              f"{'plans/s':>8} {'searches':>9} {'coalesced':>10} "
              f"{'disk':>5} {'errors':>7}")
    print(header)
    for key in sorted(result["sizes"], key=int):
        size = result["sizes"][key]
        service = size["service"]
        print(f"{size['shards']:>7} {size['wall_s']:>8.2f} "
              f"{size['plans']:>6} {size['plans_per_s']:>8.2f} "
              f"{service.get('searches', 0):>9} "
              f"{service.get('coalesced', 0):>10} "
              f"{service.get('disk_hits', 0):>5} "
              f"{len(size['errors']):>7}")
    print(f"scaling (min -> max shards): {result['scaling']:.2f}x")
