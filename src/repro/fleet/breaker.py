"""Per-shard circuit breaker: stop hammering a dead shard.

The classic closed → open → half-open state machine, one instance per
shard address inside :class:`~repro.fleet.client.FleetClient`:

* **closed** — requests flow; consecutive transport failures are
  counted, and ``failure_threshold`` of them in a row trip the breaker.
* **open** — requests are refused locally (``allow()`` is False) for
  ``recovery_s``; the client routes around the shard (ring successor)
  or, when *every* shard in a signature's preference list is open,
  falls back to degraded local planning.  No connection attempts reach
  the shard, so a crashed process is not re-dialed hundreds of times a
  second.
* **half-open** — after ``recovery_s`` one probe request is let
  through.  Success closes the breaker (and resets the failure count);
  failure re-opens it for another ``recovery_s``.

State codes are numeric on purpose (closed=0, half-open=1, open=2) so
the breaker can be exported as a Prometheus-style gauge and asserted on
by ``repro obs scrape --check``.

The clock is injectable (monotonic by default) so tests and
deterministic chaos replays can drive recovery without real sleeps.
Thread-safe: one FleetClient is single-threaded, but breakers are also
read by stats/metrics snapshots from other threads.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, List, Optional, Tuple

STATE_CLOSED = "closed"
STATE_HALF_OPEN = "half-open"
STATE_OPEN = "open"

#: Gauge encoding of the states (exported via the metrics registry and
#: checked by ``repro obs scrape --check``).
STATE_CODES = {STATE_CLOSED: 0, STATE_HALF_OPEN: 1, STATE_OPEN: 2}


class CircuitBreaker:
    """One shard's availability state machine.

    Args:
        failure_threshold: Consecutive transport failures (while
            closed) that trip the breaker open.
        recovery_s: How long an open breaker refuses traffic before
            allowing a half-open probe.
        clock: Monotonic time source (injectable for tests).
        on_transition: Optional ``callback(old_state, new_state)``
            invoked outside the lock after every state change — the
            fleet client uses it to count transitions in its metrics
            registry.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        recovery_s: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Optional[Callable[[str, str], None]] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if recovery_s < 0:
            raise ValueError("recovery_s must be >= 0")
        self.failure_threshold = failure_threshold
        self.recovery_s = recovery_s
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = STATE_CLOSED
        self._failures = 0  # consecutive, while closed
        self._opened_at: Optional[float] = None
        self._probe_inflight = False
        #: (old, new) state changes in order — the audit trail tests
        #: assert on.
        self.transitions: List[Tuple[str, str]] = []

    # -- reads ---------------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            return self._effective_state()

    @property
    def state_code(self) -> int:
        return STATE_CODES[self.state]

    def _effective_state(self) -> str:
        """State with recovery applied lazily (no background timer):
        an open breaker whose recovery window elapsed reads as
        half-open."""
        if (self._state == STATE_OPEN and self._opened_at is not None
                and self._clock() - self._opened_at >= self.recovery_s):
            return STATE_HALF_OPEN
        return self._state

    # -- transitions ---------------------------------------------------------

    def _set_state(self, new_state: str) -> Optional[Tuple[str, str]]:
        old = self._state
        if old == new_state:
            return None
        self._state = new_state
        self.transitions.append((old, new_state))
        return (old, new_state)

    def _notify(self, change: Optional[Tuple[str, str]]) -> None:
        if change is not None and self._on_transition is not None:
            self._on_transition(*change)

    def allow(self) -> bool:
        """Whether a request may be sent to this shard right now.

        Half-open admits exactly one in-flight probe; every other
        caller is refused until that probe's verdict lands
        (:meth:`record_success` / :meth:`record_failure`).
        """
        change = None
        with self._lock:
            state = self._effective_state()
            if state == STATE_CLOSED:
                allowed = True
            elif state == STATE_HALF_OPEN:
                if self._probe_inflight:
                    allowed = False
                else:
                    change = self._set_state(STATE_HALF_OPEN)
                    self._probe_inflight = True
                    allowed = True
            else:
                allowed = False
        self._notify(change)
        return allowed

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._probe_inflight = False
            self._opened_at = None
            change = self._set_state(STATE_CLOSED)
        self._notify(change)

    def record_failure(self) -> None:
        with self._lock:
            change = None
            state = self._effective_state()
            if state in (STATE_HALF_OPEN, STATE_OPEN):
                # A failed probe (or a straggling in-flight request)
                # restarts the recovery window.
                self._probe_inflight = False
                self._opened_at = self._clock()
                change = self._set_state(STATE_OPEN)
            else:
                self._failures += 1
                if self._failures >= self.failure_threshold:
                    self._opened_at = self._clock()
                    change = self._set_state(STATE_OPEN)
        self._notify(change)

    def trip(self) -> None:
        """Force the breaker open (chaos drives use this to prove the
        degraded-mode path without waiting for organic failures)."""
        with self._lock:
            self._probe_inflight = False
            self._opened_at = self._clock()
            change = self._set_state(STATE_OPEN)
        self._notify(change)

    def reset(self) -> None:
        """Force the breaker closed, clearing all failure history."""
        self.record_success()
