"""Signature-routed client over a fleet of planning shards.

:class:`FleetClient` is to a shard fleet what
:class:`~repro.service.client.RemotePlanClient` is to one server — the
same ``run()`` / ``records`` / ``errors`` surface (so
:func:`~repro.service.replica.run_clients` drives either), with routing
in the middle: each batch is prepared and fingerprinted *locally*, and
the signature digest picks the shard through the fleet's consistent-hash
ring.  Every client process computes the same mapping, so identical
signatures from different processes still meet on one shard and coalesce
there, exactly as they would against a single server.

Failure handling is explicit about the trade it makes: when a shard is
unreachable, the request retries along the ring's preference order
(every client picks the same successor), which keeps planning available
but *temporarily splits the signature's home* — a loud
:class:`FleetFailoverWarning` says so.  Context mismatches
(:class:`~repro.service.requests.SignatureMismatchError`) never fail
over: a plan that replays wrongly on one shard replays wrongly on all
of them.

Resilience layers (outermost first):

1. A :class:`~repro.service.retry.RetryPolicy` governs how many
   transport-failed attempts one request may burn and spaces the walks
   with decorrelated-jitter backoff — only transport-shaped errors
   retry; deterministic outcomes (plan failures, signature mismatches,
   spent deadlines) never do.
2. A per-shard :class:`~repro.fleet.breaker.CircuitBreaker` stops the
   client from re-dialing a dead shard on every request; open shards
   are skipped in the preference walk.
3. When retries are exhausted or *every* shard in the signature's
   preference list is refused by its breaker, the client (optionally)
   falls back to **degraded-mode local planning**: the same search on
   the local planner mirror, flagged ``degraded`` in the report —
   correct plans, temporarily without fleet coalescing.
"""

from __future__ import annotations

import time
import warnings
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.planner import OnlinePlanner
from repro.data.batching import GlobalBatch
from repro.fleet.breaker import CircuitBreaker
from repro.fleet.ring import DEFAULT_VNODES, HashRing
from repro.obs.registry import MetricsRegistry
from repro.service.client import ServiceConnection, submit_and_replay
from repro.service.replica import ReplicaRecord
from repro.service.requests import (
    DeadlineExceededError,
    ProtocolError,
    RemotePlanError,
    ServiceClosedError,
)
from repro.service.retry import RetryPolicy
from repro.service.stats import ServiceStats
from repro.trace.events import Trace


class FleetFailoverWarning(RuntimeWarning):
    """A shard was unreachable and its requests moved to the ring
    successor — coalescing locality for those signatures is temporarily
    lost until the shard returns.

    Carries the failure's structure alongside the message so telemetry
    and tests need not parse the text: the failed shard ``address``,
    its ``ring_position`` (index into the ring's node list, ``-1``
    when unknown), the 1-based ``attempts`` count that failed so far
    for this request, and ``suppressed`` — how many earlier warnings
    for the same shard were rate-limited away since the last emitted
    one (see :class:`WarningAggregator`).
    """

    def __init__(self, message: str, address: Optional[str] = None,
                 ring_position: int = -1, attempts: int = 0,
                 suppressed: int = 0) -> None:
        super().__init__(message)
        self.address = address
        self.ring_position = ring_position
        self.attempts = attempts
        self.suppressed = suppressed


#: Transport-shaped failures that justify trying the next shard.  A
#: planning failure (``RemotePlanError``) or signature mismatch is
#: deterministic and would just fail again elsewhere, at full cost.
FAILOVER_ERRORS = (OSError, TimeoutError, ProtocolError,
                   ServiceClosedError)


class WarningAggregator:
    """Rate-limits repeat warnings per key (shard address).

    A flapping shard in a tight drive loop would otherwise emit one
    :class:`FleetFailoverWarning` per request — hundreds per second,
    burying the signal.  The first occurrence for a key is always
    emitted; later ones inside ``interval_s`` are counted and
    suppressed, and the next emitted warning carries the suppressed
    count.  The clock is injectable so tests need no real sleeps.
    """

    def __init__(self, interval_s: float = 5.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.interval_s = interval_s
        self._clock = clock
        self._last_emit: Dict[str, float] = {}
        #: Per-key counts of currently suppressed (not yet reported)
        #: warnings and of warnings actually emitted.
        self.suppressed: Dict[str, int] = {}
        self.emitted: Dict[str, int] = {}

    def should_emit(self, key: str) -> Tuple[bool, int]:
        """Charge one warning occurrence for ``key``.

        Returns ``(emit, suppressed_since_last)``: whether the caller
        should emit now, and how many occurrences were swallowed since
        the last emission (0 on the first).
        """
        now = self._clock()
        last = self._last_emit.get(key)
        if last is None or now - last >= self.interval_s:
            self._last_emit[key] = now
            self.emitted[key] = self.emitted.get(key, 0) + 1
            return True, self.suppressed.pop(key, 0)
        self.suppressed[key] = self.suppressed.get(key, 0) + 1
        return False, 0


class FleetClient:
    """One DP replica planning against a sharded fleet.

    Args:
        addresses: Shard addresses (TCP ``host:port`` / ``uds://`` /
            socket paths).  Their *identity strings* define the ring —
            every client must be given the same set for routing to
            agree (order does not matter).
        job: Registered job name, identical on every shard.
        replica: This replica's index (accounting only).
        batches: The iteration batch stream to plan.
        planner: Local planner mirror (same planning context as the
            shards' job, plan cache enabled).
        timeout_s: Per-request bound on every shard connection.
        vnodes: Ring virtual nodes per shard.
        failover: Retry unreachable shards' requests on ring successors
            (loudly).  ``False`` surfaces shard loss as a per-batch
            error instead.
        tracer: Optional :class:`~repro.obs.tracing.RequestTracer`;
            every routed submit then carries a distributed trace id and
            the client-side spans land in the tracer for merging with
            the shards' trace files.
        retry_policy: Backoff/budget policy for transport-failed
            attempts (defaults to :class:`RetryPolicy` defaults).
        deadline_s: Per-batch deadline budget in seconds.  Propagated
            on the wire (shards shed expired work) and enforced locally
            — a batch that cannot be planned inside the budget fails
            with the typed :class:`DeadlineExceededError`, never hangs.
        attempt_timeout_s: Per-attempt socket bound; defaults to
            ``timeout_s``.  Set it lower than ``deadline_s`` so several
            attempts fit inside one deadline budget.
        degraded: Enable degraded-mode *local* planning when retries
            are exhausted or every shard in the signature's preference
            list is refused by its circuit breaker.  Off by default —
            surfacing fleet loss as an error is the conservative
            choice; drives that prefer availability opt in.
        degraded_budget: Evaluation budget for degraded local searches
            (``None`` keeps the local searcher's own budget, which is
            what makes degraded makespans identical to fleet-served
            ones).
        breaker_threshold / breaker_recovery_s: Per-shard circuit
            breaker tuning (see :class:`CircuitBreaker`).
        warn_interval_s: Rate limit for per-shard failover warnings
            (see :class:`WarningAggregator`).
    """

    def __init__(
        self,
        addresses: Sequence[str],
        job: str,
        replica: int,
        batches: Sequence[GlobalBatch],
        planner: OnlinePlanner,
        timeout_s: float = 300.0,
        vnodes: int = DEFAULT_VNODES,
        failover: bool = True,
        tracer=None,
        retry_policy: Optional[RetryPolicy] = None,
        deadline_s: Optional[float] = None,
        attempt_timeout_s: Optional[float] = None,
        degraded: bool = False,
        degraded_budget: Optional[int] = None,
        breaker_threshold: int = 3,
        breaker_recovery_s: float = 5.0,
        warn_interval_s: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.ring = HashRing([str(a) for a in addresses], vnodes=vnodes)
        self.job = job
        self.replica = replica
        self.batches = list(batches)
        self.planner = planner
        self.timeout_s = timeout_s
        self.failover = failover
        self.retry_policy = retry_policy or RetryPolicy()
        self.deadline_s = deadline_s
        self.attempt_timeout_s = (timeout_s if attempt_timeout_s is None
                                  else attempt_timeout_s)
        self.degraded = degraded
        self.degraded_budget = degraded_budget
        self._clock = clock
        self._conns: Dict[str, ServiceConnection] = {
            address: ServiceConnection(address,
                                       timeout_s=self.attempt_timeout_s,
                                       expect_job=job)
            for address in self.ring.nodes
        }
        self.tracer = tracer
        self.records: List[ReplicaRecord] = []
        self.errors: List[tuple] = []
        #: (signature digest, serving shard) per planned batch — the
        #: routing audit trail tests and the CLI assert on.  Degraded
        #: local plans route to the sentinel address ``"local"``.
        self.routes: List[Tuple[str, str]] = []
        self.failovers = 0
        self.retries = 0
        self.degraded_plans = 0
        self.deadline_failures = 0
        #: Structured audit trail: one dict per routing event
        #: (``kind="route"`` on success, ``kind="failover"`` when a
        #: shard was skipped, ``kind="degraded"`` for local fallback),
        #: ordered by a timestamp-free monotonic ``seq`` so event order
        #: survives serialisation.
        self.audit: List[Dict] = []
        self._audit_seq = 0
        self.warning_aggregator = WarningAggregator(
            interval_s=warn_interval_s, clock=clock)
        #: Client-side metrics registry: breaker states/transitions,
        #: retry/failover/degraded/deadline counters.  Scraped by
        #: ``repro obs`` via :meth:`metrics_snapshot`.
        self.metrics = MetricsRegistry()
        self._m_retries = self.metrics.counter(
            "repro_fleet_client_retries_total",
            "Transport-failed attempts that were retried",
            labels=("address",))
        self._m_failovers = self.metrics.counter(
            "repro_fleet_client_failovers_total",
            "Requests moved off an unreachable shard",
            labels=("address",))
        self._m_degraded = self.metrics.counter(
            "repro_fleet_client_degraded_total",
            "Plans produced by degraded-mode local search")
        self._m_deadline = self.metrics.counter(
            "repro_fleet_client_deadline_expired_total",
            "Requests that failed typed on a spent deadline")
        self._m_transitions = self.metrics.counter(
            "repro_fleet_breaker_transitions_total",
            "Circuit breaker state transitions",
            labels=("address", "to"))
        self._m_breaker_state = self.metrics.gauge(
            "repro_fleet_breaker_state",
            "Breaker state per shard (0 closed / 1 half-open / 2 open)",
            labels=("address",), agg="max")
        self.breakers: Dict[str, CircuitBreaker] = {}
        for address in self.ring.nodes:
            self.breakers[address] = CircuitBreaker(
                failure_threshold=breaker_threshold,
                recovery_s=breaker_recovery_s,
                clock=clock,
                on_transition=self._breaker_transition(address),
            )
            self._m_breaker_state.set(0, address=address)

    def _breaker_transition(self, address: str):
        def on_transition(_old: str, new: str) -> None:
            self._m_transitions.inc(address=address, to=new)
        return on_transition

    def _audit_event(self, kind: str, **fields) -> None:
        self._audit_seq += 1
        self.audit.append({"seq": self._audit_seq, "kind": kind,
                           **fields})

    # -- routing -------------------------------------------------------------

    @property
    def addresses(self) -> List[str]:
        return list(self.ring.nodes)

    def shard_for(self, digest: str) -> str:
        """The shard this client routes ``digest`` to (ring owner)."""
        return self.ring.node_for(digest)

    def connection(self, address: str) -> ServiceConnection:
        return self._conns[address]

    # -- planning ------------------------------------------------------------

    def plan_batch(self, batch: GlobalBatch) -> tuple:
        """Route one batch by its signature; returns
        ``(SearchResult, report dict)`` replayed on the local graph.

        The full resilience stack runs here: preference-order walks
        over non-open shards, retry walks spaced by the policy's
        backoff, deadline enforcement, and (when enabled) degraded
        local fallback.  Deterministic outcomes — plan failures,
        signature mismatches, spent deadlines — propagate immediately;
        only transport-shaped errors burn retry budget.
        """
        prepared = self.planner.prepare(batch)
        if prepared.signature is None:
            raise RemotePlanError(
                "local planner has caching disabled — fleet routing "
                "needs graph signatures"
            )
        digest = prepared.signature.digest
        preference = (self.ring.preference(digest) if self.failover
                      else [self.ring.node_for(digest)])
        deadline = (self._clock() + self.deadline_s
                    if self.deadline_s is not None else None)
        session = self.retry_policy.session()
        last_error: Optional[BaseException] = None
        while True:
            allowed_any = False
            for address in preference:
                if deadline is not None and self._clock() >= deadline:
                    self._raise_deadline(digest, deadline)
                if session.attempts >= self.retry_policy.max_attempts:
                    break
                if not self.breakers[address].allow():
                    continue
                allowed_any = True
                attempt = session.start_attempt()
                try:
                    result, report = submit_and_replay(
                        self.connection(address).client(), self.job,
                        self.planner, prepared, batch,
                        replica=self.replica,
                        timeout_s=self.attempt_timeout_s,
                        tracer=self.tracer, deadline_s=deadline,
                    )
                except DeadlineExceededError:
                    # The shard answered (or the budget died locally):
                    # a typed, terminal outcome — never a shard fault.
                    self._raise_deadline(digest, deadline)
                except FAILOVER_ERRORS as exc:
                    last_error = exc
                    self._attempt_failed(address, digest, attempt, exc)
                    continue
                except RemotePlanError:
                    # Deterministic planning outcome from a healthy,
                    # responding shard — would fail identically on
                    # every successor, at the cost of a full search.
                    self.breakers[address].record_success()
                    raise
                self.breakers[address].record_success()
                self.routes.append((digest, address))
                self._audit_event("route", signature=digest,
                                  address=address, attempts=attempt)
                return result, report
            if not allowed_any:
                # Every shard in the preference list is refused by its
                # breaker — the whole ring neighbourhood is down.
                if self.degraded:
                    return self._plan_degraded(prepared, digest,
                                               "breakers-open")
                raise (last_error if last_error is not None
                       else ServiceClosedError(
                           f"every shard in signature {digest[:12]}'s "
                           f"preference list has an open circuit "
                           f"breaker"))
            if session.give_up(last_error):
                if self.degraded:
                    return self._plan_degraded(prepared, digest,
                                               "retries-exhausted")
                raise last_error
            delay = session.next_delay_s()
            if deadline is not None:
                remaining = deadline - self._clock()
                if remaining <= 0:
                    self._raise_deadline(digest, deadline)
                delay = min(delay, remaining)
            if delay > 0:
                time.sleep(delay)

    def _raise_deadline(self, digest: str, deadline) -> None:
        self.deadline_failures += 1
        self._m_deadline.inc()
        self._audit_event("deadline", signature=digest)
        raise DeadlineExceededError(
            f"deadline budget ({self.deadline_s}s) spent before "
            f"signature {digest[:12]} could be planned"
        )

    def _attempt_failed(self, address: str, digest: str, attempt: int,
                        error: BaseException) -> None:
        """Account one transport-failed attempt: breaker, counters,
        audit trail, and a rate-limited failover warning."""
        self.breakers[address].record_failure()
        self.retries += 1
        self._m_retries.inc(address=address)
        try:
            ring_position = self.ring.nodes.index(address)
        except ValueError:
            ring_position = -1
        if not self.failover:
            return  # no successor to move to; run() records the error
        self.failovers += 1
        self._m_failovers.inc(address=address)
        self._audit_event(
            "failover", signature=digest, address=address,
            ring_position=ring_position, attempts=attempt,
            error=repr(error),
        )
        emit, suppressed = self.warning_aggregator.should_emit(address)
        if not emit:
            return
        extra = (f" ({suppressed} earlier warnings for this shard "
                 f"suppressed)" if suppressed else "")
        warnings.warn(
            FleetFailoverWarning(
                f"fleet shard {address} (ring position "
                f"{ring_position}, attempt {attempt}) unreachable "
                f"({error!r}); retrying signature {digest[:12]} on the "
                f"ring successor — coalescing locality is temporarily "
                f"lost for this signature until the shard "
                f"returns{extra}",
                address=address, ring_position=ring_position,
                attempts=attempt, suppressed=suppressed,
            ),
            stacklevel=3,
        )

    def _plan_degraded(self, prepared, digest: str, reason: str) -> tuple:
        """Bounded local fallback: plan on the client's own mirror.

        Same context, same search — the plan is correct (and, with the
        default budget, bit-identical in makespan to what the fleet
        would have served); what is lost is cross-process coalescing.
        The report carries ``degraded=True`` so records and telemetry
        can tell these plans apart.
        """
        searcher = self.planner.searcher
        saved_budget = searcher.budget_evaluations
        if self.degraded_budget is not None:
            searcher.budget_evaluations = self.degraded_budget
        try:
            result = self.planner.plan_prepared(prepared)
        finally:
            searcher.budget_evaluations = saved_budget
        self.degraded_plans += 1
        self._m_degraded.inc()
        self.routes.append((digest, "local"))
        self._audit_event("degraded", signature=digest, reason=reason)
        report = {
            "outcome": "degraded",
            "degraded": True,
            "queue_wait_s": 0.0,
            "cache_hit": result.cache_hit,
            "cache_tier": result.cache_tier,
        }
        return result, report

    def run(self) -> List[ReplicaRecord]:
        for i, batch in enumerate(self.batches):
            t0 = time.monotonic()
            try:
                result, report = self.plan_batch(batch)
            except Exception as exc:  # noqa: BLE001 — recorded, not fatal
                self.errors.append((self.job, self.replica, i, str(exc)))
                continue
            self.records.append(ReplicaRecord(
                job=self.job,
                replica=self.replica,
                iteration=i,
                outcome=report.get("outcome") or "",
                predicted_ms=result.total_ms,
                latency_s=time.monotonic() - t0,
                queue_wait_s=report.get("queue_wait_s") or 0.0,
                signature=result.signature,
            ))
        return self.records

    def observe(self, trace: Trace) -> List[Dict]:
        """Feed an executed trace to *every* shard's recalibration loop.

        Unlike submits, observations are not routed: each shard refits
        its own cost model from what it observes, and they must all
        converge on the same planning context or routing would turn
        context skew into per-signature mismatch errors.  Broadcasting
        keeps every shard's window identical.  The local mirror swaps
        onto the first applied refit's model.
        """
        events: List[Dict] = []
        from repro.service.rpc import cost_model_from_dict
        swapped = False
        for address in self.ring.nodes:
            event = self.connection(address).client().observe_raw(
                self.job, trace)
            if event:
                events.append(event)
                if (not swapped and event.get("applied")
                        and event.get("cost_model")):
                    self.planner.set_cost_model(
                        cost_model_from_dict(event["cost_model"]))
                    swapped = True
        return events

    # -- chaos hooks ---------------------------------------------------------

    def trip_breakers(self) -> None:
        """Force every shard's breaker open — chaos drives use this to
        prove the degraded-mode path deterministically instead of
        waiting for organic failures."""
        for breaker in self.breakers.values():
            breaker.trip()

    def reset_breakers(self) -> None:
        for breaker in self.breakers.values():
            breaker.reset()

    # -- telemetry -----------------------------------------------------------

    def breaker_states(self) -> Dict[str, str]:
        return {address: breaker.state
                for address, breaker in self.breakers.items()}

    def metrics_snapshot(self) -> Dict:
        """Client-side metrics snapshot with breaker state gauges
        bridged in at snapshot time (transition counters accumulate
        live; the state gauge is a read of *now*)."""
        for address, breaker in self.breakers.items():
            self._m_breaker_state.set(breaker.state_code, address=address)
        return self.metrics.snapshot()

    def stats(self) -> Dict:
        """Fleet-wide stats: per-shard raw snapshots + merged view.

        Shards are polled with ``samples=True`` so the merged latency
        percentiles are recomputed from the union of per-shard sample
        windows (see :meth:`ServiceStats.merge`), not averaged from
        per-shard percentiles.  An unreachable shard contributes an
        ``error`` entry instead of sinking the whole view.
        """
        shards: Dict[str, Dict] = {}
        parts: List[ServiceStats] = []
        cache_totals: Dict[str, float] = {}
        for address in self.ring.nodes:
            try:
                snap = self.connection(address).call("stats",
                                                     {"samples": True})
            except FAILOVER_ERRORS as exc:
                shards[address] = {"error": str(exc)}
                continue
            shards[address] = snap
            parts.append(ServiceStats.from_snapshot(
                snap.get("service") or {}))
            for key, value in (snap.get("cache") or {}).items():
                if isinstance(value, (int, float)):
                    cache_totals[key] = cache_totals.get(key, 0) + value
        merged = ServiceStats.merge(parts)
        return {
            "service": merged.snapshot(),
            "cache": cache_totals,
            "shards": shards,
            "reachable": len(parts),
            "failovers": self.failovers,
            "retries": self.retries,
            "degraded_plans": self.degraded_plans,
            "deadline_failures": self.deadline_failures,
            "breakers": self.breaker_states(),
        }

    def ping_all(self) -> Dict[str, Dict]:
        """Reachability sweep; unreachable shards map to ``None``."""
        out: Dict[str, Optional[Dict]] = {}
        for address in self.ring.nodes:
            try:
                out[address] = self.connection(address).client().ping()
            except FAILOVER_ERRORS:
                out[address] = None
        return out

    def close(self) -> None:
        for conn in self._conns.values():
            conn.close()


def fleet_stats(addresses: Sequence[str],
                timeout_s: float = 30.0) -> Dict:
    """Poll every shard's stats RPC and merge into one fleet view —
    usable without a live :class:`FleetClient` (the CLI and the
    benchmark poll after their drive processes have exited).

    Same shape as :meth:`FleetClient.stats`, minus ``failovers``.
    """
    from repro.service.client import PlanServiceClient

    shards: Dict[str, Dict] = {}
    parts: List[ServiceStats] = []
    cache_totals: Dict[str, float] = {}
    for address in addresses:
        try:
            client = PlanServiceClient(address, timeout_s=timeout_s)
        except FAILOVER_ERRORS as exc:
            shards[address] = {"error": str(exc)}
            continue
        try:
            snap = client.call("stats", {"samples": True})
        except FAILOVER_ERRORS as exc:
            shards[address] = {"error": str(exc)}
            continue
        finally:
            client.close()
        shards[address] = snap
        parts.append(ServiceStats.from_snapshot(snap.get("service") or {}))
        for key, value in (snap.get("cache") or {}).items():
            if isinstance(value, (int, float)):
                cache_totals[key] = cache_totals.get(key, 0) + value
    return {
        "service": ServiceStats.merge(parts).snapshot(),
        "cache": cache_totals,
        "shards": shards,
        "reachable": len(parts),
    }


def drive_fleet(
    addresses: Sequence[str],
    streams: Dict[str, Sequence[GlobalBatch]],
    replicas: int,
    planner_factory,
    timeout_s: float = 300.0,
    failover: bool = True,
    tracer=None,
    **client_kwargs,
):
    """Hammer a fleet with ``replicas`` routed clients per job — the
    fleet twin of :func:`~repro.service.client.drive_remote_replicas`.
    Returns ``(DriveReport, clients)``; the clients are already closed
    but keep their routing/stats state for inspection.  A shared
    ``tracer`` stamps every submit with a distributed trace id.  Extra
    keyword arguments (retry policy, deadline, degraded mode, breaker
    tuning) pass straight through to every :class:`FleetClient`."""
    from repro.service.replica import run_clients

    clients = [
        FleetClient(addresses, job, replica, batches,
                    planner=planner_factory(job), timeout_s=timeout_s,
                    failover=failover, tracer=tracer, **client_kwargs)
        for job, batches in streams.items()
        for replica in range(replicas)
    ]
    try:
        report = run_clients(clients, timeout_s=timeout_s)
    finally:
        for client in clients:
            client.close()
    return report, clients
