"""Signature-routed client over a fleet of planning shards.

:class:`FleetClient` is to a shard fleet what
:class:`~repro.service.client.RemotePlanClient` is to one server — the
same ``run()`` / ``records`` / ``errors`` surface (so
:func:`~repro.service.replica.run_clients` drives either), with routing
in the middle: each batch is prepared and fingerprinted *locally*, and
the signature digest picks the shard through the fleet's consistent-hash
ring.  Every client process computes the same mapping, so identical
signatures from different processes still meet on one shard and coalesce
there, exactly as they would against a single server.

Failure handling is explicit about the trade it makes: when a shard is
unreachable, the request retries along the ring's preference order
(every client picks the same successor), which keeps planning available
but *temporarily splits the signature's home* — a loud
:class:`FleetFailoverWarning` says so.  Context mismatches
(:class:`~repro.service.requests.SignatureMismatchError`) never fail
over: a plan that replays wrongly on one shard replays wrongly on all
of them.
"""

from __future__ import annotations

import time
import warnings
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.planner import OnlinePlanner
from repro.data.batching import GlobalBatch
from repro.fleet.ring import DEFAULT_VNODES, HashRing
from repro.service.client import ServiceConnection, submit_and_replay
from repro.service.replica import ReplicaRecord
from repro.service.requests import (
    ProtocolError,
    RemotePlanError,
    ServiceClosedError,
)
from repro.service.stats import ServiceStats
from repro.trace.events import Trace


class FleetFailoverWarning(RuntimeWarning):
    """A shard was unreachable and its requests moved to the ring
    successor — coalescing locality for those signatures is temporarily
    lost until the shard returns.

    Carries the failure's structure alongside the message so telemetry
    and tests need not parse the text: the failed shard ``address``,
    its ``ring_position`` (index into the ring's node list, ``-1``
    when unknown), and the 1-based ``attempts`` count that failed so
    far for this request.
    """

    def __init__(self, message: str, address: Optional[str] = None,
                 ring_position: int = -1, attempts: int = 0) -> None:
        super().__init__(message)
        self.address = address
        self.ring_position = ring_position
        self.attempts = attempts


#: Transport-shaped failures that justify trying the next shard.  A
#: planning failure (``RemotePlanError``) or signature mismatch is
#: deterministic and would just fail again elsewhere, at full cost.
FAILOVER_ERRORS = (OSError, TimeoutError, ProtocolError,
                   ServiceClosedError)


class FleetClient:
    """One DP replica planning against a sharded fleet.

    Args:
        addresses: Shard addresses (TCP ``host:port`` / ``uds://`` /
            socket paths).  Their *identity strings* define the ring —
            every client must be given the same set for routing to
            agree (order does not matter).
        job: Registered job name, identical on every shard.
        replica: This replica's index (accounting only).
        batches: The iteration batch stream to plan.
        planner: Local planner mirror (same planning context as the
            shards' job, plan cache enabled).
        timeout_s: Per-request bound on every shard connection.
        vnodes: Ring virtual nodes per shard.
        failover: Retry unreachable shards' requests on ring successors
            (loudly).  ``False`` surfaces shard loss as a per-batch
            error instead.
        tracer: Optional :class:`~repro.obs.tracing.RequestTracer`;
            every routed submit then carries a distributed trace id and
            the client-side spans land in the tracer for merging with
            the shards' trace files.
    """

    def __init__(
        self,
        addresses: Sequence[str],
        job: str,
        replica: int,
        batches: Sequence[GlobalBatch],
        planner: OnlinePlanner,
        timeout_s: float = 300.0,
        vnodes: int = DEFAULT_VNODES,
        failover: bool = True,
        tracer=None,
    ) -> None:
        self.ring = HashRing([str(a) for a in addresses], vnodes=vnodes)
        self.job = job
        self.replica = replica
        self.batches = list(batches)
        self.planner = planner
        self.timeout_s = timeout_s
        self.failover = failover
        self._conns: Dict[str, ServiceConnection] = {
            address: ServiceConnection(address, timeout_s=timeout_s,
                                       expect_job=job)
            for address in self.ring.nodes
        }
        self.tracer = tracer
        self.records: List[ReplicaRecord] = []
        self.errors: List[tuple] = []
        #: (signature digest, serving shard) per planned batch — the
        #: routing audit trail tests and the CLI assert on.
        self.routes: List[Tuple[str, str]] = []
        self.failovers = 0
        #: Structured audit trail: one dict per routing event
        #: (``kind="route"`` on success, ``kind="failover"`` when a
        #: shard was skipped), ordered by a timestamp-free monotonic
        #: ``seq`` so event order survives serialisation.
        self.audit: List[Dict] = []
        self._audit_seq = 0

    def _audit_event(self, kind: str, **fields) -> None:
        self._audit_seq += 1
        self.audit.append({"seq": self._audit_seq, "kind": kind,
                           **fields})

    # -- routing -------------------------------------------------------------

    @property
    def addresses(self) -> List[str]:
        return list(self.ring.nodes)

    def shard_for(self, digest: str) -> str:
        """The shard this client routes ``digest`` to (ring owner)."""
        return self.ring.node_for(digest)

    def connection(self, address: str) -> ServiceConnection:
        return self._conns[address]

    # -- planning ------------------------------------------------------------

    def plan_batch(self, batch: GlobalBatch) -> tuple:
        """Route one batch by its signature; returns
        ``(SearchResult, report dict)`` replayed on the local graph."""
        prepared = self.planner.prepare(batch)
        if prepared.signature is None:
            raise RemotePlanError(
                "local planner has caching disabled — fleet routing "
                "needs graph signatures"
            )
        digest = prepared.signature.digest
        attempts = (self.ring.preference(digest) if self.failover
                    else [self.ring.node_for(digest)])
        last_error: Optional[BaseException] = None
        for nth, address in enumerate(attempts):
            if nth:
                failed = attempts[nth - 1]
                try:
                    ring_position = self.ring.nodes.index(failed)
                except ValueError:
                    ring_position = -1
                self.failovers += 1
                self._audit_event(
                    "failover", signature=digest, address=failed,
                    ring_position=ring_position, attempts=nth,
                    successor=address, error=repr(last_error),
                )
                warnings.warn(
                    FleetFailoverWarning(
                        f"fleet shard {failed} (ring position "
                        f"{ring_position}, attempt {nth}) unreachable "
                        f"({last_error!r}); retrying signature "
                        f"{digest[:12]} on ring successor {address} — "
                        f"coalescing locality is temporarily lost for "
                        f"this signature until the shard returns",
                        address=failed, ring_position=ring_position,
                        attempts=nth,
                    ),
                    stacklevel=2,
                )
            try:
                result, report = submit_and_replay(
                    self.connection(address).client(), self.job,
                    self.planner, prepared, batch, replica=self.replica,
                    timeout_s=self.timeout_s, tracer=self.tracer,
                )
            except FAILOVER_ERRORS as exc:
                last_error = exc
                continue
            self.routes.append((digest, address))
            self._audit_event("route", signature=digest, address=address,
                              attempts=nth + 1)
            return result, report
        raise last_error  # every shard in the preference order failed

    def run(self) -> List[ReplicaRecord]:
        for i, batch in enumerate(self.batches):
            t0 = time.monotonic()
            try:
                result, report = self.plan_batch(batch)
            except Exception as exc:  # noqa: BLE001 — recorded, not fatal
                self.errors.append((self.job, self.replica, i, str(exc)))
                continue
            self.records.append(ReplicaRecord(
                job=self.job,
                replica=self.replica,
                iteration=i,
                outcome=report.get("outcome") or "",
                predicted_ms=result.total_ms,
                latency_s=time.monotonic() - t0,
                queue_wait_s=report.get("queue_wait_s") or 0.0,
                signature=result.signature,
            ))
        return self.records

    def observe(self, trace: Trace) -> List[Dict]:
        """Feed an executed trace to *every* shard's recalibration loop.

        Unlike submits, observations are not routed: each shard refits
        its own cost model from what it observes, and they must all
        converge on the same planning context or routing would turn
        context skew into per-signature mismatch errors.  Broadcasting
        keeps every shard's window identical.  The local mirror swaps
        onto the first applied refit's model.
        """
        events: List[Dict] = []
        from repro.service.rpc import cost_model_from_dict
        swapped = False
        for address in self.ring.nodes:
            event = self.connection(address).client().observe_raw(
                self.job, trace)
            if event:
                events.append(event)
                if (not swapped and event.get("applied")
                        and event.get("cost_model")):
                    self.planner.set_cost_model(
                        cost_model_from_dict(event["cost_model"]))
                    swapped = True
        return events

    # -- telemetry -----------------------------------------------------------

    def stats(self) -> Dict:
        """Fleet-wide stats: per-shard raw snapshots + merged view.

        Shards are polled with ``samples=True`` so the merged latency
        percentiles are recomputed from the union of per-shard sample
        windows (see :meth:`ServiceStats.merge`), not averaged from
        per-shard percentiles.  An unreachable shard contributes an
        ``error`` entry instead of sinking the whole view.
        """
        shards: Dict[str, Dict] = {}
        parts: List[ServiceStats] = []
        cache_totals: Dict[str, float] = {}
        for address in self.ring.nodes:
            try:
                snap = self.connection(address).call("stats",
                                                     {"samples": True})
            except FAILOVER_ERRORS as exc:
                shards[address] = {"error": str(exc)}
                continue
            shards[address] = snap
            parts.append(ServiceStats.from_snapshot(
                snap.get("service") or {}))
            for key, value in (snap.get("cache") or {}).items():
                if isinstance(value, (int, float)):
                    cache_totals[key] = cache_totals.get(key, 0) + value
        merged = ServiceStats.merge(parts)
        return {
            "service": merged.snapshot(),
            "cache": cache_totals,
            "shards": shards,
            "reachable": len(parts),
            "failovers": self.failovers,
        }

    def ping_all(self) -> Dict[str, Dict]:
        """Reachability sweep; unreachable shards map to ``None``."""
        out: Dict[str, Optional[Dict]] = {}
        for address in self.ring.nodes:
            try:
                out[address] = self.connection(address).client().ping()
            except FAILOVER_ERRORS:
                out[address] = None
        return out

    def close(self) -> None:
        for conn in self._conns.values():
            conn.close()


def fleet_stats(addresses: Sequence[str],
                timeout_s: float = 30.0) -> Dict:
    """Poll every shard's stats RPC and merge into one fleet view —
    usable without a live :class:`FleetClient` (the CLI and the
    benchmark poll after their drive processes have exited).

    Same shape as :meth:`FleetClient.stats`, minus ``failovers``.
    """
    from repro.service.client import PlanServiceClient

    shards: Dict[str, Dict] = {}
    parts: List[ServiceStats] = []
    cache_totals: Dict[str, float] = {}
    for address in addresses:
        try:
            client = PlanServiceClient(address, timeout_s=timeout_s)
        except FAILOVER_ERRORS as exc:
            shards[address] = {"error": str(exc)}
            continue
        try:
            snap = client.call("stats", {"samples": True})
        except FAILOVER_ERRORS as exc:
            shards[address] = {"error": str(exc)}
            continue
        finally:
            client.close()
        shards[address] = snap
        parts.append(ServiceStats.from_snapshot(snap.get("service") or {}))
        for key, value in (snap.get("cache") or {}).items():
            if isinstance(value, (int, float)):
                cache_totals[key] = cache_totals.get(key, 0) + value
    return {
        "service": ServiceStats.merge(parts).snapshot(),
        "cache": cache_totals,
        "shards": shards,
        "reachable": len(parts),
    }


def drive_fleet(
    addresses: Sequence[str],
    streams: Dict[str, Sequence[GlobalBatch]],
    replicas: int,
    planner_factory,
    timeout_s: float = 300.0,
    failover: bool = True,
    tracer=None,
):
    """Hammer a fleet with ``replicas`` routed clients per job — the
    fleet twin of :func:`~repro.service.client.drive_remote_replicas`.
    Returns ``(DriveReport, clients)``; the clients are already closed
    but keep their routing/stats state for inspection.  A shared
    ``tracer`` stamps every submit with a distributed trace id."""
    from repro.service.replica import run_clients

    clients = [
        FleetClient(addresses, job, replica, batches,
                    planner=planner_factory(job), timeout_s=timeout_s,
                    failover=failover, tracer=tracer)
        for job, batches in streams.items()
        for replica in range(replicas)
    ]
    try:
        report = run_clients(clients, timeout_s=timeout_s)
    finally:
        for client in clients:
            client.close()
    return report, clients
