"""Fleet lifecycle: spawn, monitor, restart, drain N shard processes.

Each shard is one ``python -m repro serve --uds/--listen`` subprocess —
a full :class:`~repro.service.rpc.PlanServiceServer` with its own GIL,
worker pool and in-memory cache — and every shard shares one on-disk
cache tier (``--cache-dir``), so a plan searched anywhere is replayable
everywhere, including across shard restarts.

The monitor distinguishes two kinds of exit:

* **graceful** (exit code 0 — a ``shutdown`` RPC or ``--serve-seconds``)
  is final;
* **crash** (non-zero / signal) triggers a respawn on the same address,
  up to ``max_restarts`` per shard.  The restarted shard comes back with
  a cold memory tier but a warm disk tier: its first request per known
  signature is a disk hit, not a re-search.

``stop()`` drains politely — a ``shutdown`` RPC per shard lets in-flight
searches finish and remote waiters be reaped deterministically — before
escalating to terminate/kill on stragglers.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.obs.registry import MetricsRegistry
from repro.service.client import PlanServiceClient


def _free_tcp_ports(host: str, count: int) -> List[int]:
    """Reserve ``count`` distinct free TCP ports by binding and
    releasing them.  Racy by nature (another process can grab a port
    between release and the shard's bind), but the bind failure then
    surfaces as a shard that never becomes ready — loud, not silent."""
    sockets = []
    try:
        for _ in range(count):
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.bind((host, 0))
            sockets.append(sock)
        return [sock.getsockname()[1] for sock in sockets]
    finally:
        for sock in sockets:
            sock.close()


@dataclass
class FleetConfig:
    """Everything a shard subprocess needs to be spawned.

    The planning-context knobs (models, budget, seed, cache size,
    legacy_eval) must match what the *clients* build their local
    mirrors with — they are baked into the shard command lines so one
    config object describes the whole fleet contract.
    """

    models: Sequence[str]
    shards: int = 2
    cache_dir: Optional[str] = None
    runtime_dir: str = "/tmp/repro-fleet"
    transport: str = "uds"  # "uds" | "tcp"
    host: str = "127.0.0.1"
    budget: int = 16
    seed: int = 0
    workers: int = 2
    queue: int = 32
    cache_size: int = 64
    #: ``False`` disables near-miss warm starts on every shard, making
    #: each searched plan a pure function of (signature, context, seed)
    #: — required when plans must be identical across fleet sizes (the
    #: benchmark's makespan-identity invariant).
    near_miss: bool = True
    serve_seconds: Optional[float] = None
    legacy_eval: bool = False
    restart_crashed: bool = True
    max_restarts: int = 3
    #: Directory every shard writes its request-trace span file into
    #: (``--trace-dir``); ``None`` disables server-side span emission.
    trace_dir: Optional[str] = None
    #: Chaos: fault specs every shard is armed with (scoped per shard
    #: via ``FaultSpec.shards``).  Each shard gets its own
    #: :class:`~repro.chaos.faults.FaultPlan` seeded ``fault_seed +
    #: shard index`` — decorrelated across shards, reproducible from
    #: the one base seed.
    fault_specs: Optional[Sequence] = None
    fault_seed: int = 0
    #: Base path for the JSONL files shards append their fired-fault
    #: decisions to on close; shard ``i`` writes
    #: ``{fault_log}.shard{i}.jsonl`` so each log can be replayed
    #: against that shard's own deterministic schedule.
    fault_log: Optional[str] = None

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("a fleet needs at least one shard")
        if self.transport not in ("uds", "tcp"):
            raise ValueError(f"unknown transport {self.transport!r}")


@dataclass
class ShardHandle:
    """One shard slot: a stable address plus whatever process currently
    serves it (restarts swap the process, never the address — client
    rings are built from addresses)."""

    index: int
    address: str
    process: Optional[subprocess.Popen] = None
    log_path: str = ""
    restarts: int = 0
    gone: bool = False  # exhausted restarts, or exited gracefully
    #: The dead process object whose crash was last charged to the
    #: restart budget — identity-tracked so one crash is counted once
    #: even when the monitor re-observes it (a failed respawn, a kill
    #: landing mid-poll).
    last_crash: Optional[subprocess.Popen] = field(default=None,
                                                   repr=False)
    lock: threading.Lock = field(default_factory=threading.Lock,
                                 repr=False)

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None


class PlanFleet:
    """Spawn and supervise ``config.shards`` planning servers.

    Context manager: ``with PlanFleet(config) as fleet:`` starts the
    shards and guarantees they are stopped (drained, then killed if
    need be) on the way out.
    """

    #: Monitor poll interval; also bounds how stale a crash can go
    #: unnoticed.
    POLL_S = 0.25

    def __init__(self, config: FleetConfig) -> None:
        self.config = config
        os.makedirs(config.runtime_dir, exist_ok=True)
        if config.cache_dir:
            os.makedirs(config.cache_dir, exist_ok=True)
        if config.transport == "tcp":
            ports = _free_tcp_ports(config.host, config.shards)
            addresses = [f"{config.host}:{port}" for port in ports]
        else:
            addresses = [
                os.path.join(config.runtime_dir, f"shard-{i}.sock")
                for i in range(config.shards)
            ]
        self.shards = [
            ShardHandle(
                index=i, address=addresses[i],
                log_path=os.path.join(config.runtime_dir,
                                      f"shard-{i}.log"),
            )
            for i in range(config.shards)
        ]
        self._stopping = False
        self._stop_lock = threading.Lock()
        self._stop_codes: Optional[List[Optional[int]]] = None
        self._monitor: Optional[threading.Thread] = None
        #: Launcher-side observability: restart counts and up/down
        #: state per shard slot, scrapeable alongside the shards' own
        #: ``metrics`` RPCs.
        self.metrics = MetricsRegistry()
        self._m_restarts = self.metrics.counter(
            "repro_fleet_shard_restarts_total",
            "Crash respawns per shard slot", labels=("shard",))
        self._m_up = self.metrics.gauge(
            "repro_fleet_shard_up",
            "1 when the shard process is alive, else 0",
            labels=("shard",))
        for shard in self.shards:
            self._m_restarts.set_value(0, shard=str(shard.index))
            self._m_up.set(0, shard=str(shard.index))

    def _observe_shards(self) -> None:
        for shard in self.shards:
            self._m_up.set(1 if shard.alive else 0,
                           shard=str(shard.index))

    # -- spawning ------------------------------------------------------------

    def _command(self, shard: ShardHandle) -> List[str]:
        config = self.config
        command = [sys.executable, "-m", "repro", "serve",
                   *config.models,
                   "--workers", str(config.workers),
                   "--queue", str(config.queue),
                   "--budget", str(config.budget),
                   "--seed", str(config.seed),
                   "--cache-size", str(config.cache_size)]
        if config.transport == "uds":
            command += ["--uds", shard.address]
        else:
            command += ["--listen", shard.address]
        if config.cache_dir:
            command += ["--cache-dir", config.cache_dir]
        if not config.near_miss:
            command += ["--no-near-miss"]
        if config.serve_seconds is not None:
            command += ["--serve-seconds", str(config.serve_seconds)]
        if config.legacy_eval:
            command += ["--legacy-eval"]
        if config.trace_dir:
            command += ["--trace-dir", config.trace_dir]
        # Identity for the obs plane: the shard reports these over its
        # ping/metrics RPCs.  restarts is read at spawn time, so a
        # respawned process carries its incremented restart count.
        command += ["--shard-index", str(shard.index),
                    "--shard-restarts", str(shard.restarts)]
        if config.fault_specs:
            from repro.chaos.faults import FaultPlan
            plan = FaultPlan(seed=config.fault_seed + shard.index,
                             specs=list(config.fault_specs),
                             shard_index=shard.index)
            command += ["--fault-plan", plan.to_json()]
        if config.fault_log:
            # Per-shard files: log entries carry no shard id, and the
            # replay verifier must check each shard's log against that
            # shard's own (seed, specs, shard_index) schedule.
            command += ["--fault-log",
                        f"{config.fault_log}.shard{shard.index}.jsonl"]
        return command

    def _environment(self) -> Dict[str, str]:
        # The shard must import the same repro package as the launcher,
        # regardless of how the launcher itself was put on sys.path.
        env = dict(os.environ)
        package_root = os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))
        current = env.get("PYTHONPATH", "")
        if package_root not in current.split(os.pathsep):
            env["PYTHONPATH"] = (package_root + os.pathsep + current
                                 if current else package_root)
        return env

    def _spawn(self, shard: ShardHandle) -> None:
        if self.config.transport == "uds":
            try:
                os.unlink(shard.address)  # stale socket from a crash
            except OSError:
                pass
        log = open(shard.log_path, "a")
        try:
            shard.process = subprocess.Popen(
                self._command(shard), stdout=log, stderr=log,
                stdin=subprocess.DEVNULL, env=self._environment(),
            )
        finally:
            log.close()  # the child holds its own descriptor now

    def _wait_ready(self, shard: ShardHandle, timeout_s: float) -> bool:
        """Poll the shard with pings until it answers (or dies)."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if not shard.alive:
                return False
            try:
                client = PlanServiceClient(shard.address, timeout_s=2.0)
            except OSError:
                time.sleep(0.1)
                continue
            try:
                client.ping()
                return True
            except Exception:  # noqa: BLE001 — not up yet
                time.sleep(0.1)
            finally:
                client.close()
        return False

    def start(self, timeout_s: float = 120.0) -> "PlanFleet":
        """Spawn every shard and block until all answer pings."""
        for shard in self.shards:
            self._spawn(shard)
        for shard in self.shards:
            if not self._wait_ready(shard, timeout_s):
                tail = self._log_tail(shard)
                self.stop(timeout_s=10.0)
                raise RuntimeError(
                    f"shard {shard.index} ({shard.address}) did not "
                    f"become ready within {timeout_s}s; log tail:\n{tail}"
                )
        self._observe_shards()
        self._monitor = threading.Thread(target=self._monitor_loop,
                                         name="fleet-monitor", daemon=True)
        self._monitor.start()
        return self

    def _log_tail(self, shard: ShardHandle, lines: int = 20) -> str:
        try:
            with open(shard.log_path) as f:
                return "".join(f.readlines()[-lines:])
        except OSError:
            return "<no log>"

    # -- supervision ---------------------------------------------------------

    def _monitor_loop(self) -> None:
        while not self._stopping:
            for shard in self.shards:
                with shard.lock:
                    if self._stopping or shard.gone or shard.alive:
                        continue
                    code = shard.process.returncode if shard.process else None
                    if code == 0:
                        # Graceful exit (shutdown RPC / --serve-seconds):
                        # respect it, do not resurrect.
                        shard.gone = True
                        continue
                    if (not self.config.restart_crashed
                            or shard.restarts >= self.config.max_restarts):
                        shard.gone = True
                        continue
                    # Charge the crash to the budget exactly once per
                    # dead process object: a kill landing mid-poll or a
                    # respawn that itself fails must not be re-counted
                    # when the monitor sees the same corpse again.
                    if shard.process is not shard.last_crash:
                        shard.last_crash = shard.process
                        shard.restarts += 1
                        self._m_restarts.inc(shard=str(shard.index))
                    try:
                        self._spawn(shard)
                    except OSError:
                        continue  # retry next poll, crash already counted
                if shard.process is not None:
                    self._wait_ready(shard, timeout_s=60.0)
            self._observe_shards()
            time.sleep(self.POLL_S)

    def restart(self, index: int) -> None:
        """Kill and respawn one shard (does not count against the crash
        restart budget — this is an operator action)."""
        shard = self.shards[index]
        with shard.lock:
            if shard.process is not None and shard.alive:
                shard.process.kill()
                shard.process.wait()
            # The corpse is accounted for: the monitor must not charge
            # this operator action to the crash budget.
            shard.last_crash = shard.process
            shard.gone = False
            self._spawn(shard)
        if not self._wait_ready(shard, timeout_s=60.0):
            raise RuntimeError(
                f"shard {index} did not come back after restart; log "
                f"tail:\n{self._log_tail(shard)}"
            )

    # -- access --------------------------------------------------------------

    def kill_shard(self, index: int) -> None:
        """SIGKILL one shard's process — the chaos driver's crash
        injection.  The shard is *not* marked gone: the monitor sees a
        non-zero exit and (policy permitting) respawns it, exercising
        the real crash-restart path."""
        shard = self.shards[index]
        with shard.lock:
            if shard.process is not None and shard.alive:
                shard.process.kill()
                shard.process.wait()

    @property
    def addresses(self) -> List[str]:
        return [shard.address for shard in self.shards]

    def alive_count(self) -> int:
        return sum(1 for shard in self.shards if shard.alive)

    def describe(self) -> str:
        states = ", ".join(
            f"{s.index}:{'up' if s.alive else 'down'}"
            f"{'+' + str(s.restarts) if s.restarts else ''}"
            for s in self.shards
        )
        return (f"fleet of {len(self.shards)} shard(s) "
                f"[{states}] over {self.config.transport}, "
                f"cache dir {self.config.cache_dir or '<none>'}")

    def wait(self, timeout_s: Optional[float] = None) -> bool:
        """Block until every shard is permanently gone (or timeout);
        returns True when the fleet fully wound down."""
        deadline = (time.monotonic() + timeout_s
                    if timeout_s is not None else None)
        while any(not s.gone or s.alive for s in self.shards):
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(self.POLL_S)
        return True

    # -- teardown ------------------------------------------------------------

    def stop(self, timeout_s: float = 30.0) -> List[Optional[int]]:
        """Drain and stop every shard; returns their exit codes.

        Three escalation steps per shard: ``shutdown`` RPC (the server
        drains in-flight remote requests deterministically), then
        ``terminate()``, then ``kill()``.

        Idempotent, and safe against a concurrent crash-restart: the
        whole teardown runs under one lock (a second caller blocks and
        then gets the cached exit codes), ``_stopping`` is raised
        *before* any shard is touched, and each shard is finalised
        under its own lock — so a monitor thread mid-respawn finishes
        first and the teardown kills the *newest* process, never a
        corpse while a fresh one slips through.
        """
        with self._stop_lock:
            if self._stop_codes is not None:
                return list(self._stop_codes)
            self._stopping = True
            for shard in self.shards:
                if not shard.alive:
                    continue
                try:
                    client = PlanServiceClient(shard.address,
                                               timeout_s=5.0)
                    try:
                        client.shutdown()
                    finally:
                        client.close()
                except Exception:  # noqa: BLE001 — escalate below
                    pass
            deadline = time.monotonic() + timeout_s
            for shard in self.shards:
                with shard.lock:
                    process = shard.process
                    shard.gone = True
                if process is None:
                    continue
                remaining = max(0.1, deadline - time.monotonic())
                try:
                    process.wait(timeout=remaining)
                except subprocess.TimeoutExpired:
                    process.terminate()
                    try:
                        process.wait(timeout=5.0)
                    except subprocess.TimeoutExpired:
                        process.kill()
                        process.wait()
            if self._monitor is not None:
                self._monitor.join(timeout=5.0)
                self._monitor = None
            if self.config.transport == "uds":
                for shard in self.shards:
                    try:
                        os.unlink(shard.address)
                    except OSError:
                        pass
            self._observe_shards()
            self._stop_codes = [
                s.process.returncode if s.process else None
                for s in self.shards
            ]
            return list(self._stop_codes)

    def __enter__(self) -> "PlanFleet":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
