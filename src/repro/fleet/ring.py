"""Consistent hashing of signature digests onto fleet shards.

Routing requirement: every request carrying the same graph signature
must land on the same shard, from every client process, with no
coordination — that is what keeps cross-client coalescing and in-memory
cache locality intact at fleet scale.  A consistent-hash ring with
virtual nodes gives exactly that, plus two properties a plain
``hash(digest) % N`` would lose:

* **Determinism across processes.** Points are derived with SHA-256,
  not Python's seeded ``hash()`` — two clients started hours apart (or
  with different ``PYTHONHASHSEED``) map a digest identically.
* **Minimal disruption.** Adding or removing one shard remaps only the
  arc segments owned by its virtual nodes (~1/N of the keyspace), so a
  resize does not cold-start every shard's cache.

``preference()`` additionally yields the failover order: the owner
first, then the distinct ring successors — the same walk every client
performs, so even degraded routing stays consistent fleet-wide.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterator, List, Optional, Sequence

#: Virtual nodes per shard.  64 keeps the keyspace arcs balanced within
#: a few percent for small fleets while building the ring in well under
#: a millisecond.
DEFAULT_VNODES = 64


def ring_point(key: str) -> int:
    """Deterministic 64-bit ring position for ``key``."""
    return int.from_bytes(
        hashlib.sha256(key.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """Digest → node mapping via consistent hashing.

    Args:
        nodes: Shard identities (addresses); order does not affect the
            mapping — only the identity strings do.
        vnodes: Virtual nodes per shard (balance/knob).
    """

    def __init__(self, nodes: Sequence[str],
                 vnodes: int = DEFAULT_VNODES) -> None:
        nodes = list(nodes)
        if not nodes:
            raise ValueError("a hash ring needs at least one node")
        if len(set(nodes)) != len(nodes):
            raise ValueError(f"duplicate ring nodes: {nodes}")
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.nodes = nodes
        self.vnodes = vnodes
        # Sorting (point, node) pairs breaks the astronomically unlikely
        # point collision by node name — still deterministic.
        points = sorted(
            (ring_point(f"{node}#{replica}"), node)
            for node in nodes
            for replica in range(vnodes)
        )
        self._points: List[int] = [point for point, _ in points]
        self._owners: List[str] = [node for _, node in points]

    def __len__(self) -> int:
        return len(self.nodes)

    def _start_index(self, digest: str) -> int:
        # bisect_right: a key sitting exactly on a vnode point belongs
        # to that vnode's successor — any fixed convention works, it
        # just has to be the same in every process.
        return bisect.bisect_right(self._points,
                                   ring_point(digest)) % len(self._points)

    def node_for(self, digest: str) -> str:
        """The shard owning ``digest`` (the first vnode at/after its
        ring position)."""
        return self._owners[self._start_index(digest)]

    def preference(self, digest: str,
                   limit: Optional[int] = None) -> List[str]:
        """Owner followed by the distinct ring successors.

        This is the fleet-wide failover order for ``digest``: when the
        owner is down, every client retries the *same* successor, so
        coalescing re-forms on the fallback shard instead of scattering.
        """
        if limit is None:
            limit = len(self.nodes)
        found: List[str] = []
        start = self._start_index(digest)
        for offset in range(len(self._owners)):
            node = self._owners[(start + offset) % len(self._owners)]
            if node not in found:
                found.append(node)
                if len(found) >= limit:
                    break
        return found

    def iter_nodes(self, digest: str) -> Iterator[str]:
        """Lazy :meth:`preference` (full walk)."""
        return iter(self.preference(digest))

    def describe(self) -> str:
        return (f"{len(self.nodes)} nodes x {self.vnodes} vnodes "
                f"({len(self._points)} points)")
