"""Training performance metrics: MFU, throughput, bubble ratios.

MFU (model FLOPs utilization) follows the paper's definition: the model's
train-step FLOPs divided by elapsed time and the aggregate peak FLOPs of
the GPUs in one data-parallel replica.

Bubble ratio is computed from the trace event stream
(:func:`bubble_ratio`): the per-rank bubble decomposition's idle
fraction, which by construction partitions idle time exactly — the same
number every trace consumer (CLI analytics, benchmarks, Chrome export)
sees, instead of each call site recomputing busy/idle ad hoc.
"""

from __future__ import annotations

from repro.cluster.devices import GpuSpec
from repro.cluster.topology import ParallelConfig
from repro.trace.analysis import BubbleReport, decompose_bubbles


def mfu(
    model_flops: float,
    iteration_ms: float,
    gpu: GpuSpec,
    parallel: ParallelConfig,
) -> float:
    """Model FLOPs utilization of one data-parallel replica.

    Args:
        model_flops: Train-step FLOPs of the iteration (fw + 2x bw).
        iteration_ms: Iteration latency in milliseconds.
        gpu: Device spec (peak FLOPs).
        parallel: Layout; a replica spans ``pp * tp`` GPUs.
    """
    if iteration_ms <= 0:
        raise ValueError("iteration_ms must be positive")
    gpus = parallel.pp * parallel.tp
    return model_flops / (iteration_ms * 1e-3) / (gpus * gpu.flops)


def throughput_tokens_per_s(total_tokens: float, iteration_ms: float) -> float:
    """Training throughput in tokens per second."""
    if iteration_ms <= 0:
        raise ValueError("iteration_ms must be positive")
    return total_tokens / (iteration_ms * 1e-3)


def pflops_per_iteration(model_flops: float) -> float:
    """Convenience: iteration FLOPs in petaFLOPs (Table 1's unit)."""
    return model_flops / 1e15


def bubble_ratio(trace) -> float:
    """Idle fraction across ranks within the makespan, from the trace.

    Delegates to the trace subsystem's bubble decomposition, whose four
    categories partition each rank's idle time exactly — so this agrees
    with the per-cause breakdown to the last ulp.  Accepts either a
    :class:`~repro.trace.events.Trace` or an already-computed
    :class:`~repro.trace.analysis.BubbleReport` (pass the report when
    you need several bubble metrics from one decomposition pass).
    """
    return _bubble_report(trace).bubble_ratio


def bubble_time_ms(trace) -> float:
    """Aggregate idle time across all ranks, from the trace.

    Accepts a :class:`~repro.trace.events.Trace` or a precomputed
    :class:`~repro.trace.analysis.BubbleReport`, like :func:`bubble_ratio`.
    """
    return _bubble_report(trace).idle_ms


def _bubble_report(trace_or_report):
    if isinstance(trace_or_report, BubbleReport):
        return trace_or_report
    return decompose_bubbles(trace_or_report)


def speedup(baseline_ms: float, optimized_ms: float) -> float:
    """Relative throughput improvement of ``optimized`` over ``baseline``."""
    if optimized_ms <= 0:
        raise ValueError("optimized_ms must be positive")
    return baseline_ms / optimized_ms - 1.0
