"""Model substrate: transformer module specs, FLOPs accounting, LMM zoo.

LMMs are composed of *modality modules* (encoders, a backbone, decoders)
connected by adapters (Fig. 1 of the paper).  This package describes those
modules analytically — parameter counts, per-layer FLOPs, bytes moved and
activation footprints — which is what both DIP's planner and the training
simulator consume.
"""

from repro.models.config import (
    ModalityModuleSpec,
    Modality,
    ModuleRole,
)
from repro.models.lmm import LMMArchitecture, ModuleBinding, build_t2v, build_vlm
from repro.models.zoo import (
    MODEL_ZOO,
    module_by_name,
    COMBINATIONS,
    combination_by_name,
)

__all__ = [
    "Modality",
    "ModuleRole",
    "ModalityModuleSpec",
    "LMMArchitecture",
    "ModuleBinding",
    "build_vlm",
    "build_t2v",
    "MODEL_ZOO",
    "module_by_name",
    "COMBINATIONS",
    "combination_by_name",
]
