"""Specifications of modality modules (transformer stacks).

A :class:`ModalityModuleSpec` captures the architecture hyper-parameters
of one modality module (Table 2 of the paper): layer count, embedding
dimension, FFN hidden size, attention heads and query groups.  These are
sufficient for the analytic FLOPs / bytes / memory model in
:mod:`repro.models.flops`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Modality(enum.Enum):
    """The data modality a module consumes or produces."""

    TEXT = "text"
    IMAGE = "image"
    VIDEO = "video"
    AUDIO = "audio"


class ModuleRole(enum.Enum):
    """Where a module sits in the LMM dataflow (Fig. 1)."""

    ENCODER = "encoder"
    BACKBONE = "backbone"
    DECODER = "decoder"


@dataclass(frozen=True)
class ModalityModuleSpec:
    """Architecture of one modality module.

    Attributes:
        name: Unique module name, e.g. ``"vit-5b"``.
        role: Encoder / backbone / decoder.
        modality: The modality whose tokens drive this module's sequence
            length (text tokens for LLMs, image patches for ViTs, video
            latent tokens for DiTs).
        num_layers: Transformer block count.
        hidden_size: Embedding dimension.
        ffn_hidden_size: FFN intermediate dimension.
        num_attention_heads: Query head count.
        num_query_groups: KV head count (GQA); equals
            ``num_attention_heads`` for full multi-head attention.
        gated_mlp: Whether the MLP is gated (SwiGLU, 3 projections) as in
            Llama/Qwen, or plain (GELU, 2 projections) as in ViT/DiT.
        vocab_size: Output vocabulary (LLM backbones only; 0 disables the
            embedding/LM-head accounting).
        cross_attention: Whether each block carries an extra
            cross-attention sublayer (DiT decoders conditioning on text).
    """

    name: str
    role: ModuleRole
    modality: Modality
    num_layers: int
    hidden_size: int
    ffn_hidden_size: int
    num_attention_heads: int
    num_query_groups: int
    gated_mlp: bool = True
    vocab_size: int = 0
    cross_attention: bool = False

    def __post_init__(self) -> None:
        if self.num_layers < 1:
            raise ValueError(f"{self.name}: num_layers must be >= 1")
        if self.hidden_size % self.num_attention_heads != 0:
            raise ValueError(
                f"{self.name}: hidden_size {self.hidden_size} not divisible "
                f"by num_attention_heads {self.num_attention_heads}"
            )
        if self.num_attention_heads % self.num_query_groups != 0:
            raise ValueError(
                f"{self.name}: num_attention_heads {self.num_attention_heads} "
                f"not divisible by num_query_groups {self.num_query_groups}"
            )

    @property
    def head_dim(self) -> int:
        """Dimension of each attention head."""
        return self.hidden_size // self.num_attention_heads

    @property
    def kv_channels(self) -> int:
        """Total KV projection width under GQA."""
        return self.head_dim * self.num_query_groups

    def layer_parameters(self) -> int:
        """Parameter count of a single transformer block."""
        h = self.hidden_size
        attn = h * h + 2 * h * self.kv_channels + h * h  # Q, K, V, O
        mlp_mats = 3 if self.gated_mlp else 2
        mlp = mlp_mats * h * self.ffn_hidden_size
        norms = 2 * h
        cross = attn if self.cross_attention else 0
        return attn + cross + mlp + norms

    def total_parameters(self) -> int:
        """Parameter count of the whole module (blocks + embeddings)."""
        params = self.num_layers * self.layer_parameters()
        if self.vocab_size:
            params += 2 * self.vocab_size * self.hidden_size
        return params

    def parameters_billion(self) -> float:
        """Total parameters in billions, handy for reporting."""
        return self.total_parameters() / 1e9
