"""Analytic FLOPs / bytes / activation accounting for transformer blocks.

All quantities are *per device* under tensor parallelism of degree ``tp``:
compute and weights shard across the TP group, while TP collectives add
communication volume.  The training simulator (section 6.1 of the paper)
turns these counts into latencies via a roofline-style cost model.

Conventions:
    * BF16 training: 2 bytes per parameter / activation element.
    * Backward compute is 2x forward (dgrad + wgrad).
    * Flash attention: no O(s^2) activation storage, but the quadratic
      FLOPs term remains.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.config import ModalityModuleSpec

BYTES_PER_ELEMENT = 2.0
#: Multiplier from parameter count to per-device training-state bytes under
#: mixed precision with distributed optimizer disabled: bf16 weights (2) +
#: bf16 grads (2) + fp32 master weights, momentum, variance (12) = 16.
TRAINING_STATE_BYTES_PER_PARAM = 16.0


@dataclass(frozen=True)
class LayerWork:
    """Resource counts for one transformer block on one device.

    Attributes:
        flops: Forward floating-point operations.
        weight_bytes: Parameter bytes read from HBM.
        act_traffic_bytes: Activation bytes read+written in HBM.
        tp_comm_bytes: Bytes each device moves for TP all-reduces.
        act_store_bytes: Activation bytes held until the backward pass
            (no recomputation, flash attention).
        act_ckpt_bytes: Activation bytes held under full checkpointing
            (layer input only).
    """

    flops: float
    weight_bytes: float
    act_traffic_bytes: float
    tp_comm_bytes: float
    act_store_bytes: float
    act_ckpt_bytes: float

    def scaled(self, factor: float) -> "LayerWork":
        """Uniformly scale all counts (used for fractional chunks)."""
        return LayerWork(
            flops=self.flops * factor,
            weight_bytes=self.weight_bytes * factor,
            act_traffic_bytes=self.act_traffic_bytes * factor,
            tp_comm_bytes=self.tp_comm_bytes * factor,
            act_store_bytes=self.act_store_bytes * factor,
            act_ckpt_bytes=self.act_ckpt_bytes * factor,
        )

    def __add__(self, other: "LayerWork") -> "LayerWork":
        return LayerWork(
            flops=self.flops + other.flops,
            weight_bytes=self.weight_bytes + other.weight_bytes,
            act_traffic_bytes=self.act_traffic_bytes + other.act_traffic_bytes,
            tp_comm_bytes=self.tp_comm_bytes + other.tp_comm_bytes,
            act_store_bytes=self.act_store_bytes + other.act_store_bytes,
            act_ckpt_bytes=self.act_ckpt_bytes + other.act_ckpt_bytes,
        )


def layer_forward_flops(
    spec: ModalityModuleSpec, batch: int, seq: int, context: int = 0
) -> float:
    """Forward FLOPs of one block for ``batch`` sequences of length ``seq``.

    ``context`` is the conditioning length for cross-attention blocks
    (e.g. text tokens conditioning a DiT); zero for self-attention-only
    blocks.
    """
    h = spec.hidden_size
    kv = spec.kv_channels
    tokens = batch * seq
    qkv = 2.0 * tokens * h * (h + 2.0 * kv)
    attn = 4.0 * batch * seq * seq * h  # scores + context matmuls
    out = 2.0 * tokens * h * h
    mlp_mats = 3.0 if spec.gated_mlp else 2.0
    mlp = 2.0 * tokens * h * spec.ffn_hidden_size * mlp_mats
    total = qkv + attn + out + mlp
    if spec.cross_attention:
        ctx = max(context, 1)
        cross_qkv = 2.0 * tokens * h * h + 2.0 * batch * ctx * h * 2.0 * kv
        cross_attn = 4.0 * batch * seq * ctx * h
        cross_out = 2.0 * tokens * h * h
        total += cross_qkv + cross_attn + cross_out
    return total


def module_forward_flops(
    spec: ModalityModuleSpec, batch: int, seq: int, context: int = 0
) -> float:
    """Forward FLOPs of the entire module (all layers)."""
    return spec.num_layers * layer_forward_flops(spec, batch, seq, context)


def layer_weight_bytes(spec: ModalityModuleSpec, tp: int = 1) -> float:
    """Per-device parameter bytes of one block under TP sharding."""
    return spec.layer_parameters() * BYTES_PER_ELEMENT / tp


def layer_activation_traffic(
    spec: ModalityModuleSpec, batch: int, seq: int, tp: int = 1
) -> float:
    """Approximate HBM activation traffic (bytes) of one forward block.

    Each GEMM streams its input and output once; attention with flash
    kernels adds a small constant number of passes over the sequence.
    """
    h = spec.hidden_size
    f = spec.ffn_hidden_size
    tokens = batch * seq
    gemm_io = tokens * (8.0 * h + 2.0 * f * (3.0 if spec.gated_mlp else 2.0)) / tp
    attn_io = tokens * 8.0 * h / tp
    if spec.cross_attention:
        attn_io *= 2.0
    return (gemm_io + attn_io) * BYTES_PER_ELEMENT


def layer_activation_store(
    spec: ModalityModuleSpec, batch: int, seq: int, tp: int = 1
) -> float:
    """Activation bytes one block keeps resident until its backward pass.

    Uses Megatron's estimate for flash-attention blocks — roughly
    ``34 * s * b * h`` bytes at fp16 — sharded across the TP group
    (sequence parallelism shards the layer inputs as well).
    """
    h = spec.hidden_size
    tokens = batch * seq
    stored = 34.0 * tokens * h / tp
    if spec.cross_attention:
        stored += 10.0 * tokens * h / tp
    return stored


def layer_activation_checkpoint_store(
    spec: ModalityModuleSpec, batch: int, seq: int, tp: int = 1
) -> float:
    """Activation bytes held under full recomputation (layer input only).

    Sequence parallelism shards the saved input across the TP group.
    """
    return batch * seq * spec.hidden_size * BYTES_PER_ELEMENT / tp


def layer_tp_comm_bytes(
    spec: ModalityModuleSpec, batch: int, seq: int, tp: int = 1
) -> float:
    """Bytes each device moves for the block's forward TP all-reduces.

    Two all-reduces per block (attention out-proj and MLP down-proj); a
    ring all-reduce moves ``2 * (tp-1)/tp * payload`` bytes per device.
    """
    if tp <= 1:
        return 0.0
    payload = batch * seq * spec.hidden_size * BYTES_PER_ELEMENT
    reduces = 3.0 if spec.cross_attention else 2.0
    return reduces * 2.0 * (tp - 1) / tp * payload


def boundary_p2p_bytes(spec: ModalityModuleSpec, batch: int, seq: int) -> float:
    """Bytes of boundary activations sent between pipeline ranks."""
    return batch * seq * spec.hidden_size * BYTES_PER_ELEMENT


def layer_work(
    spec: ModalityModuleSpec,
    batch: int,
    seq: int,
    tp: int = 1,
    context: int = 0,
) -> LayerWork:
    """Aggregate per-device forward resource counts for one block."""
    return LayerWork(
        flops=layer_forward_flops(spec, batch, seq, context) / tp,
        weight_bytes=layer_weight_bytes(spec, tp),
        act_traffic_bytes=layer_activation_traffic(spec, batch, seq, tp),
        tp_comm_bytes=layer_tp_comm_bytes(spec, batch, seq, tp),
        act_store_bytes=layer_activation_store(spec, batch, seq, tp),
        act_ckpt_bytes=layer_activation_checkpoint_store(spec, batch, seq, tp),
    )


def chunk_work(
    spec: ModalityModuleSpec,
    num_layers: int,
    batch: int,
    seq: int,
    tp: int = 1,
    context: int = 0,
) -> LayerWork:
    """Forward resource counts for a model chunk of ``num_layers`` blocks."""
    if num_layers < 0:
        raise ValueError(f"num_layers must be >= 0, got {num_layers}")
    one = layer_work(spec, batch, seq, tp, context)
    return one.scaled(float(num_layers))


def training_state_bytes(params: int, tp: int = 1, dp_shards: int = 1) -> float:
    """Bytes of weights+grads+optimizer state per device.

    ``dp_shards`` models a ZeRO-style distributed optimizer: the 12
    bytes/param of fp32 state shard across the DP group while bf16
    weights and grads stay replicated.
    """
    per_param = 4.0 + 12.0 / dp_shards
    return params * per_param / tp
