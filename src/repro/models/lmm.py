"""Large multimodal model composition.

An LMM chains *modality modules* in dataflow levels (Fig. 1 of the paper):
level 0 holds the input-side modules (modality encoders), followed by the
backbone, followed by output-side decoders.  Modules within one level are
independent; a module depends on every module in the previous level.

Two families cover the paper's evaluation:

* **VLM**: image encoder (ViT) -> text backbone (LLM); loss on the LLM.
* **T2V**: text encoder (LLM) -> video diffusion decoder (DiT); loss on
  the DiT.  The LLM provides conditioning consumed by the DiT's
  cross-attention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.models.config import ModalityModuleSpec, ModuleRole
from repro.models.zoo import ModelCombination, module_by_name


@dataclass(frozen=True)
class ModuleBinding:
    """A module's position inside a particular LMM.

    Attributes:
        spec: The module architecture.
        role: Effective role in *this* LMM (an LLM is a backbone in a VLM
            but a conditioning encoder in a T2V model).
        level: Dataflow level; modules at level ``k`` consume every level
            ``k-1`` output.
    """

    spec: ModalityModuleSpec
    role: ModuleRole
    level: int

    @property
    def name(self) -> str:
        return self.spec.name


@dataclass(frozen=True)
class LMMArchitecture:
    """A composed large multimodal model.

    Attributes:
        name: Model name, e.g. ``"VLM-S"``.
        kind: ``"vlm"`` or ``"t2v"``.
        bindings: Modules in dataflow order (level-major).
    """

    name: str
    kind: str
    bindings: Tuple[ModuleBinding, ...]

    def __post_init__(self) -> None:
        if not self.bindings:
            raise ValueError("an LMM needs at least one module")
        levels = [b.level for b in self.bindings]
        if sorted(levels) != levels:
            raise ValueError("bindings must be ordered by level")
        if levels[0] != 0:
            raise ValueError("dataflow levels must start at 0")

    @property
    def module_names(self) -> List[str]:
        return [b.name for b in self.bindings]

    def binding(self, module_name: str) -> ModuleBinding:
        """Find a module binding by module name."""
        for b in self.bindings:
            if b.name == module_name:
                return b
        raise KeyError(f"{self.name} has no module {module_name!r}")

    def levels(self) -> List[List[ModuleBinding]]:
        """Modules grouped by dataflow level, in order."""
        out: List[List[ModuleBinding]] = []
        for b in self.bindings:
            while len(out) <= b.level:
                out.append([])
            out[b.level].append(b)
        return out

    @property
    def num_levels(self) -> int:
        return self.bindings[-1].level + 1

    @property
    def loss_module(self) -> ModuleBinding:
        """The module whose output carries the training loss (last level)."""
        return self.bindings[-1]

    def upstream_of(self, module_name: str) -> List[ModuleBinding]:
        """Modules whose outputs the named module consumes."""
        level = self.binding(module_name).level
        if level == 0:
            return []
        return [b for b in self.bindings if b.level == level - 1]

    def downstream_of(self, module_name: str) -> List[ModuleBinding]:
        """Modules that consume the named module's output."""
        level = self.binding(module_name).level
        return [b for b in self.bindings if b.level == level + 1]

    def total_parameters(self) -> int:
        """Parameter count summed over all modules."""
        return sum(b.spec.total_parameters() for b in self.bindings)

    def parameters_billion(self) -> float:
        return self.total_parameters() / 1e9


def build_vlm(
    encoder: ModalityModuleSpec, backbone: ModalityModuleSpec, name: str = ""
) -> LMMArchitecture:
    """Compose a vision-language model: image encoder -> text backbone."""
    return LMMArchitecture(
        name=name or f"vlm({encoder.name}+{backbone.name})",
        kind="vlm",
        bindings=(
            ModuleBinding(encoder, ModuleRole.ENCODER, level=0),
            ModuleBinding(backbone, ModuleRole.BACKBONE, level=1),
        ),
    )


def build_t2v(
    text_encoder: ModalityModuleSpec, dit: ModalityModuleSpec, name: str = ""
) -> LMMArchitecture:
    """Compose a text-to-video model: text encoder -> DiT video decoder."""
    return LMMArchitecture(
        name=name or f"t2v({text_encoder.name}+{dit.name})",
        kind="t2v",
        bindings=(
            ModuleBinding(text_encoder, ModuleRole.ENCODER, level=0),
            ModuleBinding(dit, ModuleRole.DECODER, level=1),
        ),
    )


def build_unimodal(backbone: ModalityModuleSpec, name: str = "") -> LMMArchitecture:
    """A single-module 'LMM' (the Table 1 unimodal LM baseline)."""
    return LMMArchitecture(
        name=name or f"lm({backbone.name})",
        kind="lm",
        bindings=(ModuleBinding(backbone, ModuleRole.BACKBONE, level=0),),
    )


def build_combination(combo: ModelCombination) -> LMMArchitecture:
    """Instantiate a Table 3 / Table 6 model combination."""
    specs = [module_by_name(n) for n in combo.module_names]
    if combo.kind == "vlm":
        if len(specs) != 2:
            raise ValueError(f"{combo.name}: VLM combinations need 2 modules")
        return build_vlm(specs[0], specs[1], name=combo.name)
    if combo.kind == "t2v":
        if len(specs) != 2:
            raise ValueError(f"{combo.name}: T2V combinations need 2 modules")
        return build_t2v(specs[0], specs[1], name=combo.name)
    raise ValueError(f"unknown combination kind {combo.kind!r}")


def architecture_summary(arch: LMMArchitecture) -> Dict[str, float]:
    """Per-module and total parameter counts in billions, for reporting."""
    summary = {b.name: b.spec.parameters_billion() for b in arch.bindings}
    summary["total"] = arch.parameters_billion()
    return summary
