"""Model zoo: every module and combination from the paper's evaluation.

Tables 2, 3 and 6 of the paper, plus the 7B-class modules used in the
Table 1 motivation experiment and the 37B VLM from section 2.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.models.config import Modality, ModalityModuleSpec, ModuleRole

# --- Table 2 modules ------------------------------------------------------

VIT_5B = ModalityModuleSpec(
    name="vit-5b",
    role=ModuleRole.ENCODER,
    modality=Modality.IMAGE,
    num_layers=63,
    hidden_size=1792,
    ffn_hidden_size=15360,
    num_attention_heads=16,
    num_query_groups=16,
    gated_mlp=False,
)

VIT_22B = ModalityModuleSpec(
    name="vit-22b",
    role=ModuleRole.ENCODER,
    modality=Modality.IMAGE,
    num_layers=48,
    hidden_size=6144,
    ffn_hidden_size=24576,
    num_attention_heads=48,
    num_query_groups=48,
    gated_mlp=False,
)

LLAMA3_8B = ModalityModuleSpec(
    name="llama3-8b",
    role=ModuleRole.BACKBONE,
    modality=Modality.TEXT,
    num_layers=32,
    hidden_size=4096,
    ffn_hidden_size=14336,
    num_attention_heads=32,
    num_query_groups=8,
    gated_mlp=True,
    vocab_size=128256,
)

QWEN2_32B = ModalityModuleSpec(
    name="qwen2-32b",
    role=ModuleRole.BACKBONE,
    modality=Modality.TEXT,
    num_layers=64,
    hidden_size=5120,
    ffn_hidden_size=27648,
    num_attention_heads=40,
    num_query_groups=8,
    gated_mlp=True,
    vocab_size=152064,
)

QWEN2_72B = ModalityModuleSpec(
    name="qwen2-72b",
    role=ModuleRole.BACKBONE,
    modality=Modality.TEXT,
    num_layers=80,
    hidden_size=8192,
    ffn_hidden_size=29568,
    num_attention_heads=64,
    num_query_groups=8,
    gated_mlp=True,
    vocab_size=152064,
)

DIT_5B = ModalityModuleSpec(
    name="dit-5b",
    role=ModuleRole.DECODER,
    modality=Modality.VIDEO,
    num_layers=28,
    hidden_size=3584,
    ffn_hidden_size=10240,
    num_attention_heads=28,
    num_query_groups=28,
    gated_mlp=False,
    cross_attention=True,
)

DIT_30B = ModalityModuleSpec(
    name="dit-30b",
    role=ModuleRole.DECODER,
    modality=Modality.VIDEO,
    num_layers=48,
    hidden_size=6144,
    ffn_hidden_size=24576,
    num_attention_heads=48,
    num_query_groups=48,
    gated_mlp=False,
    cross_attention=True,
)

# --- Table 6 module (large-scale simulation) ------------------------------

GPT_175B = ModalityModuleSpec(
    name="gpt-175b",
    role=ModuleRole.BACKBONE,
    modality=Modality.TEXT,
    num_layers=96,
    hidden_size=12288,
    ffn_hidden_size=49152,
    num_attention_heads=96,
    num_query_groups=96,
    gated_mlp=False,
    vocab_size=50257,
)

# --- Table 1 / section 2 motivation modules -------------------------------

LM_7B = ModalityModuleSpec(
    name="lm-7b",
    role=ModuleRole.BACKBONE,
    modality=Modality.TEXT,
    num_layers=32,
    hidden_size=4096,
    ffn_hidden_size=11008,
    num_attention_heads=32,
    num_query_groups=32,
    gated_mlp=True,
    vocab_size=32000,
)

VIT_2B = ModalityModuleSpec(
    name="vit-2b",
    role=ModuleRole.ENCODER,
    modality=Modality.IMAGE,
    num_layers=26,
    hidden_size=2560,
    ffn_hidden_size=10240,
    num_attention_heads=32,
    num_query_groups=32,
    gated_mlp=False,
)

LM_5B = ModalityModuleSpec(
    name="lm-5b",
    role=ModuleRole.BACKBONE,
    modality=Modality.TEXT,
    num_layers=32,
    hidden_size=3584,
    ffn_hidden_size=9472,
    num_attention_heads=28,
    num_query_groups=28,
    gated_mlp=True,
    vocab_size=32000,
)

MODEL_ZOO: Dict[str, ModalityModuleSpec] = {
    spec.name: spec
    for spec in (
        VIT_5B,
        VIT_22B,
        LLAMA3_8B,
        QWEN2_32B,
        QWEN2_72B,
        DIT_5B,
        DIT_30B,
        GPT_175B,
        LM_7B,
        VIT_2B,
        LM_5B,
    )
}


def module_by_name(name: str) -> ModalityModuleSpec:
    """Look up a module spec from the zoo by name."""
    try:
        return MODEL_ZOO[name]
    except KeyError:
        known = ", ".join(sorted(MODEL_ZOO))
        raise KeyError(f"unknown module {name!r}; known modules: {known}") from None


@dataclass(frozen=True)
class ModelCombination:
    """One row of Table 3 / Table 6: an LMM plus its parallel layout."""

    name: str
    module_names: Tuple[str, ...]
    kind: str  # "vlm" or "t2v"
    dp: int
    tp: int
    pp: int

    @property
    def num_gpus(self) -> int:
        return self.dp * self.tp * self.pp


COMBINATIONS: Dict[str, ModelCombination] = {
    combo.name: combo
    for combo in (
        # Table 3 (dp=1 per the per-replica GPU counts reported).
        ModelCombination("VLM-S", ("vit-5b", "llama3-8b"), "vlm", 1, 4, 4),
        ModelCombination("VLM-M", ("vit-5b", "qwen2-32b"), "vlm", 1, 8, 4),
        ModelCombination("VLM-L", ("vit-22b", "qwen2-72b"), "vlm", 1, 8, 8),
        ModelCombination("T2V-S", ("llama3-8b", "dit-5b"), "t2v", 1, 4, 4),
        ModelCombination("T2V-L", ("qwen2-32b", "dit-30b"), "t2v", 1, 8, 8),
        # Table 6 (large-scale simulation).
        ModelCombination("VLM-XL-8k", ("vit-22b", "gpt-175b"), "vlm", 128, 8, 8),
        ModelCombination("VLM-XL-16k", ("vit-22b", "gpt-175b"), "vlm", 128, 8, 16),
        ModelCombination("T2V-XL-3k", ("qwen2-72b", "dit-30b"), "t2v", 96, 8, 4),
        ModelCombination("T2V-XL-6k", ("qwen2-72b", "dit-30b"), "t2v", 96, 8, 8),
    )
}


def combination_by_name(name: str) -> ModelCombination:
    """Look up a Table 3 / Table 6 model combination by name."""
    try:
        return COMBINATIONS[name]
    except KeyError:
        known = ", ".join(sorted(COMBINATIONS))
        raise KeyError(f"unknown combination {name!r}; known: {known}") from None
