"""Fleet-wide telemetry plane: tracing, metrics, scraping.

Three pieces, each usable on its own:

* :mod:`repro.obs.tracing` — cross-process request tracing.  Clients
  stamp every RPC with a trace id; shards emit queue-wait / cache-lookup
  / search / replay spans tagged with that id into the PR 2 span schema;
  the merger joins the per-process span files into one Chrome/Perfetto
  timeline with flow arrows across the process boundary.
* :mod:`repro.obs.registry` — a labelled metrics registry (counters,
  gauges, fixed-bucket histograms) with snapshot / label-wise merge,
  rendered to Prometheus text exposition by :mod:`repro.obs.expo`.
* :mod:`repro.obs.scrape` — ``repro obs scrape`` / ``repro obs report``:
  poll every shard's ``metrics`` RPC, merge, render, and cross-check the
  metric counters against the ``stats`` RPC.
"""

from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    histogram_quantile,
    merge_snapshots,
    sample_value,
)
from repro.obs.expo import parse_exposition, render_exposition
from repro.obs.tracing import (
    RequestTracer,
    merge_obs_chrome,
    merge_trace_files,
    new_span_id,
    new_trace_id,
)
from repro.obs.scrape import (
    ShardScrape,
    check_scrape,
    merged_snapshot,
    render_report,
    scrape_fleet,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "MetricsRegistry",
    "RequestTracer",
    "ShardScrape",
    "check_scrape",
    "histogram_quantile",
    "merge_obs_chrome",
    "merge_snapshots",
    "merge_trace_files",
    "merged_snapshot",
    "new_span_id",
    "new_trace_id",
    "parse_exposition",
    "render_exposition",
    "render_report",
    "sample_value",
    "scrape_fleet",
]
