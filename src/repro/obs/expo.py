"""Prometheus text exposition: render registry snapshots, parse them back.

The renderer emits the version-0.0.4 text format (``# HELP`` / ``# TYPE``
comments, ``name{label="value"} number`` samples, cumulative
``_bucket{le=...}`` / ``_sum`` / ``_count`` triples for histograms).
The parser is the other half of the contract: ``repro obs scrape
--check`` and the CI smoke job round-trip every emitted line through it,
so a malformed sample is a test failure, not a silent scrape gap.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, NamedTuple, Optional

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)$"
)
_LABEL_RE = re.compile(
    r'\s*(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"\s*'
    r"(?P<sep>,|$)"
)


class Sample(NamedTuple):
    name: str
    labels: Dict[str, str]
    value: float


def _escape(value: str) -> str:
    return (value.replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _unescape(value: str) -> str:
    out: List[str] = []
    it = iter(value)
    for ch in it:
        if ch != "\\":
            out.append(ch)
            continue
        nxt = next(it, "")
        out.append({"n": "\n", "\\": "\\", '"': '"'}.get(nxt, "\\" + nxt))
    return "".join(out)


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(f'{k}="{_escape(str(v))}"'
                    for k, v in sorted(labels.items()))
    return "{" + body + "}"


def render_exposition(snapshot: Dict) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` (or a merged snapshot)
    to Prometheus text exposition."""
    lines: List[str] = []
    for metric in snapshot.get("metrics", []):
        name = metric["name"]
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        if metric.get("help"):
            lines.append(f"# HELP {name} {_escape(metric['help'])}")
        lines.append(f"# TYPE {name} {metric['type']}")
        if metric["type"] in ("counter", "gauge"):
            for series in metric["series"]:
                lines.append(
                    f"{name}{_format_labels(series['labels'])} "
                    f"{_format_value(series['value'])}"
                )
        elif metric["type"] == "histogram":
            bounds = [float(b) for b in metric["buckets"]] + [math.inf]
            for series in metric["series"]:
                cumulative = 0
                for bound, count in zip(bounds, series["counts"]):
                    cumulative += count
                    le = {**series["labels"], "le": _format_value(bound)}
                    lines.append(f"{name}_bucket{_format_labels(le)} "
                                 f"{cumulative}")
                labels = _format_labels(series["labels"])
                lines.append(f"{name}_sum{labels} "
                             f"{_format_value(series['sum'])}")
                lines.append(f"{name}_count{labels} {series['count']}")
        else:
            raise ValueError(f"unknown metric type {metric['type']!r}")
    return "\n".join(lines) + "\n"


def _parse_labels(body: str, line_no: int) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    pos = 0
    while pos < len(body):
        match = _LABEL_RE.match(body, pos)
        if match is None:
            raise ValueError(
                f"line {line_no}: malformed label pair at {body[pos:]!r}")
        labels[match.group("name")] = _unescape(match.group("value"))
        pos = match.end()
    return labels


def _parse_value(text: str, line_no: int) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError:
        raise ValueError(f"line {line_no}: bad sample value {text!r}")


def parse_exposition(text: str) -> List[Sample]:
    """Parse exposition text into samples; raises :class:`ValueError`
    (with the offending line number) on any malformed line.  Histogram
    ``_bucket``/``_sum``/``_count`` samples come back as ordinary
    samples under their suffixed names."""
    samples: List[Sample] = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] in ("HELP", "TYPE"):
                if len(parts) < 3 or not _NAME_RE.match(parts[2]):
                    raise ValueError(
                        f"line {line_no}: malformed {parts[1]} comment")
                if parts[1] == "TYPE" and (
                        len(parts) < 4 or parts[3].split()[0] not in
                        ("counter", "gauge", "histogram", "summary",
                         "untyped")):
                    raise ValueError(f"line {line_no}: bad TYPE")
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {line_no}: malformed sample {line!r}")
        labels = _parse_labels(match.group("labels") or "", line_no)
        value = _parse_value(match.group("value"), line_no)
        samples.append(Sample(match.group("name"), labels, value))
    return samples


def sum_samples(samples: List[Sample], name: str,
                where: Optional[Dict[str, str]] = None) -> float:
    """Sum every parsed sample of ``name`` whose labels include
    ``where`` — the check half of the tier-split-sums-to-total
    assertions."""
    total = 0.0
    for sample in samples:
        if sample.name != name:
            continue
        if where and any(sample.labels.get(k) != v
                         for k, v in where.items()):
            continue
        total += sample.value
    return total
