"""Labelled metrics: counters, gauges, fixed-bucket histograms.

Deliberately small and allocation-light — the hot-path cost of an
``inc()``/``observe()`` is one dict lookup plus a float add under a
registry lock, with label tuples interned at first use.  Snapshots are
plain JSON-able dicts so they travel over the ``metrics`` RPC unchanged,
and :func:`merge_snapshots` folds per-shard snapshots label-wise into
one fleet view (counters sum, gauges sum or max per their declared
aggregation, histogram buckets add element-wise).
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

METRICS_FORMAT = "repro-metrics"
METRICS_VERSION = 1

#: Seconds-scale latency buckets (request path: sub-ms cache hits up to
#: multi-second cold searches).
DEFAULT_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Bytes-scale buckets for frame sizes.
DEFAULT_SIZE_BUCKETS = (
    64, 256, 1024, 4096, 16384, 65536, 262144, 1048576,
)

VALID_GAUGE_AGGS = ("sum", "max")


class MetricError(ValueError):
    """A metric was re-registered with a conflicting shape, or used with
    labels that don't match its declaration."""


def _label_key(label_names: Tuple[str, ...], labels: Dict[str, object],
               metric: str) -> Tuple[str, ...]:
    if set(labels) != set(label_names):
        raise MetricError(
            f"{metric}: got labels {sorted(labels)}, declared "
            f"{sorted(label_names)}"
        )
    return tuple(str(labels[name]) for name in label_names)


class _Metric:
    """Shared shape bookkeeping; subclasses own the series storage."""

    type: str = ""

    def __init__(self, name: str, help: str,
                 label_names: Sequence[str], lock: threading.Lock) -> None:
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._lock = lock

    def _series_dicts(self) -> List[Dict]:
        raise NotImplementedError

    def snapshot(self) -> Dict:
        entry: Dict[str, object] = {
            "name": self.name,
            "type": self.type,
            "help": self.help,
            "label_names": list(self.label_names),
            "series": self._series_dicts(),
        }
        return entry


class Counter(_Metric):
    """Monotonically increasing count, optionally labelled.

    ``set_value`` exists for *bridging*: subsystems that already keep
    their own counters (``ServiceStats``, ``CacheStats``...) export the
    current absolute value at snapshot time instead of double-counting
    on the hot path.
    """

    type = "counter"

    def __init__(self, *args) -> None:
        super().__init__(*args)
        self._values: Dict[Tuple[str, ...], float] = {}

    def inc(self, value: float = 1.0, **labels: object) -> None:
        if value < 0:
            raise MetricError(f"{self.name}: counters only go up")
        key = _label_key(self.label_names, labels, self.name)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + value

    def set_value(self, value: float, **labels: object) -> None:
        key = _label_key(self.label_names, labels, self.name)
        with self._lock:
            self._values[key] = float(value)

    def value(self, **labels: object) -> float:
        key = _label_key(self.label_names, labels, self.name)
        with self._lock:
            return self._values.get(key, 0.0)

    def _series_dicts(self) -> List[Dict]:
        with self._lock:
            return [
                {"labels": dict(zip(self.label_names, key)), "value": value}
                for key, value in sorted(self._values.items())
            ]


class Gauge(_Metric):
    """A value that can go either way; ``agg`` declares how per-shard
    values combine in a fleet merge (queue depths sum, high-water marks
    take the max)."""

    type = "gauge"

    def __init__(self, name: str, help: str, label_names: Sequence[str],
                 lock: threading.Lock, agg: str = "sum") -> None:
        super().__init__(name, help, label_names, lock)
        if agg not in VALID_GAUGE_AGGS:
            raise MetricError(f"{name}: unknown gauge agg {agg!r}")
        self.agg = agg
        self._values: Dict[Tuple[str, ...], float] = {}

    def set(self, value: float, **labels: object) -> None:
        key = _label_key(self.label_names, labels, self.name)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, value: float = 1.0, **labels: object) -> None:
        key = _label_key(self.label_names, labels, self.name)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + value

    def value(self, **labels: object) -> float:
        key = _label_key(self.label_names, labels, self.name)
        with self._lock:
            return self._values.get(key, 0.0)

    def snapshot(self) -> Dict:
        entry = super().snapshot()
        entry["agg"] = self.agg
        return entry

    def _series_dicts(self) -> List[Dict]:
        with self._lock:
            return [
                {"labels": dict(zip(self.label_names, key)), "value": value}
                for key, value in sorted(self._values.items())
            ]


class Histogram(_Metric):
    """Fixed-bucket histogram: per labelset, one int array of
    ``len(buckets) + 1`` non-cumulative counts plus sum and count.
    Cumulative ``le`` form is produced only at exposition time."""

    type = "histogram"

    def __init__(self, name: str, help: str, label_names: Sequence[str],
                 lock: threading.Lock,
                 buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        super().__init__(name, help, label_names, lock)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise MetricError(f"{name}: buckets must be sorted and unique")
        self.buckets = bounds
        self._series: Dict[Tuple[str, ...], List] = {}

    def _slot(self, key: Tuple[str, ...]) -> List:
        slot = self._series.get(key)
        if slot is None:
            slot = [[0] * (len(self.buckets) + 1), 0.0, 0]
            self._series[key] = slot
        return slot

    def _bucket_index(self, value: float) -> int:
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                return i
        return len(self.buckets)

    def observe(self, value: float, **labels: object) -> None:
        key = _label_key(self.label_names, labels, self.name)
        index = self._bucket_index(value)
        with self._lock:
            slot = self._slot(key)
            slot[0][index] += 1
            slot[1] += value
            slot[2] += 1

    def set_from_values(self, values: Iterable[float],
                        **labels: object) -> None:
        """Bridge helper: rebuild one labelset from a retained sample
        window (e.g. ``ServiceStats`` latency deques) so repeated
        snapshots don't re-observe the same samples."""
        key = _label_key(self.label_names, labels, self.name)
        counts = [0] * (len(self.buckets) + 1)
        total = 0.0
        n = 0
        for value in values:
            counts[self._bucket_index(value)] += 1
            total += value
            n += 1
        with self._lock:
            self._series[key] = [counts, total, n]

    def snapshot(self) -> Dict:
        entry = super().snapshot()
        entry["buckets"] = list(self.buckets)
        return entry

    def _series_dicts(self) -> List[Dict]:
        with self._lock:
            return [
                {
                    "labels": dict(zip(self.label_names, key)),
                    "counts": list(slot[0]),
                    "sum": slot[1],
                    "count": slot[2],
                }
                for key, slot in sorted(self._series.items())
            ]


class MetricsRegistry:
    """Get-or-create home for every metric in one process."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}

    def _register(self, name: str, factory, expected_type: str) -> _Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if existing.type != expected_type:
                    raise MetricError(
                        f"{name}: registered as {existing.type}, "
                        f"requested {expected_type}"
                    )
                return existing
            metric = factory()
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "",
                labels: Sequence[str] = ()) -> Counter:
        return self._register(
            name, lambda: Counter(name, help, labels, self._lock), "counter")

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = (),
              agg: str = "sum") -> Gauge:
        return self._register(
            name, lambda: Gauge(name, help, labels, self._lock, agg),
            "gauge")

    def histogram(self, name: str, help: str = "",
                  labels: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
                  ) -> Histogram:
        return self._register(
            name,
            lambda: Histogram(name, help, labels, self._lock, buckets),
            "histogram")

    def snapshot(self) -> Dict:
        with self._lock:
            metrics = sorted(self._metrics.values(), key=lambda m: m.name)
        return {
            "format": METRICS_FORMAT,
            "version": METRICS_VERSION,
            "metrics": [metric.snapshot() for metric in metrics],
        }


# -- snapshot algebra (no live registry required) ----------------------------


def _check_snapshot(snapshot: Dict) -> List[Dict]:
    if (not isinstance(snapshot, dict)
            or snapshot.get("format") != METRICS_FORMAT):
        raise MetricError("not a repro-metrics snapshot")
    return snapshot.get("metrics", [])


def _relabel(series: Dict, extra: Dict[str, str]) -> Dict:
    merged = dict(series)
    merged["labels"] = {**series.get("labels", {}),
                       **{k: str(v) for k, v in extra.items()}}
    return merged


def merge_snapshots(snapshots: Sequence[Dict],
                    extra_labels: Optional[Sequence[Dict[str, str]]] = None,
                    ) -> Dict:
    """Fold per-process snapshots into one, label-wise.

    ``extra_labels`` (one dict per snapshot, e.g. ``{"shard": "0"}``)
    is stamped onto every series of the corresponding snapshot before
    merging — the usual way to keep per-shard series distinguishable
    while still summing any that collide.
    """
    if extra_labels is not None and len(extra_labels) != len(snapshots):
        raise MetricError("extra_labels must match snapshots 1:1")
    merged: Dict[str, Dict] = {}
    for i, snapshot in enumerate(snapshots):
        extra = extra_labels[i] if extra_labels is not None else {}
        extra_names = sorted(str(k) for k in extra)
        for metric in _check_snapshot(snapshot):
            name = metric["name"]
            out = merged.get(name)
            if out is None:
                out = {k: v for k, v in metric.items() if k != "series"}
                out["label_names"] = sorted(
                    set(metric.get("label_names", [])) | set(extra_names))
                out["series"] = {}
                merged[name] = out
            elif out["type"] != metric["type"]:
                raise MetricError(
                    f"{name}: type mismatch across snapshots "
                    f"({out['type']} vs {metric['type']})"
                )
            for series in metric.get("series", []):
                series = _relabel(series, extra)
                key = tuple(sorted(series["labels"].items()))
                slot = out["series"].get(key)
                if slot is None:
                    out["series"][key] = dict(series)
                elif metric["type"] == "histogram":
                    slot["counts"] = [a + b for a, b in
                                      zip(slot["counts"], series["counts"])]
                    slot["sum"] += series["sum"]
                    slot["count"] += series["count"]
                elif (metric["type"] == "gauge"
                        and metric.get("agg") == "max"):
                    slot["value"] = max(slot["value"], series["value"])
                else:
                    slot["value"] += series["value"]
    return {
        "format": METRICS_FORMAT,
        "version": METRICS_VERSION,
        "metrics": [
            {**meta, "series": [meta["series"][k]
                                for k in sorted(meta["series"])]}
            for name, meta in sorted(merged.items())
        ],
    }


def sample_value(snapshot: Dict, name: str,
                 labels: Optional[Dict[str, str]] = None,
                 default: Optional[float] = None) -> Optional[float]:
    """Read one counter/gauge sample out of a snapshot; ``labels=None``
    sums every series of the metric (handy for 'total regardless of
    label' checks)."""
    for metric in _check_snapshot(snapshot):
        if metric["name"] != name:
            continue
        if labels is None:
            return sum(s.get("value", 0.0) for s in metric["series"])
        want = {k: str(v) for k, v in labels.items()}
        for series in metric["series"]:
            if series["labels"] == want:
                return series["value"]
    return default


def histogram_quantile(metric: Dict, q: float,
                       labels: Optional[Dict[str, str]] = None,
                       ) -> Optional[float]:
    """Nearest-bound quantile estimate from one histogram metric entry
    (a ``snapshot()['metrics']`` element).  Series are summed when
    ``labels`` is ``None``.  Returns ``None`` on an empty histogram."""
    buckets = metric.get("buckets", [])
    counts = [0] * (len(buckets) + 1)
    want = ({k: str(v) for k, v in labels.items()}
            if labels is not None else None)
    for series in metric.get("series", []):
        if want is not None and series["labels"] != want:
            continue
        for i, c in enumerate(series["counts"]):
            counts[i] += c
    total = sum(counts)
    if total == 0:
        return None
    target = max(1, int(round(q * total)))
    seen = 0
    for i, c in enumerate(counts):
        seen += c
        if seen >= target:
            return buckets[i] if i < len(buckets) else float("inf")
    return float("inf")
