"""Fleet scraping: poll every shard's ``metrics``/``ping``/``stats``
RPCs and merge them into one labelled view.

The per-shard :class:`~repro.service.rpc.PlanServiceServer` exposes a
``metrics`` RPC returning a registry snapshot (see
:mod:`repro.obs.registry`).  This module is the puller side: connect to
each address, collect the snapshot plus the shard's identity (pid,
shard index, restarts, uptime, cache dir — all from the extended
``ping``), stamp every series with a ``shard`` label, and merge
label-wise into a fleet-wide snapshot that renders as Prometheus text
exposition (:mod:`repro.obs.expo`) or a human health report.

:func:`check_scrape` asserts the cross-subsystem consistency the
acceptance tests (and the CI obs-smoke job) rely on: the tier-split
service hit counters must sum to the stats RPC's hit totals, and the
cache's tier-split hits must sum to its tier-blind lookup counter.

.. note::
   The planning-service client is imported *inside* the scrape
   functions: :mod:`repro.service.rpc` imports the metrics registry
   (and thereby this package), so a module-level import here would
   close an import cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.obs.expo import render_exposition
from repro.obs.registry import (
    histogram_quantile,
    merge_snapshots,
    sample_value,
)

__all__ = [
    "ShardScrape",
    "check_scrape",
    "merged_snapshot",
    "render_report",
    "scrape_fleet",
]


@dataclass
class ShardScrape:
    """Everything one scrape learned about one shard.

    ``ok`` is False when the shard could not be reached or any RPC
    failed; ``error`` then carries the reason and the payload fields
    stay empty — a dead shard must not take the whole scrape down.
    """

    address: str
    ok: bool = False
    error: str = ""
    ping: Dict = field(default_factory=dict)
    metrics: Dict = field(default_factory=dict)
    stats: Dict = field(default_factory=dict)

    @property
    def shard_label(self) -> str:
        """Stable ``shard`` label value: the server-reported shard
        index when it has one, else the address itself."""
        index = self.ping.get("shard_index")
        if index is None:
            return self.address
        return str(index)


def scrape_fleet(
    addresses: Sequence[str],
    timeout_s: float = 10.0,
    include_stats: bool = True,
) -> List[ShardScrape]:
    """Poll ``ping`` + ``metrics`` (+ ``stats`` with samples) on every
    address; returns one :class:`ShardScrape` per address, in order.

    Unreachable shards come back ``ok=False`` with the error recorded
    instead of raising — a scraper observes partial fleets.
    """
    # Imported lazily: service.rpc -> obs package -> this module.
    from repro.service.client import PlanServiceClient

    scrapes: List[ShardScrape] = []
    for address in addresses:
        scrape = ShardScrape(address=str(address))
        try:
            with PlanServiceClient(address, timeout_s=timeout_s) as client:
                scrape.ping = client.ping()
                response = client.call("metrics")
                scrape.metrics = response.get("metrics") or {}
                # metrics carries the identity too; prefer ping but
                # backfill (an old server may answer ping without it).
                for key in ("pid", "shard_index", "restarts",
                            "uptime_ticks", "cache_dir"):
                    scrape.ping.setdefault(key, response.get(key))
                if include_stats:
                    scrape.stats = client.call("stats", {"samples": True})
            scrape.ok = True
        except Exception as exc:  # noqa: BLE001 — partial fleets are fine
            scrape.error = f"{type(exc).__name__}: {exc}"
        scrapes.append(scrape)
    return scrapes


def merged_snapshot(scrapes: Sequence[ShardScrape]) -> Dict:
    """Label-wise merge of every reachable shard's registry snapshot,
    with each shard's series stamped ``shard="<index-or-address>"``."""
    live = [s for s in scrapes if s.ok and s.metrics]
    return merge_snapshots(
        [s.metrics for s in live],
        extra_labels=[{"shard": s.shard_label} for s in live],
    )


def _approx_equal(a: float, b: float) -> bool:
    return abs(float(a) - float(b)) < 1e-9


def _metric_series(snapshot: Dict, name: str) -> List[Dict]:
    """Every series of one metric in a snapshot (empty when absent)."""
    for metric in (snapshot or {}).get("metrics", ()):
        if metric.get("name") == name:
            return list(metric.get("series", ()))
    return []


#: Breaker state gauge values → names (mirrors
#: :data:`repro.fleet.breaker.STATE_CODES`).
_BREAKER_STATES = {0: "closed", 1: "half-open", 2: "open"}


def check_scrape(scrapes: Sequence[ShardScrape],
                 client_metrics: Optional[Dict] = None) -> List[str]:
    """Cross-subsystem consistency problems, one message per violation
    (empty list == healthy scrape).

    Checked per reachable shard:

    * service-side tier split sums to the stats RPC totals —
      ``repro_service_cache_hits_total{tier="memory"|"disk"}`` equals
      ``stats.service.memory_hits`` / ``disk_hits``;
    * cache-side tier split sums to the tier-blind lookup counter —
      ``repro_cache_hits_total{tier="memory"} + {tier="disk"}`` equals
      ``repro_cache_lookups_total{result="hit"}``;
    * the deadline-shed counter agrees with the stats RPC —
      ``repro_service_shed_total`` equals ``stats.service.shed``.

    With ``client_metrics`` (a client-side registry snapshot, e.g. a
    merged :meth:`~repro.fleet.client.FleetClient.metrics_snapshot`):

    * every ``repro_fleet_breaker_state`` sample must be a legal state
      code (0 closed / 1 half-open / 2 open);
    * resilience counters (retries, failovers, degraded, deadline)
      must be non-negative.
    """
    problems: List[str] = []
    for scrape in scrapes:
        where = f"shard {scrape.shard_label} ({scrape.address})"
        if not scrape.ok:
            problems.append(f"{where}: unreachable: {scrape.error}")
            continue
        metrics = scrape.metrics
        mem = sample_value(metrics, "repro_service_cache_hits_total",
                           {"tier": "memory"}, default=0.0)
        disk = sample_value(metrics, "repro_service_cache_hits_total",
                            {"tier": "disk"}, default=0.0)
        service = (scrape.stats or {}).get("service") or {}
        if service:
            want_mem = service.get("memory_hits", 0)
            want_disk = service.get("disk_hits", 0)
            if not (_approx_equal(mem, want_mem)
                    and _approx_equal(disk, want_disk)):
                problems.append(
                    f"{where}: metrics hit counters (memory={mem:g}, "
                    f"disk={disk:g}) disagree with the stats RPC "
                    f"(memory={want_mem}, disk={want_disk})"
                )
        if service:
            shed = sample_value(metrics, "repro_service_shed_total",
                                default=0.0)
            want_shed = service.get("shed", 0)
            if not _approx_equal(shed, want_shed):
                problems.append(
                    f"{where}: shed counter metric ({shed:g}) "
                    f"disagrees with the stats RPC ({want_shed})"
                )
        cache_mem = sample_value(metrics, "repro_cache_hits_total",
                                 {"tier": "memory"})
        cache_disk = sample_value(metrics, "repro_cache_hits_total",
                                  {"tier": "disk"})
        lookups_hit = sample_value(metrics, "repro_cache_lookups_total",
                                   {"result": "hit"})
        if lookups_hit is not None:
            total = (cache_mem or 0.0) + (cache_disk or 0.0)
            if not _approx_equal(total, lookups_hit):
                problems.append(
                    f"{where}: tier-split cache hits "
                    f"(memory={cache_mem}, disk={cache_disk}) do not "
                    f"sum to hit lookups ({lookups_hit:g})"
                )
    if client_metrics is not None:
        for series in _metric_series(client_metrics,
                                     "repro_fleet_breaker_state"):
            value = series.get("value")
            if value not in _BREAKER_STATES:
                problems.append(
                    f"client metrics: breaker state "
                    f"{series.get('labels')} has illegal code "
                    f"{value!r} (want 0/1/2)"
                )
        for name in ("repro_fleet_client_retries_total",
                     "repro_fleet_client_failovers_total",
                     "repro_fleet_client_degraded_total",
                     "repro_fleet_client_deadline_expired_total"):
            for series in _metric_series(client_metrics, name):
                if float(series.get("value", 0.0)) < 0:
                    problems.append(
                        f"client metrics: {name}{series.get('labels')} "
                        f"is negative ({series.get('value')})"
                    )
    return problems


def render_fleet_exposition(scrapes: Sequence[ShardScrape]) -> str:
    """Prometheus text exposition of the merged fleet snapshot."""
    return render_exposition(merged_snapshot(scrapes))


def _fmt_seconds(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value >= 1.0:
        return f"{value:.2f}s"
    return f"{value * 1e3:.1f}ms"


def _percentiles(scrape: ShardScrape) -> tuple:
    """(p50, p99) plan latency in seconds: prefer the stats RPC's
    retained samples, fall back to the latency histogram."""
    service = (scrape.stats or {}).get("service") or {}
    samples = service.get("latency_samples_s")
    if samples:
        ordered = sorted(float(s) for s in samples)

        def nearest(q: float) -> float:
            rank = max(0, min(len(ordered) - 1,
                              int(round(q / 100.0 * len(ordered))) - 1))
            return ordered[rank]

        return nearest(50), nearest(99)
    for metric in (scrape.metrics or {}).get("metrics", ()):
        if (metric.get("name") == "repro_service_latency_seconds"
                and metric.get("type") == "histogram"):
            return (histogram_quantile(metric, 0.50,
                                       {"stage": "total"}),
                    histogram_quantile(metric, 0.99,
                                       {"stage": "total"}))
    return None, None


def render_report(scrapes: Sequence[ShardScrape],
                  client_metrics: Optional[Dict] = None) -> str:
    """Human health summary: one block per shard plus a fleet roll-up;
    with ``client_metrics``, a resilience section (breaker states per
    shard address, retry/failover/degraded/deadline counters)."""
    lines: List[str] = []
    totals = {"submitted": 0, "completed": 0, "searches": 0,
              "memory_hits": 0, "disk_hits": 0, "restarts": 0,
              "shed": 0}
    up = 0
    for scrape in scrapes:
        head = f"shard {scrape.shard_label}  {scrape.address}"
        if not scrape.ok:
            lines.append(f"{head}  DOWN ({scrape.error})")
            continue
        up += 1
        ping = scrape.ping
        service = (scrape.stats or {}).get("service") or {}
        submitted = int(service.get("submitted", 0))
        completed = int(service.get("completed", 0))
        searches = int(service.get("searches", 0))
        memory_hits = int(service.get("memory_hits", 0))
        disk_hits = int(service.get("disk_hits", 0))
        restarts = int(ping.get("restarts") or 0)
        hits = memory_hits + disk_hits
        hit_rate = hits / completed if completed else 0.0
        p50, p99 = _percentiles(scrape)
        uptime_ticks = ping.get("uptime_ticks")
        uptime = (f"{uptime_ticks / 1000.0:.1f}s"
                  if isinstance(uptime_ticks, (int, float)) else "-")
        lines.append(
            f"{head}  UP pid={ping.get('pid')} uptime={uptime} "
            f"restarts={restarts}"
        )
        shed = int(service.get("shed", 0))
        lines.append(
            f"  queue depth {service.get('queue_depth', 0)} "
            f"(peak {service.get('max_queue_depth', 0)})  "
            f"submitted {submitted}  completed {completed}  "
            f"searches {searches}  shed {shed}"
        )
        lines.append(
            f"  hits {hits} (memory {memory_hits}, disk {disk_hits}, "
            f"rate {hit_rate:.0%})  latency p50 {_fmt_seconds(p50)} "
            f"p99 {_fmt_seconds(p99)}"
        )
        if ping.get("cache_dir"):
            lines.append(f"  cache dir {ping['cache_dir']}")
        totals["submitted"] += submitted
        totals["completed"] += completed
        totals["searches"] += searches
        totals["memory_hits"] += memory_hits
        totals["disk_hits"] += disk_hits
        totals["restarts"] += restarts
        totals["shed"] += shed
    fleet_hits = totals["memory_hits"] + totals["disk_hits"]
    fleet_rate = (fleet_hits / totals["completed"]
                  if totals["completed"] else 0.0)
    lines.append(
        f"fleet: {up}/{len(scrapes)} shards up  "
        f"completed {totals['completed']}  searches {totals['searches']}  "
        f"hits {fleet_hits} ({fleet_rate:.0%})  "
        f"restarts {totals['restarts']}  shed {totals['shed']}"
    )
    if client_metrics is not None:
        lines.append("clients:")
        states = _metric_series(client_metrics,
                                "repro_fleet_breaker_state")
        for series in states:
            address = series.get("labels", {}).get("address", "?")
            code = series.get("value")
            name = _BREAKER_STATES.get(code, f"illegal({code!r})")
            lines.append(f"  breaker {address}: {name}")
        if not states:
            lines.append("  no breaker state gauges in snapshot")

        def total(name: str) -> float:
            return sum(float(s.get("value", 0.0))
                       for s in _metric_series(client_metrics, name))

        lines.append(
            f"  retries "
            f"{total('repro_fleet_client_retries_total'):g}  "
            f"failovers "
            f"{total('repro_fleet_client_failovers_total'):g}  "
            f"degraded "
            f"{total('repro_fleet_client_degraded_total'):g}  "
            f"deadline-expired "
            f"{total('repro_fleet_client_deadline_expired_total'):g}"
        )
    return "\n".join(lines)
