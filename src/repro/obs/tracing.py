"""Cross-process request tracing over the PR 2 span schema.

Every plan request gets a 16-hex **trace id** minted by the client; the
RPC envelope carries ``{"trace": {"id", "span"}}`` so the shard that
serves the request tags its server-side spans (queue-wait, cache-lookup,
leader-search / replay, coalesce-wait) with the same id.  Each process
appends its spans to a :class:`RequestTracer` and writes one
``obs-<role>-<pid>.trace.json`` file in the PR 2 *native* trace format;
:func:`merge_obs_chrome` then joins any number of those files into a
single Chrome/Perfetto timeline — one Chrome pid per source process,
timestamps rebased to the earliest span, and a flow arrow per trace id
from the client's submit span to the owning shard's first span.

Obs spans are ``kind="comm"`` on rank 0: comm spans are the one kind the
schema lets overlap freely (concurrent requests do), and the Chrome
validator demands no extra args of them.  Timestamps are wall-clock
milliseconds (monotonic readings are rebased through the tracer's
birth instant) so spans from different processes share one clock.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.trace.events import KIND_COMM, Span, Trace, TraceMeta
from repro.trace.export import chrome_events

OBS_SOURCE = "obs"


def new_trace_id() -> str:
    """16 hex chars — unique per plan request, minted client-side."""
    return uuid.uuid4().hex[:16]


def new_span_id() -> str:
    return uuid.uuid4().hex[:8]


class RequestTracer:
    """Thread-safe span sink for one process (client or shard).

    Callers hand in ``time.monotonic()`` readings (the clock every
    ticket/timeout in the request path already uses); the tracer anchors
    them to the wall clock captured at construction so independently
    started processes land on one timeline.
    """

    def __init__(self, role: str, label: str = "",
                 pid: Optional[int] = None) -> None:
        self.role = role
        self.pid = os.getpid() if pid is None else pid
        self.label = label or f"obs-{role}-{self.pid}"
        self._t0_wall = time.time()
        self._t0_mono = time.monotonic()
        self._lock = threading.Lock()
        self._spans: List[Span] = []

    def wall_ms(self, monotonic_s: float) -> float:
        return (self._t0_wall + (monotonic_s - self._t0_mono)) * 1e3

    def record(self, name: str, start_mono_s: float, end_mono_s: float,
               trace_id: str, span_id: Optional[str] = None,
               parent: str = "", **attrs: object) -> str:
        """Record one finished interval; returns its span id."""
        span_id = span_id or new_span_id()
        span = Span(
            rank=0, kind=KIND_COMM, name=name,
            start_ms=self.wall_ms(start_mono_s),
            end_ms=self.wall_ms(max(start_mono_s, end_mono_s)),
            attrs={
                "trace_id": trace_id,
                "span_id": span_id,
                "parent_span": parent,
                "role": self.role,
                "pid": self.pid,
                **attrs,
            },
        )
        with self._lock:
            self._spans.append(span)
        return span_id

    @property
    def spans(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def build(self) -> Trace:
        meta = TraceMeta(label=self.label, source=OBS_SOURCE, num_ranks=1,
                         extra={"role": self.role, "pid": self.pid})
        return Trace(meta, self.spans)

    def save(self, path: str) -> str:
        """Write the native-format span file (``Trace.save``)."""
        return self.build().save(path)

    def default_filename(self) -> str:
        return f"obs-{self.role}-{self.pid}.trace.json"


# -- merging -----------------------------------------------------------------


def _as_trace(source: Union[str, Trace, RequestTracer]) -> Trace:
    if isinstance(source, RequestTracer):
        return source.build()
    if isinstance(source, Trace):
        return source
    return Trace.load(source)


def _process_identity(trace: Trace) -> Tuple[str, int]:
    extra = trace.meta.extra or {}
    return (str(extra.get("role", "?")), int(extra.get("pid", 0)))


def merge_obs_chrome(
    sources: Sequence[Union[str, Trace, RequestTracer]],
) -> Dict:
    """Join per-process obs traces into one Chrome-trace JSON object.

    Each source becomes one Chrome process (clients first, so the
    request origin reads top-down in the UI); all timestamps are rebased
    to the earliest span across every source.  For every trace id seen
    in more than one process, a flow pair links the origin span (the one
    with no parent, i.e. the client submit) to the earliest same-id span
    in each other process — the cross-process arrow the single-process
    exporters cannot draw.
    """
    traces = [_as_trace(source) for source in sources]
    traces.sort(key=lambda t: (_process_identity(t)[0] != "client",
                               _process_identity(t)))
    t0 = min((s.start_ms for t in traces for s in t.spans), default=0.0)

    events: List[Dict] = []
    flow_id = 0
    # (trace_id, process index) -> earliest span, plus per-id origin.
    earliest: Dict[Tuple[str, int], Span] = {}
    origin: Dict[str, Tuple[int, Span]] = {}
    shifted_traces: List[Trace] = []
    for pidx, trace in enumerate(traces):
        role, pid = _process_identity(trace)
        shifted = Trace(trace.meta, [
            replace(span, start_ms=span.start_ms - t0,
                    end_ms=span.end_ms - t0)
            for span in trace.spans
        ])
        shifted_traces.append(shifted)
        trace_events, flow_id = chrome_events(
            shifted, process_name=f"{role} (pid {pid})", flows=False,
            pid=pidx, flow_id_start=flow_id,
            thread_prefix="requests",
        )
        events.extend(trace_events)
        for span in shifted.spans:
            trace_id = str(span.attrs.get("trace_id", ""))
            if not trace_id:
                continue
            key = (trace_id, pidx)
            seen = earliest.get(key)
            if seen is None or span.start_ms < seen.start_ms:
                earliest[key] = span
            if not span.attrs.get("parent_span"):
                held = origin.get(trace_id)
                if held is None or span.start_ms < held[1].start_ms:
                    origin[trace_id] = (pidx, span)

    num_ranks = 1  # every obs trace is single-rank; comm tid is 1
    for trace_id, (src_pidx, src_span) in sorted(origin.items()):
        targets = sorted(
            (pidx, span) for (tid_, pidx), span in earliest.items()
            if tid_ == trace_id and pidx != src_pidx
        )
        for dst_pidx, dst_span in targets:
            flow_id += 1
            base = {"name": f"trace {trace_id}", "cat": "obs-flow",
                    "id": flow_id}
            events.append({**base, "ph": "s", "pid": src_pidx,
                           "tid": num_ranks + src_span.rank,
                           "ts": src_span.start_ms * 1e3})
            events.append({**base, "ph": "f", "bp": "e", "pid": dst_pidx,
                           "tid": num_ranks + dst_span.rank,
                           "ts": dst_span.start_ms * 1e3})
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def merge_trace_files(paths: Sequence[str],
                      output: Optional[str] = None) -> Dict:
    """Merge native obs trace files; optionally write the Chrome JSON."""
    payload = merge_obs_chrome(list(paths))
    if output:
        with open(output, "w") as f:
            json.dump(payload, f)
    return payload


def spans_for_trace(
    sources: Sequence[Union[str, Trace, RequestTracer]], trace_id: str,
) -> List[Span]:
    """Every span tagged with ``trace_id`` across ``sources``, sorted by
    start time — the test-side accessor for end-to-end assertions."""
    spans = [
        span
        for source in sources
        for span in _as_trace(source).spans
        if span.attrs.get("trace_id") == trace_id
    ]
    return sorted(spans, key=lambda s: s.start_ms)
