"""Evaluation-core performance benchmark (kernel vs legacy evaluators).

The measurement behind ``repro perf-bench`` and
``benchmarks/test_eval_core.py``: on a Fig. 11-style workload it times

* **rollouts/sec** — the searcher's inner loop: scoring random group
  orderings through the legacy object-graph evaluator
  (:meth:`~repro.core.searcher.ScheduleSearcher.evaluate_ordering`)
  versus the compiled kernel (:class:`~repro.core.evalcore.EvalCore`,
  memo disabled so the number is raw interleaver throughput), asserting
  score-for-score equality;
* **end-to-end search wall-clock** — two identically seeded MCTS
  searches, kernel vs ``--legacy-eval``, asserting the same best
  makespan at the same budget (the kernel must buy speed, never
  quality).

Both paths are timed back-to-back in alternating repeats and the best
(minimum) time of each is reported — the estimator least sensitive to
background load, which would otherwise bias whichever side it landed on.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

import numpy as np

from repro.cluster.topology import ParallelConfig, cluster_h100, cluster_h800
from repro.core.evalcore import EvalCore
from repro.core.graphbuilder import build_iteration_graph
from repro.core.memopt import generate_candidates
from repro.core.partitioner import ModalityPartitioner
from repro.core.planner import reference_microbatch
from repro.core.searcher import ScheduleSearcher
from repro.data.workload import t2v_workload, vlm_workload
from repro.models.lmm import build_combination
from repro.models.zoo import combination_by_name
from repro.sim.costmodel import CostModel


class EvalCoreMismatchError(RuntimeError):
    """The kernel and legacy evaluators disagreed — never acceptable."""


def _build_setup(model: str):
    combo = combination_by_name(model)
    arch = build_combination(combo)
    parallel = ParallelConfig(dp=1, tp=combo.tp, pp=combo.pp)
    nodes = max(1, parallel.world_size // 8)
    if model.endswith(("-8k", "-16k", "-3k", "-6k")):
        cluster = cluster_h100(nodes)
    else:
        cluster = cluster_h800(nodes)
    cost_model = CostModel()
    partitioner = ModalityPartitioner(arch, cluster, parallel, cost_model)
    plan = partitioner.plan(reference_microbatch(arch.kind))
    return arch, cluster, parallel, cost_model, partitioner, plan


def run_eval_core_bench(
    model: str = "VLM-M",
    microbatches: int = 12,
    budget: int = 120,
    rollouts: int = 60,
    repeats: int = 5,
    seed: int = 0,
    search_seed: Optional[int] = None,
) -> Dict:
    """Measure kernel-vs-legacy evaluator throughput and search time.

    Returns a JSON-serialisable report; raises
    :class:`EvalCoreMismatchError` if the two paths disagree on any
    rollout score, the final best makespan, or the winning per-rank
    order — speed must never change the answer.  (An explicit exception,
    not ``assert``, so the gate survives ``python -O``.)
    """
    arch, cluster, parallel, cost_model, partitioner, plan = _build_setup(model)
    if arch.kind == "t2v":
        stream = t2v_workload(microbatches, seed=seed)
    else:
        stream = vlm_workload(microbatches, seed=seed)
    batch = stream.next_batch()

    def build_graph():
        return build_iteration_graph(
            arch, plan, batch, cluster, parallel, cost_model,
            partitioner=partitioner,
        )

    # -- rollout throughput (the search inner loop) --------------------------
    graph = build_graph()
    generate_candidates(graph)
    graph.select_most_memory_efficient()
    searcher = ScheduleSearcher(cluster, parallel, cost_model,
                                budget_evaluations=budget, seed=seed,
                                enable_memopt=False)
    core = EvalCore(graph, cluster, parallel, cost_model, memoize=False)
    groups = list(graph.groups().keys())
    rng = np.random.default_rng(seed)
    orderings: List[list] = []
    for _ in range(rollouts):
        ordering = list(groups)
        rng.shuffle(ordering)
        orderings.append(ordering)

    legacy_times: List[float] = []
    kernel_times: List[float] = []
    legacy_scores: List[float] = []
    kernel_scores: List[float] = []
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        legacy_scores = [searcher.evaluate_ordering(graph, o)
                         for o in orderings]
        legacy_times.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        kernel_scores = [core.evaluate(o) for o in orderings]
        kernel_times.append(time.perf_counter() - t0)
    if kernel_scores != legacy_scores:
        raise EvalCoreMismatchError(
            "kernel and legacy evaluators disagree on rollout scores")
    legacy_s = min(legacy_times)
    kernel_s = min(kernel_times)

    # -- end-to-end search (identical seeds and budgets) ---------------------
    sseed = seed if search_seed is None else search_seed
    kernel_searcher = ScheduleSearcher(
        cluster, parallel, cost_model, budget_evaluations=budget,
        seed=sseed, enable_memopt=False)
    legacy_searcher = ScheduleSearcher(
        cluster, parallel, cost_model, budget_evaluations=budget,
        seed=sseed, enable_memopt=False, use_kernel=False)
    g_kernel, g_legacy = build_graph(), build_graph()
    t0 = time.perf_counter()
    kernel_result = kernel_searcher.search(g_kernel)
    search_kernel_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    legacy_result = legacy_searcher.search(g_legacy)
    search_legacy_s = time.perf_counter() - t0
    if kernel_result.total_ms != legacy_result.total_ms:
        raise EvalCoreMismatchError(
            "kernel search found a different best makespan at equal budget")
    if kernel_result.schedule.order != legacy_result.schedule.order:
        raise EvalCoreMismatchError(
            "kernel search produced a different winning order")

    return {
        "model": model,
        "microbatches": microbatches,
        "stages": len(graph.stages),
        "ranks": graph.num_ranks,
        "groups": len(groups),
        "rollouts": {
            "count": rollouts,
            "repeats": repeats,
            "legacy_s": legacy_s,
            "kernel_s": kernel_s,
            "legacy_per_s": rollouts / legacy_s,
            "kernel_per_s": rollouts / kernel_s,
            "speedup": legacy_s / kernel_s,
            "scores_match": True,
        },
        "search": {
            "budget": budget,
            "evaluations": kernel_result.evaluations,
            "legacy_s": search_legacy_s,
            "kernel_s": search_kernel_s,
            "speedup": search_legacy_s / max(search_kernel_s, 1e-12),
            "legacy_best_ms": legacy_result.total_ms,
            "kernel_best_ms": kernel_result.total_ms,
            "equal_quality": True,
            "memo_hits": kernel_result.memo_hits,
        },
    }


def describe_eval_core_bench(report: Dict) -> str:
    """Human-readable summary of :func:`run_eval_core_bench` output."""
    roll = report["rollouts"]
    search = report["search"]
    return (
        f"{report['model']} x{report['microbatches']}mb: "
        f"{report['stages']} stages / {report['groups']} groups on "
        f"{report['ranks']} ranks\n"
        f"rollouts: legacy {roll['legacy_per_s']:8.1f}/s   kernel "
        f"{roll['kernel_per_s']:8.1f}/s   speedup {roll['speedup']:.2f}x\n"
        f"search:   legacy {search['legacy_s']:8.2f}s   kernel "
        f"{search['kernel_s']:8.2f}s   speedup {search['speedup']:.2f}x "
        f"({search['evaluations']} evaluations, "
        f"{search['memo_hits']} memo hits)\n"
        f"best makespan: kernel {search['kernel_best_ms']:.3f} ms == "
        f"legacy {search['legacy_best_ms']:.3f} ms"
    )
