"""Module profiling utilities (the section 4 measurement procedure).

Exposes the sub-microbatch profiling the partitioner performs as a
public, inspectable API: per-size latencies, per-instance efficiency and
the chosen knee point, so users can see *why* a particular ``B_i`` was
selected and how the efficiency threshold moves it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cluster.topology import ClusterSpec, ParallelConfig
from repro.data.batching import Microbatch, module_is_splittable, module_workload
from repro.models.lmm import ModuleBinding
from repro.sim.costmodel import CostModel


@dataclass(frozen=True)
class ProfilePoint:
    """One profiled sub-microbatch size."""

    size: int
    latency_ms: float
    per_instance_ms: float
    efficiency: float  # relative to the best per-instance latency


@dataclass(frozen=True)
class ModuleProfile:
    """The full profile of one modality module.

    Attributes:
        module: Module name.
        points: Per-size measurements, ascending size.
        chosen_size: The smallest size meeting the efficiency threshold
            (the paper's 95% rule), or ``None`` for unsplittable modules.
        threshold: The efficiency threshold applied.
    """

    module: str
    points: List[ProfilePoint]
    chosen_size: Optional[int]
    threshold: float

    def table(self) -> str:
        lines = [f"{self.module}: sub-microbatch profile "
                 f"(threshold {self.threshold:.0%})"]
        for p in self.points:
            marker = "  <- chosen" if p.size == self.chosen_size else ""
            lines.append(
                f"  B={p.size:3d}  {p.latency_ms:8.2f} ms  "
                f"{p.per_instance_ms:7.3f} ms/instance  "
                f"eff {p.efficiency:.2%}{marker}"
            )
        return "\n".join(lines)


def profile_module(
    binding: ModuleBinding,
    reference: Microbatch,
    cluster: ClusterSpec,
    parallel: ParallelConfig,
    cost_model: Optional[CostModel] = None,
    efficiency_threshold: float = 0.95,
    max_size: Optional[int] = None,
) -> ModuleProfile:
    """Profile a module across sub-microbatch sizes (section 4).

    Args:
        binding: The module to profile, within its LMM context.
        reference: A representative (near-capacity) microbatch.
        cluster / parallel: Hardware and layout (TP affects latencies).
        cost_model: Stand-in for on-device measurement.
        efficiency_threshold: Keep at least this fraction of peak
            per-instance efficiency (paper: 0.95).
        max_size: Cap on the scanned size (defaults to the reference
            instance count).

    Raises:
        ValueError: if the reference holds no instances for the module.
    """
    cost_model = cost_model or CostModel()
    if not module_is_splittable(binding):
        instances, seq, ctx = module_workload(binding, reference)
        cost = cost_model.stage_cost(
            cluster.gpu, binding.spec, binding.spec.num_layers,
            max(instances, 1), max(seq, 1), tp=parallel.tp, context=ctx,
        )
        point = ProfilePoint(size=max(instances, 1),
                             latency_ms=cost.forward_ms,
                             per_instance_ms=cost.forward_ms,
                             efficiency=1.0)
        return ModuleProfile(module=binding.name, points=[point],
                             chosen_size=None,
                             threshold=efficiency_threshold)

    instances, seq, ctx = module_workload(binding, reference)
    if instances < 1:
        raise ValueError(f"reference has no instances for {binding.name}")
    limit = min(instances, max_size) if max_size else instances

    raw: List[ProfilePoint] = []
    for size in range(1, limit + 1):
        cost = cost_model.stage_cost(
            cluster.gpu, binding.spec, binding.spec.num_layers, size, seq,
            tp=parallel.tp, context=ctx,
        )
        raw.append(ProfilePoint(size=size, latency_ms=cost.forward_ms,
                                per_instance_ms=cost.forward_ms / size,
                                efficiency=0.0))
    best = min(p.per_instance_ms for p in raw)
    points = [
        ProfilePoint(size=p.size, latency_ms=p.latency_ms,
                     per_instance_ms=p.per_instance_ms,
                     efficiency=best / p.per_instance_ms)
        for p in raw
    ]
    chosen = next(
        (p.size for p in points if p.efficiency >= efficiency_threshold),
        limit,
    )
    return ModuleProfile(module=binding.name, points=points,
                         chosen_size=chosen,
                         threshold=efficiency_threshold)
