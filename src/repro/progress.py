"""Round-robin progress driving for discrete-event executors.

Both the pipeline simulator (:mod:`repro.sim.pipeline`) and the runtime
engine (:mod:`repro.runtime.engine`) advance a set of per-rank work lists
by sweeping the ranks round-robin: each sweep lets every rank run as far
as it can, and a full sweep that completes nothing while work remains
means the ranks are deadlocked (an order edge or message wait forms a
cycle).  This module hosts that shared control loop so the two executors
cannot drift apart.
"""

from __future__ import annotations

from typing import Callable, List, Tuple, Type


def drive_round_robin(
    num_ranks: int,
    total_items: int,
    advance_rank: Callable[[int], int],
    describe_stuck: Callable[[], str],
    error_cls: Type[Exception],
) -> None:
    """Sweep ranks round-robin until every work item completes.

    Args:
        num_ranks: Number of per-rank work lists.
        total_items: Items that must complete overall.
        advance_rank: Runs one rank as far as it can go *right now* and
            returns how many items it completed this sweep.
        describe_stuck: Builds the deadlock error message; only called
            when a full sweep makes no progress with items remaining.
        error_cls: Exception type raised on deadlock.

    Raises:
        error_cls: when no rank can progress but items remain.
    """
    remaining = total_items
    while remaining > 0:
        progressed = 0
        for rank in range(num_ranks):
            progressed += advance_rank(rank)
        if progressed == 0:
            raise error_cls(describe_stuck())
        remaining -= progressed


def format_stuck_ranks(waiting: List[Tuple[int, object]], what: str,
                       limit: int = 8) -> str:
    """Render ``(rank, item)`` heads of stuck queues for error messages."""
    shown = ", ".join(f"rank {rank} -> {what} {item}"
                      for rank, item in waiting[:limit])
    suffix = ", ..." if len(waiting) > limit else ""
    return shown + suffix
