"""Execution-plan deployment substrate (section 6.3 of the paper).

Simulated pipeline schedules compile into physical execution plans:
per-rank action sequences (``fw_stage`` / ``bw_stage`` / ``isend`` /
``irecv`` / ``wait_isend`` / ``wait_irecv``), following DynaPipe's action
vocabulary.  A deterministic discrete-event engine executes the plans
with explicit P2P channels — validating deadlock freedom and that the
deployed plan reproduces the planner's predicted timeline.
"""

from repro.runtime.actions import Action, ActionKind, ExecutionPlan
from repro.runtime.compiler import compile_schedule
from repro.runtime.deployment import DeploymentController, PipelineWorker
from repro.runtime.engine import EngineResult, execute_plan

__all__ = [
    "Action",
    "ActionKind",
    "ExecutionPlan",
    "compile_schedule",
    "execute_plan",
    "EngineResult",
    "DeploymentController",
    "PipelineWorker",
]
