"""Action vocabulary of compiled execution plans.

Pipeline stages translate to ``fw_stage`` / ``bw_stage`` actions carrying
their memory-optimization strategy; point-to-point communication uses
asynchronous ``isend`` / ``irecv`` kernels with explicit ``wait_*``
synchronisation — the exact action set the paper adopts from DynaPipe.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple


class ActionKind(enum.Enum):
    """One of the six runtime action types."""

    FW_STAGE = "fw_stage"
    BW_STAGE = "bw_stage"
    ISEND = "isend"
    IRECV = "irecv"
    WAIT_ISEND = "wait_isend"
    WAIT_IRECV = "wait_irecv"


@dataclass(frozen=True)
class Action:
    """A single runtime action on one pipeline rank.

    Attributes:
        kind: Action type.
        stage_uid: Stage this action computes or transfers data for.
        peer: Peer pipeline rank (communication actions only).
        tag: Message tag matching isend/irecv pairs; by convention the
            (producer stage, consumer stage) uid pair.
        duration_ms: Compute latency (stage actions only).
        transfer_ms: Wire time (isend actions only).
        strategy: Memory-optimization strategy label (stage actions).
    """

    kind: ActionKind
    stage_uid: int = -1
    peer: int = -1
    tag: Tuple[int, int] = (-1, -1)
    duration_ms: float = 0.0
    transfer_ms: float = 0.0
    strategy: str = ""

    def is_compute(self) -> bool:
        return self.kind in (ActionKind.FW_STAGE, ActionKind.BW_STAGE)


@dataclass
class ExecutionPlan:
    """Per-rank action sequences for one training iteration."""

    actions_per_rank: List[List[Action]] = field(default_factory=list)

    @property
    def num_ranks(self) -> int:
        return len(self.actions_per_rank)

    def num_actions(self) -> int:
        return sum(len(a) for a in self.actions_per_rank)

    def compute_actions(self, rank: int) -> List[Action]:
        return [a for a in self.actions_per_rank[rank] if a.is_compute()]

    def describe(self, rank: Optional[int] = None) -> str:
        """Human-readable dump (for debugging and docs examples)."""
        lines = []
        ranks = range(self.num_ranks) if rank is None else [rank]
        for r in ranks:
            ops = " ".join(
                f"{a.kind.value}[{a.stage_uid}]" if a.is_compute()
                else f"{a.kind.value}({a.tag[0]}->{a.tag[1]})"
                for a in self.actions_per_rank[r]
            )
            lines.append(f"rank{r}: {ops}")
        return "\n".join(lines)
