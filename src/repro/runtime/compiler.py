"""Compile a pipeline schedule into a physical execution plan.

For every stage, the compiler inserts ``irecv``/``wait_irecv`` for each
cross-rank input, the compute action itself, and an ``isend`` per
cross-rank consumer immediately after the producing stage (asynchronous,
overlapped with subsequent compute).  Consecutive P2P operations toward
the same peer could be batched by the runtime; the engine models them
individually, which is conservative.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.cluster.topology import ClusterSpec, ParallelConfig
from repro.core.stages import IterationGraph
from repro.runtime.actions import Action, ActionKind, ExecutionPlan
from repro.sim.costmodel import CostModel


def compile_schedule(
    graph: IterationGraph,
    order: List[List[int]],
    cluster: ClusterSpec,
    parallel: ParallelConfig,
    cost_model: Optional[CostModel] = None,
) -> ExecutionPlan:
    """Translate (graph, per-rank order) into per-rank action lists."""
    cost_model = cost_model or CostModel()
    stages = graph.stages

    def transfer_ms(src: int, dst: int, nbytes: float) -> float:
        if src == dst or nbytes <= 0:
            return 0.0
        bandwidth = cluster.p2p_bandwidth(parallel, src, dst)
        return cost_model.p2p_latency_ms(nbytes, bandwidth)

    # Index: for each producer stage, its cross-rank consumers.
    cross_consumers: Dict[int, List[int]] = {}
    for stage in stages:
        for dep in stage.deps:
            if stages[dep].rank != stage.rank:
                cross_consumers.setdefault(dep, []).append(stage.uid)

    plan = ExecutionPlan(actions_per_rank=[[] for _ in range(graph.num_ranks)])
    for rank, uids in enumerate(order):
        actions = plan.actions_per_rank[rank]
        for uid in uids:
            stage = stages[uid]
            # Receive cross-rank inputs.
            for dep in stage.deps:
                dep_stage = stages[dep]
                if dep_stage.rank == rank:
                    continue
                tag = (dep, uid)
                actions.append(
                    Action(kind=ActionKind.IRECV, stage_uid=uid,
                           peer=dep_stage.rank, tag=tag)
                )
                actions.append(
                    Action(kind=ActionKind.WAIT_IRECV, stage_uid=uid,
                           peer=dep_stage.rank, tag=tag)
                )
            kind = ActionKind.FW_STAGE if stage.is_forward else ActionKind.BW_STAGE
            pair = graph.pairs[stage.pair_id]
            actions.append(
                Action(
                    kind=kind,
                    stage_uid=uid,
                    duration_ms=graph.latency_ms(stage),
                    strategy=pair.strategy.label,
                )
            )
            # Send to cross-rank consumers (asynchronously).
            for consumer_uid in cross_consumers.get(uid, ()):
                consumer = stages[consumer_uid]
                tag = (uid, consumer_uid)
                actions.append(
                    Action(
                        kind=ActionKind.ISEND,
                        stage_uid=uid,
                        peer=consumer.rank,
                        tag=tag,
                        transfer_ms=transfer_ms(
                            rank, consumer.rank, consumer.p2p_bytes
                        ),
                    )
                )
        # Drain all outstanding sends at iteration end.
        sent_tags: Set[Tuple[int, int]] = {
            a.tag for a in actions if a.kind is ActionKind.ISEND
        }
        for tag in sorted(sent_tags):
            actions.append(Action(kind=ActionKind.WAIT_ISEND, tag=tag))
    return plan


def reprice_plan(
    plan: ExecutionPlan,
    graph: IterationGraph,
    device,
    specs: Dict,
    cost_model: CostModel,
    tp: int = 1,
    jitter: Optional[Callable[[int, float], float]] = None,
) -> ExecutionPlan:
    """Recompute the plan's compute durations under another cost model.

    The online-recalibration loop "executes" planned schedules on the
    hidden-truth hardware: the *structure* of the compiled plan (action
    order, P2P matching) is the planner's, but each stage's duration is
    re-derived from ``cost_model`` — typically a
    :class:`~repro.sim.reference.ReferenceCostModel` — so the engine's
    timeline diverges from the planner's prediction exactly as a real
    cluster's would.  ``jitter`` adds per-stage measurement noise
    (``(uid, base_ms) -> ms``).  The selected memory-strategy overhead is
    kept at the planner's value (it is what the recorded ``extra_ms``
    attribution subtracts back out), and transfer latencies are left
    untouched.  Stages whose pairs carry no workload attribution
    (``instances``/``seq`` unset, e.g. hand-built graphs) keep their
    compiled duration.
    """
    repriced = ExecutionPlan(actions_per_rank=[])
    for actions in plan.actions_per_rank:
        out: List[Action] = []
        for action in actions:
            if not action.is_compute():
                out.append(action)
                continue
            stage = graph.stages[action.stage_uid]
            pair = graph.pairs[stage.pair_id]
            spec = specs.get(pair.module)
            if spec is None or pair.instances <= 0 or pair.seq <= 0:
                out.append(action)
                continue
            cost = cost_model.stage_cost(
                device, spec, pair.num_layers, pair.instances, pair.seq,
                tp=tp, context=pair.context,
            )
            if stage.is_forward:
                base = cost.forward_ms + pair.strategy.fw_extra_ms
            else:
                base = cost.backward_ms + pair.strategy.bw_extra_ms
            duration = base * stage.latency_share
            if jitter is not None:
                duration = jitter(stage.uid, duration)
            out.append(replace(action, duration_ms=duration))
        repriced.actions_per_rank.append(out)
    return repriced
