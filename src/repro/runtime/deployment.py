"""Planner-to-worker plan dispatch (section 6.3's runtime modification).

"Each pipeline worker receives an action list via RPC from the central
planner and executes it sequentially."  This module provides that
dispatch layer in-process: a :class:`DeploymentController` registers one
:class:`PipelineWorker` per rank, versions each compiled plan, delivers
per-rank action lists, runs them through the shared discrete-event
engine, and collects acknowledgements — enforcing that all ranks execute
the same plan version (dynamic redeployment must be atomic across the
pipeline group).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.runtime.actions import Action, ExecutionPlan
from repro.runtime.engine import EngineResult, execute_plan


class DeploymentError(RuntimeError):
    """Raised on version mismatches or incomplete worker groups."""


@dataclass
class PipelineWorker:
    """One pipeline rank's runtime endpoint.

    Workers buffer the action list they were sent and acknowledge with
    the plan version — mimicking the RPC handshake without sockets.
    """

    rank: int
    current_version: int = -1
    actions: List[Action] = field(default_factory=list)
    executed_versions: List[int] = field(default_factory=list)

    def receive(self, version: int, actions: List[Action]) -> int:
        """Accept a plan delivery; returns the acknowledged version."""
        if version <= self.current_version:
            raise DeploymentError(
                f"rank {self.rank}: stale plan version {version} "
                f"(current {self.current_version})"
            )
        self.current_version = version
        self.actions = list(actions)
        return version

    def mark_executed(self) -> None:
        self.executed_versions.append(self.current_version)


@dataclass
class DeploymentRecord:
    """Outcome of one dispatched iteration."""

    version: int
    engine: EngineResult
    acks: Dict[int, int]


class DeploymentController:
    """The central planner's dispatch endpoint.

    Args:
        num_ranks: Pipeline group size; one worker per rank is created.
    """

    def __init__(self, num_ranks: int) -> None:
        if num_ranks < 1:
            raise ValueError("num_ranks must be >= 1")
        self.workers = [PipelineWorker(rank=r) for r in range(num_ranks)]
        self._version = 0
        self.history: List[DeploymentRecord] = []

    @property
    def num_ranks(self) -> int:
        return len(self.workers)

    def dispatch(self, plan: ExecutionPlan) -> DeploymentRecord:
        """Deliver a compiled plan to every worker and execute it.

        The delivery is atomic: every rank must acknowledge the same
        version before execution begins.

        Raises:
            DeploymentError: if the plan's rank count mismatches the
                worker group, or any acknowledgement disagrees.
        """
        if plan.num_ranks != self.num_ranks:
            raise DeploymentError(
                f"plan spans {plan.num_ranks} ranks, group has "
                f"{self.num_ranks}"
            )
        self._version += 1
        version = self._version
        acks: Dict[int, int] = {}
        for worker in self.workers:
            acks[worker.rank] = worker.receive(
                version, plan.actions_per_rank[worker.rank]
            )
        if any(v != version for v in acks.values()):
            raise DeploymentError(f"inconsistent acks: {acks}")

        engine = execute_plan(plan)
        for worker in self.workers:
            worker.mark_executed()
        record = DeploymentRecord(version=version, engine=engine, acks=acks)
        self.history.append(record)
        return record

    def versions_executed(self) -> List[List[int]]:
        """Per-rank executed plan versions (all ranks must agree)."""
        return [list(w.executed_versions) for w in self.workers]
