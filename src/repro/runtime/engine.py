"""Deterministic discrete-event execution of compiled plans.

Each pipeline rank executes its action list sequentially; ``isend``
posts a message on an explicit channel (arriving ``transfer_ms`` after
the post), ``wait_irecv`` blocks until the matching message arrives.  The
engine advances whichever rank can make progress, detecting deadlock when
none can.  Its finish time must agree with the planner's simulated
timeline — the key deployment-correctness invariant, exercised by the
integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.progress import drive_round_robin, format_stuck_ranks
from repro.runtime.actions import Action, ActionKind, ExecutionPlan
from repro.trace.events import TraceCollector


class PlanDeadlockError(RuntimeError):
    """No rank can make progress: mismatched sends/receives."""


@dataclass
class EngineResult:
    """Outcome of executing an :class:`ExecutionPlan`.

    Attributes:
        total_ms: Iteration makespan across ranks.
        finish_ms_per_rank: Per-rank completion time.
        stage_start_ms / stage_end_ms: Compute-action timestamps by
            stage uid.
        messages: Count of P2P messages delivered.
    """

    total_ms: float
    finish_ms_per_rank: List[float]
    stage_start_ms: Dict[int, float] = field(default_factory=dict)
    stage_end_ms: Dict[int, float] = field(default_factory=dict)
    messages: int = 0


def execute_plan(
    plan: ExecutionPlan,
    collector: Optional[TraceCollector] = None,
) -> EngineResult:
    """Run the plan to completion.

    Args:
        plan: The compiled per-rank action lists.
        collector: Optional :class:`~repro.trace.events.TraceCollector`
            the executed timeline is emitted into — compute spans keyed
            by stage uid plus one comm span per delivered message.
            Engine spans carry uid-level attribution only; enrich the
            built trace with the source graph
            (:meth:`repro.trace.events.Trace.enrich`) for microbatch /
            module / dependency metadata.

    Raises:
        PlanDeadlockError: if the ranks block forever (e.g. a
            ``wait_irecv`` whose ``isend`` never happens).
    """
    num_ranks = plan.num_ranks
    clocks = [0.0] * num_ranks
    pointers = [0] * num_ranks
    # Channel: tag -> arrival time at the receiver.
    arrivals: Dict[Tuple[int, int], float] = {}
    posted_sends: Dict[Tuple[int, int], float] = {}
    irecv_posted: set = set()
    stage_start: Dict[int, float] = {}
    stage_end: Dict[int, float] = {}
    messages = 0

    def advance_rank(rank: int) -> int:
        nonlocal messages
        completed = 0
        actions = plan.actions_per_rank[rank]
        while pointers[rank] < len(actions):
            action = actions[pointers[rank]]
            if action.kind is ActionKind.IRECV:
                irecv_posted.add(action.tag)
            elif action.kind is ActionKind.WAIT_IRECV:
                if action.tag not in arrivals:
                    break  # blocked until the matching isend posts
                clocks[rank] = max(clocks[rank], arrivals[action.tag])
            elif action.kind is ActionKind.ISEND:
                post = clocks[rank]
                arrivals[action.tag] = post + action.transfer_ms
                posted_sends[action.tag] = post
                messages += 1
            elif action.kind is ActionKind.WAIT_ISEND:
                if action.tag not in posted_sends:
                    raise PlanDeadlockError(
                        f"rank {rank} waits on unposted send {action.tag}"
                    )
                # Async sends complete once delivered.
                clocks[rank] = max(clocks[rank], arrivals[action.tag])
            else:  # compute
                start = clocks[rank]
                clocks[rank] = start + action.duration_ms
                stage_start[action.stage_uid] = start
                stage_end[action.stage_uid] = clocks[rank]
            pointers[rank] += 1
            completed += 1
        return completed

    def describe_stuck() -> str:
        waiting = [
            (rank, plan.actions_per_rank[rank][pointers[rank]].tag)
            for rank in range(num_ranks)
            if pointers[rank] < len(plan.actions_per_rank[rank])
        ]
        return ("all ranks blocked; waiting on "
                + format_stuck_ranks(waiting, "tag", limit=6))

    drive_round_robin(num_ranks, plan.num_actions(), advance_rank,
                      describe_stuck, PlanDeadlockError)

    if collector is not None:
        if collector.meta.num_ranks == 0:
            collector.meta.num_ranks = num_ranks
        collector.meta.total_ms = max(clocks) if clocks else 0.0
        for rank, actions in enumerate(plan.actions_per_rank):
            for action in actions:
                if action.is_compute():
                    direction = (
                        "fw" if action.kind is ActionKind.FW_STAGE else "bw"
                    )
                    collector.record_compute(
                        rank=rank,
                        uid=action.stage_uid,
                        start_ms=stage_start[action.stage_uid],
                        end_ms=stage_end[action.stage_uid],
                        direction=direction,
                        strategy=action.strategy,
                    )
                elif (action.kind is ActionKind.ISEND
                      and action.transfer_ms > 0):
                    collector.record_comm(
                        src_uid=action.tag[0],
                        dst_uid=action.tag[1],
                        src_rank=rank,
                        dst_rank=action.peer,
                        start_ms=posted_sends[action.tag],
                        end_ms=arrivals[action.tag],
                    )

    return EngineResult(
        total_ms=max(clocks) if clocks else 0.0,
        finish_ms_per_rank=clocks,
        stage_start_ms=stage_start,
        stage_end_ms=stage_end,
        messages=messages,
    )
