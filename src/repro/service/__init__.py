"""Planning service: the per-process planner as shared infrastructure.

* :mod:`repro.service.service` — :class:`PlanService`: worker pool,
  bounded priority queue, in-flight request coalescing on graph
  signatures, background warm search, online recalibration (with a
  held-out validation window gating refits).
* :mod:`repro.service.requests` — tickets, pending entries, admission
  errors, wire errors, and the remote-request lifecycle.
* :mod:`repro.service.stats` — :class:`ServiceStats` telemetry (queue
  depth, coalesce rate, latency percentiles) and :class:`RemoteStats`
  (per-connection wire counters).
* :mod:`repro.service.recal` — per-job recalibration windows + policy.
* :mod:`repro.service.replica` — DP-replica clients and multi-job
  drivers (including the closed plan→execute→observe loop).
* :mod:`repro.service.rpc` — :class:`PlanServiceServer`: the service
  behind a length-prefixed JSON-RPC socket (TCP or Unix).
* :mod:`repro.service.client` — :class:`RemotePlanClient` /
  :class:`PlanServiceClient`: cross-process clients that re-materialize
  canonical plans onto locally built graphs.
"""

from repro.service.client import (
    PlanServiceClient,
    RemotePlanClient,
    ServiceConnection,
    drive_remote_replicas,
    submit_and_replay,
)
from repro.service.recal import (
    JobRecalibrator,
    RecalibrationEvent,
    RecalibrationPolicy,
)
from repro.service.replica import (
    DriveReport,
    ReplicaClient,
    ReplicaRecord,
    drive_replicas,
    observed_execution,
    run_clients,
    run_recalibrating_replica,
)
from repro.service.requests import (
    OUTCOME_COALESCED,
    OUTCOME_HIT,
    OUTCOME_SEARCH,
    DeadlineExceededError,
    PlanTicket,
    ProtocolError,
    RemotePlanError,
    RemoteRequest,
    ServiceClosedError,
    ServiceOverloadError,
    SignatureMismatchError,
)
from repro.service.retry import (
    TRANSPORT_ERRORS,
    RetryPolicy,
    RetrySession,
    retryable,
)
from repro.service.rpc import PlanServiceServer
from repro.service.service import PREWARM_PRIORITY, PlanService, RegisteredJob
from repro.service.stats import ConnectionStats, RemoteStats, ServiceStats

__all__ = [
    "PlanService",
    "PlanServiceServer",
    "PlanServiceClient",
    "RemotePlanClient",
    "ServiceConnection",
    "submit_and_replay",
    "RegisteredJob",
    "PlanTicket",
    "ServiceStats",
    "RemoteStats",
    "ConnectionStats",
    "ServiceOverloadError",
    "ServiceClosedError",
    "ProtocolError",
    "RemotePlanError",
    "RemoteRequest",
    "SignatureMismatchError",
    "DeadlineExceededError",
    "RetryPolicy",
    "RetrySession",
    "TRANSPORT_ERRORS",
    "retryable",
    "RecalibrationPolicy",
    "RecalibrationEvent",
    "JobRecalibrator",
    "ReplicaClient",
    "ReplicaRecord",
    "DriveReport",
    "drive_replicas",
    "drive_remote_replicas",
    "run_clients",
    "observed_execution",
    "run_recalibrating_replica",
    "OUTCOME_SEARCH",
    "OUTCOME_HIT",
    "OUTCOME_COALESCED",
    "PREWARM_PRIORITY",
]
