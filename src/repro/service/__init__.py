"""Planning service: the per-process planner as shared infrastructure.

* :mod:`repro.service.service` — :class:`PlanService`: worker pool,
  bounded priority queue, in-flight request coalescing on graph
  signatures, background warm search, online recalibration.
* :mod:`repro.service.requests` — tickets, pending entries, admission
  errors.
* :mod:`repro.service.stats` — :class:`ServiceStats` telemetry (queue
  depth, coalesce rate, latency percentiles).
* :mod:`repro.service.recal` — per-job recalibration windows + policy.
* :mod:`repro.service.replica` — DP-replica clients and multi-job
  drivers (including the closed plan→execute→observe loop).
"""

from repro.service.recal import (
    JobRecalibrator,
    RecalibrationEvent,
    RecalibrationPolicy,
)
from repro.service.replica import (
    DriveReport,
    ReplicaClient,
    ReplicaRecord,
    drive_replicas,
    observed_execution,
    run_recalibrating_replica,
)
from repro.service.requests import (
    OUTCOME_COALESCED,
    OUTCOME_HIT,
    OUTCOME_SEARCH,
    PlanTicket,
    ServiceClosedError,
    ServiceOverloadError,
)
from repro.service.service import PREWARM_PRIORITY, PlanService, RegisteredJob
from repro.service.stats import ServiceStats

__all__ = [
    "PlanService",
    "RegisteredJob",
    "PlanTicket",
    "ServiceStats",
    "ServiceOverloadError",
    "ServiceClosedError",
    "RecalibrationPolicy",
    "RecalibrationEvent",
    "JobRecalibrator",
    "ReplicaClient",
    "ReplicaRecord",
    "DriveReport",
    "drive_replicas",
    "observed_execution",
    "run_recalibrating_replica",
    "OUTCOME_SEARCH",
    "OUTCOME_HIT",
    "OUTCOME_COALESCED",
    "PREWARM_PRIORITY",
]
