"""Remote planning clients: the wire twin of :mod:`repro.service.replica`.

A training process that does not host the :class:`PlanService` connects
to one over a TCP or Unix socket (:class:`PlanServiceClient`, the raw
RPC connection) and drives it through :class:`RemotePlanClient`, which
mirrors :class:`~repro.service.replica.ReplicaClient`'s API exactly —
``run()`` over a batch stream, ``records`` / ``errors`` accounting — so
:func:`~repro.service.replica.drive_replicas`-style drivers and the
benchmarks run unmodified against either transport.

The client process owns a *local* :class:`~repro.core.planner.
OnlinePlanner` mirror (same model, cluster, layout, cost model and
searcher configuration as the server's registered job — the planning
*context*).  Per iteration it builds + fingerprints its own graph
(``planner.prepare``), ships only the batch *metadata*, and
re-materializes the server's canonical plan by replaying it onto the
local graph — one pipeline simulation, no search, makespans identical
to in-process serving.  A digest mismatch between the local signature
and the server's means the two processes disagree about the planning
context and raises :class:`~repro.service.requests.
SignatureMismatchError` rather than silently replaying a wrong plan.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Dict, List, Optional, Sequence

from repro.core.plancache import plan_from_dict, signature_from_dict
from repro.core.planner import OnlinePlanner
from repro.core.signature import SIGNATURE_VERSION
from repro.data.batching import GlobalBatch
from repro.service.replica import DriveReport, ReplicaRecord, run_clients
from repro.service.requests import (
    DeadlineExceededError,
    ProtocolError,
    RemotePlanError,
    ServiceClosedError,
    ServiceOverloadError,
    SignatureMismatchError,
)
from repro.service.rpc import (
    DEFAULT_MAX_FRAME_BYTES,
    ERROR_CLOSED,
    ERROR_DEADLINE,
    ERROR_OVERLOAD,
    ERROR_PROTOCOL,
    batch_to_dict,
    check_envelope,
    cost_model_from_dict,
    parse_address,
    recv_frame,
    request_envelope,
    send_frame,
)
from repro.trace.events import Trace


def connect(address, timeout_s: float = 30.0) -> socket.socket:
    """Open a socket to ``address`` (``host:port``, ``tcp://``,
    ``uds://`` or a bare Unix-socket path).

    The timeout stays armed on the returned socket: every read is
    bounded, so a server that silently stops responding (blackholed
    network, stopped process) surfaces as ``socket.timeout`` instead of
    hanging the caller forever.
    """
    kind, target = parse_address(address)
    if kind == "uds":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    else:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.settimeout(timeout_s)
    sock.connect(target)
    return sock


def _raise_wire_error(error: Dict) -> None:
    kind = error.get("kind")
    message = error.get("message", "remote error")
    if kind == ERROR_OVERLOAD:
        raise ServiceOverloadError(message)
    if kind == ERROR_CLOSED:
        raise ServiceClosedError(message)
    if kind == ERROR_PROTOCOL:
        raise ProtocolError(message)
    if kind == ERROR_DEADLINE:
        # Checked before the RemotePlanError fallthrough on purpose:
        # the server shed the work because the budget is spent, and the
        # caller must see the typed (non-retryable) outcome.
        raise DeadlineExceededError(message)
    raise RemotePlanError(message)


class PlanServiceClient:
    """One RPC connection to a :class:`~repro.service.rpc.
    PlanServiceServer` (thread-safe; one request in flight at a time
    per connection — open one client per concurrent replica)."""

    def __init__(self, address, timeout_s: float = 30.0,
                 max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> None:
        self.address = address
        self.timeout_s = timeout_s
        self.max_frame_bytes = max_frame_bytes
        self._sock = connect(address, timeout_s)
        self._lock = threading.Lock()
        self._next_id = 0
        self._closed = False

    def __enter__(self) -> "PlanServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        # Deliberately lock-free: a reader blocked in call() holds the
        # lock, and closing the socket out from under it is exactly how
        # that reader gets unblocked (its recv raises).  Idempotent:
        # the error paths inside call() close the connection and the
        # owner (ServiceConnection, RemotePlanClient, a with-block)
        # closes it again on teardown — the raw socket must only be
        # released once, or the fd could already belong to someone else.
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.close()
        except OSError:
            pass

    def call(self, method: str, params: Optional[Dict] = None,
             trace: Optional[Dict] = None,
             deadline_s: Optional[float] = None) -> Dict:
        """One request/response round trip; raises the mapped error.

        ``trace`` (``{"id", "span"}``) rides the envelope as transport
        metadata so the server can tag its spans with the request's
        distributed trace id (see :mod:`repro.obs.tracing`).

        ``deadline_s`` is an *absolute local monotonic* deadline.  The
        remaining budget at send time rides the envelope (the server
        re-anchors it on its own clock and sheds expired work), bounds
        the socket read, and — when it runs out before a response lands
        — raises :class:`DeadlineExceededError` instead of a retryable
        :class:`TimeoutError`.

        Reads are bounded by the connection's ``timeout_s``; a server
        that goes silent raises :class:`TimeoutError` and the
        connection is closed (the stream position is unknowable).
        """
        with self._lock:
            if self._closed:
                raise ServiceClosedError("client connection is closed")
            budget = None
            if deadline_s is not None:
                budget = deadline_s - time.monotonic()
                if budget <= 0:
                    raise DeadlineExceededError(
                        f"deadline passed before {method!r} could be sent"
                    )
            request_id = self._next_id
            self._next_id += 1
            try:
                if budget is not None:
                    self._sock.settimeout(min(self.timeout_s, budget))
                try:
                    send_frame(self._sock,
                               request_envelope(request_id, method, params,
                                                trace=trace,
                                                deadline_s=budget))
                    response = recv_frame(self._sock, self.max_frame_bytes)
                finally:
                    if budget is not None and not self._closed:
                        try:
                            self._sock.settimeout(self.timeout_s)
                        except OSError:
                            pass
            except socket.timeout as exc:
                self.close()
                if (deadline_s is not None
                        and time.monotonic() >= deadline_s):
                    raise DeadlineExceededError(
                        f"deadline passed waiting for {method!r} from "
                        f"{self.address}"
                    ) from exc
                raise TimeoutError(
                    f"no response to {method!r} from {self.address} "
                    f"within the connection timeout"
                ) from exc
            except ProtocolError:
                # A framing violation leaves the stream position
                # unknowable — the connection cannot be reused.
                self.close()
                raise
        try:
            if response is None:
                raise ProtocolError(
                    f"server closed the connection during {method!r}"
                )
            check_envelope(response)
            response_id = response.get("id")
            if response.get("ok"):
                # An ok-response MUST name this request: a stale frame
                # from an earlier (timed-out, abandoned) request on a
                # reused connection must never be mis-delivered as this
                # request's plan.
                if response_id != request_id:
                    raise ProtocolError(
                        f"stale response id {response_id!r} on reused "
                        f"connection (expected {request_id})"
                    )
            elif response_id not in (request_id, None):
                # Error responses may carry id=None (the server could
                # not parse the request far enough to learn the id).
                raise ProtocolError(
                    f"response id {response_id!r} does not match "
                    f"request id {request_id}"
                )
        except ProtocolError:
            self.close()
            raise
        if response.get("ok"):
            result = response.get("result")
            return result if isinstance(result, dict) else {}
        error = response.get("error") or {}
        if error.get("kind") == ERROR_PROTOCOL:
            self.close()  # the server closes its side after reporting
        _raise_wire_error(error)

    # -- convenience methods -------------------------------------------------

    def ping(self) -> Dict:
        return self.call("ping")

    def jobs(self) -> List[str]:
        return list(self.ping().get("jobs", []))

    def stats(self) -> Dict:
        return self.call("stats")

    def save_cache(self, path: Optional[str] = None) -> Dict:
        params = {"path": path} if path else {}
        return self.call("save-cache", params)

    def shutdown(self) -> Dict:
        return self.call("shutdown")

    def submit_raw(
        self,
        job: str,
        batch: GlobalBatch,
        priority: Optional[int] = None,
        replica: int = 0,
        block: bool = True,
        timeout_s: Optional[float] = None,
        trace: Optional[Dict] = None,
        deadline_s: Optional[float] = None,
    ) -> Dict:
        """Submit a batch; returns the raw wire result (signature
        payload + canonical plan + report).  ``deadline_s`` is an
        absolute local monotonic deadline (see :meth:`call`)."""
        params = {
            "job": job,
            "signature_version": SIGNATURE_VERSION,
            "replica": replica,
            "block": block,
        }
        params.update(batch_to_dict(batch))
        if priority is not None:
            params["priority"] = priority
        if timeout_s is not None:
            params["timeout_s"] = timeout_s
            params["result_timeout_s"] = timeout_s
        return self.call("submit", params, trace=trace,
                         deadline_s=deadline_s)

    def prewarm_raw(self, job: str, batch: GlobalBatch) -> bool:
        params = {"job": job}
        params.update(batch_to_dict(batch))
        return bool(self.call("prewarm", params).get("accepted"))

    def observe_raw(self, job: str, trace: Trace) -> Optional[Dict]:
        return self.call("observe",
                         {"job": job, "trace": trace.to_dict()}).get("event")


class ServiceConnection:
    """Owns one logical connection's whole lifecycle: lazy connect,
    optional handshake, transparent reconnect, exactly-once close.

    :class:`RemotePlanClient` reuses one socket across a whole batch
    stream but must survive a request that kills the connection
    (timeout, protocol violation); :class:`~repro.fleet.client.
    FleetClient` holds one such connection per shard.  Both need the
    same teardown discipline, so it lives here instead of being
    duplicated: ``close()`` retires the handle permanently, works from
    any state, and never touches a socket twice.

    Args:
        address: Server address (see :func:`connect`).
        timeout_s: Per-request bound on every connection built here.
        expect_job: When set, each fresh connection is handshaken with a
            ``ping`` and must serve this job under the local signature
            version — turning a mis-wired address into an immediate,
            legible error instead of a failed submit later.
        client: Optional pre-built connection to adopt (reconnection
            still goes through the factory once it dies).
    """

    def __init__(
        self,
        address,
        timeout_s: float = 30.0,
        expect_job: Optional[str] = None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        client: Optional[PlanServiceClient] = None,
    ) -> None:
        self.address = address
        self.timeout_s = timeout_s
        self.expect_job = expect_job
        self.max_frame_bytes = max_frame_bytes
        self._client = client
        self._lock = threading.Lock()
        self._retired = False

    def __enter__(self) -> "ServiceConnection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def connected(self) -> bool:
        with self._lock:
            return self._client is not None and not self._client.closed

    def client(self) -> PlanServiceClient:
        """The live connection, (re-)established on demand.

        A request that killed the previous socket (timeout, framing
        violation) must not strand the owner's remaining work behind a
        dead fd — the next ``client()`` dials again.  After ``close()``
        the handle is retired for good and raises
        :class:`ServiceClosedError` instead of resurrecting itself.
        """
        with self._lock:
            if self._retired:
                raise ServiceClosedError(
                    f"connection to {self.address} has been closed"
                )
            if self._client is None or self._client.closed:
                client = PlanServiceClient(
                    self.address, timeout_s=self.timeout_s,
                    max_frame_bytes=self.max_frame_bytes,
                )
                try:
                    self._handshake(client)
                except BaseException:
                    client.close()
                    raise
                self._client = client
            return self._client

    def _handshake(self, client: PlanServiceClient) -> None:
        if self.expect_job is None:
            return
        hello = client.ping()
        version = hello.get("signature_version")
        if version != SIGNATURE_VERSION:
            raise ProtocolError(
                f"{self.address} speaks signature v{version!r}, this "
                f"process v{SIGNATURE_VERSION} — canonical plans would "
                f"not replay"
            )
        jobs = hello.get("jobs") or []
        if self.expect_job not in jobs:
            raise RemotePlanError(
                f"{self.address} does not serve job "
                f"{self.expect_job!r} (registered: {jobs})"
            )

    def call(self, method: str, params: Optional[Dict] = None) -> Dict:
        return self.client().call(method, params)

    def close(self) -> None:
        """Retire the handle; the underlying socket is closed exactly
        once, and later ``client()`` calls refuse to reconnect."""
        with self._lock:
            if self._retired:
                return
            self._retired = True
            client, self._client = self._client, None
        if client is not None:
            client.close()


def submit_and_replay(client: PlanServiceClient, job: str,
                      planner: OnlinePlanner, prepared, batch: GlobalBatch,
                      replica: int = 0,
                      timeout_s: Optional[float] = None,
                      tracer=None, trace_id: Optional[str] = None,
                      deadline_s: Optional[float] = None) -> tuple:
    """Ship one prepared batch to a server and re-materialize its plan.

    The round-trip core shared by :class:`RemotePlanClient` and the
    fleet's routed client: submit the batch metadata, verify the
    server's signature digest matches the locally computed one (a
    mismatch means the processes plan under different contexts —
    replaying would be silently wrong), then replay the canonical plan
    onto the locally built graph.  Returns ``(SearchResult, report)``.

    With a :class:`~repro.obs.tracing.RequestTracer`, the request gets
    a distributed trace id (minted here unless ``trace_id`` pins one):
    the envelope carries it to the server, and the client records its
    own ``submit`` (wire round trip) and ``client-replay`` (local plan
    re-materialization) spans so the merged timeline shows both sides
    of the process boundary.
    """
    trace_ctx = None
    span_id = ""
    if tracer is not None:
        from repro.obs.tracing import new_span_id, new_trace_id
        if trace_id is None:
            trace_id = new_trace_id()
        span_id = new_span_id()
        trace_ctx = {"id": trace_id, "span": span_id}
    t0 = time.monotonic()
    response = client.submit_raw(job, batch, replica=replica, block=True,
                                 timeout_s=timeout_s, trace=trace_ctx,
                                 deadline_s=deadline_s)
    t1 = time.monotonic()
    remote_sig = signature_from_dict(response["signature"])
    if remote_sig.digest != prepared.signature.digest:
        raise SignatureMismatchError(
            f"server signature {remote_sig.digest[:12]} != local "
            f"{prepared.signature.digest[:12]} — the two processes "
            f"plan under different contexts (check model, cluster, "
            f"parallel layout, cost model and searcher flags)"
        )
    plan = plan_from_dict(response["plan"])
    result = planner.searcher.replay(prepared.graph, plan,
                                     prepared.signature)
    t2 = time.monotonic()
    result.signature = prepared.signature.digest
    report = response.get("report") or {}
    result.cache_tier = report.get("cache_tier")
    if tracer is not None:
        tracer.record(
            "submit", t0, t1, trace_id, span_id=span_id,
            job=job, replica=replica,
            signature=prepared.signature.digest[:12],
            outcome=report.get("outcome") or "",
            tier=report.get("cache_tier") or "",
            address=str(getattr(client, "address", "")),
        )
        tracer.record(
            "client-replay", t1, t2, trace_id, parent=span_id,
            job=job, replica=replica,
        )
    return result, report


class RemotePlanClient:
    """One DP replica driving a *remote* planning service.

    Mirror of :class:`~repro.service.replica.ReplicaClient`: same
    constructor shape (an address instead of a service), same ``run()``
    / ``records`` / ``errors`` surface, so the shared drive helpers
    thread both kinds interchangeably.

    Args:
        address: Server address (see :func:`connect`).
        job: Registered job name on the server.
        replica: This replica's index (accounting only).
        batches: The iteration batch stream to plan.
        planner: Local planner mirror; must be configured with the same
            planning context as the server's job, and with its plan
            cache enabled (signatures are what cross the wire).
        timeout_s: Per-request bound (connect, submit and result).
        tracer: Optional :class:`~repro.obs.tracing.RequestTracer`;
            every submit then carries a distributed trace id and the
            client-side spans land in the tracer for later merging.
    """

    def __init__(
        self,
        address,
        job: str,
        replica: int,
        batches: Sequence[GlobalBatch],
        planner: OnlinePlanner,
        timeout_s: float = 300.0,
        client: Optional[PlanServiceClient] = None,
        tracer=None,
    ) -> None:
        self.address = address
        self.job = job
        self.replica = replica
        self.batches = list(batches)
        self.planner = planner
        self.timeout_s = timeout_s
        self.tracer = tracer
        self._conn = ServiceConnection(address, timeout_s=timeout_s,
                                       client=client)
        self.records: List[ReplicaRecord] = []
        self.errors: List[tuple] = []

    @property
    def client(self) -> PlanServiceClient:
        """The underlying connection, re-established when a previous
        request killed it (timeout, protocol violation) — one failed
        batch must not strand the replica's remaining stream behind a
        dead socket."""
        return self._conn.client()

    def close(self) -> None:
        self._conn.close()

    def plan_batch(self, batch: GlobalBatch) -> tuple:
        """Round-trip one batch; returns ``(SearchResult, report dict)``.

        The returned result lives on the *locally built* graph — the
        canonical plan from the wire is replayed through the local
        signature's uid/pair translation tables, exactly like the
        in-process coalescing fan-out.
        """
        prepared = self.planner.prepare(batch)
        if prepared.signature is None:
            raise RemotePlanError(
                "local planner has caching disabled — remote replay "
                "needs graph signatures"
            )
        return submit_and_replay(self.client, self.job, self.planner,
                                 prepared, batch, replica=self.replica,
                                 timeout_s=self.timeout_s,
                                 tracer=self.tracer)

    def run(self) -> List[ReplicaRecord]:
        for i, batch in enumerate(self.batches):
            t0 = time.monotonic()
            try:
                result, report = self.plan_batch(batch)
            except SignatureMismatchError as exc:
                # Deterministic for every batch of this stream (the two
                # processes disagree about the planning context), and
                # each attempt costs the server a full discarded search
                # — abort the replica instead of failing N more times.
                self.errors.append((self.job, self.replica, i, str(exc)))
                break
            except Exception as exc:  # noqa: BLE001 — recorded, not fatal
                self.errors.append((self.job, self.replica, i, str(exc)))
                continue
            self.records.append(ReplicaRecord(
                job=self.job,
                replica=self.replica,
                iteration=i,
                outcome=report.get("outcome") or "",
                predicted_ms=result.total_ms,
                latency_s=time.monotonic() - t0,
                queue_wait_s=report.get("queue_wait_s") or 0.0,
                signature=result.signature,
            ))
        return self.records

    def observe(self, trace: Trace) -> Optional[Dict]:
        """Feed an executed trace to the server's recalibration loop.

        When the server applied a refit, the response carries the
        calibrated cost model and the local planner mirror is swapped
        onto it — otherwise the local signatures would stop matching the
        server's recalibrated context and every later submit would fail.
        """
        event = self.client.observe_raw(self.job, trace)
        if event and event.get("applied") and event.get("cost_model"):
            self.planner.set_cost_model(
                cost_model_from_dict(event["cost_model"]))
        return event


def drive_remote_replicas(
    address,
    streams: Dict[str, Sequence[GlobalBatch]],
    replicas: int,
    planner_factory,
    timeout_s: float = 300.0,
) -> DriveReport:
    """Hammer a remote service with ``replicas`` clients per job.

    The cross-process twin of :func:`~repro.service.replica.
    drive_replicas`: every replica opens its own connection (the server
    sees N concurrent clients) and owns a fresh local planner mirror
    from ``planner_factory(job_name)``.  Identical batches submitted
    concurrently coalesce *on the server*, across connections and hence
    across processes.
    """
    clients = [
        RemotePlanClient(address, job, replica, batches,
                         planner=planner_factory(job), timeout_s=timeout_s)
        for job, batches in streams.items()
        for replica in range(replicas)
    ]
    try:
        return run_clients(clients, timeout_s=timeout_s)
    finally:
        for client in clients:
            client.close()
