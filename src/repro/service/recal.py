"""Online recalibration loop: engine traces close the cost-model loop.

Every executed iteration yields an observed trace; per job, the service
retains the last ``window`` traces in a :class:`~repro.trace.TraceRing`
and every ``interval`` observations refits the job's cost-model
efficiency factors from them (:mod:`repro.trace.recalibrate`).  An
applied refit swaps the planner onto the calibrated model and
invalidates the plan-cache entries stored under the old planning context
— they were searched against latencies the hardware disagreed with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.costmodel import CostModel
from repro.trace.events import Trace, TraceRing
from repro.trace.recalibrate import (
    TraceCalibrationReport,
    TraceSample,
    samples_from_traces,
)


@dataclass(frozen=True)
class RecalibrationPolicy:
    """When and how aggressively the service refits a job's cost model.

    Attributes:
        interval: Refit after every N observed iterations.
        window: Observed traces retained per job (fit + holdout).
        sweeps: Coordinate-descent sweeps per refit.
        min_samples: Minimum fit-able forward spans required to attempt
            a refit (too few observations overfit the factors).
        min_improvement: Required relative reduction of the fit error
            before a refit is *applied* (0.0 applies any improvement).
            This gates on the fit window itself, so it is only a
            pre-filter — the holdout check below is what protects
            against overfitting.
        holdout: The most recent ``holdout`` observed traces are held
            out of the fit as a validation window; a refit that clears
            ``min_improvement`` on its own fit window but *worsens* the
            held-out error is rolled back (an overfit to noisy spans
            must not degrade future plans).  ``0`` disables validation
            — any refit clearing the fit-window bar applies.
    """

    interval: int = 4
    window: int = 8
    sweeps: int = 2
    min_samples: int = 4
    min_improvement: float = 0.0
    holdout: int = 1

    def __post_init__(self) -> None:
        if self.interval < 1:
            raise ValueError("recalibration interval must be >= 1")
        if self.window < 1:
            raise ValueError("recalibration window must be >= 1")
        if self.min_samples < 1:
            raise ValueError("recalibration min_samples must be >= 1")
        if self.holdout < 0:
            raise ValueError("recalibration holdout must be >= 0")
        if self.holdout >= self.window:
            raise ValueError(
                "recalibration holdout must leave at least one trace in "
                f"the fit window (holdout={self.holdout} >= "
                f"window={self.window})"
            )


@dataclass
class RecalibrationEvent:
    """Outcome of one recalibration attempt on one job."""

    job: str
    observation: int  # how many iterations the job had observed
    applied: bool
    invalidated: int = 0
    report: Optional[TraceCalibrationReport] = None
    old_model: Optional[CostModel] = None
    # Holdout validation: the refit's error on the held-out (most
    # recent) observations under the old vs the candidate model.  A
    # refit whose held-out error worsens is *rolled back*: applied stays
    # False and rolled_back records why.
    rolled_back: bool = False
    holdout_error_before: Optional[float] = None
    holdout_error_after: Optional[float] = None
    holdout_samples: int = 0

    def describe(self) -> str:
        if self.report is None:
            return f"{self.job}: recalibration skipped (too few samples)"
        if self.rolled_back:
            verdict = (
                f"ROLLED BACK (held-out error "
                f"{self.holdout_error_before * 100:.1f}% -> "
                f"{self.holdout_error_after * 100:.1f}% over "
                f"{self.holdout_samples} validation spans)"
            )
        else:
            verdict = "applied" if self.applied else "not applied"
        return (
            f"{self.job} @ iter {self.observation}: {self.report.describe()}"
            f" — {verdict}, {self.invalidated} cache entries invalidated"
        )


class JobRecalibrator:
    """Per-job observation window + refit cadence bookkeeping."""

    def __init__(self, policy: RecalibrationPolicy) -> None:
        self.policy = policy
        self.ring = TraceRing(capacity=policy.window)
        self.events: list = []

    @property
    def observed(self) -> int:
        return self.ring.appended

    def observe(self, trace: Trace) -> bool:
        """Record one observed iteration; True when a refit is due."""
        self.ring.append(trace)
        return self.ring.appended % self.policy.interval == 0

    def window_samples(self, traces) -> "list[TraceSample]":
        """Fit-able observations in one window snapshot (extracted once;
        the caller passes the same list into the refit)."""
        return samples_from_traces(traces)

    def split_window(self, window: "list[Trace]"):
        """Split one ring snapshot into (fit traces, held-out traces).

        The ring snapshot is oldest-first; the most recent
        ``policy.holdout`` traces form the validation window — the
        observations closest to the iterations the refit model will
        actually plan.  With too few traces retained (or holdout 0) the
        validation window is empty and the holdout check is skipped.
        """
        holdout = self.policy.holdout
        if holdout <= 0 or len(window) <= holdout:
            return list(window), []
        return list(window[:-holdout]), list(window[-holdout:])

    def worth_applying(self, report: TraceCalibrationReport) -> bool:
        """Does the refit clear the policy's improvement bar?"""
        if not report.improved:
            return False
        if report.mean_abs_error_before <= 0:
            return False
        gain = 1.0 - report.mean_abs_error_after / report.mean_abs_error_before
        return gain >= self.policy.min_improvement
