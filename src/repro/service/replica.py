"""DP-replica clients and multi-job drivers for the planning service.

The production shape this simulates: each data-parallel replica of each
job submits its iteration's batch to the shared planning service and
blocks on the returned ticket; replicas of one job see the *same* batch
stream (data parallelism shards the data, not the batch metadata the
planner consumes), so concurrent submissions coalesce into one search.
A recalibrating driver additionally "executes" every planned schedule
on the hidden-truth reference hardware (runtime engine with repriced,
jittered durations) and feeds the observed traces back through
:meth:`~repro.service.service.PlanService.observe`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.searcher import SearchResult
from repro.data.batching import GlobalBatch
from repro.runtime.compiler import compile_schedule, reprice_plan
from repro.service.recal import RecalibrationEvent
from repro.service.service import PlanService
from repro.sim.reference import ReferenceCostModel
from repro.trace.builders import trace_from_engine
from repro.trace.events import Trace


@dataclass
class ReplicaRecord:
    """One replica's accounting for one planned iteration."""

    job: str
    replica: int
    iteration: int
    outcome: str
    predicted_ms: float
    latency_s: float
    queue_wait_s: float
    signature: Optional[str] = None
    observed_ms: Optional[float] = None

    @property
    def sim_error(self) -> Optional[float]:
        """Relative sim-vs-engine makespan error, when executed."""
        if self.observed_ms is None or self.observed_ms <= 0:
            return None
        return abs(self.predicted_ms - self.observed_ms) / self.observed_ms


@dataclass
class DriveReport:
    """Everything a multi-replica drive learned."""

    records: List[ReplicaRecord] = field(default_factory=list)
    errors: List[Tuple[str, int, int, str]] = field(default_factory=list)
    recal_events: List[RecalibrationEvent] = field(default_factory=list)

    def by_outcome(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for record in self.records:
            out[record.outcome] = out.get(record.outcome, 0) + 1
        return out

    def makespans(self, job: str, iteration: int) -> List[float]:
        """Every replica's delivered makespan for one (job, iteration)."""
        return [
            r.predicted_ms for r in self.records
            if r.job == job and r.iteration == iteration
        ]


class ReplicaClient:
    """One DP replica: submits its batch stream iteration by iteration."""

    def __init__(
        self,
        service: PlanService,
        job: str,
        replica: int,
        batches: Sequence[GlobalBatch],
        timeout_s: float = 300.0,
    ) -> None:
        self.service = service
        self.job = job
        self.replica = replica
        self.batches = list(batches)
        self.timeout_s = timeout_s
        self.records: List[ReplicaRecord] = []
        self.errors: List[Tuple[str, int, int, str]] = []

    def run(self) -> List[ReplicaRecord]:
        for i, batch in enumerate(self.batches):
            try:
                ticket = self.service.submit(
                    self.job, batch, replica=self.replica, block=True,
                    timeout=self.timeout_s,
                )
                result = ticket.result(timeout=self.timeout_s)
            except Exception as exc:  # noqa: BLE001 — recorded, not fatal
                self.errors.append((self.job, self.replica, i, str(exc)))
                continue
            self.records.append(ReplicaRecord(
                job=self.job,
                replica=self.replica,
                iteration=i,
                outcome=ticket.outcome or "",
                predicted_ms=result.total_ms,
                latency_s=ticket.latency_s or 0.0,
                queue_wait_s=ticket.queue_wait_s or 0.0,
                signature=result.signature,
            ))
        return self.records


def run_clients(clients: Sequence, timeout_s: float = 300.0) -> DriveReport:
    """Run any replica-shaped clients concurrently, one thread each.

    A *client* is anything with ``run()`` populating ``records`` and
    ``errors`` — the in-process :class:`ReplicaClient` and the socket
    :class:`~repro.service.client.RemotePlanClient` both qualify, so the
    same driver exercises either transport.  Blocks until every client
    drains its stream; per-request failures are recorded, not raised.
    """
    threads = [
        threading.Thread(target=client.run, name=f"replica-{c}", daemon=True)
        for c, client in enumerate(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=timeout_s)
    report = DriveReport()
    for client, thread in zip(clients, threads):
        if thread.is_alive():
            # The replica is hung (e.g. a search exceeding timeout_s);
            # its records list is still being mutated — snapshot it and
            # surface the hang as an error so callers don't read a
            # silently partial drive as success.
            report.errors.append((client.job, client.replica, -1,
                                  f"replica thread still running after "
                                  f"{timeout_s}s"))
            report.records.extend(list(client.records))
            continue
        report.records.extend(client.records)
        report.errors.extend(client.errors)
    report.records.sort(key=lambda r: (r.job, r.iteration, r.replica))
    return report


def drive_replicas(
    service: PlanService,
    streams: Dict[str, Sequence[GlobalBatch]],
    replicas: int,
    timeout_s: float = 300.0,
) -> DriveReport:
    """Hammer the service with ``replicas`` concurrent clients per job.

    Every replica of a job submits the same batch sequence (the
    data-parallel regime), so per iteration the service should run one
    search and fan the plan out to the rest.
    """
    clients = [
        ReplicaClient(service, job, replica, batches, timeout_s=timeout_s)
        for job, batches in streams.items()
        for replica in range(replicas)
    ]
    return run_clients(clients, timeout_s=timeout_s)


def observed_execution(
    service: PlanService,
    job_name: str,
    result: SearchResult,
    reference: ReferenceCostModel,
    label: str = "engine",
) -> Trace:
    """Execute a planned schedule on the hidden-truth "hardware".

    Compiles the schedule, reprices every compute action under the
    reference cost model (with its measurement jitter), replays the plan
    on the deterministic runtime engine, and returns the engine trace
    enriched with the planner graph's workload attribution — exactly
    what :meth:`PlanService.observe` wants back.
    """
    job = service.job(job_name)
    graph = result.schedule.graph
    plan = compile_schedule(graph, result.schedule.order, job.cluster,
                            job.parallel, job.planner.cost_model)
    truth = reprice_plan(plan, graph, job.device, job.specs, reference,
                         tp=job.parallel.tp, jitter=reference.jitter)
    return trace_from_engine(truth, graph=graph, label=label,
                             schedule_uid=result.signature or "")


def run_recalibrating_replica(
    service: PlanService,
    job_name: str,
    batches: Sequence[GlobalBatch],
    reference: ReferenceCostModel,
    timeout_s: float = 300.0,
) -> DriveReport:
    """One replica planning + executing + observing every iteration.

    The closed loop the ISSUE's accuracy-drift criterion measures: each
    iteration's plan is executed on the reference hardware, the observed
    trace feeds the service's recalibration window, and the per-record
    ``sim_error`` tracks how far the planner's predicted makespan sits
    from the observed one — it should fall once recalibration kicks in.
    """
    report = DriveReport()
    for i, batch in enumerate(batches):
        ticket = service.submit(job_name, batch, block=True,
                                timeout=timeout_s)
        result = ticket.result(timeout=timeout_s)
        trace = observed_execution(service, job_name, result, reference)
        event = service.observe(job_name, trace)
        if event is not None:
            report.recal_events.append(event)
        report.records.append(ReplicaRecord(
            job=job_name,
            replica=0,
            iteration=i,
            outcome=ticket.outcome or "",
            predicted_ms=result.total_ms,
            latency_s=ticket.latency_s or 0.0,
            queue_wait_s=ticket.queue_wait_s or 0.0,
            signature=result.signature,
            observed_ms=trace.total_ms,
        ))
    return report
