"""Request/ticket vocabulary of the planning service.

A client (one DP replica of one job) submits a batch and receives a
:class:`PlanTicket` — a future it blocks on while the service searches,
replays or coalesces the request.  Tickets record the full lifecycle
(submit / start / done timestamps plus the outcome) so the service's
latency percentiles and the benchmark's per-request accounting read
straight off them.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.core.planner import PreparedIteration
from repro.core.searcher import SearchResult

#: How a ticket was ultimately served.
OUTCOME_SEARCH = "search"  # cold or warm-started schedule search
OUTCOME_HIT = "hit"  # exact plan-cache replay
OUTCOME_COALESCED = "coalesced"  # fanned out from a concurrent identical request
OUTCOME_ERROR = "error"
VALID_OUTCOMES = (OUTCOME_SEARCH, OUTCOME_HIT, OUTCOME_COALESCED,
                  OUTCOME_ERROR)


class ServiceOverloadError(RuntimeError):
    """Admission control rejected the request: the plan queue is full."""


class ServiceClosedError(RuntimeError):
    """The service is shut down and accepts no further requests."""


class ProtocolError(RuntimeError):
    """A wire-protocol violation: malformed frame, oversized payload,
    bad envelope, or a version the peer does not speak.  The stream
    cannot be trusted past the violation, so the connection is closed
    after (best-effort) reporting it."""


class RemotePlanError(RuntimeError):
    """A server-side planning failure relayed over the wire."""


class SignatureMismatchError(RemotePlanError):
    """The client's locally computed graph signature disagrees with the
    server's — the two processes are planning under different contexts
    (cluster, parallel layout, cost model or searcher semantics) and the
    server's canonical plan cannot be replayed onto the client graph."""


class DeadlineExceededError(RemotePlanError):
    """The request's deadline passed before a plan could be delivered.

    Raised client-side when the budget is already spent before the wire
    trip, and server-side when a request's propagated deadline expires
    while it is queued or in flight (the server *sheds* such work —
    searching for a plan nobody is still waiting on wastes a worker).

    Subclasses :class:`RemotePlanError` deliberately: a blown deadline
    is a terminal, typed outcome for this request — retrying or failing
    over cannot un-spend the budget, so the failover machinery must
    treat it like a deterministic error, not a transport fault."""


class PlanTicket:
    """A client's handle on one in-flight planning request."""

    def __init__(self, job: str, replica: int = 0, priority: int = 0) -> None:
        self.job = job
        self.replica = replica
        self.priority = priority
        self.submitted_s = time.monotonic()
        self.started_s: Optional[float] = None
        self.done_s: Optional[float] = None
        self.outcome: Optional[str] = None
        # The prepared iteration this ticket was submitted with (set by
        # PlanService.submit).  The RPC layer needs it to encode the
        # delivered plan into canonical signature space for the wire.
        self.prepared: Optional[PreparedIteration] = None
        # Distributed-tracing context ({"id", "span"}) when the client
        # stamped the request; the service tags its server-side spans
        # (queue-wait, cache-lookup, search/replay) with it.
        self.trace: Optional[dict] = None
        # Absolute monotonic deadline (this process's clock).  A worker
        # popping a leader whose every rider's deadline has passed sheds
        # the work instead of searching (see PlanService._process).
        self.deadline_s: Optional[float] = None
        self._event = threading.Event()
        self._result: Optional[SearchResult] = None
        self._error: Optional[BaseException] = None

    def done(self) -> bool:
        return self._event.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until completed or failed; False on timeout."""
        return self._event.wait(timeout)

    @property
    def latency_s(self) -> Optional[float]:
        """Submit-to-completion latency, once done."""
        if self.done_s is None:
            return None
        return self.done_s - self.submitted_s

    @property
    def queue_wait_s(self) -> Optional[float]:
        """Submit-to-start latency (time spent queued), once started."""
        if self.started_s is None:
            return None
        return self.started_s - self.submitted_s

    def result(self, timeout: Optional[float] = None) -> SearchResult:
        """Block until the plan is ready; re-raises worker-side errors."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"plan for job {self.job!r} not ready within {timeout}s"
            )
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    # -- service side --------------------------------------------------------

    def mark_started(self) -> None:
        if self.started_s is None:
            self.started_s = time.monotonic()

    def complete(self, result: SearchResult, outcome: str) -> None:
        self.mark_started()
        self._result = result
        self.outcome = outcome
        self.done_s = time.monotonic()
        self._event.set()

    def fail(self, error: BaseException) -> None:
        self.mark_started()
        self._error = error
        self.outcome = OUTCOME_ERROR
        self.done_s = time.monotonic()
        self._event.set()


@dataclass
class PendingPlan:
    """One queued-or-searching signature with every request riding it.

    The coalescing unit: the first request for a signature becomes the
    *leader* (it owns the queue slot and the eventual search); identical
    requests submitted while the leader is pending attach as *waiters*
    and are served by replaying the leader's freshly cached plan — one
    search, N results.
    """

    digest: str
    job: str
    priority: int
    seq: int
    ticket: PlanTicket
    prepared: PreparedIteration
    waiters: list = field(default_factory=list)  # (ticket, job, prepared)
    # Set once a worker claims the entry; duplicate heap references left
    # behind by a priority promotion are skipped when they surface.
    taken: bool = False
    # Enqueue timestamp (service clock) — the anchor for priority aging.
    enqueued_s: float = 0.0

    def sort_key(self, aging_s: Optional[float] = None):
        """Heap key: lower first.

        Without aging, strict priority order with FIFO inside a
        priority.  With ``aging_s``, the key is the request's *virtual
        start time* ``enqueued_s + priority * aging_s``: every queued
        second effectively buys one priority level per ``aging_s``
        seconds, so a low-priority leader overtakes fresher high-priority
        work once it has waited long enough — starvation is bounded by
        ``priority_gap * aging_s``.  The key is static (all entries age
        at the same rate), so the heap invariant never decays.
        """
        if aging_s is None:
            return (self.priority, self.seq)
        return (self.enqueued_s + self.priority * aging_s, self.seq)


#: Remote-request lifecycle states.
REMOTE_PENDING = "pending"  # submitted to the service, result outstanding
REMOTE_DONE = "done"  # result (or error) delivered to the socket
REMOTE_ABANDONED = "abandoned"  # client vanished before the result


@dataclass
class RemoteRequest:
    """One socket client's in-flight planning request.

    The server keeps these per connection so a disconnect can be reaped
    deterministically: the ticket still completes inside the service
    (the leader's search must finish for its coalesced *local* waiters),
    but the connection's registry entry is marked abandoned and dropped
    instead of waiting on a peer that will never read the response.
    ``PlanServiceServer.close`` drains by waiting on every live entry's
    ticket — in-flight remote work either completes or is failed by the
    service shutdown, never silently dropped mid-search.
    """

    conn_id: int
    request_id: int
    method: str
    job: str
    ticket: Optional[PlanTicket] = None
    submitted_s: float = field(default_factory=time.monotonic)
    state: str = REMOTE_PENDING

    def finish(self, abandoned: bool = False) -> None:
        self.state = REMOTE_ABANDONED if abandoned else REMOTE_DONE
