"""Retry policy for transport-shaped planning-RPC failures.

PR 7's fleet client retried exactly once per ring successor — a single
failover hop with no backoff, which hammers a restarting shard at full
rate and gives a transient blip (one dropped connection, one slow
accept) no second chance.  This module is the explicit policy that
replaces it: bounded attempts, exponential backoff with *decorrelated
jitter* (AWS-style: each sleep is drawn uniformly from ``[base, prev *
multiplier]``, capped), and a hard wall-clock retry budget so retries
can never outlive the request's deadline.

Classification is the load-bearing part.  Only *transport* failures are
retryable — a connection refused, a timeout, a framing violation, a
server that closed mid-handshake.  Deterministic failures
(:class:`~repro.service.requests.RemotePlanError` and subclasses,
including :class:`~repro.service.requests.SignatureMismatchError` and
:class:`~repro.service.requests.DeadlineExceededError`) would fail
identically on every shard at full search cost, so they are never
retried.

Determinism: the jitter stream comes from a seeded ``random.Random``
per :class:`RetrySession`, so a replayed chaos scenario makes the same
backoff decisions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.service.requests import (
    ProtocolError,
    RemotePlanError,
    ServiceClosedError,
)

#: Transport-shaped failures worth a retry: the request may never have
#: reached a worker, and the same shard (or a ring successor) can serve
#: it moments later.  Mirrors ``fleet.client.FAILOVER_ERRORS``.
TRANSPORT_ERRORS = (OSError, TimeoutError, ProtocolError,
                    ServiceClosedError)


def retryable(error: BaseException) -> bool:
    """Whether ``error`` justifies another attempt.

    Deterministic planning failures are checked *first*:
    ``DeadlineExceededError`` is a ``RemotePlanError`` and must stay
    non-retryable even though a blown deadline often surfaces alongside
    timeouts.
    """
    if isinstance(error, RemotePlanError):
        return False
    return isinstance(error, TRANSPORT_ERRORS)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with decorrelated-jitter backoff.

    Args:
        max_attempts: Total tries including the first (1 = no retries).
        base_s: Minimum sleep between attempts; also the first sleep's
            lower bound.
        cap_s: Ceiling on any single sleep.
        multiplier: Upper bound growth per attempt (``prev *
            multiplier``), before the cap.
        budget_s: Wall-clock retry budget — once the session has slept
            this long in total, no further attempts are allowed even if
            ``max_attempts`` remain.  ``None`` leaves only the attempt
            bound.
        seed: Jitter RNG seed (per-session stream; deterministic
            replays make identical backoff decisions).
    """

    max_attempts: int = 4
    base_s: float = 0.05
    cap_s: float = 2.0
    multiplier: float = 3.0
    budget_s: Optional[float] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_s < 0 or self.cap_s < self.base_s:
            raise ValueError("need 0 <= base_s <= cap_s")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")

    def retryable(self, error: BaseException) -> bool:
        return retryable(error)

    def session(self) -> "RetrySession":
        """Fresh attempt/backoff state for one logical request."""
        return RetrySession(self)


class RetrySession:
    """Per-request retry state: attempt counter, jitter stream, spent
    sleep budget.  Not thread-safe — one session serves one request."""

    def __init__(self, policy: RetryPolicy) -> None:
        self.policy = policy
        self.attempts = 0
        self.slept_s = 0.0
        self._rng = random.Random(policy.seed)
        self._prev_sleep = policy.base_s

    def start_attempt(self) -> int:
        """Count one attempt; returns its 1-based index."""
        self.attempts += 1
        return self.attempts

    def give_up(self, error: Optional[BaseException] = None) -> bool:
        """Whether the session is out of road: attempts exhausted,
        budget spent, or the error is not retryable."""
        if error is not None and not retryable(error):
            return True
        if self.attempts >= self.policy.max_attempts:
            return True
        if (self.policy.budget_s is not None
                and self.slept_s >= self.policy.budget_s):
            return True
        return False

    def next_delay_s(self) -> float:
        """Draw the next backoff sleep (decorrelated jitter) and charge
        it against the budget.  Call only when :meth:`give_up` said no."""
        policy = self.policy
        upper = max(policy.base_s, self._prev_sleep * policy.multiplier)
        delay = min(policy.cap_s,
                    self._rng.uniform(policy.base_s, upper))
        if policy.budget_s is not None:
            delay = min(delay, max(0.0, policy.budget_s - self.slept_s))
        self._prev_sleep = delay if delay > 0 else policy.base_s
        self.slept_s += delay
        return delay
