"""Cross-process plan serving: length-prefixed JSON-RPC over sockets.

PR 3's :class:`~repro.service.service.PlanService` amortizes schedule
search across DP replicas *inside one process*.  The paper's target
regime — multi-job clusters, many training processes per schedule
domain — needs the shared cache and request coalescing to be reachable
across process boundaries, as DynaPipe's centralized planner and
DistTrain's disaggregated control plane are.  This module is the server
half of that boundary; :mod:`repro.service.client` is the client half.

Wire format
-----------

Every frame is a 4-byte big-endian length prefix followed by one UTF-8
JSON object::

    request:  {"format": "repro-plan-rpc", "version": 1, "id": N,
               "method": "submit", "params": {...}}
    response: {"format": ..., "version": ..., "id": N, "ok": true,
               "result": {...}}
            | {..., "ok": false, "error": {"kind": ..., "message": ...}}

Frames above ``max_frame_bytes``, bodies that are not JSON objects, and
envelopes with the wrong format/version are *protocol errors*: the
server reports them (best effort) and closes the connection, because
the stream cannot be trusted past the violation.  Request-level
failures (unknown job, overloaded queue, failed search) are *error
responses* on a connection that stays usable.

The ``submit`` result carries ``(signature payload, canonical plan,
planner report)`` — the codecs are the exact ones the persisted cache
file uses (:func:`repro.core.plancache.plan_to_dict`), not a second
schema.  The client re-materializes the plan by replaying the canonical
payload onto its *own* locally built graph, so plans cross the process
boundary the same way they cross the coalescing fan-out: one search,
N identical-makespan schedules.

Disconnect semantics
--------------------

Each connection is served by one thread; in-flight planning requests
are tracked as :class:`~repro.service.requests.RemoteRequest` entries.
A client that vanishes mid-search never wedges the service: the
leader's search still completes (its coalesced *local* waiters get
their fan-out), the undeliverable response is dropped, and the dead
connection's registry entries are reaped
(``RemoteStats.disconnects_mid_request``).  :meth:`PlanServiceServer.
close` drains deterministically — it waits on every live request's
ticket before tearing sockets down.
"""

from __future__ import annotations

import json
import os
import socket
import stat
import struct
import threading
import time
from dataclasses import asdict
from typing import Dict, List, Optional, Tuple

from repro.core.plancache import encode_plan, plan_to_dict, signature_to_dict
from repro.core.signature import SIGNATURE_VERSION
from repro.data.batching import GlobalBatch, Microbatch
from repro.obs.registry import MetricsRegistry
from repro.service.requests import (
    REMOTE_PENDING,
    DeadlineExceededError,
    ProtocolError,
    RemotePlanError,
    RemoteRequest,
    ServiceClosedError,
    ServiceOverloadError,
)
from repro.service.service import PlanService
from repro.service.stats import ConnectionStats, RemoteStats
from repro.sim.costmodel import CostModel
from repro.trace.events import Trace, TraceValidationError

WIRE_FORMAT = "repro-plan-rpc"
WIRE_VERSION = 1

#: 4-byte big-endian frame-length prefix.
HEADER = struct.Struct(">I")

#: Default ceiling on one frame's body — large enough for a fig14-scale
#: canonical plan or a merged trace, small enough that a garbage length
#: prefix cannot make the server try to buffer gigabytes.
DEFAULT_MAX_FRAME_BYTES = 32 * 1024 * 1024

#: Error kinds carried in ``error.kind`` (mapped back to exception
#: types by the client).
ERROR_OVERLOAD = "overload"
ERROR_CLOSED = "closed"
ERROR_PROTOCOL = "protocol"
#: The method name is well-framed but not served (older server, typo).
#: Distinct from ERROR_PROTOCOL on purpose: the connection stays usable
#: on both sides, so a newer client can probe and fall back.
ERROR_UNSUPPORTED = "unsupported"
ERROR_PLAN = "plan"
ERROR_INTERNAL = "internal"
#: The request's propagated deadline passed before a plan could be
#: delivered; the server shed the work.  A *request-level* typed error
#: on a connection that stays usable — and terminal for the request:
#: clients must not retry or fail over (the budget is spent).
ERROR_DEADLINE = "deadline"


# -- frame codec -------------------------------------------------------------


def encode_frame(payload: Dict) -> bytes:
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    return HEADER.pack(len(body)) + body


def send_frame(sock: socket.socket, payload: Dict) -> int:
    """Serialise + send one frame; returns bytes written."""
    data = encode_frame(payload)
    sock.sendall(data)
    return len(data)


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes; None on clean EOF at a boundary.

    ``socket.timeout`` propagates — on a socket with a timeout armed
    (the client side) a silent peer must surface as a timeout, not be
    misread as a clean disconnect.
    """
    buf = bytearray()
    while len(buf) < count:
        try:
            chunk = sock.recv(count - len(buf))
        except socket.timeout:
            raise
        except OSError:
            chunk = b""
        if not chunk:
            if buf:
                raise ProtocolError(
                    f"connection closed mid-frame ({len(buf)}/{count} bytes)"
                )
            return None
        buf.extend(chunk)
    return bytes(buf)


def recv_frame_sized(
    sock: socket.socket,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> Optional[Tuple[Dict, int]]:
    """Receive one frame as ``(payload, wire_bytes)``; None on clean EOF
    between frames.

    Raises:
        ProtocolError: oversized or empty frame, EOF mid-frame, a body
            that is not valid JSON, or a body that is not an object.
    """
    header = _recv_exact(sock, HEADER.size)
    if header is None:
        return None
    (length,) = HEADER.unpack(header)
    if length == 0:
        raise ProtocolError("empty frame")
    if length > max_frame_bytes:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the "
            f"{max_frame_bytes}-byte limit"
        )
    body = _recv_exact(sock, length)
    if body is None:
        raise ProtocolError("connection closed mid-frame (empty body)")
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError("frame body is not a JSON object")
    return payload, HEADER.size + length


def recv_frame(
    sock: socket.socket,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> Optional[Dict]:
    """Receive one frame; None on clean EOF (see :func:`recv_frame_sized`)."""
    sized = recv_frame_sized(sock, max_frame_bytes)
    return None if sized is None else sized[0]


# -- envelopes ---------------------------------------------------------------


def request_envelope(request_id: Optional[int], method: str,
                     params: Optional[Dict] = None,
                     trace: Optional[Dict] = None,
                     deadline_s: Optional[float] = None) -> Dict:
    """Build a request envelope.

    ``trace`` is an optional distributed-tracing context
    (``{"id": <trace id>, "span": <client span id>}``) carried at the
    envelope level — transport metadata, not method params — so every
    method can be traced without touching its params schema.  Servers
    that predate it simply ignore the key (envelope validation only
    checks format/version).

    ``deadline_s`` is the request's *remaining budget in seconds* at
    send time.  Relative on the wire on purpose (the gRPC convention):
    absolute monotonic timestamps do not cross process boundaries, and
    wall clocks skew.  The server re-anchors it against its own
    monotonic clock the moment the frame is received, then sheds the
    request (``ERROR_DEADLINE``) anywhere past that point the budget
    runs out.  Servers that predate the key ignore it.
    """
    envelope = {
        "format": WIRE_FORMAT,
        "version": WIRE_VERSION,
        "id": request_id,
        "method": method,
        "params": params or {},
    }
    if trace is not None:
        envelope["trace"] = trace
    if deadline_s is not None:
        envelope["deadline"] = float(deadline_s)
    return envelope


def ok_response(request_id: Optional[int], result: Dict) -> Dict:
    return {
        "format": WIRE_FORMAT,
        "version": WIRE_VERSION,
        "id": request_id,
        "ok": True,
        "result": result,
    }


def error_response(request_id: Optional[int], kind: str,
                   message: str) -> Dict:
    return {
        "format": WIRE_FORMAT,
        "version": WIRE_VERSION,
        "id": request_id,
        "ok": False,
        "error": {"kind": kind, "message": message},
    }


def check_envelope(payload: Dict) -> None:
    """Validate the shared envelope fields; raises ProtocolError."""
    if payload.get("format") != WIRE_FORMAT:
        raise ProtocolError(
            f"not a plan-rpc frame (format={payload.get('format')!r})"
        )
    if payload.get("version") != WIRE_VERSION:
        raise ProtocolError(
            f"unsupported wire version {payload.get('version')!r} "
            f"(this peer speaks v{WIRE_VERSION})"
        )


# -- payload codecs ----------------------------------------------------------


def batch_to_dict(batch: GlobalBatch) -> Dict:
    """Microbatch *metadata* is all the planner consumes — the wire
    carries exactly the fields DIP's metadata prefetch would."""
    return {"microbatches": [asdict(m) for m in batch.microbatches]}


def batch_from_dict(payload: Dict) -> GlobalBatch:
    microbatches = payload.get("microbatches")
    if not isinstance(microbatches, list) or not microbatches:
        raise RemotePlanError("submit payload carries no microbatches")
    out: List[Microbatch] = []
    for entry in microbatches:
        if not isinstance(entry, dict):
            raise RemotePlanError("microbatch payload is not an object")
        try:
            out.append(Microbatch(**entry))
        except TypeError as exc:
            raise RemotePlanError(f"malformed microbatch: {exc}") from exc
    return GlobalBatch(out)


def cost_model_to_dict(model: CostModel) -> Dict:
    return asdict(model)


def cost_model_from_dict(payload: Dict) -> CostModel:
    try:
        return CostModel(**payload)
    except TypeError as exc:
        raise RemotePlanError(f"malformed cost model: {exc}") from exc


# -- address parsing ---------------------------------------------------------


def parse_address(address) -> Tuple[str, object]:
    """Normalise an address into ``("tcp", (host, port))`` or
    ``("uds", path)``.

    Accepts ``(host, port)`` tuples, ``"tcp://host:port"``,
    ``"uds:///path"``, bare ``"host:port"`` and bare filesystem paths.
    """
    if isinstance(address, tuple):
        host, port = address
        return "tcp", (host, int(port))
    if not isinstance(address, str) or not address:
        raise ValueError(f"unusable service address: {address!r}")
    if address.startswith("uds://"):
        return "uds", address[len("uds://"):]
    if address.startswith("tcp://"):
        address = address[len("tcp://"):]
        host, _, port = address.rpartition(":")
        return "tcp", (host, int(port))
    if "/" not in address and ":" in address:
        host, _, port = address.rpartition(":")
        if port.isdigit():
            return "tcp", (host, int(port))
    return "uds", address


# -- server ------------------------------------------------------------------


class PlanServiceServer:
    """Serves one :class:`PlanService` to socket clients.

    Args:
        service: The wrapped in-process planning service (jobs already
            registered; its worker pool does the searching).
        listen: ``"host:port"`` (or ``(host, port)``) for TCP; port 0
            picks a free port (see :attr:`address`).
        uds: Filesystem path for a Unix-domain socket (exclusive with
            ``listen``; a stale socket file is replaced).
        max_frame_bytes: Per-frame size ceiling (both directions).
        result_timeout_s: Server-side bound on how long one submit may
            wait for its plan before failing the request.
        cache_path: Default target of the ``save-cache`` method.
        shard_index: Fleet slot this server occupies (carried in
            ``ping``/``metrics`` responses so scrapers identify shards
            without parsing address files); ``None`` outside a fleet.
        restarts: How many times this shard slot has been respawned
            (the launcher passes its counter at spawn time).
        fault_plan: Optional :class:`~repro.chaos.faults.FaultPlan`
            consulted at the ``rpc.recv``/``rpc.response`` injection
            sites (chaos testing; ``None`` in production).
        fault_log: Path the injected-fault decisions are appended to
            (JSONL) on :meth:`close` — the chaos driver replays the
            plan's seed against it to prove determinism.
    """

    def __init__(
        self,
        service: PlanService,
        listen=None,
        uds: Optional[str] = None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        result_timeout_s: float = 600.0,
        cache_path: Optional[str] = None,
        shard_index: Optional[int] = None,
        restarts: int = 0,
        fault_plan=None,
        fault_log: Optional[str] = None,
    ) -> None:
        if (listen is None) == (uds is None):
            raise ValueError("pass exactly one of listen= or uds=")
        self.service = service
        self.max_frame_bytes = max_frame_bytes
        self.result_timeout_s = result_timeout_s
        self.cache_path = cache_path
        self.shard_index = shard_index
        self.restarts = restarts
        self.fault_plan = fault_plan
        self.fault_log = fault_log
        self.started_mono = time.monotonic()
        self.remote = RemoteStats()
        #: Live + bridged metrics served by the ``metrics`` RPC.  The
        #: wire-level series (frames, per-method latency) are observed
        #: on the hot path; everything else is bridged from the existing
        #: stats objects at snapshot time (see :meth:`_handle_metrics`).
        self.metrics = MetricsRegistry()
        self._m_frames = self.metrics.counter(
            "repro_rpc_frames_total",
            "Wire frames by direction", labels=("direction",))
        self._m_method_latency = self.metrics.histogram(
            "repro_rpc_method_latency_seconds",
            "Server-side handler latency per RPC method",
            labels=("method",))
        self._closing = threading.Event()
        self.closed = threading.Event()
        self._close_lock = threading.Lock()
        self._reg_lock = threading.Lock()
        self._inflight: Dict[Tuple[int, Optional[int]], RemoteRequest] = {}
        self._connections: Dict[int, Tuple[socket.socket, ConnectionStats]] = {}
        self._handler_threads: List[threading.Thread] = []

        if uds is not None:
            self._uds_path: Optional[str] = uds
            if os.path.exists(uds):
                # Replace only a *stale socket* left by a killed server.
                # Anything else at that path (say, the cache file after
                # swapped CLI flags) must not be silently deleted.
                if not stat.S_ISSOCK(os.stat(uds).st_mode):
                    raise ValueError(
                        f"refusing to serve on {uds!r}: the path exists "
                        f"and is not a socket"
                    )
                os.unlink(uds)
            self._listener = socket.socket(socket.AF_UNIX,
                                           socket.SOCK_STREAM)
            self._listener.bind(uds)
            self.address = f"uds://{uds}"
        else:
            self._uds_path = None
            kind, (host, port) = parse_address(listen)
            if kind != "tcp":
                raise ValueError(f"listen= wants host:port, got {listen!r}")
            self._listener = socket.socket(socket.AF_INET,
                                           socket.SOCK_STREAM)
            self._listener.setsockopt(socket.SOL_SOCKET,
                                      socket.SO_REUSEADDR, 1)
            self._listener.bind((host or "127.0.0.1", port))
            bound_host, bound_port = self._listener.getsockname()[:2]
            self.address = f"tcp://{bound_host}:{bound_port}"
        self._listener.listen(64)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="plan-rpc-accept", daemon=True
        )
        self._accept_thread.start()

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "PlanServiceServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def wait_closed(self, timeout: Optional[float] = None) -> bool:
        """Block until the server shut down (e.g. a ``shutdown`` RPC)."""
        return self.closed.wait(timeout)

    def inflight_requests(self) -> List[RemoteRequest]:
        with self._reg_lock:
            return list(self._inflight.values())

    def close(self, timeout: float = 30.0) -> None:
        """Stop accepting, drain in-flight remote requests, tear down.

        Deterministic drain: every live :class:`RemoteRequest` ticket is
        waited on (the wrapped service completes or fails it — never
        silently drops it), handler threads get to write their final
        responses, then the sockets are shut down to unblock reads and
        the threads joined.
        """
        with self._close_lock:
            if self._closing.is_set():
                self.closed.wait(timeout)
                return
            self._closing.set()
        # A thread blocked in accept() does not reliably wake on close()
        # alone; shutdown() the listener first, and failing that poke it
        # with a throwaway connection.
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        self._accept_thread.join(timeout=1.0)
        if self._accept_thread.is_alive():
            try:
                from repro.service.client import connect as _connect
                _connect(self.address, timeout_s=1.0).close()
            except OSError:
                pass
            self._accept_thread.join(timeout=5.0)
        stop_at = time.monotonic() + timeout
        for request in self.inflight_requests():
            if request.ticket is not None:
                request.ticket.wait(max(0.0, stop_at - time.monotonic()))
        # Give handlers a moment to deliver the drained results before
        # yanking their sockets (they block in recv right after).
        while self.inflight_requests() and time.monotonic() < stop_at:
            time.sleep(0.01)
        with self._reg_lock:
            sockets = [sock for sock, _conn in self._connections.values()]
        for sock in sockets:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        for thread in list(self._handler_threads):
            thread.join(timeout=max(0.1, stop_at - time.monotonic()))
        if self._uds_path and os.path.exists(self._uds_path):
            try:
                os.unlink(self._uds_path)
            except OSError:
                pass
        self._dump_fault_log()
        self.closed.set()

    def _dump_fault_log(self) -> None:
        """Append every injected-fault decision as JSONL so chaos
        drivers can replay-verify the schedule against the seed."""
        if self.fault_plan is None or not self.fault_log:
            return
        try:
            with open(self.fault_log, "a", encoding="utf-8") as handle:
                for event in self.fault_plan.events:
                    handle.write(json.dumps(asdict(event),
                                            separators=(",", ":")) + "\n")
        except OSError:
            pass  # best effort — chaos logging must never wedge close()

    # -- accept / serve ------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closing.is_set():
            try:
                sock, addr = self._listener.accept()
            except OSError:
                return  # listener closed
            peer = addr if isinstance(addr, str) else ":".join(
                str(part) for part in addr[:2])
            conn = self.remote.open_connection(peer=peer or "uds")
            with self._reg_lock:
                self._connections[conn.conn_id] = (sock, conn)
            thread = threading.Thread(
                target=self._serve_connection, args=(sock, conn),
                name=f"plan-rpc-conn-{conn.conn_id}", daemon=True,
            )
            # Prune dead handlers so a long-lived server doesn't retain
            # one Thread object per client ever connected.
            self._handler_threads = [
                t for t in self._handler_threads if t.is_alive()
            ]
            self._handler_threads.append(thread)
            thread.start()

    def _try_send(self, sock: socket.socket, conn: ConnectionStats,
                  payload: Dict) -> bool:
        fault = (self.fault_plan.decide("rpc.response")
                 if self.fault_plan is not None else None)
        if fault is not None:
            if fault.kind == "slow":
                time.sleep(fault.delay_s)
            elif fault.kind == "drop":
                # Vanish without a response: the client sees EOF (or a
                # timeout) — exactly what a crashed shard looks like.
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                return False
            elif fault.kind == "corrupt":
                data = bytearray(encode_frame(payload))
                # Flip a byte inside the JSON body (never the length
                # prefix — the client must read a full, garbled frame
                # and reject it as a framing violation, not block).
                data[HEADER.size + len(data) // 2] ^= 0xFF
                try:
                    sock.sendall(bytes(data))
                    conn.bytes_out += len(data)
                except OSError:
                    pass
                return False
        try:
            conn.bytes_out += send_frame(sock, payload)
            conn.responses += 1
            self._m_frames.inc(direction="out")
            return True
        except OSError:
            return False

    def _serve_connection(self, sock: socket.socket,
                          conn: ConnectionStats) -> None:
        shutdown_requested = False
        send_failed = False
        try:
            while not self._closing.is_set():
                try:
                    sized = recv_frame_sized(sock, self.max_frame_bytes)
                except ProtocolError as exc:
                    conn.protocol_errors += 1
                    self._try_send(sock, conn, error_response(
                        None, ERROR_PROTOCOL, str(exc)))
                    return
                if sized is None:
                    return  # client hung up between frames
                message, wire_bytes = sized
                conn.bytes_in += wire_bytes
                self._m_frames.inc(direction="in")
                received_mono = time.monotonic()
                fault = (self.fault_plan.decide("rpc.recv")
                         if self.fault_plan is not None else None)
                if fault is not None:
                    if fault.kind == "stall":
                        time.sleep(fault.delay_s)
                    elif fault.kind == "drop":
                        # Swallow the request whole (one-way partition):
                        # no response, connection torn down.
                        return
                try:
                    check_envelope(message)
                except ProtocolError as exc:
                    conn.protocol_errors += 1
                    self._try_send(sock, conn, error_response(
                        message.get("id"), ERROR_PROTOCOL, str(exc)))
                    return
                request_id = message.get("id")
                method = message.get("method")
                params = message.get("params")
                conn.requests += 1
                if not isinstance(params, dict):
                    params = {}
                if not isinstance(method, str):
                    # Guard before the dict lookup: an unhashable
                    # method (a list, say) must be a clean protocol
                    # error, not a TypeError killing this thread.
                    conn.protocol_errors += 1
                    self._try_send(sock, conn, error_response(
                        request_id, ERROR_PROTOCOL,
                        f"method must be a string, got "
                        f"{type(method).__name__}"))
                    return
                handler = self._METHODS.get(method)
                if handler is None:
                    conn.errors += 1
                    if not self._try_send(sock, conn, error_response(
                            request_id, ERROR_UNSUPPORTED,
                            f"unknown method {method!r}")):
                        send_failed = True
                        return
                    continue  # envelope was sound; keep the connection
                trace_ctx = message.get("trace")
                if not isinstance(trace_ctx, dict):
                    trace_ctx = None
                # Re-anchor the wire's relative deadline budget against
                # this process's monotonic clock, at frame receipt.
                deadline_s = None
                budget = message.get("deadline")
                if isinstance(budget, (int, float)):
                    deadline_s = received_mono + float(budget)
                handler_started = time.perf_counter()
                try:
                    if (deadline_s is not None
                            and time.monotonic() >= deadline_s):
                        # Shed before dispatch: the client has already
                        # given up, so queueing (or searching) for it
                        # only steals a worker from live requests.
                        self.service.stats.count("shed")
                        raise DeadlineExceededError(
                            f"deadline passed before {method!r} could "
                            f"be dispatched (budget was {budget}s)")
                    result = handler(self, params, conn, request_id,
                                     trace_ctx, deadline_s)
                    response = ok_response(request_id, result)
                except DeadlineExceededError as exc:
                    conn.errors += 1
                    response = error_response(request_id, ERROR_DEADLINE,
                                              str(exc))
                except ServiceOverloadError as exc:
                    conn.errors += 1
                    response = error_response(request_id, ERROR_OVERLOAD,
                                              str(exc))
                except ServiceClosedError as exc:
                    conn.errors += 1
                    response = error_response(request_id, ERROR_CLOSED,
                                              str(exc))
                except ProtocolError as exc:
                    conn.protocol_errors += 1
                    self._try_send(sock, conn, error_response(
                        request_id, ERROR_PROTOCOL, str(exc)))
                    return
                except (RemotePlanError, KeyError, TimeoutError,
                        TraceValidationError) as exc:
                    conn.errors += 1
                    response = error_response(request_id, ERROR_PLAN,
                                              str(exc) or repr(exc))
                except Exception as exc:  # noqa: BLE001 — never wedge
                    conn.errors += 1
                    response = error_response(request_id, ERROR_INTERNAL,
                                              repr(exc))
                self._m_method_latency.observe(
                    time.perf_counter() - handler_started, method=method)
                if not self._try_send(sock, conn, response):
                    send_failed = True
                    return
                if method == "shutdown":
                    shutdown_requested = True
                    return
        finally:
            self._reap_connection(conn, sock, send_failed=send_failed)
            if shutdown_requested:
                # Close from a fresh thread — this handler cannot join
                # itself.
                threading.Thread(target=self.close, daemon=True).start()

    def _reap_connection(self, conn: ConnectionStats, sock: socket.socket,
                         send_failed: bool) -> int:
        """Drop the connection's registry entries; count mid-request
        disconnects (a pending entry, or a response we couldn't send)."""
        with self._reg_lock:
            keys = [key for key in self._inflight if key[0] == conn.conn_id]
            abandoned = 0
            for key in keys:
                request = self._inflight.pop(key)
                pending = request.state == REMOTE_PENDING
                request.finish(abandoned=pending)
                abandoned += int(pending)
            self._connections.pop(conn.conn_id, None)
        self.remote.close_connection(
            conn, mid_request=send_failed or abandoned > 0)
        try:
            sock.close()
        except OSError:
            pass
        return abandoned

    # -- request registry ----------------------------------------------------

    def _register(self, request: RemoteRequest) -> None:
        with self._reg_lock:
            self._inflight[(request.conn_id, request.request_id)] = request

    def _unregister(self, request: RemoteRequest) -> None:
        with self._reg_lock:
            self._inflight.pop((request.conn_id, request.request_id), None)

    # -- methods -------------------------------------------------------------

    def _job(self, params: Dict):
        name = params.get("job")
        if name not in self.service.jobs:
            raise RemotePlanError(f"unknown job {name!r} "
                                  f"(registered: {self.service.jobs})")
        return name

    def _identity(self) -> Dict:
        """Who/where this server is — enough for a scraper to identify
        the shard without parsing address files."""
        cache = self.service.cache
        cache_dir = ""
        if cache is not None and cache.disk_tier is not None:
            cache_dir = getattr(cache.disk_tier, "directory", "") or ""
        return {
            "pid": os.getpid(),
            "shard_index": self.shard_index,
            "restarts": self.restarts,
            "uptime_ticks": int(
                (time.monotonic() - self.started_mono) * 1000),
            "cache_dir": cache_dir,
        }

    def _handle_ping(self, params: Dict, conn: ConnectionStats,
                     request_id, trace_ctx=None, deadline_s=None) -> Dict:
        return {
            "format": WIRE_FORMAT,
            "version": WIRE_VERSION,
            "signature_version": SIGNATURE_VERSION,
            "jobs": self.service.jobs,
            **self._identity(),
        }

    def _handle_submit(self, params: Dict, conn: ConnectionStats,
                       request_id, trace_ctx=None, deadline_s=None) -> Dict:
        job = self._job(params)
        declared = params.get("signature_version")
        if declared != SIGNATURE_VERSION:
            raise ProtocolError(
                f"signature-version mismatch: client speaks "
                f"v{declared!r}, server v{SIGNATURE_VERSION} — canonical "
                f"plans would not replay"
            )
        batch = batch_from_dict(params)
        request = RemoteRequest(conn_id=conn.conn_id, request_id=request_id,
                                method="submit", job=job)
        block = bool(params.get("block", True))
        # A blocking submit always gets a bound: a handler thread parked
        # forever on queue space would survive its own client.
        submit_timeout = params.get("timeout_s")
        if block and submit_timeout is None:
            submit_timeout = self.result_timeout_s
        # A propagated deadline bounds every wait in this handler: no
        # point parking on queue space (or on the search) past the
        # moment the client stops listening.
        if deadline_s is not None:
            remaining = deadline_s - time.monotonic()
            if remaining <= 0:
                self.service.stats.count("shed")
                raise DeadlineExceededError(
                    "deadline passed before submit could enqueue")
            if submit_timeout is not None:
                submit_timeout = min(float(submit_timeout), remaining)
            elif block:
                submit_timeout = remaining
        # Register *before* the (possibly blocking) submit: a request
        # parked on queue space is in flight too, and close()'s drain
        # must see it or it would tear the socket down under a request
        # that was about to be served.
        self._register(request)
        try:
            ticket = self.service.submit(
                job, batch,
                priority=params.get("priority"),
                replica=int(params.get("replica", 0)),
                block=block,
                timeout=submit_timeout,
                trace=trace_ctx,
                deadline_s=deadline_s,
            )
            request.ticket = ticket
            timeout = params.get("result_timeout_s") or self.result_timeout_s
            timeout = min(timeout, self.result_timeout_s)
            if deadline_s is not None:
                timeout = min(timeout, max(0.0, deadline_s - time.monotonic()))
            try:
                result = ticket.result(timeout=timeout)
            except (ServiceOverloadError, ServiceClosedError,
                    DeadlineExceededError):
                raise
            except TimeoutError as exc:
                if (deadline_s is not None
                        and time.monotonic() >= deadline_s):
                    self.service.stats.count("shed")
                    raise DeadlineExceededError(
                        "deadline passed while waiting for the plan "
                        "(the search may still complete for coalesced "
                        "waiters)") from exc
                raise RemotePlanError(str(exc)) from exc
            except BaseException as exc:  # search failure → plan error
                raise RemotePlanError(
                    f"server-side planning failed: {exc!r}") from exc
            prepared = ticket.prepared
            if prepared is None or prepared.signature is None:
                raise RemotePlanError(
                    "server plan cache is disabled — cross-process "
                    "serving needs graph signatures"
                )
            canonical = encode_plan(result, prepared.signature,
                                    prepared.graph)
            return {
                "signature": signature_to_dict(prepared.signature),
                "signature_version": SIGNATURE_VERSION,
                "plan": plan_to_dict(canonical),
                "report": {
                    "outcome": ticket.outcome,
                    "total_ms": result.total_ms,
                    "interleave_ms": result.interleave_ms,
                    "evaluations": result.evaluations,
                    "cache_hit": result.cache_hit,
                    "cache_tier": result.cache_tier,
                    "warm_started": result.warm_started,
                    "memo_hits": result.memo_hits,
                    "latency_s": ticket.latency_s,
                    "queue_wait_s": ticket.queue_wait_s,
                    "label": result.schedule.label,
                },
            }
        finally:
            request.finish()
            self._unregister(request)

    def _handle_prewarm(self, params: Dict, conn: ConnectionStats,
                        request_id, trace_ctx=None, deadline_s=None) -> Dict:
        job = self._job(params)
        batch = batch_from_dict(params)
        ticket = self.service.prewarm(job, batch,
                                      replica=int(params.get("replica", -1)))
        return {"accepted": ticket is not None}

    def _handle_observe(self, params: Dict, conn: ConnectionStats,
                        request_id, trace_ctx=None, deadline_s=None) -> Dict:
        job = self._job(params)
        trace = Trace.from_dict(params.get("trace"))
        event = self.service.observe(job, trace)
        if event is None:
            return {"event": None}
        payload = {
            "observation": event.observation,
            "applied": event.applied,
            "rolled_back": event.rolled_back,
            "invalidated": event.invalidated,
            "holdout_error_before": event.holdout_error_before,
            "holdout_error_after": event.holdout_error_after,
            "holdout_samples": event.holdout_samples,
            "description": event.describe(),
        }
        if event.applied:
            # Ship the calibrated model so remote clients can resync
            # their local planning context (otherwise their signatures
            # stop matching the server's and every submit fails).
            payload["cost_model"] = cost_model_to_dict(
                self.service.job(job).planner.cost_model)
        return {"event": payload}

    def _handle_stats(self, params: Dict, conn: ConnectionStats,
                      request_id, trace_ctx=None, deadline_s=None) -> Dict:
        # params["samples"] additionally ships the retained latency/wait
        # samples — a fleet aggregator merges percentiles from samples,
        # not from per-shard percentiles.
        cache = self.service.cache
        cache_payload = dict(asdict(cache.stats), entries=len(cache))
        if cache.disk_tier is not None:
            cache_payload["disk"] = cache.disk_tier.snapshot()
        return {
            "service": self.service.stats.snapshot(
                include_samples=bool(params.get("samples"))),
            "cache": cache_payload,
            "remote": self.remote.snapshot(),
            "jobs": self.service.jobs,
            "pid": os.getpid(),
        }

    def _handle_metrics(self, params: Dict, conn: ConnectionStats,
                        request_id, trace_ctx=None, deadline_s=None) -> Dict:
        """Snapshot every metric this server knows about.

        Live wire-level series already sit in ``self.metrics``; the
        planning/cache/remote subsystems keep counting in their own
        stats objects and are bridged in with absolute values here, so
        repeated scrapes never double-count.
        """
        registry = self.metrics
        self.service.stats.export_metrics(registry)
        if self.service.cache is not None:
            self.service.cache.export_metrics(registry)
        self.remote.export_metrics(registry)
        registry.gauge(
            "repro_rpc_uptime_seconds",
            "Seconds since this server started", agg="max",
        ).set(time.monotonic() - self.started_mono)
        return {"metrics": registry.snapshot(), **self._identity()}

    def _handle_save_cache(self, params: Dict, conn: ConnectionStats,
                           request_id, trace_ctx=None, deadline_s=None) -> Dict:
        path = params.get("path") or self.cache_path
        if not path:
            raise RemotePlanError(
                "no cache path: pass params.path or start the server "
                "with cache_path="
            )
        saved = self.service.cache.save(path)
        return {"path": saved, "entries": len(self.service.cache)}

    def _handle_shutdown(self, params: Dict, conn: ConnectionStats,
                         request_id, trace_ctx=None, deadline_s=None) -> Dict:
        return {"closing": True}

    _METHODS = {
        "ping": _handle_ping,
        "submit": _handle_submit,
        "prewarm": _handle_prewarm,
        "observe": _handle_observe,
        "stats": _handle_stats,
        "metrics": _handle_metrics,
        "save-cache": _handle_save_cache,
        "shutdown": _handle_shutdown,
    }
