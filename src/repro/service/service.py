"""The concurrent multi-tenant planning service.

At production scale DIP's per-iteration planner is not a library call
but shared infrastructure: hundreds of DP replicas and several
concurrent jobs request schedules for similar iteration graphs at once.
:class:`PlanService` fronts one :class:`~repro.core.planner.OnlinePlanner`
per registered job behind a shared, thread-safe
:class:`~repro.core.plancache.PlanCache` and a pool of search workers:

* **Request coalescing** — submission computes the batch's canonical
  graph signature (:mod:`repro.core.signature`) in the client thread; an
  identical signature already queued or searching attaches the request
  as a *waiter* instead of consuming a queue slot.  When the leader's
  search completes, its plan is encoded into canonical space once and
  replayed onto every waiter's own graph — one search, N results, with
  makespans identical to planning each request alone.
* **Admission control** — a bounded priority queue (lower value = more
  urgent, FIFO within a priority).  A full queue rejects with
  :class:`~repro.service.requests.ServiceOverloadError` (backpressure)
  or blocks when the caller asks to wait.  Optional priority *aging*
  (``aging_s``) bumps the effective priority of queued requests as they
  wait, so low-priority leaders cannot starve under saturation.
* **Background warm search** — :meth:`PlanService.prewarm` submits a
  lowest-priority request for an *anticipated* batch; idle workers fill
  the cache so the real request replays instead of searching.
* **Online recalibration** — :meth:`PlanService.observe` feeds executed
  iteration traces (runtime engine timelines) into a per-job window;
  every N observations the job's cost-model efficiency factors are
  refit from observed span durations, the planner switches to the
  calibrated model, and cache entries stored under the stale planning
  context are invalidated.  The newest ``policy.holdout`` traces are
  held out of the fit as a validation window: a refit that improves its
  own fit window but worsens held-out error is rolled back.

Cross-process serving lives one layer up: :mod:`repro.service.rpc`
wraps this service in a socket server and :mod:`repro.service.client`
re-materializes its canonical plans in other processes.
"""

from __future__ import annotations

import heapq
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cluster.topology import ClusterSpec, ParallelConfig
from repro.core.plancache import DEFAULT_CACHE_SIZE, PlanCache, encode_plan
from repro.core.planner import OnlinePlanner
from repro.core.searcher import ScheduleSearcher, SearchResult
from repro.data.batching import GlobalBatch
from repro.service.recal import (
    JobRecalibrator,
    RecalibrationEvent,
    RecalibrationPolicy,
)
from repro.service.requests import (
    OUTCOME_COALESCED,
    OUTCOME_HIT,
    OUTCOME_SEARCH,
    DeadlineExceededError,
    PendingPlan,
    PlanTicket,
    ServiceClosedError,
    ServiceOverloadError,
)
from repro.service.stats import ServiceStats
from repro.sim.costmodel import CostModel
from repro.trace.events import Trace

#: Priority offset that keeps prewarm requests behind every client
#: request (client priorities are expected to stay well below this).
PREWARM_PRIORITY = 1_000_000


@dataclass
class RegisteredJob:
    """One tenant: a planner plus the context recalibration needs."""

    name: str
    planner: OnlinePlanner
    cluster: ClusterSpec
    parallel: ParallelConfig
    priority: int = 0
    recalibrator: Optional[JobRecalibrator] = None
    # Serialises graph building against cost-model swaps so one request
    # never sees a half-applied recalibration; `searching` counts
    # worker-side plan/fan-out sections in flight, and a swap waits on
    # `idle` until they drain (workers pause while `swapping`).
    lock: threading.RLock = field(default_factory=threading.RLock)
    searching: int = 0
    swapping: bool = False

    def __post_init__(self) -> None:
        self.idle = threading.Condition(self.lock)

    @property
    def device(self):
        return self.cluster.gpu

    @property
    def specs(self):
        return self.planner.module_specs()

    # -- search/swap exclusion ----------------------------------------------

    def begin_search(self) -> None:
        with self.lock:
            while self.swapping:
                self.idle.wait()
            self.searching += 1

    def end_search(self) -> None:
        with self.lock:
            self.searching -= 1
            self.idle.notify_all()

    def swap_cost_model(self, cost_model: CostModel) -> None:
        """Apply a recalibrated model once no search is in flight.

        Caller holds ``self.lock`` (the condition's lock, acquired once
        — ``wait`` releases it while draining).  Workers that arrive
        during the drain block in :meth:`begin_search`, so a leader's
        search and its fan-out replays always run under one model and
        every coalesced waiter's makespan stays identical.
        """
        self.swapping = True
        try:
            while self.searching > 0:
                self.idle.wait()
            self.planner.set_cost_model(cost_model)
        finally:
            self.swapping = False
            self.idle.notify_all()


class PlanService:
    """Serves schedule plans to many concurrent clients.

    Args:
        num_workers: Search worker threads.  ``0`` starts no threads —
            requests queue until :meth:`step` processes them, which
            makes tests and single-threaded drivers deterministic.
        max_queue: Bounded queue capacity (pending *leaders*; coalesced
            waiters ride along for free).
        plan_cache: Shared cache; built internally when omitted.
        cache_size: Capacity of the internally built cache.
        coalesce: Enable in-flight request coalescing.
        recalibration: Online-recalibration policy applied to every
            registered job; ``None`` disables the loop.
        aging_s: Priority-aging rate — seconds of queueing that offset
            one priority level.  Under a saturated queue, strict
            priority order starves low-priority leaders indefinitely;
            with aging the heap orders entries by virtual start time
            (``enqueue + priority * aging_s``), bounding any request's
            starvation at ``priority_gap * aging_s`` seconds of queue
            drain.  ``None`` (default) keeps strict priority order.
        clock: Monotonic time source for aging (injectable for tests).
    """

    def __init__(
        self,
        num_workers: int = 2,
        max_queue: int = 64,
        plan_cache: Optional[PlanCache] = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
        coalesce: bool = True,
        recalibration: Optional[RecalibrationPolicy] = None,
        aging_s: Optional[float] = None,
        clock=time.monotonic,
    ) -> None:
        if num_workers < 0:
            raise ValueError("num_workers must be >= 0")
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if aging_s is not None and aging_s <= 0:
            raise ValueError("aging_s must be positive (or None to disable)")
        self.aging_s = aging_s
        self._clock = clock
        self.cache = plan_cache if plan_cache is not None else PlanCache(
            capacity=cache_size
        )
        self.max_queue = max_queue
        self.coalesce = coalesce
        self.recalibration = recalibration
        self.stats = ServiceStats()
        #: Optional :class:`repro.obs.tracing.RequestTracer` (set by the
        #: serving layer).  When a submitted request carries a trace
        #: context, the service emits queue-wait / cache-lookup /
        #: search / replay spans into it, tagged with the trace id.
        self.tracer = None
        self._jobs: Dict[str, RegisteredJob] = {}
        self._mutex = threading.Lock()
        self._not_empty = threading.Condition(self._mutex)
        self._not_full = threading.Condition(self._mutex)
        # The heap may hold stale duplicate references after a waiter
        # promotes its leader's priority; _queued counts live leaders.
        # Keys come from PendingPlan.sort_key: (priority, seq) without
        # aging, (virtual_start_s, seq) with it.
        self._heap: List[Tuple[Tuple[float, int], PendingPlan]] = []
        self._pending: Dict[str, PendingPlan] = {}
        self._queued = 0
        self._seq = 0
        self._closed = False
        self._stale_contexts: set = set()
        self._workers: List[threading.Thread] = []
        for i in range(num_workers):
            worker = threading.Thread(
                target=self._worker_loop, name=f"plan-worker-{i}", daemon=True
            )
            worker.start()
            self._workers.append(worker)

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "PlanService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self, wait: bool = True) -> None:
        """Stop accepting work; fail whatever is still queued."""
        with self._mutex:
            if self._closed:
                return
            self._closed = True
            abandoned = []
            for _key, entry in self._heap:
                if not entry.taken:
                    entry.taken = True  # also dedups promoted duplicates
                    abandoned.append(entry)
            self._heap.clear()
            self._pending.clear()
            self._queued = 0
            self._not_empty.notify_all()
            self._not_full.notify_all()
        for entry in abandoned:
            entry.ticket.fail(
                ServiceClosedError("service closed before planning"))
            self.stats.count("failed")
            for ticket, _job, _prep in entry.waiters:
                ticket.fail(
                    ServiceClosedError("service closed before planning"))
                self.stats.count("failed")
        if wait:
            for worker in self._workers:
                worker.join(timeout=30.0)

    def shutdown(self, wait: bool = True) -> None:
        """Alias for :meth:`close` (the RPC layer's vocabulary).

        Deterministic drain semantics: queued-but-unclaimed requests
        fail immediately with :class:`ServiceClosedError` (leaders and
        their coalesced waiters alike); requests a worker already
        claimed run to completion and deliver before the worker exits —
        with ``wait=True`` this call blocks until they have.
        """
        self.close(wait=wait)

    # -- registration --------------------------------------------------------

    def register_job(
        self,
        name: str,
        arch=None,
        cluster: Optional[ClusterSpec] = None,
        parallel: Optional[ParallelConfig] = None,
        cost_model: Optional[CostModel] = None,
        searcher: Optional[ScheduleSearcher] = None,
        planner: Optional[OnlinePlanner] = None,
        priority: int = 0,
    ) -> RegisteredJob:
        """Register one tenant job.

        Either pass a prebuilt ``planner`` (its plan cache is rebound to
        the service's shared cache unless the planner has caching
        disabled) or the ``arch``/``cluster``/``parallel`` parts an
        :class:`OnlinePlanner` is built from.
        """
        if name in self._jobs:
            raise ValueError(f"job {name!r} already registered")
        if planner is None:
            if arch is None or cluster is None or parallel is None:
                raise ValueError(
                    "register_job needs a planner or arch+cluster+parallel"
                )
            planner = OnlinePlanner(
                arch, cluster, parallel, cost_model,
                searcher=searcher, plan_cache=self.cache,
            )
        else:
            if planner.cache is not None:
                planner.cache = self.cache
        job = RegisteredJob(
            name=name,
            planner=planner,
            cluster=cluster if cluster is not None else planner.cluster,
            parallel=parallel if parallel is not None else planner.parallel,
            priority=priority,
            recalibrator=(
                JobRecalibrator(self.recalibration)
                if self.recalibration is not None else None
            ),
        )
        self._jobs[name] = job
        return job

    def job(self, name: str) -> RegisteredJob:
        return self._jobs[name]

    @property
    def jobs(self) -> List[str]:
        return list(self._jobs)

    # -- submission ----------------------------------------------------------

    def submit(
        self,
        job_name: str,
        batch: GlobalBatch,
        priority: Optional[int] = None,
        replica: int = 0,
        block: bool = False,
        timeout: Optional[float] = None,
        trace: Optional[Dict] = None,
        deadline_s: Optional[float] = None,
    ) -> PlanTicket:
        """Request a plan for ``batch``; returns a waitable ticket.

        The batch's graph is built and fingerprinted in the calling
        thread (each replica prefetching its own metadata); the search
        queues behind the worker pool.  A request identical to one
        already pending coalesces onto it without consuming a queue
        slot.  When the queue is full the request is rejected with
        :class:`ServiceOverloadError` unless ``block`` asks to wait for
        space (``timeout`` bounds the wait).

        ``trace`` is an optional distributed-tracing context
        (``{"id", "span"}``) stamped by the client; with a tracer
        attached the service tags its server-side spans with it.

        ``deadline_s`` (absolute monotonic) is the request's propagated
        deadline: a worker popping a leader whose every rider's
        deadline has passed sheds the search instead of running it for
        nobody (see :meth:`_process`).  Stamped on the ticket *before*
        it becomes reachable from the queue — the worker may pop it the
        instant the mutex drops.
        """
        job = self._jobs[job_name]
        if self._closed:
            raise ServiceClosedError("service is closed")
        ticket = PlanTicket(
            job=job_name, replica=replica,
            priority=job.priority if priority is None else priority,
        )
        ticket.trace = trace
        ticket.deadline_s = deadline_s
        with job.lock:
            prepared = job.planner.prepare(batch)
        ticket.prepared = prepared
        self.stats.count("submitted")
        digest = (prepared.signature.digest
                  if prepared.signature is not None else None)
        deadline = (time.monotonic() + timeout) if timeout is not None else None
        with self._mutex:
            while True:
                if self._closed:
                    raise ServiceClosedError("service is closed")
                # Coalesce first — re-checked after every wait, since a
                # leader for this digest may have been enqueued by a
                # sibling replica while this submit was blocked on
                # queue space (the exact backpressure regime coalescing
                # exists for).
                if digest is not None and self.coalesce:
                    pending = self._pending.get(digest)
                    if pending is not None:
                        pending.waiters.append((ticket, job, prepared))
                        # A more urgent waiter promotes its still-queued
                        # leader (a client attaching to a background
                        # prewarm must not inherit last place); the old
                        # heap reference goes stale and is skipped on
                        # pop.
                        if (not pending.taken
                                and ticket.priority < pending.priority):
                            pending.priority = ticket.priority
                            heapq.heappush(
                                self._heap,
                                (pending.sort_key(self.aging_s), pending))
                        return ticket
                if self._queued < self.max_queue:
                    break
                if not block:
                    self.stats.count("rejected")
                    raise ServiceOverloadError(
                        f"plan queue full ({self.max_queue} pending)"
                    )
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        self.stats.count("rejected")
                        raise ServiceOverloadError(
                            f"no queue space within {timeout}s"
                        )
                self._not_full.wait(remaining)
            entry = PendingPlan(
                digest=digest if digest is not None else f"?nosig:{self._seq}",
                job=job_name,
                priority=ticket.priority,
                seq=self._seq,
                ticket=ticket,
                prepared=prepared,
                enqueued_s=self._clock(),
            )
            self._seq += 1
            heapq.heappush(self._heap, (entry.sort_key(self.aging_s), entry))
            self._queued += 1
            if digest is not None and self.coalesce:
                self._pending[digest] = entry
            self.stats.queue_changed(self._queued)
            self._not_empty.notify()
        return ticket

    def prewarm(
        self,
        job_name: str,
        batch: GlobalBatch,
        replica: int = -1,
    ) -> Optional[PlanTicket]:
        """Background warm search for an anticipated batch (best effort).

        Queued behind every client request; a full queue silently drops
        the prewarm — warming the cache is an optimization, never worth
        displacing real work.
        """
        job = self._jobs[job_name]
        try:
            ticket = self.submit(
                job_name, batch,
                priority=PREWARM_PRIORITY + job.priority,
                replica=replica,
            )
        except ServiceOverloadError:
            return None
        self.stats.count("prewarms")
        return ticket

    # -- worker side ---------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            entry = self._pop(block=True)
            if entry is None:
                return
            self._process(entry)

    def _pop(self, block: bool) -> Optional[PendingPlan]:
        with self._mutex:
            while True:
                while self._heap and self._heap[0][1].taken:
                    heapq.heappop(self._heap)  # stale promoted duplicate
                if self._heap:
                    break
                if self._closed or not block:
                    return None
                self._not_empty.wait()
            _key, entry = heapq.heappop(self._heap)
            entry.taken = True
            self._queued -= 1
            self.stats.queue_changed(self._queued)
            self._not_full.notify()
            return entry

    def step(self) -> bool:
        """Process one queued request in the calling thread.

        The deterministic, single-threaded drive mode (``num_workers=0``)
        used by tests; returns False when the queue is empty.
        """
        entry = self._pop(block=False)
        if entry is None:
            return False
        self._process(entry)
        return True

    def _process(self, entry: PendingPlan) -> None:
        job = self._jobs[entry.job]
        if self._shed_expired(entry):
            return
        entry.ticket.mark_started()
        # The whole plan + fan-out section excludes cost-model swaps
        # (RegisteredJob.swap_cost_model waits for it to drain), so the
        # leader's final simulation and every waiter's replay run under
        # one model — coalesced makespans stay identical.
        job.begin_search()
        try:
            try:
                result = job.planner.plan_prepared(entry.prepared)
            except BaseException as exc:  # noqa: BLE001 — fail the tickets
                self._retire(entry)
                entry.ticket.fail(exc)
                self.stats.count("failed")
                for ticket, _wjob, _wprep in entry.waiters:
                    # Fresh instance per ticket: each client thread
                    # re-raises its own, so concurrent raises don't
                    # fight over one shared __traceback__.
                    ticket.fail(RuntimeError(
                        f"coalesced leader search failed: {exc!r}"))
                    self.stats.count("failed")
                return
            # Retire the pending entry *before* fan-out: requests
            # submitted from here on start a fresh leader, which replays
            # from the now-populated cache in one simulation anyway.
            self._retire(entry)
            outcome = OUTCOME_HIT if result.cache_hit else OUTCOME_SEARCH
            self.stats.count("replays" if result.cache_hit else "searches")
            if result.cache_hit:
                # Tier breakdown of exact hits (tier-parity invariant:
                # only this label may differ between memory and disk).
                self.stats.count("disk_hits"
                                 if result.cache_tier == "disk"
                                 else "memory_hits")
            if result.memo_hits:
                self.stats.count("memo_hits", result.memo_hits)
            # Spans are recorded *before* the ticket completes: delivery
            # unblocks the remote submit handler, and the client must be
            # able to read a fully written trace the moment its RPC
            # returns.
            self._emit_leader_spans(entry.ticket, result, outcome)
            self._deliver(entry.ticket, result, outcome)
            if entry.waiters:
                self._fan_out(entry, result)
        finally:
            job.end_search()

    def _shed_expired(self, entry: PendingPlan) -> bool:
        """Shed a popped leader whose every rider's deadline passed.

        A search serves the leader *and* all coalesced waiters, so it
        only sheds when nobody is left listening: every ticket must
        carry a deadline and every deadline must have passed.  One
        rider without a deadline (or still inside its budget) keeps the
        search alive for everyone.  Shed tickets fail with the typed
        :class:`DeadlineExceededError`; each is counted both ``shed``
        and ``failed``.
        """
        now = time.monotonic()
        # Checked and retired under the queue mutex as one step: a
        # waiter attaching between the snapshot and the retire would
        # otherwise never be completed *or* failed.
        with self._mutex:
            tickets = [entry.ticket] + [t for t, _j, _p in entry.waiters]
            if not all(t.deadline_s is not None and now >= t.deadline_s
                       for t in tickets):
                return False
            if self._pending.get(entry.digest) is entry:
                del self._pending[entry.digest]
        for ticket in tickets:
            ticket.fail(DeadlineExceededError(
                "deadline passed while queued — search shed"))
            self.stats.count("shed")
            self.stats.count("failed")
        return True

    def _retire(self, entry: PendingPlan) -> None:
        with self._mutex:
            if self._pending.get(entry.digest) is entry:
                del self._pending[entry.digest]

    def _deliver(self, ticket: PlanTicket, result: SearchResult,
                 outcome: str) -> None:
        ticket.complete(result, outcome)
        self.stats.count("completed")
        if outcome == OUTCOME_COALESCED:
            self.stats.count("coalesced")
        self.stats.record_latency(ticket.latency_s, ticket.queue_wait_s)

    def _fan_out(self, entry: PendingPlan, result: SearchResult) -> None:
        """Replay the leader's plan onto every coalesced waiter's graph.

        Encoding into canonical (signature) space once makes the fan-out
        independent of the shared cache's LRU churn: even if the entry
        was already evicted, every waiter still replays — one pipeline
        simulation each, no search.
        """
        assert entry.prepared.signature is not None
        canonical = encode_plan(result, entry.prepared.signature,
                                entry.prepared.graph)
        for ticket, wjob, wprep in entry.waiters:
            ticket.mark_started()
            try:
                replayed = wjob.planner.searcher.replay(
                    wprep.graph, canonical, wprep.signature
                )
            except BaseException as exc:  # noqa: BLE001
                ticket.fail(exc)
                self.stats.count("failed")
                continue
            self.stats.count("replays")
            self._emit_waiter_spans(ticket)
            self._deliver(ticket, replayed, OUTCOME_COALESCED)

    # -- request tracing -----------------------------------------------------

    def _trace_context(self, ticket: PlanTicket):
        """(trace_id, parent_span) when this ticket is traced and a
        tracer is attached; ``None`` otherwise."""
        ctx = ticket.trace
        if self.tracer is None or not isinstance(ctx, dict):
            return None
        trace_id = str(ctx.get("id") or "")
        if not trace_id:
            return None
        return trace_id, str(ctx.get("span") or "")

    def _emit_leader_spans(self, ticket: PlanTicket,
                           result: SearchResult, outcome: str) -> None:
        """Server-side spans for a traced leader: queue-wait, the cache
        lookup, then the search or replay that served it — all tagged
        with the client's trace id so the obs merger can join them
        across the process boundary.

        Runs *before* delivery (which unblocks the remote handler), so
        the request's end is read from the clock here rather than the
        not-yet-stamped ticket.
        """
        ctx = self._trace_context(ticket)
        if ctx is None:
            return
        trace_id, parent = ctx
        done_s = time.monotonic()
        common = {"job": ticket.job, "replica": ticket.replica}
        self.tracer.record("queue-wait", ticket.submitted_s,
                           ticket.started_s, trace_id, parent=parent,
                           **common)
        lookup_end = min(done_s,
                         ticket.started_s + max(0.0, result.lookup_s))
        self.tracer.record("cache-lookup", ticket.started_s, lookup_end,
                           trace_id, parent=parent,
                           tier=result.cache_tier or "", **common)
        name = "replay" if result.cache_hit else "leader-search"
        self.tracer.record(name, lookup_end, done_s, trace_id,
                           parent=parent, tier=result.cache_tier or "",
                           outcome=outcome,
                           evaluations=result.evaluations, **common)

    def _emit_waiter_spans(self, ticket: PlanTicket) -> None:
        """Spans for a traced coalesced waiter: the wait on its leader,
        then its own fan-out replay.  Runs before delivery, like
        :meth:`_emit_leader_spans`."""
        ctx = self._trace_context(ticket)
        if ctx is None:
            return
        trace_id, parent = ctx
        done_s = time.monotonic()
        common = {"job": ticket.job, "replica": ticket.replica}
        self.tracer.record("coalesce-wait", ticket.submitted_s,
                           ticket.started_s, trace_id, parent=parent,
                           **common)
        self.tracer.record("replay", ticket.started_s, done_s,
                           trace_id, parent=parent, coalesced=True,
                           outcome=OUTCOME_COALESCED, **common)

    # -- observation / recalibration -----------------------------------------

    def observe(self, job_name: str,
                trace: Trace) -> Optional[RecalibrationEvent]:
        """Feed one executed iteration's trace into the recal loop.

        Returns the :class:`RecalibrationEvent` when this observation
        triggered a refit attempt (applied or not), else ``None``.
        """
        job = self._jobs[job_name]
        if job.recalibrator is None:
            return None
        if not job.recalibrator.observe(trace):  # TraceRing is thread-safe
            return None
        return self._recalibrate(job)

    def _recalibrate(self, job: RegisteredJob) -> RecalibrationEvent:
        """Refit one job's cost model from its observation window.

        The coordinate-descent fit runs on a window snapshot *without*
        holding ``job.lock`` — a refit must not stall the job's submits
        and searches; only the final model swap takes the lock (and
        drains in-flight searches, see
        :meth:`RegisteredJob.swap_cost_model`).

        The refit is fitted on the *older* part of the window only; the
        most recent ``policy.holdout`` traces are a validation window.
        A candidate model that clears ``min_improvement`` on its own fit
        window but scores *worse* than the current model on the held-out
        observations is rolled back (``event.rolled_back``,
        ``stats.recal_rollbacks``) — an overfit to noisy spans must not
        degrade future plans.
        """
        from repro.trace.recalibrate import (
            prediction_error,
            recalibrate_from_traces,
        )

        recal = job.recalibrator
        event = RecalibrationEvent(job=job.name, observation=recal.observed,
                                   applied=False)
        window = recal.ring.snapshot()
        fit_traces, holdout_traces = recal.split_window(window)
        samples = recal.window_samples(fit_traces)
        if len(samples) < recal.policy.min_samples:
            recal.events.append(event)
            return event
        report = recalibrate_from_traces(
            fit_traces,
            job.planner.cost_model,
            job.device,
            job.specs,
            tp=job.parallel.tp,
            sweeps=recal.policy.sweeps,
            samples=samples,
        )
        event.report = report
        if recal.worth_applying(report):
            holdout_samples = recal.window_samples(holdout_traces)
            if holdout_samples:
                event.holdout_samples = len(holdout_samples)
                event.holdout_error_before = prediction_error(
                    holdout_samples, job.planner.cost_model,
                    job.device, job.specs, tp=job.parallel.tp)
                event.holdout_error_after = prediction_error(
                    holdout_samples, report.calibrated,
                    job.device, job.specs, tp=job.parallel.tp)
                if event.holdout_error_after > event.holdout_error_before:
                    event.rolled_back = True
                    self.stats.count("recal_rollbacks")
                    recal.events.append(event)
                    return event
            with job.lock:
                old_model = job.planner.cost_model
                with self._mutex:
                    self._stale_contexts.add(job.planner.context_digest())
                    stale = set(self._stale_contexts)
                job.swap_cost_model(report.calibrated)
            # Sweep every context retired so far (one cache pass), not
            # just this one: a search in flight during a previous swap
            # may have stored its (already unreachable) plan after that
            # invalidation ran, and it would otherwise squat in the LRU
            # forever.
            event.invalidated = self.cache.invalidate_contexts(stale)
            event.applied = True
            event.old_model = old_model
            self.stats.count("recalibrations")
            self.stats.count("invalidated", event.invalidated)
        recal.events.append(event)
        return event

    # -- introspection -------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        with self._mutex:
            return self._queued

    def describe(self) -> str:
        return (
            f"plan service: {self.stats.describe()}; "
            f"cache: {self.cache.stats.describe()}"
        )
