"""Service telemetry: queue pressure, coalescing, latency percentiles.

All counters are updated under one lock by the service; ``snapshot()``
returns a JSON-serialisable dict for benchmarks and the CLI.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Dict, Optional, Sequence

#: Trailing completed requests the latency percentiles are computed
#: over — a long-lived service must not accumulate one float per
#: request forever.
LATENCY_WINDOW = 4096


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]); 0.0 on empty input."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1,
                      int(round(q / 100.0 * (len(ordered) - 1)))))
    return ordered[rank]


class ServiceStats:
    """Aggregate planning-service telemetry.

    Counters:
        submitted / rejected / completed / failed: request lifecycle.
        coalesced: requests served by fan-out from a concurrent
            identical request (no queue slot, no search of their own).
        searches: schedule searches actually run (cold or warm).
        replays: plans served by cache replay (exact hits + fan-outs).
        memo_hits: rollout evaluations answered by the kernel's
            per-search ordering memo, summed over every search the
            service ran (0 on the legacy-eval path).
        prewarms: background warm-search requests accepted.
        recalibrations: cost-model refits applied.
        invalidated: cache entries dropped by recalibration.

    Gauges:
        queue_depth / max_queue_depth: current and high-water pending
            leaders (coalesced waiters never occupy a slot).

    Latency percentiles cover the trailing ``LATENCY_WINDOW`` completed
    requests (bounded memory for long-lived services).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.submitted = 0
        self.rejected = 0
        self.completed = 0
        self.failed = 0
        self.coalesced = 0
        self.searches = 0
        self.replays = 0
        self.memo_hits = 0
        self.prewarms = 0
        self.recalibrations = 0
        self.invalidated = 0
        self.queue_depth = 0
        self.max_queue_depth = 0
        self._latencies_s: "deque[float]" = deque(maxlen=LATENCY_WINDOW)
        self._waits_s: "deque[float]" = deque(maxlen=LATENCY_WINDOW)

    # -- updates (service side) ----------------------------------------------

    def count(self, counter: str, delta: int = 1) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + delta)

    def queue_changed(self, depth: int) -> None:
        with self._lock:
            self.queue_depth = depth
            self.max_queue_depth = max(self.max_queue_depth, depth)

    def record_latency(self, latency_s: Optional[float],
                       wait_s: Optional[float]) -> None:
        with self._lock:
            if latency_s is not None:
                self._latencies_s.append(latency_s)
            if wait_s is not None:
                self._waits_s.append(wait_s)

    # -- reads ---------------------------------------------------------------

    @property
    def coalesce_rate(self) -> float:
        """Fraction of completed requests served by coalescing."""
        if self.completed == 0:
            return 0.0
        return self.coalesced / self.completed

    @property
    def search_rate(self) -> float:
        """Fraction of completed requests that needed their own search."""
        if self.completed == 0:
            return 0.0
        return self.searches / self.completed

    def latency_percentile_s(self, q: float) -> float:
        with self._lock:
            return percentile(self._latencies_s, q)

    def wait_percentile_s(self, q: float) -> float:
        with self._lock:
            return percentile(self._waits_s, q)

    def snapshot(self) -> Dict:
        with self._lock:
            latencies = list(self._latencies_s)
            waits = list(self._waits_s)
            counters = {
                name: getattr(self, name)
                for name in ("submitted", "rejected", "completed", "failed",
                             "coalesced", "searches", "replays", "memo_hits",
                             "prewarms", "recalibrations", "invalidated",
                             "queue_depth", "max_queue_depth")
            }
        counters["coalesce_rate"] = (
            counters["coalesced"] / counters["completed"]
            if counters["completed"] else 0.0
        )
        counters["plan_latency_p50_s"] = percentile(latencies, 50)
        counters["plan_latency_p99_s"] = percentile(latencies, 99)
        counters["queue_wait_p50_s"] = percentile(waits, 50)
        counters["queue_wait_p99_s"] = percentile(waits, 99)
        return counters

    def describe(self) -> str:
        snap = self.snapshot()
        return (
            f"{snap['completed']} plans "
            f"({snap['searches']} searches, {snap['replays']} replays, "
            f"{snap['coalesced']} coalesced = "
            f"{snap['coalesce_rate'] * 100:.0f}%), "
            f"{snap['rejected']} rejected, "
            f"queue peak {snap['max_queue_depth']}, "
            f"latency p50 {snap['plan_latency_p50_s'] * 1e3:.0f}ms "
            f"p99 {snap['plan_latency_p99_s'] * 1e3:.0f}ms"
        )
