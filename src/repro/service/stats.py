"""Service telemetry: queue pressure, coalescing, latency percentiles.

All counters are updated under one lock by the service; ``snapshot()``
returns a JSON-serialisable dict for benchmarks and the CLI.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Dict, Iterable, Optional, Sequence

#: Trailing completed requests the latency percentiles are computed
#: over — a long-lived service must not accumulate one float per
#: request forever.
LATENCY_WINDOW = 4096


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]); 0.0 on empty input."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1,
                      int(round(q / 100.0 * (len(ordered) - 1)))))
    return ordered[rank]


class ServiceStats:
    """Aggregate planning-service telemetry.

    Counters:
        submitted / rejected / completed / failed: request lifecycle.
        shed: requests failed because their propagated deadline passed
            before a worker could (or finished) serving them — counted
            *in addition to* ``failed`` (shed work is a failure mode,
            not a parallel lifecycle).
        coalesced: requests served by fan-out from a concurrent
            identical request (no queue slot, no search of their own).
        searches: schedule searches actually run (cold or warm).
        replays: plans served by cache replay (exact hits + fan-outs).
        memory_hits / disk_hits: exact cache hits broken down by the
            tier that served them (fan-out replays to coalesced waiters
            count under neither — they are accounted as ``coalesced``).
        memo_hits: rollout evaluations answered by the kernel's
            per-search ordering memo, summed over every search the
            service ran (0 on the legacy-eval path).
        prewarms: background warm-search requests accepted.
        recalibrations: cost-model refits applied.
        recal_rollbacks: refits that cleared the fit-window improvement
            bar but worsened held-out error and were rolled back.
        invalidated: cache entries dropped by recalibration.

    Gauges:
        queue_depth / max_queue_depth: current and high-water pending
            leaders (coalesced waiters never occupy a slot).

    Latency percentiles cover the trailing ``LATENCY_WINDOW`` completed
    requests (bounded memory for long-lived services).
    """

    #: Additive counters, in snapshot order.  ``queue_depth`` /
    #: ``max_queue_depth`` are gauges and handled separately by
    #: :meth:`merge`.
    COUNTERS = (
        "submitted", "rejected", "completed", "failed", "shed",
        "coalesced", "searches", "replays", "memory_hits", "disk_hits",
        "memo_hits", "prewarms", "recalibrations", "recal_rollbacks",
        "invalidated",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        for name in self.COUNTERS:
            setattr(self, name, 0)
        self.queue_depth = 0
        self.max_queue_depth = 0
        self._latencies_s: "deque[float]" = deque(maxlen=LATENCY_WINDOW)
        self._waits_s: "deque[float]" = deque(maxlen=LATENCY_WINDOW)

    # -- updates (service side) ----------------------------------------------

    def count(self, counter: str, delta: int = 1) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + delta)

    def queue_changed(self, depth: int) -> None:
        with self._lock:
            self.queue_depth = depth
            self.max_queue_depth = max(self.max_queue_depth, depth)

    def record_latency(self, latency_s: Optional[float],
                       wait_s: Optional[float]) -> None:
        with self._lock:
            if latency_s is not None:
                self._latencies_s.append(latency_s)
            if wait_s is not None:
                self._waits_s.append(wait_s)

    # -- reads ---------------------------------------------------------------

    @property
    def coalesce_rate(self) -> float:
        """Fraction of completed requests served by coalescing."""
        if self.completed == 0:
            return 0.0
        return self.coalesced / self.completed

    @property
    def search_rate(self) -> float:
        """Fraction of completed requests that needed their own search."""
        if self.completed == 0:
            return 0.0
        return self.searches / self.completed

    def latency_percentile_s(self, q: float) -> float:
        with self._lock:
            return percentile(self._latencies_s, q)

    def wait_percentile_s(self, q: float) -> float:
        with self._lock:
            return percentile(self._waits_s, q)

    def snapshot(self, include_samples: bool = False) -> Dict:
        """JSON-serialisable counters + derived rates.

        ``include_samples=True`` additionally exports the retained
        latency/wait samples (``latency_samples_s`` / ``wait_samples_s``)
        so a fleet aggregator can merge percentiles across shards
        instead of averaging pre-computed ones (see :meth:`merge`).
        """
        with self._lock:
            latencies = list(self._latencies_s)
            waits = list(self._waits_s)
            counters = {
                name: getattr(self, name)
                for name in self.COUNTERS + ("queue_depth",
                                             "max_queue_depth")
            }
        counters["coalesce_rate"] = (
            counters["coalesced"] / counters["completed"]
            if counters["completed"] else 0.0
        )
        counters["plan_latency_p50_s"] = percentile(latencies, 50)
        counters["plan_latency_p99_s"] = percentile(latencies, 99)
        counters["queue_wait_p50_s"] = percentile(waits, 50)
        counters["queue_wait_p99_s"] = percentile(waits, 99)
        if include_samples:
            counters["latency_samples_s"] = latencies
            counters["wait_samples_s"] = waits
        return counters

    # -- fleet aggregation ---------------------------------------------------

    @classmethod
    def from_snapshot(cls, snapshot: Dict) -> "ServiceStats":
        """Rebuild stats from a :meth:`snapshot` dict (e.g. one received
        over the stats RPC).  Derived rates are ignored — they are
        recomputed; samples are restored when the snapshot carried them."""
        stats = cls()
        for name in cls.COUNTERS + ("queue_depth", "max_queue_depth"):
            value = snapshot.get(name, 0)
            if isinstance(value, (int, float)):
                setattr(stats, name, int(value))
        for sample in snapshot.get("latency_samples_s", ()) or ():
            stats._latencies_s.append(float(sample))
        for sample in snapshot.get("wait_samples_s", ()) or ():
            stats._waits_s.append(float(sample))
        return stats

    @classmethod
    def merge(cls, parts: Iterable["ServiceStats"]) -> "ServiceStats":
        """Combine per-shard stats into one fleet-wide view.

        Counters sum; queue gauges combine as current-sum / peak-max
        (shard queues are independent, so the fleet's high-water mark is
        conservatively the worst single shard's).  Latency percentiles
        are recomputed from the union of the shards' retained sample
        windows — merging samples, not percentiles, because the p99 of
        per-shard p99s is not the fleet p99.  The merged window is still
        bounded (``LATENCY_WINDOW``): with many shards the newest
        samples win, mirroring each shard's own trailing window.
        """
        merged = cls()
        for part in parts:
            with part._lock:
                counters = {name: getattr(part, name)
                            for name in cls.COUNTERS}
                queue_depth = part.queue_depth
                max_queue_depth = part.max_queue_depth
                latencies = list(part._latencies_s)
                waits = list(part._waits_s)
            for name, value in counters.items():
                setattr(merged, name, getattr(merged, name) + value)
            merged.queue_depth += queue_depth
            merged.max_queue_depth = max(merged.max_queue_depth,
                                         max_queue_depth)
            merged._latencies_s.extend(latencies)
            merged._waits_s.extend(waits)
        return merged

    def export_metrics(self, registry) -> None:
        """Bridge the service counters into a metrics registry.

        Absolute values via ``set_value`` (idempotent across repeated
        ``metrics`` RPCs).  The tier-labelled
        ``repro_service_cache_hits_total`` series mirror
        ``memory_hits``/``disk_hits`` exactly — the scrape checker
        asserts their sum equals what the ``stats`` RPC reports.
        Latency histograms are rebuilt from the retained sample windows
        so fleet merges aggregate distributions, not percentiles.
        """
        with self._lock:
            counters = {name: getattr(self, name) for name in self.COUNTERS}
            queue_depth = self.queue_depth
            max_queue_depth = self.max_queue_depth
            latencies = list(self._latencies_s)
            waits = list(self._waits_s)
        hits = registry.counter(
            "repro_service_cache_hits_total",
            "Requests served by an exact cache hit, by serving tier",
            labels=("tier",))
        hits.set_value(counters["memory_hits"], tier="memory")
        hits.set_value(counters["disk_hits"], tier="disk")
        for name, value in counters.items():
            registry.counter(
                f"repro_service_{name}_total",
                f"ServiceStats counter {name!r}",
            ).set_value(value)
        registry.gauge(
            "repro_service_queue_depth",
            "Pending leaders currently queued",
        ).set(queue_depth)
        registry.gauge(
            "repro_service_max_queue_depth",
            "High-water queued leaders", agg="max",
        ).set(max_queue_depth)
        latency = registry.histogram(
            "repro_service_latency_seconds",
            "Submit-to-completion latency over the retained window",
            labels=("stage",))
        latency.set_from_values(latencies, stage="total")
        latency.set_from_values(waits, stage="queue")

    def describe(self) -> str:
        snap = self.snapshot()
        return (
            f"{snap['completed']} plans "
            f"({snap['searches']} searches, {snap['replays']} replays, "
            f"{snap['coalesced']} coalesced = "
            f"{snap['coalesce_rate'] * 100:.0f}%), "
            f"{snap['rejected']} rejected, "
            f"queue peak {snap['max_queue_depth']}, "
            f"latency p50 {snap['plan_latency_p50_s'] * 1e3:.0f}ms "
            f"p99 {snap['plan_latency_p99_s'] * 1e3:.0f}ms"
        )


class ConnectionStats:
    """Per-connection wire-protocol counters (one socket client)."""

    def __init__(self, conn_id: int, peer: str = "") -> None:
        self.conn_id = conn_id
        self.peer = peer
        self.requests = 0
        self.responses = 0
        self.errors = 0
        self.protocol_errors = 0
        self.bytes_in = 0
        self.bytes_out = 0

    def snapshot(self) -> Dict:
        return {
            "conn_id": self.conn_id,
            "peer": self.peer,
            "requests": self.requests,
            "responses": self.responses,
            "errors": self.errors,
            "protocol_errors": self.protocol_errors,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
        }


class RemoteStats:
    """Aggregate + per-connection telemetry of the socket server.

    Separate from :class:`ServiceStats` on purpose: the planning
    counters describe *requests* regardless of transport, these describe
    the *wire* — connections opened and reaped, frames that failed to
    parse, clients that vanished mid-request.  Per-connection counters
    live here until the connection is reaped, then fold into the
    aggregate totals (a long-lived server must not retain one record per
    dead client forever).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.connections_opened = 0
        self.connections_closed = 0
        self.disconnects_mid_request = 0
        self.requests = 0
        self.errors = 0
        self.protocol_errors = 0
        self.bytes_in = 0
        self.bytes_out = 0
        self._live: Dict[int, ConnectionStats] = {}
        self._next_conn_id = 0

    def open_connection(self, peer: str = "") -> ConnectionStats:
        with self._lock:
            conn = ConnectionStats(self._next_conn_id, peer)
            self._next_conn_id += 1
            self._live[conn.conn_id] = conn
            self.connections_opened += 1
            return conn

    def close_connection(self, conn: "ConnectionStats",
                         mid_request: bool = False) -> None:
        """Reap one connection, folding its counters into the totals."""
        with self._lock:
            self._live.pop(conn.conn_id, None)
            self.connections_closed += 1
            if mid_request:
                self.disconnects_mid_request += 1
            self.requests += conn.requests
            self.errors += conn.errors
            self.protocol_errors += conn.protocol_errors
            self.bytes_in += conn.bytes_in
            self.bytes_out += conn.bytes_out

    @property
    def connections_active(self) -> int:
        with self._lock:
            return len(self._live)

    def snapshot(self) -> Dict:
        with self._lock:
            live = [conn.snapshot() for conn in self._live.values()]
            totals = {
                "connections_opened": self.connections_opened,
                "connections_closed": self.connections_closed,
                "connections_active": len(self._live),
                "disconnects_mid_request": self.disconnects_mid_request,
                "requests": self.requests + sum(c["requests"] for c in live),
                "errors": self.errors + sum(c["errors"] for c in live),
                "protocol_errors": self.protocol_errors
                + sum(c["protocol_errors"] for c in live),
                "bytes_in": self.bytes_in + sum(c["bytes_in"] for c in live),
                "bytes_out": self.bytes_out
                + sum(c["bytes_out"] for c in live),
            }
        totals["connections"] = live
        return totals

    def export_metrics(self, registry) -> None:
        """Bridge wire totals (live connections folded in) into a
        metrics registry."""
        snap = self.snapshot()
        for name in ("connections_opened", "connections_closed",
                     "disconnects_mid_request", "requests", "errors",
                     "protocol_errors"):
            registry.counter(
                f"repro_rpc_{name}_total",
                f"RemoteStats counter {name!r}",
            ).set_value(snap[name])
        rpc_bytes = registry.counter(
            "repro_rpc_bytes_total",
            "Wire bytes by direction", labels=("direction",))
        rpc_bytes.set_value(snap["bytes_in"], direction="in")
        rpc_bytes.set_value(snap["bytes_out"], direction="out")
        registry.gauge(
            "repro_rpc_connections_active",
            "Currently connected socket clients",
        ).set(snap["connections_active"])
