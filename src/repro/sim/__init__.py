"""Training simulator (section 6.1 of the paper).

Operator-level analytical performance modelling: latency is the roofline
``max(a_f*N_fop/F, a_m*N_mem/B_mem, a_n*N_net/B_net)`` per operator, with
efficiency scaling factors ``a_*`` that can be calibrated against
measurements.  On top of that sit tensor-lifetime memory timelines and a
discrete-event simulator for whole pipeline schedules.
"""

from repro.sim.costmodel import CostModel, StageCost
from repro.sim.graph import Graph, OpNode, TensorNode
from repro.sim.kernel import P2PTable, simulate_order_kernel
from repro.sim.pipeline import PipelineSimResult, simulate_pipeline
from repro.sim.reference import ReferenceCostModel
from repro.sim.calibration import calibrate_cost_model

__all__ = [
    "CostModel",
    "StageCost",
    "Graph",
    "OpNode",
    "TensorNode",
    "P2PTable",
    "simulate_order_kernel",
    "simulate_pipeline",
    "PipelineSimResult",
    "ReferenceCostModel",
    "calibrate_cost_model",
]
