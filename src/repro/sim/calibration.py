"""Calibrating the analytic cost model against measurements (Fig. 13).

The paper aligns the simulator's efficiency scaling factors for matrix
multiplication and collective communication via offline microbenchmarks,
raising simulation accuracy to 97.6%.  This module implements the same
procedure: run a grid of single-layer microbenchmarks on the reference
("real") system, then least-squares fit the analytic model's efficiency
factors so predicted latencies match the measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.devices import GpuSpec
from repro.models.config import ModalityModuleSpec
from repro.sim.costmodel import CostModel
from repro.sim.reference import ReferenceCostModel


def default_factor_grids() -> Dict[str, np.ndarray]:
    """Search grids for the fit-able efficiency factors.

    The compute factor and saturation knee dominate, memory factor and
    launch overheads refine.  Shared by offline microbenchmark
    calibration and trace-driven recalibration
    (:mod:`repro.trace.recalibrate`).
    """
    return {
        "compute_efficiency": np.linspace(0.45, 0.75, 31),
        "saturation_tokens": np.linspace(800.0, 2600.0, 19),
        "memory_efficiency": np.linspace(0.55, 0.90, 15),
        "kernel_overhead_us": np.linspace(10.0, 40.0, 13),
        "stage_overhead_us": np.linspace(40.0, 160.0, 13),
    }


def fit_efficiency_factors(
    base: CostModel,
    error: Callable[[CostModel], float],
    grids: Optional[Dict[str, np.ndarray]] = None,
    sweeps: int = 3,
) -> Tuple[CostModel, float]:
    """Coordinate descent over efficiency factors minimising ``error``.

    Robust, dependency-free and deterministic; returns the best model
    found and its error.  ``error`` maps a candidate model to a scalar
    (typically mean relative absolute error against measurements).
    """
    grids = grids if grids is not None else default_factor_grids()
    best = base
    best_err = error(base)
    for _sweep in range(sweeps):
        for factor, grid in grids.items():
            for value in grid:
                candidate = best.with_factors(**{factor: float(value)})
                err = error(candidate)
                if err < best_err:
                    best, best_err = candidate, err
    return best, best_err


@dataclass
class CalibrationReport:
    """Fit outcome."""

    calibrated: CostModel
    samples: int
    mean_abs_error_before: float
    mean_abs_error_after: float

    @property
    def accuracy_after(self) -> float:
        return 1.0 - self.mean_abs_error_after


def _default_shapes() -> List[Tuple[int, int, int]]:
    """(layers, batch, seq) microbenchmark grid covering compute- and
    memory-bound regimes; multi-layer runs separate per-kernel launch
    overheads from per-stage dispatch overheads."""
    return [
        (1, 1, 512), (1, 1, 2048), (1, 1, 8192),
        (1, 2, 2704), (1, 8, 2704), (1, 16, 2704),
        (4, 1, 2048), (4, 1, 8192), (4, 8, 2704),
    ]


def calibrate_cost_model(
    base: CostModel,
    reference: ReferenceCostModel,
    device: GpuSpec,
    specs: Sequence[ModalityModuleSpec],
    tp: int = 1,
    shapes: Optional[Sequence[Tuple[int, int]]] = None,
    repeats: int = 3,
) -> CalibrationReport:
    """Fit efficiency factors from single-layer microbenchmarks.

    For each (module, shape) the reference system is "measured"
    ``repeats`` times; a least-squares fit over the roofline terms then
    yields calibrated compute/memory efficiency and per-kernel overhead.
    """
    shapes = list(shapes or _default_shapes())
    rows = []  # (spec, layers, batch, seq, measured_ms)
    for spec in specs:
        for layers, batch, seq in shapes:
            truth = reference.stage_cost(device, spec, layers, batch, seq,
                                         tp=tp).forward_ms
            measured = np.mean(
                [reference.jitter(0, truth) for _ in range(repeats)]
            )
            rows.append((spec, layers, batch, seq, float(measured)))

    measured = np.array([r[4] for r in rows])

    def predict(model: CostModel) -> np.ndarray:
        return np.array([
            model.stage_cost(device, spec, layers, batch, seq, tp=tp).forward_ms
            for spec, layers, batch, seq, _m in rows
        ])

    def error(model: CostModel) -> float:
        return float(np.mean(np.abs(predict(model) - measured) / measured))

    before_err = error(base)
    best, best_err = fit_efficiency_factors(base, error)
    # Network factor: align against the reference directly (collectives).
    best = best.with_factors(network_efficiency=reference.network_efficiency)

    return CalibrationReport(
        calibrated=best,
        samples=len(rows),
        mean_abs_error_before=before_err,
        mean_abs_error_after=best_err,
    )
