"""Roofline cost model for operator and stage latencies.

Every operator is characterised by FLOPs, HBM bytes and network bytes;
its latency is the max of the three resource times, each scaled by an
efficiency factor (section 6.1).  Fixed per-kernel and per-stage overheads
model launch latency — the term that makes very small sub-microbatches
inefficient (Fig. 9).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.cluster.devices import GpuSpec
from repro.models.config import ModalityModuleSpec
from repro.models.flops import LayerWork, boundary_p2p_bytes, chunk_work


@dataclass(frozen=True)
class StageCost:
    """Latency and memory of one pipeline stage execution.

    Attributes:
        forward_ms: Forward compute latency.
        backward_ms: Backward compute latency (no recomputation).
        act_bytes: Activations held from forward until backward completes.
        act_ckpt_bytes: Residency under full activation checkpointing.
        recompute_ms: Extra backward latency if checkpointing (one extra
            forward pass).
        offload_ms: One-way host transfer time for offloaded activations.
        p2p_bytes: Boundary activation bytes sent to the next rank.
    """

    forward_ms: float
    backward_ms: float
    act_bytes: float
    act_ckpt_bytes: float
    recompute_ms: float
    offload_ms: float
    p2p_bytes: float


@dataclass(frozen=True)
class CostModel:
    """Analytic operator/stage latency model with efficiency factors.

    Attributes:
        compute_efficiency: Fraction of peak FLOPs attainable by large,
            saturating GEMMs (``a_fop``).
        memory_efficiency: Fraction of peak HBM bandwidth (``a_mem``).
        network_efficiency: Fraction of peak link bandwidth (``a_net``).
        saturation_tokens: GEMM utilisation ramps as
            ``tokens / (tokens + saturation_tokens)`` — small batches
            underutilise tensor cores, which is what makes very small
            sub-microbatches inefficient (Fig. 9 of the paper).
        kernel_overhead_us: Fixed launch cost per transformer block.
        stage_overhead_us: Fixed dispatch cost per pipeline stage
            (scheduling, P2P kernel setup).
        backward_ratio: Backward/forward compute ratio (dgrad + wgrad).
    """

    compute_efficiency: float = 0.62
    memory_efficiency: float = 0.78
    network_efficiency: float = 0.80
    saturation_tokens: float = 1700.0
    kernel_overhead_us: float = 18.0
    stage_overhead_us: float = 60.0
    backward_ratio: float = 2.0

    def compute_saturation(self, tokens: float) -> float:
        """GEMM utilisation ramp for a workload of ``tokens`` rows."""
        if tokens <= 0:
            return 1.0
        return tokens / (tokens + self.saturation_tokens)

    def op_latency_ms(
        self,
        device: GpuSpec,
        flops: float = 0.0,
        mem_bytes: float = 0.0,
        net_bytes: float = 0.0,
        net_bandwidth: float | None = None,
        tokens: float = 0.0,
    ) -> float:
        """Roofline latency of a single operator in milliseconds."""
        effective = self.compute_efficiency * self.compute_saturation(tokens)
        compute_s = flops / (device.flops * effective)
        memory_s = mem_bytes / (device.memory_bandwidth * self.memory_efficiency)
        bandwidth = net_bandwidth if net_bandwidth is not None else device.nvlink_bandwidth
        network_s = net_bytes / (bandwidth * self.network_efficiency)
        return max(compute_s, memory_s, network_s) * 1e3

    def work_latency_ms(
        self,
        device: GpuSpec,
        work: LayerWork,
        num_layers: int,
        tokens: float = 0.0,
    ) -> float:
        """Forward latency of a chunk described by aggregate ``work``."""
        compute = self.op_latency_ms(
            device,
            flops=work.flops,
            mem_bytes=work.weight_bytes + work.act_traffic_bytes,
            tokens=tokens,
        )
        comm = self.op_latency_ms(device, net_bytes=work.tp_comm_bytes)
        overhead = num_layers * self.kernel_overhead_us * 1e-3
        return compute + comm + overhead

    def stage_cost(
        self,
        device: GpuSpec,
        spec: ModalityModuleSpec,
        num_layers: int,
        batch: int,
        seq: int,
        tp: int = 1,
        context: int = 0,
    ) -> StageCost:
        """Full cost of one pipeline stage (a model chunk on one rank)."""
        work = chunk_work(spec, num_layers, batch, seq, tp, context)
        fw = self.work_latency_ms(device, work, num_layers, tokens=batch * seq)
        fw += self.stage_overhead_us * 1e-3
        bw = fw * self.backward_ratio
        recompute = fw  # checkpointing replays the forward pass
        # Offloading streams the stored activations over PCIe (one way).
        offload_ms = (
            work.act_store_bytes / (device.pcie_bandwidth * self.network_efficiency) * 1e3
        )
        return StageCost(
            forward_ms=fw,
            backward_ms=bw,
            act_bytes=work.act_store_bytes,
            act_ckpt_bytes=work.act_ckpt_bytes,
            recompute_ms=recompute,
            offload_ms=offload_ms,
            p2p_bytes=boundary_p2p_bytes(spec, batch, seq),
        )

    def p2p_latency_ms(self, bytes_: float, bandwidth: float) -> float:
        """Point-to-point transfer latency over a link of ``bandwidth`` B/s."""
        if bytes_ <= 0:
            return 0.0
        latency_us = 8.0  # per-message launch + wire latency
        return bytes_ / (bandwidth * self.network_efficiency) * 1e3 + latency_us * 1e-3

    def collective_allreduce_ms(
        self, device: GpuSpec, payload_bytes: float, group: int
    ) -> float:
        """Ring all-reduce latency within an NVLink group."""
        if group <= 1 or payload_bytes <= 0:
            return 0.0
        moved = 2.0 * (group - 1) / group * payload_bytes
        return moved / (device.nvlink_bandwidth * self.network_efficiency) * 1e3

    def with_factors(self, **kwargs) -> "CostModel":
        """Return a copy with some efficiency factors replaced."""
        return replace(self, **kwargs)
