"""Operator/tensor DAG representation (section 6.1 of the paper).

The simulator "constructs directed acyclic graphs with two node types:
operator nodes representing low-level GPU operations and tensor nodes
corresponding to data buffers".  Operators carry resource counts; tensors
carry byte sizes.  :meth:`Graph.run` populates operator timestamps in
topological order and derives tensor lifetimes, from which memory
timelines and peak usage follow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cluster.devices import GpuSpec
from repro.sim.costmodel import CostModel


@dataclass
class OpNode:
    """A low-level operation (GEMM, attention kernel, collective, ...).

    Attributes:
        name: Unique operator name within its graph.
        flops: Floating-point operations.
        mem_bytes: HBM bytes moved.
        net_bytes: Network bytes moved (collectives / P2P).
        device: Logical execution device index (one timeline per device).
        inputs: Names of tensor nodes read.
        outputs: Names of tensor nodes written.
    """

    name: str
    flops: float = 0.0
    mem_bytes: float = 0.0
    net_bytes: float = 0.0
    device: int = 0
    inputs: List[str] = field(default_factory=list)
    outputs: List[str] = field(default_factory=list)


@dataclass
class TensorNode:
    """A data buffer with a byte size and a producing operator."""

    name: str
    bytes: float
    device: int = 0
    persistent: bool = False  # model parameters live forever


@dataclass
class GraphRunResult:
    """Timestamps and memory accounting from one graph execution."""

    op_start_ms: Dict[str, float]
    op_end_ms: Dict[str, float]
    total_ms: float
    tensor_lifetime: Dict[str, Tuple[float, float]]
    peak_memory_bytes: Dict[int, float]
    memory_timeline: Dict[int, List[Tuple[float, float]]]


class Graph:
    """An operator/tensor DAG with analytic execution."""

    def __init__(self) -> None:
        self._ops: Dict[str, OpNode] = {}
        self._tensors: Dict[str, TensorNode] = {}
        self._producer: Dict[str, str] = {}
        self._consumers: Dict[str, List[str]] = {}
        self._order: List[str] = []

    # -- construction ------------------------------------------------------

    def add_tensor(self, tensor: TensorNode) -> TensorNode:
        if tensor.name in self._tensors:
            raise ValueError(f"duplicate tensor {tensor.name!r}")
        self._tensors[tensor.name] = tensor
        self._consumers.setdefault(tensor.name, [])
        return tensor

    def add_op(self, op: OpNode) -> OpNode:
        """Add an operator; its inputs must already exist."""
        if op.name in self._ops:
            raise ValueError(f"duplicate op {op.name!r}")
        for tname in op.inputs:
            if tname not in self._tensors:
                raise ValueError(f"op {op.name!r} reads unknown tensor {tname!r}")
            self._consumers[tname].append(op.name)
        for tname in op.outputs:
            if tname not in self._tensors:
                raise ValueError(f"op {op.name!r} writes unknown tensor {tname!r}")
            if tname in self._producer:
                raise ValueError(f"tensor {tname!r} already has a producer")
            self._producer[tname] = op.name
        self._ops[op.name] = op
        self._order.append(op.name)
        return op

    @property
    def num_ops(self) -> int:
        return len(self._ops)

    @property
    def num_tensors(self) -> int:
        return len(self._tensors)

    def op(self, name: str) -> OpNode:
        return self._ops[name]

    def tensor(self, name: str) -> TensorNode:
        return self._tensors[name]

    # -- execution ---------------------------------------------------------

    def _topological_order(self) -> List[str]:
        """Kahn's algorithm over op->tensor->op edges."""
        indegree: Dict[str, int] = {}
        for name, op in self._ops.items():
            deps = {self._producer[t] for t in op.inputs if t in self._producer}
            indegree[name] = len(deps)
        dependents: Dict[str, List[str]] = {name: [] for name in self._ops}
        for name, op in self._ops.items():
            for t in op.inputs:
                producer = self._producer.get(t)
                if producer is not None:
                    dependents[producer].append(name)
        # Stable order: respect insertion order among ready ops.
        ready = [n for n in self._order if indegree[n] == 0]
        out: List[str] = []
        while ready:
            name = ready.pop(0)
            out.append(name)
            for dep in dependents[name]:
                indegree[dep] -= 1
                if indegree[dep] == 0:
                    ready.append(dep)
        if len(out) != len(self._ops):
            raise ValueError("graph contains a cycle")
        return out

    def run(
        self,
        cost: CostModel,
        device: GpuSpec,
        net_bandwidth: Optional[float] = None,
    ) -> GraphRunResult:
        """Populate timestamps topologically and derive memory timelines.

        Each logical device executes its ops serially in dependency
        order; ops on different devices overlap, subject to tensor
        dependencies.
        """
        order = self._topological_order()
        device_clock: Dict[int, float] = {}
        start: Dict[str, float] = {}
        end: Dict[str, float] = {}
        for name in order:
            op = self._ops[name]
            dep_ready = 0.0
            for t in op.inputs:
                producer = self._producer.get(t)
                if producer is not None:
                    dep_ready = max(dep_ready, end[producer])
            clock = device_clock.get(op.device, 0.0)
            begin = max(clock, dep_ready)
            latency = cost.op_latency_ms(
                device,
                flops=op.flops,
                mem_bytes=op.mem_bytes,
                net_bytes=op.net_bytes,
                net_bandwidth=net_bandwidth,
            )
            start[name] = begin
            end[name] = begin + latency
            device_clock[op.device] = end[name]

        total = max(end.values()) if end else 0.0
        lifetime = self._tensor_lifetimes(start, end, total)
        peak, timeline = self._memory_accounting(lifetime)
        return GraphRunResult(
            op_start_ms=start,
            op_end_ms=end,
            total_ms=total,
            tensor_lifetime=lifetime,
            peak_memory_bytes=peak,
            memory_timeline=timeline,
        )

    def _tensor_lifetimes(
        self,
        start: Dict[str, float],
        end: Dict[str, float],
        total: float,
    ) -> Dict[str, Tuple[float, float]]:
        """A tensor lives from its producer's start to its last read."""
        lifetime: Dict[str, Tuple[float, float]] = {}
        for tname, tensor in self._tensors.items():
            if tensor.persistent:
                lifetime[tname] = (0.0, total)
                continue
            producer = self._producer.get(tname)
            born = start[producer] if producer is not None else 0.0
            readers = self._consumers.get(tname, [])
            died = max((end[r] for r in readers), default=born)
            lifetime[tname] = (born, max(died, born))
        return lifetime

    def _memory_accounting(
        self, lifetime: Dict[str, Tuple[float, float]]
    ) -> Tuple[Dict[int, float], Dict[int, List[Tuple[float, float]]]]:
        """Sweep-line peak memory and timeline per device."""
        events: Dict[int, List[Tuple[float, float]]] = {}
        for tname, (born, died) in lifetime.items():
            tensor = self._tensors[tname]
            events.setdefault(tensor.device, []).append((born, tensor.bytes))
            events.setdefault(tensor.device, []).append((died, -tensor.bytes))
        peaks: Dict[int, float] = {}
        timelines: Dict[int, List[Tuple[float, float]]] = {}
        for dev, evs in events.items():
            evs.sort(key=lambda e: (e[0], -e[1]))
            current = 0.0
            peak = 0.0
            timeline: List[Tuple[float, float]] = []
            for t, delta in evs:
                current += delta
                peak = max(peak, current)
                timeline.append((t, current))
            peaks[dev] = peak
            timelines[dev] = timeline
        return peaks, timelines


def build_chunk_graph(
    spec,
    num_layers: int,
    batch: int,
    seq: int,
    tp: int = 1,
    context: int = 0,
    device_index: int = 0,
) -> Graph:
    """Operator-level graph of one forward model-chunk execution.

    Each block expands to its GEMM / attention / collective operators,
    connected through activation tensors, matching the paper's
    operator-node + tensor-node structure.
    """
    from repro.models.config import ModalityModuleSpec
    from repro.models import flops as F

    assert isinstance(spec, ModalityModuleSpec)
    g = Graph()
    h = spec.hidden_size
    tokens = batch * seq
    act_bytes = tokens * h * F.BYTES_PER_ELEMENT
    g.add_tensor(TensorNode("input", act_bytes, device_index))
    g.add_tensor(
        TensorNode(
            "weights",
            num_layers * F.layer_weight_bytes(spec, tp),
            device_index,
            persistent=True,
        )
    )
    prev = "input"
    kv = spec.kv_channels
    for layer in range(num_layers):
        pre = f"l{layer}."
        qkv_flops = 2.0 * tokens * h * (h + 2.0 * kv) / tp
        attn_flops = 4.0 * batch * seq * seq * h / tp
        proj_flops = 2.0 * tokens * h * h / tp
        mlp_mats = 3.0 if spec.gated_mlp else 2.0
        mlp_flops = 2.0 * tokens * h * spec.ffn_hidden_size * mlp_mats / tp
        qkv_bytes = (F.layer_weight_bytes(spec, tp) * 0.3 + 4 * act_bytes / tp)
        for tname in (pre + "qkv", pre + "attn", pre + "proj", pre + "mlp"):
            g.add_tensor(TensorNode(tname, act_bytes / max(tp, 1), device_index))
        g.add_op(OpNode(pre + "qkv_gemm", flops=qkv_flops, mem_bytes=qkv_bytes,
                        device=device_index, inputs=[prev], outputs=[pre + "qkv"]))
        g.add_op(OpNode(pre + "attention", flops=attn_flops,
                        mem_bytes=4 * act_bytes / tp, device=device_index,
                        inputs=[pre + "qkv"], outputs=[pre + "attn"]))
        g.add_op(OpNode(pre + "out_proj", flops=proj_flops,
                        mem_bytes=2 * act_bytes / tp, device=device_index,
                        inputs=[pre + "attn"], outputs=[pre + "proj"]))
        if tp > 1:
            g.add_tensor(TensorNode(pre + "proj_ar", act_bytes, device_index))
            g.add_op(OpNode(pre + "attn_allreduce",
                            net_bytes=2.0 * (tp - 1) / tp * act_bytes,
                            device=device_index, inputs=[pre + "proj"],
                            outputs=[pre + "proj_ar"]))
            proj_out = pre + "proj_ar"
        else:
            proj_out = pre + "proj"
        mlp_bytes = F.layer_weight_bytes(spec, tp) * 0.7 + 4 * act_bytes / tp
        g.add_op(OpNode(pre + "mlp_gemms", flops=mlp_flops, mem_bytes=mlp_bytes,
                        device=device_index, inputs=[proj_out],
                        outputs=[pre + "mlp"]))
        if tp > 1:
            g.add_tensor(TensorNode(pre + "mlp_ar", act_bytes, device_index))
            g.add_op(OpNode(pre + "mlp_allreduce",
                            net_bytes=2.0 * (tp - 1) / tp * act_bytes,
                            device=device_index, inputs=[pre + "mlp"],
                            outputs=[pre + "mlp_ar"]))
            prev = pre + "mlp_ar"
        else:
            prev = pre + "mlp"
    return g
