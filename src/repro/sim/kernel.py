"""Fast evaluation kernels shared by the interleaver and the simulator.

Two pieces live here, both pure functions of immutable inputs:

* :class:`P2PTable` — the single transfer-latency lookup path.  The
  greedy interleaver, the discrete-event simulator and the trace
  builders all charge point-to-point hops through one memoised table
  (bandwidth resolved once per rank pair, latency once per
  ``(src, dst, nbytes)``), replacing the copy-pasted per-module
  closures that each kept a private cache.
* :func:`simulate_order_kernel` — a single-topological-pass replacement
  for the simulator's round-robin retry loop.  Stage timestamps are a
  longest-path computation over the union of dependency edges and
  per-rank order edges; with no jitter callback the values are
  independent of visit order, so one Kahn pass over the combined DAG
  computes every ``start``/``end`` exactly once (the retry loop
  re-scans blocked ranks every sweep).  The retry loop remains in
  :mod:`repro.sim.pipeline` as the jittered/legacy oracle.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.cluster.topology import ClusterSpec, ParallelConfig
from repro.progress import format_stuck_ranks
from repro.sim.costmodel import CostModel


class P2PTable:
    """Memoised point-to-point transfer latencies between pipeline ranks.

    One bandwidth lookup per ``(src, dst)`` rank pair, one latency
    computation per distinct ``(src, dst, nbytes)`` — shared by every
    consumer of one (cluster, parallel, cost model) context, so the
    interleaver and the simulator can never disagree on a hop's cost.
    """

    __slots__ = ("cluster", "parallel", "cost_model", "_bandwidth", "_cache")

    def __init__(
        self,
        cluster: ClusterSpec,
        parallel: ParallelConfig,
        cost_model: CostModel,
    ) -> None:
        self.cluster = cluster
        self.parallel = parallel
        self.cost_model = cost_model
        self._bandwidth: Dict[Tuple[int, int], float] = {}
        self._cache: Dict[Tuple[int, int, float], float] = {}

    def bandwidth(self, src: int, dst: int) -> float:
        """Link bandwidth (bytes/s) between two pipeline ranks, memoised."""
        key = (src, dst)
        value = self._bandwidth.get(key)
        if value is None:
            value = self.cluster.p2p_bandwidth(self.parallel, src, dst)
            self._bandwidth[key] = value
        return value

    def latency_ms(self, src: int, dst: int, nbytes: float) -> float:
        """Transfer latency of ``nbytes`` from rank ``src`` to ``dst``."""
        if src == dst or nbytes <= 0:
            return 0.0
        key = (src, dst, nbytes)
        value = self._cache.get(key)
        if value is None:
            value = self.cost_model.p2p_latency_ms(
                nbytes, self.bandwidth(src, dst)
            )
            self._cache[key] = value
        return value


def simulate_order_kernel(
    graph,
    order: Sequence[Sequence[int]],
    p2p: P2PTable,
    error_cls: type = RuntimeError,
) -> Tuple[List[float], List[float], List[float]]:
    """Timestamp a scheduled iteration in one topological pass.

    Args:
        graph: The :class:`~repro.core.stages.IterationGraph`.
        order: Per-rank uid execution order (already validated).
        p2p: Shared transfer-latency table.
        error_cls: Exception raised when the order and the dependency
            DAG form a cycle (the simulator passes its
            ``ScheduleDeadlockError``).

    Returns:
        ``(start_ms, end_ms, busy_ms_per_rank)``.
    """
    stages = graph.stages
    n = len(stages)
    start = [0.0] * n
    end = [0.0] * n
    busy = [0.0] * graph.num_ranks

    # In-degree over the combined DAG: dependency edges plus the implicit
    # order edge from each stage to its per-rank successor.
    indeg = [len(s.deps) for s in stages]
    prev_in_order = [-1] * n
    next_in_order = [-1] * n
    for uids in order:
        for a, b in zip(uids, uids[1:]):
            prev_in_order[b] = a
            next_in_order[a] = b
            indeg[b] += 1

    ready = [uid for uid in range(n) if indeg[uid] == 0]
    dependents = graph.dependents
    processed = 0
    while ready:
        uid = ready.pop()
        stage = stages[uid]
        arrival = 0.0
        for dep in stage.deps:
            t = end[dep] + p2p.latency_ms(
                stages[dep].rank, stage.rank, stage.p2p_bytes
            )
            if t > arrival:
                arrival = t
        prev = prev_in_order[uid]
        if prev >= 0 and end[prev] > arrival:
            arrival = end[prev]
        latency = graph.latency_ms(stage)
        start[uid] = arrival
        end[uid] = arrival + latency
        busy[stage.rank] += latency
        processed += 1
        succ = next_in_order[uid]
        if succ >= 0:
            indeg[succ] -= 1
            if indeg[succ] == 0:
                ready.append(succ)
        for succ in dependents[uid]:
            indeg[succ] -= 1
            if indeg[succ] == 0:
                ready.append(succ)

    if processed < n:
        done = [indeg[uid] == 0 for uid in range(n)]
        waiting = []
        for rank, uids in enumerate(order):
            for uid in uids:
                if not done[uid]:
                    waiting.append((rank, uid))
                    break
        raise error_cls("no rank can progress; waiting stages: "
                        + format_stuck_ranks(waiting, "stage"))
    return start, end, busy
