"""Discrete-event simulation of a scheduled pipeline iteration.

Given an :class:`~repro.core.stages.IterationGraph` and a per-rank stage
order, computes start/end timestamps (longest-path over order edges and
dependency edges, with P2P transfer latencies), per-rank bubble time, and
activation-memory timelines.  This is the quantity DIP's searcher
optimises and what all baseline schedules are evaluated with.

Two execution engines produce the timestamps:

* the **kernel** path (:func:`repro.sim.kernel.simulate_order_kernel`)
  — a single topological pass over the combined dependency + order DAG,
  used whenever latencies are deterministic (no ``jitter``);
* the **legacy** round-robin retry loop — kept as the differential-test
  oracle and as the only engine able to apply a per-stage ``jitter``
  callback (jittered latencies make timestamps visit-order dependent).

Both charge P2P hops through one shared
:class:`~repro.sim.kernel.P2PTable`, which trace emission consumes too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cluster.topology import ClusterSpec, ParallelConfig
from repro.progress import drive_round_robin, format_stuck_ranks
from repro.sim.costmodel import CostModel
from repro.sim.kernel import P2PTable, simulate_order_kernel
from repro.trace.events import TraceCollector, emit_sim_spans


class ScheduleDeadlockError(RuntimeError):
    """The per-rank order and the dependency DAG form a cycle."""


@dataclass
class PipelineSimResult:
    """Outcome of simulating one pipeline iteration.

    Attributes:
        total_ms: Iteration makespan (max stage end over all ranks).
        start_ms: Per-stage start time, indexed by uid.
        end_ms: Per-stage end time, indexed by uid.
        busy_ms_per_rank: Total compute time per rank.
        bubble_ratio: Idle fraction across ranks within the makespan.
        peak_memory_bytes: Peak (static + activation) bytes per rank.
        memory_timeline: Per rank, (time, bytes) steps of total usage.
        memory_exceeded: Ranks whose peak exceeded the graph's limit.
    """

    total_ms: float
    start_ms: List[float]
    end_ms: List[float]
    busy_ms_per_rank: List[float]
    bubble_ratio: float
    peak_memory_bytes: List[float]
    memory_timeline: List[List[Tuple[float, float]]] = field(default_factory=list)
    memory_exceeded: List[int] = field(default_factory=list)


def simulate_pipeline(
    graph,
    order: Sequence[Sequence[int]],
    cluster: ClusterSpec,
    parallel: ParallelConfig,
    cost_model: Optional[CostModel] = None,
    jitter: Optional[Callable[[int, float], float]] = None,
    track_memory: bool = True,
    collector: Optional[TraceCollector] = None,
    p2p: Optional[P2PTable] = None,
    legacy: bool = False,
) -> PipelineSimResult:
    """Simulate a scheduled iteration.

    Args:
        graph: The iteration's :class:`IterationGraph`.
        order: For each pipeline rank, the uid execution order.
        cluster: Hardware description (P2P bandwidths).
        parallel: Parallel layout (maps pipeline ranks to the fabric).
        cost_model: Latency model for P2P transfers.
        jitter: Optional per-stage latency perturbation
            ``(uid, base_ms) -> ms`` — used by the reference "hardware"
            simulator.  Forces the legacy retry-loop engine.
        track_memory: Compute memory timelines (small extra cost).
        collector: Optional :class:`~repro.trace.events.TraceCollector`
            the executed timeline (compute + P2P comm spans) is emitted
            into.
        p2p: Optional shared :class:`~repro.sim.kernel.P2PTable`
            (e.g. the searcher's, so one search keeps one transfer
            cache); built locally when omitted.
        legacy: Force the round-robin retry loop even without jitter —
            the differential-test oracle and ``--legacy-eval`` path.

    Raises:
        ScheduleDeadlockError: if the order contradicts the dependencies.
        ValueError: if ``order`` does not cover every stage exactly once.
    """
    cost_model = cost_model or CostModel()
    _check_order_covers(graph, order)
    if p2p is None:
        p2p = P2PTable(cluster, parallel, cost_model)

    if jitter is None and not legacy:
        start, end, busy = simulate_order_kernel(
            graph, order, p2p, error_cls=ScheduleDeadlockError
        )
    else:
        start, end, busy = _simulate_retry_loop(graph, order, p2p, jitter)

    total = max(end) if end else 0.0
    if total > 0:
        idle = sum(total - b for b in busy)
        bubble = idle / (total * graph.num_ranks)
    else:
        bubble = 0.0

    peaks: List[float] = list(graph.static_bytes_per_rank)
    timelines: List[List[Tuple[float, float]]] = [[] for _ in range(graph.num_ranks)]
    exceeded: List[int] = []
    if track_memory:
        peaks, timelines, exceeded = _memory_accounting(graph, start, end)

    if collector is not None:
        collector.meta.total_ms = total
        emit_sim_spans(collector, graph, start, end, p2p.latency_ms)

    return PipelineSimResult(
        total_ms=total,
        start_ms=start,
        end_ms=end,
        busy_ms_per_rank=busy,
        bubble_ratio=bubble,
        peak_memory_bytes=peaks,
        memory_timeline=timelines,
        memory_exceeded=exceeded,
    )


def _simulate_retry_loop(
    graph,
    order: Sequence[Sequence[int]],
    p2p: P2PTable,
    jitter: Optional[Callable[[int, float], float]],
) -> Tuple[List[float], List[float], List[float]]:
    """The original round-robin engine (jitter support + kernel oracle)."""
    num_stages = len(graph.stages)
    start = [0.0] * num_stages
    end = [0.0] * num_stages
    done = [False] * num_stages
    pointer = [0] * graph.num_ranks
    rank_clock = [0.0] * graph.num_ranks
    busy = [0.0] * graph.num_ranks
    p2p_ms = p2p.latency_ms

    def advance_rank(rank: int) -> int:
        completed = 0
        while pointer[rank] < len(order[rank]):
            uid = order[rank][pointer[rank]]
            stage = graph.stages[uid]
            ready = 0.0
            blocked = False
            for dep in stage.deps:
                if not done[dep]:
                    blocked = True
                    break
                dep_stage = graph.stages[dep]
                arrival = end[dep] + p2p_ms(
                    dep_stage.rank, stage.rank, stage.p2p_bytes
                )
                ready = max(ready, arrival)
            if blocked:
                break
            base = graph.latency_ms(stage)
            latency = jitter(uid, base) if jitter is not None else base
            begin = max(rank_clock[rank], ready)
            start[uid] = begin
            end[uid] = begin + latency
            rank_clock[rank] = end[uid]
            busy[rank] += latency
            done[uid] = True
            pointer[rank] += 1
            completed += 1
        return completed

    def describe_stuck() -> str:
        waiting = [
            (r, order[r][pointer[r]])
            for r in range(graph.num_ranks)
            if pointer[r] < len(order[r])
        ]
        return ("no rank can progress; waiting stages: "
                + format_stuck_ranks(waiting, "stage"))

    drive_round_robin(graph.num_ranks, num_stages, advance_rank,
                      describe_stuck, ScheduleDeadlockError)
    return start, end, busy


def _check_order_covers(graph, order: Sequence[Sequence[int]]) -> None:
    if len(order) != graph.num_ranks:
        raise ValueError(
            f"order has {len(order)} ranks, graph has {graph.num_ranks}"
        )
    seen = set()
    for rank, uids in enumerate(order):
        for uid in uids:
            if uid in seen:
                raise ValueError(f"stage {uid} appears twice in the order")
            seen.add(uid)
            if graph.stages[uid].rank != rank:
                raise ValueError(
                    f"stage {uid} belongs to rank {graph.stages[uid].rank}, "
                    f"listed under rank {rank}"
                )
    if len(seen) != len(graph.stages):
        missing = len(graph.stages) - len(seen)
        raise ValueError(f"order misses {missing} stages")


def _memory_accounting(
    graph, start: List[float], end: List[float]
) -> Tuple[List[float], List[List[Tuple[float, float]]], List[int]]:
    """Activation residency: forward end -> paired backward end."""
    events: List[List[Tuple[float, float]]] = [[] for _ in range(graph.num_ranks)]
    bw_end_by_pair: Dict[int, float] = {}
    for stage in graph.stages:
        if not stage.is_forward and stage.releases_memory:
            previous = bw_end_by_pair.get(stage.pair_id, 0.0)
            bw_end_by_pair[stage.pair_id] = max(previous, end[stage.uid])
    for stage in graph.stages:
        if not stage.is_forward:
            continue
        resident = graph.resident_bytes(stage)
        if resident <= 0:
            continue
        born = end[stage.uid]
        died = bw_end_by_pair.get(stage.pair_id, born)
        events[stage.rank].append((born, resident))
        events[stage.rank].append((max(died, born), -resident))

    peaks: List[float] = []
    timelines: List[List[Tuple[float, float]]] = []
    exceeded: List[int] = []
    for rank in range(graph.num_ranks):
        static = graph.static_bytes_per_rank[rank]
        evs = sorted(events[rank], key=lambda e: (e[0], -e[1]))
        current = static
        peak = static
        timeline: List[Tuple[float, float]] = [(0.0, static)]
        for t, delta in evs:
            current += delta
            peak = max(peak, current)
            timeline.append((t, current))
        peaks.append(peak)
        timelines.append(timeline)
        if peak > graph.memory_limit_bytes:
            exceeded.append(rank)
    return peaks, timelines, exceeded
