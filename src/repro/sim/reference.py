"""Reference "ground-truth hardware" simulator.

The paper validates its analytic simulator against real GPU executions
(Fig. 13).  With no GPUs available, this module provides the stand-in
ground truth: a cost model with *hidden* per-operator-class efficiency
factors (drawn once from a seed) plus small log-normal measurement noise.
The analytic model's default factors deviate from the hidden ones by
design — producing the ~10% pre-calibration error the paper reports —
and calibration (:mod:`repro.sim.calibration`) recovers them from
microbenchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.cluster.devices import GpuSpec
from repro.models.config import ModalityModuleSpec
from repro.sim.costmodel import CostModel


@dataclass(frozen=True)
class HiddenFactors:
    """The "true" hardware efficiency factors, unknown to the planner."""

    compute_efficiency: float
    memory_efficiency: float
    network_efficiency: float
    saturation_tokens: float
    kernel_overhead_us: float
    stage_overhead_us: float


def draw_hidden_factors(seed: int = 7) -> HiddenFactors:
    """Sample plausible hardware truth around typical H800 efficiencies."""
    rng = np.random.default_rng(seed)
    return HiddenFactors(
        compute_efficiency=float(rng.uniform(0.52, 0.60)),
        memory_efficiency=float(rng.uniform(0.66, 0.74)),
        network_efficiency=float(rng.uniform(0.70, 0.78)),
        saturation_tokens=float(rng.uniform(1400.0, 2200.0)),
        kernel_overhead_us=float(rng.uniform(20.0, 30.0)),
        stage_overhead_us=float(rng.uniform(70.0, 110.0)),
    )


class ReferenceCostModel(CostModel):
    """A cost model configured with the hidden truth + optional noise.

    Use :meth:`jitter` with the pipeline simulator to add per-stage
    measurement noise, mimicking run-to-run variance of real GPUs.
    """

    def __init__(
        self,
        seed: int = 7,
        noise_sigma: float = 0.015,
        factors: Optional[HiddenFactors] = None,
    ) -> None:
        f = factors or draw_hidden_factors(seed)
        super().__init__(
            compute_efficiency=f.compute_efficiency,
            memory_efficiency=f.memory_efficiency,
            network_efficiency=f.network_efficiency,
            saturation_tokens=f.saturation_tokens,
            kernel_overhead_us=f.kernel_overhead_us,
            stage_overhead_us=f.stage_overhead_us,
        )
        object.__setattr__(self, "_noise_sigma", noise_sigma)
        object.__setattr__(self, "_noise_rng", np.random.default_rng(seed + 1))

    def jitter(self, stage_uid: int, base_ms: float) -> float:
        """Per-stage log-normal measurement noise (deterministic stream)."""
        del stage_uid
        sigma = self._noise_sigma
        if sigma <= 0:
            return base_ms
        return float(base_ms * self._noise_rng.lognormal(0.0, sigma))

    def measure_gemm_ms(
        self,
        device: GpuSpec,
        spec: ModalityModuleSpec,
        batch: int,
        seq: int,
        tp: int = 1,
    ) -> float:
        """A "measured" single-layer microbenchmark (with noise)."""
        cost = self.stage_cost(device, spec, 1, batch, seq, tp)
        return self.jitter(0, cost.forward_ms)
