"""Optimization substrate: knapsack and ILP solvers.

The paper's per-layer memory optimization (section 5.3) solves small
per-rank ILPs with Gurobi/HiGHS-class solvers, warm-started and allowed a
5% optimality gap.  No commercial solver ships here, so this package
provides:

* :mod:`repro.solver.mckp` — multiple-choice knapsack used during offline
  candidate generation.
* :mod:`repro.solver.bnb` — a best-first branch-and-bound solver for the
  multiple-choice selection problem with interval memory constraints
  (warm start + relative-gap early termination).
* :mod:`repro.solver.scipy_backend` — the same problem via
  ``scipy.optimize.milp`` (HiGHS), used for cross-checking and as the
  "commercial solver" stand-in of the Fig. 12 scalability baseline.
* :mod:`repro.solver.monolithic` — the full-pipeline monolithic ILP
  formulation whose exponential blow-up Fig. 12 demonstrates.
"""

from repro.solver.mckp import mckp_min_latency
from repro.solver.bnb import (
    McIntervalProblem,
    McIntervalSolution,
    greedy_warm_start,
    solve_mc_interval,
)

__all__ = [
    "mckp_min_latency",
    "McIntervalProblem",
    "McIntervalSolution",
    "greedy_warm_start",
    "solve_mc_interval",
]
