"""Branch-and-bound solver for the per-rank memory-optimization ILP.

The section 5.3 problem: ``n`` stage pairs, each with ``S`` candidate
strategies ``(lat, mem)``; minimise total latency while, at every probe
time, the summed memory of *active* pairs stays within the limit.  This is
a multiple-choice selection problem with interval (clique) constraints.

The solver follows the paper's two efficiency tricks: it is warm-started
with a greedy solution and terminates early at a configurable relative
optimality gap (default 5%).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


@dataclass
class McIntervalProblem:
    """A multiple-choice selection problem with interval memory cliques.

    Attributes:
        latencies: ``latencies[i][j]`` — latency of candidate ``j`` of
            pair ``i``.
        memories: Matching memory residencies.
        cliques: Each clique lists the pair indices simultaneously
            resident at one probe time; their chosen memories must sum to
            at most ``limit``.
        limit: Memory limit (bytes) applying to every clique.
    """

    latencies: List[List[float]]
    memories: List[List[float]]
    cliques: List[List[int]]
    limit: float

    def __post_init__(self) -> None:
        if len(self.latencies) != len(self.memories):
            raise ValueError("latencies/memories shape mismatch")
        for i, (lats, mems) in enumerate(zip(self.latencies, self.memories)):
            if not lats or len(lats) != len(mems):
                raise ValueError(f"pair {i} has empty or mismatched candidates")
        for clique in self.cliques:
            for i in clique:
                if not (0 <= i < len(self.latencies)):
                    raise ValueError(f"clique references unknown pair {i}")

    @property
    def num_pairs(self) -> int:
        return len(self.latencies)

    def is_feasible(self, selection: Sequence[int]) -> bool:
        """Check every clique constraint under a full selection."""
        for clique in self.cliques:
            total = sum(self.memories[i][selection[i]] for i in clique)
            if total > self.limit + 1e-6:
                return False
        return True

    def total_latency(self, selection: Sequence[int]) -> float:
        return sum(self.latencies[i][selection[i]] for i in range(self.num_pairs))


@dataclass
class McIntervalSolution:
    """Solver output."""

    selection: List[int]
    latency: float
    lower_bound: float
    optimal: bool
    nodes_expanded: int = 0

    @property
    def gap(self) -> float:
        if self.latency <= 0:
            return 0.0
        return (self.latency - self.lower_bound) / self.latency


def greedy_warm_start(problem: McIntervalProblem) -> Optional[List[int]]:
    """Greedy feasible solution: start min-memory, upgrade by best ratio.

    Starts from every pair's lowest-memory candidate (the most feasible
    point), then repeatedly applies the single-candidate upgrade with the
    best latency-saved / memory-added ratio that keeps all cliques
    feasible.
    """
    n = problem.num_pairs
    selection = [
        min(range(len(problem.memories[i])), key=lambda j: (problem.memories[i][j],
                                                            problem.latencies[i][j]))
        for i in range(n)
    ]
    if not problem.is_feasible(selection):
        return None
    clique_usage = [
        sum(problem.memories[i][selection[i]] for i in clique)
        for clique in problem.cliques
    ]
    cliques_of_pair: List[List[int]] = [[] for _ in range(n)]
    for c, clique in enumerate(problem.cliques):
        for i in clique:
            cliques_of_pair[i].append(c)

    improved = True
    while improved:
        improved = False
        best: Optional[Tuple[float, int, int, float]] = None
        for i in range(n):
            cur_lat = problem.latencies[i][selection[i]]
            cur_mem = problem.memories[i][selection[i]]
            for j in range(len(problem.latencies[i])):
                saved = cur_lat - problem.latencies[i][j]
                if saved <= 1e-12:
                    continue
                extra = problem.memories[i][j] - cur_mem
                if extra <= 0:
                    ratio = float("inf")
                else:
                    fits = all(
                        clique_usage[c] + extra <= problem.limit + 1e-6
                        for c in cliques_of_pair[i]
                    )
                    if not fits:
                        continue
                    ratio = saved / extra
                if best is None or ratio > best[0]:
                    best = (ratio, i, j, extra)
        if best is not None:
            _ratio, i, j, extra = best
            selection[i] = j
            for c in cliques_of_pair[i]:
                clique_usage[c] += extra
            improved = True
    return selection


def solve_mc_interval(
    problem: McIntervalProblem,
    warm_start: Optional[Sequence[int]] = None,
    rel_gap: float = 0.05,
    node_limit: int = 200_000,
) -> McIntervalSolution:
    """Best-first branch-and-bound with warm start and gap termination.

    The lower bound at a node is the sum of fixed latencies plus each
    unfixed pair's minimum candidate latency (memory relaxed) — cheap and
    admissible.  Nodes branch on the unfixed pair with the largest
    latency spread.  Infeasible nodes (min-memory completion violating a
    clique) are pruned.

    Raises:
        ValueError: if no feasible solution exists.
    """
    n = problem.num_pairs
    if n == 0:
        return McIntervalSolution([], 0.0, 0.0, True)

    incumbent = list(warm_start) if warm_start is not None else None
    if incumbent is None:
        incumbent = greedy_warm_start(problem)
    if incumbent is not None and not problem.is_feasible(incumbent):
        incumbent = None
    best_lat = problem.total_latency(incumbent) if incumbent is not None else float("inf")

    min_lat = [min(lats) for lats in problem.latencies]
    min_mem = [min(mems) for mems in problem.memories]
    # Branch order: biggest potential latency savings first.
    spread = [max(lats) - min(lats) for lats in problem.latencies]
    order = sorted(range(n), key=lambda i: -spread[i])
    root_bound = sum(min_lat)

    cliques_of_pair: List[List[int]] = [[] for _ in range(n)]
    for c, clique in enumerate(problem.cliques):
        for i in clique:
            cliques_of_pair[i].append(c)
    clique_min = [
        sum(min_mem[i] for i in clique) for clique in problem.cliques
    ]
    if any(m > problem.limit + 1e-6 for m in clique_min):
        raise ValueError("problem infeasible even at minimum memory")

    counter = itertools.count()
    # Node: (bound, tiebreak, depth, partial selection, clique slack used)
    heap: List[Tuple[float, int, int, Tuple[int, ...], Tuple[float, ...]]] = []
    heapq.heappush(
        heap, (root_bound, next(counter), 0, (), tuple(clique_min))
    )
    nodes = 0
    global_lb = root_bound

    while heap:
        bound, _tie, depth, partial, clique_use = heapq.heappop(heap)
        global_lb = max(global_lb, min(bound, best_lat))
        if bound >= best_lat - 1e-9:
            break  # best-first: nothing better remains
        if best_lat < float("inf") and (best_lat - bound) <= rel_gap * best_lat:
            break  # within the allowed optimality gap
        nodes += 1
        if nodes > node_limit:
            break
        pair = order[depth]
        fixed_lat = sum(
            problem.latencies[order[d]][partial[d]] for d in range(depth)
        )
        for j in range(len(problem.latencies[pair])):
            extra_mem = problem.memories[pair][j] - min_mem[pair]
            new_use = list(clique_use)
            feasible = True
            for c in cliques_of_pair[pair]:
                new_use[c] += extra_mem
                if new_use[c] > problem.limit + 1e-6:
                    feasible = False
                    break
            if not feasible:
                continue
            new_partial = partial + (j,)
            lat_so_far = fixed_lat + problem.latencies[pair][j]
            remaining = sum(min_lat[order[d]] for d in range(depth + 1, n))
            new_bound = lat_so_far + remaining
            if new_bound >= best_lat - 1e-9:
                continue
            if depth + 1 == n:
                selection = [0] * n
                for d, choice in enumerate(new_partial):
                    selection[order[d]] = choice
                if problem.is_feasible(selection):
                    best_lat = new_bound
                    incumbent = selection
            else:
                heapq.heappush(
                    heap,
                    (new_bound, next(counter), depth + 1, new_partial, tuple(new_use)),
                )

    if incumbent is None:
        raise ValueError("no feasible solution found")
    lower = min(global_lb, best_lat)
    optimal = not heap or best_lat - lower <= 1e-9
    return McIntervalSolution(
        selection=list(incumbent),
        latency=best_lat,
        lower_bound=lower,
        optimal=optimal,
        nodes_expanded=nodes,
    )
