"""Multiple-choice knapsack (MCKP) for candidate generation (section 5.3).

Given groups of (latency, memory) options, select exactly one option per
group minimising total latency subject to a total-memory budget.  Solved
by dynamic programming over a discretised memory axis — instances here
are tiny (layers within one stage pair), so exactness is cheap.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple


def mckp_min_latency(
    latencies: Sequence[Sequence[float]],
    memories: Sequence[Sequence[float]],
    memory_limit: float,
    resolution: int = 512,
) -> Optional[Tuple[List[int], float]]:
    """Solve min-latency MCKP under a memory budget.

    Args:
        latencies: ``latencies[g][j]`` — latency of option ``j`` in group
            ``g``.
        memories: Matching memory costs (non-negative).
        memory_limit: Total memory budget.
        resolution: Number of discrete memory buckets on the DP axis for
            non-integral inputs.  Integral memories and limits are solved
            exactly; otherwise costs round to the nearest bucket, which
            may overshoot the budget by at most ``groups / (2 * scale)``.

    Returns:
        ``(choice per group, total latency)`` or ``None`` if infeasible.
    """
    if len(latencies) != len(memories):
        raise ValueError("latencies and memories must have matching shapes")
    num_groups = len(latencies)
    if num_groups == 0:
        return [], 0.0
    if memory_limit < 0:
        return None
    for g in range(num_groups):
        if not latencies[g] or len(latencies[g]) != len(memories[g]):
            raise ValueError(f"group {g} is empty or has mismatched options")

    max_mem = max(max(group) for group in memories)
    integral = (
        abs(memory_limit - round(memory_limit)) < 1e-9
        and all(abs(m - round(m)) < 1e-9 for group in memories for m in group)
        and max(memory_limit, max_mem) <= resolution * 1024
    )
    if integral:
        scale = 1.0
        budget = int(round(memory_limit))
    else:
        scale = resolution / max(memory_limit, max_mem, 1e-12)
        budget = int(memory_limit * scale + 1e-9)

    def quantise(value: float) -> int:
        return int(round(value * scale))

    # dp[g][weight] = (best latency, parent weight, chosen option)
    layers: List[Dict[int, Tuple[float, int, int]]] = [dict() for _ in range(num_groups + 1)]
    layers[0][0] = (0.0, -1, -1)
    for g in range(num_groups):
        options = [(quantise(m), lat) for lat, m in zip(latencies[g], memories[g])]
        nxt = layers[g + 1]
        for w, (lat, _pw, _opt) in layers[g].items():
            for j, (ow, olat) in enumerate(options):
                nw = w + ow
                if nw > budget:
                    continue
                total = lat + olat
                existing = nxt.get(nw)
                if existing is None or total < existing[0]:
                    nxt[nw] = (total, w, j)

    final = layers[num_groups]
    if not final:
        return None
    final_w = min(final, key=lambda w: final[w][0])
    total = final[final_w][0]
    selection = [0] * num_groups
    w = final_w
    for g in range(num_groups - 1, -1, -1):
        _lat, parent_w, opt = layers[g + 1][w]
        selection[g] = opt
        w = parent_w
    return selection, total
