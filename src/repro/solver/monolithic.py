"""Monolithic full-pipeline scheduling formulations (the Fig. 12 baseline).

The paper contrasts DIP's decomposed search against solving the entire
pipeline schedule as one exact problem with Z3 or Gurobi; both blow up
exponentially past ~10 microbatches.  Without commercial solvers we
provide two faithful stand-ins over the same monolithic encoding:

* :func:`exhaustive_optimal_schedule` — branch-and-bound over sequencing
  decisions (SMT-style exhaustive exploration; the "Z3" role).  Also
  serves as the *exact optimum* oracle for small instances in tests.
* :func:`milp_optimal_schedule` — big-M disjunctive MILP via HiGHS
  (the "Gurobi" role): O(n^2) ordering binaries per rank.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.topology import ClusterSpec, ParallelConfig
from repro.core.stages import IterationGraph
from repro.sim.costmodel import CostModel


@dataclass
class MonolithicResult:
    """Outcome of a monolithic schedule search."""

    order: Optional[List[List[int]]]
    total_ms: float
    solve_seconds: float
    timed_out: bool
    nodes: int = 0


def exhaustive_optimal_schedule(
    graph: IterationGraph,
    cluster: ClusterSpec,
    parallel: ParallelConfig,
    cost_model: Optional[CostModel] = None,
    time_limit_s: float = 30.0,
    node_limit: int = 5_000_000,
) -> MonolithicResult:
    """Exact minimum-makespan schedule by exhaustive branch-and-bound.

    Explores all maximal interleavings of ready stages (dominance: only
    decisions that delay some rank matter), pruning with a per-rank
    remaining-work lower bound.  Exponential by design — this *is* the
    baseline whose scaling Fig. 12 measures.
    """
    cost_model = cost_model or CostModel()
    n = len(graph.stages)
    stages = graph.stages
    latency = [graph.latency_ms(s) for s in stages]
    remaining_work = [0.0] * graph.num_ranks
    for s in stages:
        remaining_work[s.rank] += latency[s.uid]

    p2p_cache: Dict[Tuple[int, int, float], float] = {}

    def p2p_ms(src: int, dst: int, nbytes: float) -> float:
        if src == dst or nbytes <= 0:
            return 0.0
        key = (src, dst, nbytes)
        v = p2p_cache.get(key)
        if v is None:
            bw = cluster.p2p_bandwidth(parallel, src, dst)
            v = cost_model.p2p_latency_ms(nbytes, bw)
            p2p_cache[key] = v
        return v

    deadline = time.monotonic() + time_limit_s
    best = {"makespan": float("inf"), "order": None}
    counters = {"nodes": 0, "timed_out": False}

    pending = [len(s.deps) for s in stages]
    ready: List[int] = [s.uid for s in stages if not s.deps]
    end = [0.0] * n
    clocks = [0.0] * graph.num_ranks
    order_by_rank: List[List[int]] = [[] for _ in range(graph.num_ranks)]
    work_left = list(remaining_work)

    def lower_bound() -> float:
        return max(
            clocks[r] + work_left[r] for r in range(graph.num_ranks)
        )

    def dfs(scheduled: int) -> None:
        if counters["timed_out"]:
            return
        counters["nodes"] += 1
        if counters["nodes"] % 2048 == 0 and time.monotonic() > deadline:
            counters["timed_out"] = True
            return
        if counters["nodes"] > node_limit:
            counters["timed_out"] = True
            return
        if scheduled == n:
            makespan = max(clocks)
            if makespan < best["makespan"]:
                best["makespan"] = makespan
                best["order"] = [list(o) for o in order_by_rank]
            return
        if lower_bound() >= best["makespan"] - 1e-9:
            return
        for idx in range(len(ready)):
            uid = ready[idx]
            stage = stages[uid]
            arrival = 0.0
            for dep in stage.deps:
                dep_stage = stages[dep]
                arrival = max(
                    arrival, end[dep] + p2p_ms(dep_stage.rank, stage.rank, stage.p2p_bytes)
                )
            rank = stage.rank
            old_clock = clocks[rank]
            begin = max(old_clock, arrival)
            end[uid] = begin + latency[uid]
            clocks[rank] = end[uid]
            work_left[rank] -= latency[uid]
            order_by_rank[rank].append(uid)
            ready[idx] = ready[-1]
            ready.pop()
            newly = []
            for succ in graph.dependents[uid]:
                pending[succ] -= 1
                if pending[succ] == 0:
                    ready.append(succ)
                    newly.append(succ)
            dfs(scheduled + 1)
            for succ in newly:
                ready.remove(succ)
            for succ in graph.dependents[uid]:
                pending[succ] += 1
            ready.append(uid)
            # Restore the swap: put uid back where it was for determinism.
            ready[idx], ready[-1] = ready[-1], ready[idx]
            order_by_rank[rank].pop()
            work_left[rank] += latency[uid]
            clocks[rank] = old_clock
            end[uid] = 0.0
            if counters["timed_out"]:
                return

    start_time = time.monotonic()
    dfs(0)
    elapsed = time.monotonic() - start_time
    return MonolithicResult(
        order=best["order"],
        total_ms=best["makespan"],
        solve_seconds=elapsed,
        timed_out=counters["timed_out"],
        nodes=counters["nodes"],
    )


def milp_optimal_schedule(
    graph: IterationGraph,
    cluster: ClusterSpec,
    parallel: ParallelConfig,
    cost_model: Optional[CostModel] = None,
    time_limit_s: float = 30.0,
    rel_gap: float = 0.0,
) -> MonolithicResult:
    """Big-M disjunctive MILP over the whole pipeline (HiGHS).

    Variables: one continuous start time per stage, the makespan, and one
    ordering binary per same-rank stage pair — the O(n^2) encoding whose
    cost section 5.4 analyses.
    """
    try:
        from scipy.optimize import Bounds, LinearConstraint, milp
    except ImportError as exc:  # pragma: no cover
        raise RuntimeError("scipy.optimize.milp unavailable") from exc

    cost_model = cost_model or CostModel()
    n = len(graph.stages)
    stages = graph.stages
    latency = [graph.latency_ms(s) for s in stages]

    def p2p_ms(src: int, dst: int, nbytes: float) -> float:
        if src == dst or nbytes <= 0:
            return 0.0
        bw = cluster.p2p_bandwidth(parallel, src, dst)
        return cost_model.p2p_latency_ms(nbytes, bw)

    big_m = sum(latency) + 1.0
    same_rank_pairs: List[Tuple[int, int]] = []
    for rank in range(graph.num_ranks):
        uids = [s.uid for s in stages if s.rank == rank]
        for a_pos in range(len(uids)):
            for b_pos in range(a_pos + 1, len(uids)):
                same_rank_pairs.append((uids[a_pos], uids[b_pos]))

    num_vars = n + 1 + len(same_rank_pairs)  # starts, makespan, orderings
    c = np.zeros(num_vars)
    c[n] = 1.0  # minimise makespan

    rows, lbs, ubs = [], [], []

    def add_row(coeffs: Dict[int, float], lo: float, hi: float) -> None:
        row = np.zeros(num_vars)
        for k, v in coeffs.items():
            row[k] = v
        rows.append(row)
        lbs.append(lo)
        ubs.append(hi)

    for stage in stages:
        # Makespan >= start + latency.
        add_row({n: 1.0, stage.uid: -1.0}, latency[stage.uid], np.inf)
        for dep in stage.deps:
            dep_stage = stages[dep]
            delay = latency[dep] + p2p_ms(dep_stage.rank, stage.rank, stage.p2p_bytes)
            # start_v - start_u >= delay
            add_row({stage.uid: 1.0, dep: -1.0}, delay, np.inf)

    for pair_index, (a, b) in enumerate(same_rank_pairs):
        y = n + 1 + pair_index
        # y = 1 -> a before b: start_b - start_a - M*y >= lat_a - M.
        add_row({b: 1.0, a: -1.0, y: -big_m}, latency[a] - big_m, np.inf)
        # y = 0 -> b before a: start_a - start_b + M*y >= lat_b.
        add_row({a: 1.0, b: -1.0, y: big_m}, latency[b], np.inf)

    integrality = np.zeros(num_vars)
    integrality[n + 1:] = 1.0
    lower = np.zeros(num_vars)
    upper = np.full(num_vars, np.inf)
    upper[n + 1:] = 1.0

    t0 = time.monotonic()
    result = milp(
        c=c,
        constraints=LinearConstraint(np.array(rows), np.array(lbs), np.array(ubs)),
        integrality=integrality,
        bounds=Bounds(lower, upper),
        options={"time_limit": time_limit_s, "mip_rel_gap": rel_gap},
    )
    elapsed = time.monotonic() - t0
    if result.x is None:
        return MonolithicResult(
            order=None,
            total_ms=float("inf"),
            solve_seconds=elapsed,
            timed_out=True,
        )
    starts = result.x[:n]
    order: List[List[int]] = []
    for rank in range(graph.num_ranks):
        uids = [s.uid for s in stages if s.rank == rank]
        uids.sort(key=lambda u: starts[u])
        order.append(uids)
    timed_out = bool(result.status == 1)  # HiGHS: 1 = iteration/time limit
    return MonolithicResult(
        order=order,
        total_ms=float(result.x[n]),
        solve_seconds=elapsed,
        timed_out=timed_out,
    )
