"""MILP backend via ``scipy.optimize.milp`` (HiGHS).

Used to cross-check the hand-rolled branch-and-bound on the per-rank
memory problem, and as the commercial-solver stand-in ("Gurobi" role) in
the Fig. 12 search-scalability comparison.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.solver.bnb import McIntervalProblem, McIntervalSolution

try:  # scipy >= 1.9
    from scipy.optimize import Bounds, LinearConstraint, milp

    HAVE_MILP = True
except ImportError:  # pragma: no cover - environment without scipy.milp
    HAVE_MILP = False


def solve_mc_interval_milp(
    problem: McIntervalProblem,
    rel_gap: float = 0.0,
    time_limit: Optional[float] = None,
) -> McIntervalSolution:
    """Solve the section 5.3 per-rank problem exactly with HiGHS.

    Raises:
        RuntimeError: if scipy's MILP support is unavailable or the
            instance is infeasible.
    """
    if not HAVE_MILP:
        raise RuntimeError("scipy.optimize.milp is not available")
    n = problem.num_pairs
    offsets = [0]
    for lats in problem.latencies:
        offsets.append(offsets[-1] + len(lats))
    num_vars = offsets[-1]

    cost = np.zeros(num_vars)
    for i, lats in enumerate(problem.latencies):
        cost[offsets[i]: offsets[i + 1]] = lats

    rows = []
    lower = []
    upper = []
    # One-hot per pair.
    for i in range(n):
        row = np.zeros(num_vars)
        row[offsets[i]: offsets[i + 1]] = 1.0
        rows.append(row)
        lower.append(1.0)
        upper.append(1.0)
    # Clique memory constraints.
    for clique in problem.cliques:
        row = np.zeros(num_vars)
        for i in clique:
            row[offsets[i]: offsets[i + 1]] = problem.memories[i]
        rows.append(row)
        lower.append(-np.inf)
        upper.append(problem.limit)

    constraints = LinearConstraint(np.array(rows), np.array(lower), np.array(upper))
    options = {"mip_rel_gap": rel_gap}
    if time_limit is not None:
        options["time_limit"] = time_limit
    result = milp(
        c=cost,
        constraints=constraints,
        integrality=np.ones(num_vars),
        bounds=Bounds(0, 1),
        options=options,
    )
    if result.x is None:
        raise RuntimeError(f"MILP failed: {result.message}")
    selection = []
    for i in range(n):
        block = result.x[offsets[i]: offsets[i + 1]]
        selection.append(int(np.argmax(block)))
    latency = problem.total_latency(selection)
    lower_bound = float(result.mip_dual_bound) if result.mip_dual_bound else latency
    return McIntervalSolution(
        selection=selection,
        latency=latency,
        lower_bound=min(lower_bound, latency),
        optimal=result.mip_gap is not None and result.mip_gap <= rel_gap + 1e-9,
    )
