"""Trace & telemetry subsystem: per-rank event timelines and analytics.

* :mod:`repro.trace.events` — structured span schema, collector, native
  (compact columnar JSON) serialisation.
* :mod:`repro.trace.builders` — traces from simulator results and
  compiled execution plans.
* :mod:`repro.trace.export` — Chrome-trace / Perfetto export and
  trace-event schema validation.
* :mod:`repro.trace.analysis` — critical-path extraction, per-rank
  bubble decomposition (warmup / dependency / straggler / cooldown),
  cross-trace diff.
* :mod:`repro.trace.recalibrate` — fit observed span durations back
  into the analytic cost model's efficiency factors.
"""

from repro.trace.analysis import (
    BubbleReport,
    CriticalPath,
    TraceDiff,
    annotate_stalls,
    critical_path,
    decompose_bubbles,
    diff_traces,
)
from repro.trace.builders import merge_traces, trace_from_engine, trace_from_sim
from repro.trace.events import (
    Span,
    Trace,
    TraceCollector,
    TraceMeta,
    TraceRing,
    TraceValidationError,
)
from repro.trace.export import (
    chrome_events,
    save_chrome,
    to_chrome,
    validate_chrome_trace,
    validate_chrome_trace_file,
)
from repro.trace.recalibrate import (
    TraceCalibrationReport,
    measure_reference_traces,
    prediction_error,
    recalibrate_from_trace,
    recalibrate_from_traces,
)

__all__ = [
    "Span",
    "Trace",
    "TraceCollector",
    "TraceMeta",
    "TraceRing",
    "TraceValidationError",
    "trace_from_sim",
    "trace_from_engine",
    "merge_traces",
    "to_chrome",
    "chrome_events",
    "save_chrome",
    "validate_chrome_trace",
    "validate_chrome_trace_file",
    "critical_path",
    "CriticalPath",
    "decompose_bubbles",
    "BubbleReport",
    "annotate_stalls",
    "diff_traces",
    "TraceDiff",
    "prediction_error",
    "recalibrate_from_trace",
    "recalibrate_from_traces",
    "measure_reference_traces",
    "TraceCalibrationReport",
]
