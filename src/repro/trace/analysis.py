"""Trace analytics: critical path, bubble decomposition, cross-trace diff.

All analytics operate purely on the event stream — they never re-simulate
— so the same code reads simulator traces, runtime-engine traces and
traces loaded from the native file format.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.trace.events import (
    EPS_MS,
    KIND_COMM,
    KIND_STALL,
    Span,
    Trace,
)


# -- critical path -----------------------------------------------------------


@dataclass
class CriticalPath:
    """The executed dependency DAG's longest chain, walked off the trace.

    Attributes:
        uids: Schedule uids along the path, in execution order.
        compute_ms: Total compute time on the path.
        comm_ms: Total P2P wire time between consecutive path stages.
        slack_ms: Idle time on the path no recorded constraint explains
            (zero on deterministic simulator traces; jitter and engine
            wait semantics surface here).
        length_ms: End timestamp of the final path stage.  On a tight
            path starting at t=0 this equals the trace makespan and
            ``compute_ms + comm_ms + slack_ms``.
        by_module: Path compute time aggregated per module.
        by_rank: Number of path stages per rank.
    """

    uids: List[int]
    compute_ms: float
    comm_ms: float
    slack_ms: float
    length_ms: float
    by_module: Dict[str, float] = field(default_factory=dict)
    by_rank: Dict[int, int] = field(default_factory=dict)

    def describe(self) -> str:
        modules = ", ".join(
            f"{name} {ms:.1f}ms"
            for name, ms in sorted(self.by_module.items(),
                                   key=lambda kv: -kv[1])
        )
        return (
            f"critical path: {len(self.uids)} stages, "
            f"{self.compute_ms:.1f}ms compute + {self.comm_ms:.1f}ms comm "
            f"+ {self.slack_ms:.1f}ms slack = {self.length_ms:.1f}ms "
            f"({modules})"
        )


def critical_path(trace: Trace) -> CriticalPath:
    """Extract the binding chain ending at the trace's last compute span.

    Walks backwards from the span with the latest end time; at each span
    the binding predecessor is whichever constraint released its start
    latest — the previous span on the same rank (execution-order edge) or
    a dependency's arrival (dependency edge, including P2P wire time when
    a comm span recorded it).
    """
    computes = trace.compute_spans()
    if not computes:
        return CriticalPath([], 0.0, 0.0, 0.0, 0.0)
    by_uid = trace.span_by_uid()
    arrivals: Dict[Tuple[int, int], float] = {
        (s.src_uid, s.uid): s.end_ms
        for s in trace.spans_of_kind(KIND_COMM)
    }
    prev_on_rank: Dict[int, Optional[Span]] = {}
    for rank in range(trace.num_ranks):
        ordered = sorted(trace.compute_spans(rank), key=lambda s: s.start_ms)
        for prev, cur in zip(ordered, ordered[1:]):
            prev_on_rank[id(cur)] = prev

    cur: Optional[Span] = max(computes, key=lambda s: s.end_ms)
    path: List[Span] = []
    comm_ms = 0.0
    slack_ms = 0.0
    length_ms = cur.end_ms
    while cur is not None:
        path.append(cur)
        if cur.start_ms <= EPS_MS:
            break
        candidates: List[Tuple[float, float, Optional[Span]]] = []
        rank_prev = prev_on_rank.get(id(cur))
        if rank_prev is not None:
            candidates.append((rank_prev.end_ms, 0.0, rank_prev))
        for dep in cur.deps:
            dep_span = by_uid.get(dep)
            if dep_span is None:
                continue
            arrival = arrivals.get((dep, cur.uid), dep_span.end_ms)
            candidates.append((arrival, arrival - dep_span.end_ms, dep_span))
        if not candidates:
            slack_ms += cur.start_ms
            break
        constraint, wire, chosen = max(candidates, key=lambda c: c[0])
        slack_ms += max(0.0, cur.start_ms - constraint)
        comm_ms += wire
        cur = chosen
    path.reverse()

    by_module: Dict[str, float] = {}
    by_rank: Dict[int, int] = {}
    for span in path:
        if span.module:
            by_module[span.module] = (
                by_module.get(span.module, 0.0) + span.duration_ms
            )
        by_rank[span.rank] = by_rank.get(span.rank, 0) + 1
    return CriticalPath(
        uids=[s.uid for s in path],
        compute_ms=sum(s.duration_ms for s in path),
        comm_ms=comm_ms,
        slack_ms=slack_ms,
        length_ms=length_ms,
        by_module=by_module,
        by_rank=by_rank,
    )


# -- bubble decomposition ----------------------------------------------------


@dataclass
class RankBubbles:
    """One rank's idle time, partitioned by cause."""

    rank: int
    busy_ms: float = 0.0
    warmup_ms: float = 0.0
    dependency_ms: float = 0.0
    straggler_ms: float = 0.0
    cooldown_ms: float = 0.0

    @property
    def idle_ms(self) -> float:
        return (self.warmup_ms + self.dependency_ms + self.straggler_ms
                + self.cooldown_ms)


@dataclass
class BubbleReport:
    """Per-rank bubble decomposition over one trace.

    The four categories partition each rank's idle time exactly:
    ``busy + warmup + dependency + straggler + cooldown == makespan`` per
    rank (the invariant the trace tests assert to 1e-6).

    * **warmup** — idle before the rank's first stage (pipeline fill);
    * **cooldown** — idle after its last stage (pipeline drain);
    * **dependency** — interior gaps where the next stage's recorded
      dependency arrival binds its start;
    * **straggler** — interior idle no recorded constraint explains
      (measurement jitter, engine wait reordering, external traces).
    """

    per_rank: List[RankBubbles]
    total_ms: float
    gaps: List[Tuple[int, float, float, str, int]] = field(
        default_factory=list
    )  # (rank, start, end, cause, blocking uid or -1)

    @property
    def busy_ms(self) -> float:
        return sum(r.busy_ms for r in self.per_rank)

    @property
    def idle_ms(self) -> float:
        return sum(r.idle_ms for r in self.per_rank)

    @property
    def bubble_ratio(self) -> float:
        """Idle fraction across ranks within the makespan."""
        if self.total_ms <= 0 or not self.per_rank:
            return 0.0
        return self.idle_ms / (self.total_ms * len(self.per_rank))

    def totals(self) -> Dict[str, float]:
        return {
            "busy": self.busy_ms,
            "warmup": sum(r.warmup_ms for r in self.per_rank),
            "dependency": sum(r.dependency_ms for r in self.per_rank),
            "straggler": sum(r.straggler_ms for r in self.per_rank),
            "cooldown": sum(r.cooldown_ms for r in self.per_rank),
        }

    def describe(self) -> str:
        totals = self.totals()
        idle = self.idle_ms
        if idle <= 0:
            return f"bubble 0.0% of {self.total_ms:.1f}ms"
        shares = "  ".join(
            f"{cause} {totals[cause] / idle * 100:.0f}%"
            for cause in ("warmup", "dependency", "straggler", "cooldown")
            if totals[cause] > 0
        )
        return (
            f"bubble {self.bubble_ratio * 100:.1f}% of {self.total_ms:.1f}ms"
            f" ({shares})"
        )


def decompose_bubbles(trace: Trace) -> BubbleReport:
    """Partition every rank's idle time into the four bubble causes."""
    total = trace.total_ms
    by_uid = trace.span_by_uid()
    arrivals: Dict[Tuple[int, int], float] = {
        (s.src_uid, s.uid): s.end_ms
        for s in trace.spans_of_kind(KIND_COMM)
    }
    report = BubbleReport(
        per_rank=[RankBubbles(rank=r) for r in range(trace.num_ranks)],
        total_ms=total,
    )

    def ready_ms(span: Span) -> Tuple[float, int]:
        """Latest recorded dependency arrival bounding ``span``'s start."""
        best, blocker = 0.0, -1
        for dep in span.deps:
            dep_span = by_uid.get(dep)
            if dep_span is None:
                continue
            arrival = arrivals.get((dep, span.uid), dep_span.end_ms)
            if arrival > best:
                best, blocker = arrival, dep
        return best, blocker

    for rank in range(trace.num_ranks):
        bubbles = report.per_rank[rank]
        spans = sorted(trace.compute_spans(rank), key=lambda s: s.start_ms)
        bubbles.busy_ms = sum(s.duration_ms for s in spans)
        if not spans:
            if total > 0:
                bubbles.warmup_ms = total
                report.gaps.append((rank, 0.0, total, "warmup", -1))
            continue
        if spans[0].start_ms > EPS_MS:
            bubbles.warmup_ms = spans[0].start_ms
            report.gaps.append((rank, 0.0, spans[0].start_ms, "warmup", -1))
        for prev, cur in zip(spans, spans[1:]):
            gap = cur.start_ms - prev.end_ms
            if gap <= EPS_MS:
                continue
            ready, blocker = ready_ms(cur)
            if ready >= cur.start_ms - EPS_MS:
                bubbles.dependency_ms += gap
                cause = "dependency"
            else:
                bubbles.straggler_ms += gap
                cause = "straggler"
            report.gaps.append((rank, prev.end_ms, cur.start_ms, cause,
                                blocker))
        tail = total - spans[-1].end_ms
        if tail > EPS_MS:
            bubbles.cooldown_ms = tail
            report.gaps.append((rank, spans[-1].end_ms, total, "cooldown", -1))
    return report


def annotate_stalls(trace: Trace,
                    report: Optional[BubbleReport] = None) -> Trace:
    """Add one ``stall`` span per idle gap, labelled with its cause.

    Makes bubbles first-class events: they export to Chrome tracing as
    their own slices and survive the native round trip.  Existing stall
    spans are replaced (re-annotation is idempotent).
    """
    report = report or decompose_bubbles(trace)
    kept = [s for s in trace.spans if s.kind != KIND_STALL]
    for rank, start, end, cause, blocker in report.gaps:
        attrs: Dict[str, object] = {"cause": cause}
        if blocker >= 0:
            attrs["blocking_uid"] = blocker
        kept.append(Span(
            rank=rank, kind=KIND_STALL, name=cause,
            start_ms=start, end_ms=end, attrs=attrs,
        ))
    trace.spans = sorted(kept, key=lambda s: (s.start_ms, s.rank, s.end_ms))
    return trace


# -- cross-trace diff --------------------------------------------------------


@dataclass
class SpanDelta:
    """One matched stage's movement between two traces."""

    key: Tuple[int, str, int, int, str]
    occurrence: int
    rank_a: int
    rank_b: int
    start_delta_ms: float
    duration_delta_ms: float


@dataclass
class TraceDiff:
    """Structural comparison of two traces (schedules, replays, runs).

    Compute spans are matched by their schedule-independent identity
    ``(microbatch, module, sub_index, chunk, direction)`` (plus an
    occurrence counter for decoupled-backward twins), so two different
    schedules of the same batch — or a cold search versus its plan-cache
    replay — line up stage by stage even when uids differ.
    """

    makespan_a_ms: float
    makespan_b_ms: float
    matched: int
    only_a: int
    only_b: int
    busy_delta_per_rank: List[float]
    deltas: List[SpanDelta]

    @property
    def makespan_delta_ms(self) -> float:
        return self.makespan_b_ms - self.makespan_a_ms

    @property
    def max_start_delta_ms(self) -> float:
        return max((abs(d.start_delta_ms) for d in self.deltas), default=0.0)

    @property
    def max_duration_delta_ms(self) -> float:
        return max((abs(d.duration_delta_ms) for d in self.deltas),
                   default=0.0)

    @property
    def identical(self) -> bool:
        return (self.only_a == 0 and self.only_b == 0
                and self.max_start_delta_ms <= 1e-6
                and self.max_duration_delta_ms <= 1e-6)

    def top_movers(self, n: int = 5) -> List[SpanDelta]:
        return sorted(self.deltas, key=lambda d: -abs(d.start_delta_ms))[:n]

    def describe(self) -> str:
        lines = [
            f"makespan {self.makespan_a_ms:.2f}ms -> "
            f"{self.makespan_b_ms:.2f}ms "
            f"({self.makespan_delta_ms:+.2f}ms)",
            f"{self.matched} stages matched, {self.only_a} only in A, "
            f"{self.only_b} only in B",
        ]
        if self.identical:
            lines.append("traces are identical (byte-equal timelines)")
            return "\n".join(lines)
        for delta in self.top_movers():
            mb, module, sub, chunk, direction = delta.key
            moved = (f", rank {delta.rank_a}->{delta.rank_b}"
                     if delta.rank_a != delta.rank_b else "")
            # Decoupled-backward twins share a key; the occurrence counter
            # tells the duplicate rows apart.
            twin = f"#{delta.occurrence}" if delta.occurrence else ""
            lines.append(
                f"  {direction} {module} mb{mb}.{sub} chunk{chunk}{twin}: "
                f"start {delta.start_delta_ms:+.2f}ms, "
                f"dur {delta.duration_delta_ms:+.2f}ms{moved}"
            )
        return "\n".join(lines)


def _keyed(trace: Trace) -> Dict[Tuple, Span]:
    out: Dict[Tuple, Span] = {}
    counts: Dict[Tuple, int] = {}
    for span in sorted(trace.compute_spans(),
                       key=lambda s: (s.start_ms, s.rank)):
        base = span.key()
        occurrence = counts.get(base, 0)
        counts[base] = occurrence + 1
        out[base + (occurrence,)] = span
    return out


def diff_traces(a: Trace, b: Trace) -> TraceDiff:
    """Match the two traces' compute spans and report their movement."""
    spans_a = _keyed(a)
    spans_b = _keyed(b)
    ranks = max(a.num_ranks, b.num_ranks)
    busy_delta = [0.0] * ranks
    for span in spans_a.values():
        busy_delta[span.rank] -= span.duration_ms
    for span in spans_b.values():
        busy_delta[span.rank] += span.duration_ms
    deltas: List[SpanDelta] = []
    for key in spans_a.keys() & spans_b.keys():
        sa, sb = spans_a[key], spans_b[key]
        deltas.append(SpanDelta(
            key=key[:-1],
            occurrence=key[-1],
            rank_a=sa.rank,
            rank_b=sb.rank,
            start_delta_ms=sb.start_ms - sa.start_ms,
            duration_delta_ms=sb.duration_ms - sa.duration_ms,
        ))
    return TraceDiff(
        makespan_a_ms=a.total_ms,
        makespan_b_ms=b.total_ms,
        matched=len(deltas),
        only_a=len(spans_a.keys() - spans_b.keys()),
        only_b=len(spans_b.keys() - spans_a.keys()),
        busy_delta_per_rank=busy_delta,
        deltas=deltas,
    )
