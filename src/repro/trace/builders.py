"""Construct traces from simulator results and compiled execution plans.

Two entry points mirror the two execution paths:

* :func:`trace_from_sim` — post-hoc trace of a
  :class:`~repro.sim.pipeline.PipelineSimResult` (the planner/CLI path);
  shares its span-emission code with the simulator's live ``collector``
  parameter, so the two can never diverge.
* :func:`trace_from_engine` — trace of a compiled
  :class:`~repro.runtime.actions.ExecutionPlan` replayed on the
  deterministic engine, enriched with stage attribution from the graph
  it was compiled from.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from repro.trace.analysis import annotate_stalls
from repro.trace.events import Trace, TraceCollector, TraceMeta, emit_sim_spans


def trace_from_sim(
    graph,
    result,
    cluster=None,
    parallel=None,
    cost_model=None,
    label: str = "pipeline",
    schedule_uid: str = "",
    stalls: bool = True,
) -> Trace:
    """Build a trace from a simulated iteration.

    Args:
        graph: The :class:`~repro.core.stages.IterationGraph` simulated.
        result: The :class:`~repro.sim.pipeline.PipelineSimResult`.
        cluster / parallel / cost_model: When given, P2P transfers are
            reconstructed as ``comm`` spans (the same latencies the
            simulator charged); otherwise comm spans are omitted.
        label: Trace label (model / schedule name).
        schedule_uid: Graph-signature digest, when known.
        stalls: Annotate idle gaps as classified ``stall`` spans.
    """
    collector = TraceCollector(
        label=label,
        source="sim",
        num_ranks=graph.num_ranks,
        schedule_uid=schedule_uid,
        tp=parallel.tp if parallel is not None else 1,
        device=cluster.gpu.name if cluster is not None else "",
    )
    p2p_ms = None
    if cluster is not None and parallel is not None:
        from repro.sim.costmodel import CostModel
        from repro.sim.kernel import P2PTable

        # The same memoised lookup path the simulator charges hops
        # through, so reconstructed comm spans cannot diverge from it.
        p2p_ms = P2PTable(cluster, parallel,
                          cost_model or CostModel()).latency_ms

    emit_sim_spans(collector, graph, result.start_ms, result.end_ms, p2p_ms)
    trace = collector.build(total_ms=result.total_ms)
    if stalls:
        annotate_stalls(trace)
    return trace


def trace_from_engine(
    plan,
    graph=None,
    label: str = "engine",
    schedule_uid: str = "",
    stalls: bool = True,
) -> Trace:
    """Execute ``plan`` on the deterministic engine and trace it.

    Args:
        plan: The compiled :class:`~repro.runtime.actions.ExecutionPlan`.
        graph: When given, engine spans (which only know schedule uids)
            are enriched with microbatch / module / dependency
            attribution from the graph the plan was compiled from —
            required for critical-path and recalibration analytics.
        label / schedule_uid / stalls: As in :func:`trace_from_sim`.
    """
    from repro.runtime.engine import execute_plan

    collector = TraceCollector(
        label=label, source="engine", num_ranks=plan.num_ranks,
        schedule_uid=schedule_uid,
    )
    result = execute_plan(plan, collector=collector)
    trace = collector.build(total_ms=result.total_ms)
    if graph is not None:
        trace.enrich(graph)
    if stalls:
        annotate_stalls(trace)
    return trace


def merge_traces(
    traces: Sequence[Trace],
    label: str = "merged",
    gap_ms: float = 0.0,
) -> Trace:
    """Concatenate per-iteration traces into one steady-state timeline.

    Iteration ``i``'s spans are shifted by the cumulative makespan of
    iterations ``0..i-1`` (plus ``gap_ms`` between iterations, e.g. an
    optimizer step), and every span gains an ``iteration`` attribute.
    The source traces are left untouched.  The merged trace is meant for
    visualisation and aggregate bubble statistics across iterations —
    schedule uids repeat per iteration, so uid-keyed analytics
    (critical path, recalibration) should consume the individual traces
    instead.

    The merged meta records the iteration count and the start offset of
    each iteration under ``extra['iteration_starts_ms']``.
    """
    traces = list(traces)
    if not traces:
        raise ValueError("merge_traces needs at least one trace")
    first = traces[0].meta
    offsets = []
    spans = []
    offset = 0.0
    for i, trace in enumerate(traces):
        offsets.append(offset)
        for span in trace.spans:
            shifted = replace(
                span,
                start_ms=span.start_ms + offset,
                end_ms=span.end_ms + offset,
                attrs={**span.attrs, "iteration": i},
            )
            spans.append(shifted)
        offset += trace.total_ms + gap_ms
    total = offset - (gap_ms if traces else 0.0)
    meta = TraceMeta(
        label=label or first.label,
        source=first.source,
        num_ranks=max(t.num_ranks for t in traces),
        total_ms=total,
        schedule_uid="",
        tp=first.tp,
        device=first.device,
        extra={
            "iterations": len(traces),
            "iteration_starts_ms": offsets,
            "gap_ms": gap_ms,
        },
    )
    return Trace(meta, spans)
