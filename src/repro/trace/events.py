"""Structured trace-event schema and collector.

The trace subsystem's single source of truth: every span is one timed
interval on one pipeline rank, attributed to a compute stage (with
microbatch / module / schedule-uid metadata), a point-to-point transfer,
or a classified stall.  Both the discrete-event pipeline simulator
(:func:`repro.sim.pipeline.simulate_pipeline`) and the runtime engine
(:func:`repro.runtime.engine.execute_plan`) emit into a
:class:`TraceCollector`; everything downstream — Chrome-trace export,
critical-path extraction, bubble decomposition, cross-trace diffs and
cost-model recalibration — consumes the resulting :class:`Trace`.

A compact *native* JSON format (columnar span arrays) round-trips traces
losslessly, including the dependency edges and workload attribution the
Chrome export flattens into ``args``.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

#: Bumped whenever the native serialisation changes shape.
TRACE_FORMAT = "repro-trace"
TRACE_VERSION = 1

#: Span kinds: GPU compute, P2P wire time, classified idle time.
KIND_COMPUTE = "compute"
KIND_COMM = "comm"
KIND_STALL = "stall"
VALID_KINDS = (KIND_COMPUTE, KIND_COMM, KIND_STALL)

#: Stall causes assigned by bubble decomposition
#: (:func:`repro.trace.analysis.decompose_bubbles`).
STALL_CAUSES = ("warmup", "dependency", "straggler", "cooldown")

#: Timestamp comparison tolerance (milliseconds).
EPS_MS = 1e-9


class TraceValidationError(ValueError):
    """A trace violates the event-schema invariants."""


@dataclass
class Span:
    """One timed interval on one pipeline rank.

    Attributes:
        rank: Pipeline rank the span occupies (for ``comm`` spans, the
            *receiving* rank).
        kind: ``"compute"``, ``"comm"`` or ``"stall"``.
        name: Human-readable label (``"fw vit mb0"``, a stall cause, ...).
        start_ms / end_ms: Interval bounds in milliseconds.
        uid: Schedule uid of the stage computed (compute spans) or the
            *consumer* stage of a transfer (comm spans); -1 otherwise.
        src_uid: Producer stage of a transfer (comm spans only).
        microbatch / module / sub_index / chunk / direction / strategy:
            Stage attribution, mirroring :class:`repro.core.stages.SegmentKey`
            plus the selected memory-optimization strategy label.
        deps: Schedule uids this span's stage depended on (compute only).
        attrs: Free-form numeric/string attributes.  Compute spans emitted
            from an :class:`~repro.core.stages.IterationGraph` carry the
            workload metadata recalibration needs (``layers``,
            ``instances``, ``seq``, ``context``, ``share``, ``extra_ms``).
    """

    rank: int
    kind: str
    name: str
    start_ms: float
    end_ms: float
    uid: int = -1
    src_uid: int = -1
    microbatch: int = -1
    module: str = ""
    sub_index: int = -1
    chunk: int = -1
    direction: str = ""
    strategy: str = ""
    deps: Tuple[int, ...] = ()
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms

    def key(self) -> Tuple[int, str, int, int, str]:
        """Schedule-independent identity used for cross-trace matching."""
        return (self.microbatch, self.module, self.sub_index, self.chunk,
                self.direction)


@dataclass
class TraceMeta:
    """Trace-level context recorded alongside the spans."""

    label: str = ""
    source: str = "sim"  # "sim" | "engine" | external
    num_ranks: int = 0
    total_ms: float = 0.0
    schedule_uid: str = ""  # graph-signature digest, when known
    tp: int = 1
    device: str = ""
    extra: Dict[str, object] = field(default_factory=dict)


class Trace:
    """An immutable-ish bag of spans plus metadata, with accessors."""

    def __init__(self, meta: TraceMeta, spans: Sequence[Span]) -> None:
        self.meta = meta
        self.spans: List[Span] = sorted(
            spans, key=lambda s: (s.start_ms, s.rank, s.end_ms)
        )

    def __len__(self) -> int:
        return len(self.spans)

    @property
    def num_ranks(self) -> int:
        if self.meta.num_ranks > 0:
            return self.meta.num_ranks
        return max((s.rank for s in self.spans), default=-1) + 1

    @property
    def total_ms(self) -> float:
        if self.meta.total_ms > 0:
            return self.meta.total_ms
        return max((s.end_ms for s in self.spans), default=0.0)

    # -- accessors -----------------------------------------------------------

    def compute_spans(self, rank: Optional[int] = None) -> List[Span]:
        return self.spans_of_kind(KIND_COMPUTE, rank)

    def spans_of_kind(self, kind: str, rank: Optional[int] = None) -> List[Span]:
        return [
            s for s in self.spans
            if s.kind == kind and (rank is None or s.rank == rank)
        ]

    def span_by_uid(self) -> Dict[int, Span]:
        """Compute spans indexed by schedule uid."""
        return {s.uid: s for s in self.compute_spans() if s.uid >= 0}

    def busy_ms_per_rank(self) -> List[float]:
        busy = [0.0] * self.num_ranks
        for span in self.compute_spans():
            busy[span.rank] += span.duration_ms
        return busy

    def enrich(self, graph) -> "Trace":
        """Fill stage attribution from an iteration graph, by uid.

        Engine-emitted spans only know schedule uids; this pulls
        microbatch / module / deps / workload attrs from the graph the
        plan was compiled from.  Returns ``self`` for chaining.
        """
        for span in self.spans:
            if span.kind != KIND_COMPUTE or span.uid < 0:
                continue
            if not (0 <= span.uid < len(graph.stages)):
                continue
            stage = graph.stages[span.uid]
            pair = graph.pairs[stage.pair_id]
            key = stage.key
            span.microbatch = key.microbatch
            span.module = key.module
            span.sub_index = key.sub_index
            span.chunk = key.chunk
            span.direction = key.direction.value
            span.strategy = pair.strategy.label
            span.deps = tuple(stage.deps)
            span.name = f"{span.direction} {key.module} mb{key.microbatch}"
            span.attrs.update(_stage_attrs(graph, stage))
        return self

    # -- validation ----------------------------------------------------------

    def validate(self) -> List[str]:
        """Check the event-schema invariants; returns a list of problems.

        * every span has a valid kind, a non-negative duration and a rank
          inside the pipeline width;
        * per rank, compute and stall spans are mutually non-overlapping
          (they partition the rank's timeline; comm spans are
          asynchronous and may overlap compute);
        * no span extends past the recorded makespan.
        """
        problems: List[str] = []
        ranks = self.num_ranks
        total = self.total_ms
        for i, span in enumerate(self.spans):
            if span.kind not in VALID_KINDS:
                problems.append(f"span {i}: unknown kind {span.kind!r}")
            if span.end_ms < span.start_ms - EPS_MS:
                problems.append(f"span {i}: negative duration")
            if not (0 <= span.rank < ranks):
                problems.append(f"span {i}: rank {span.rank} out of range")
            if span.end_ms > total + EPS_MS:
                problems.append(
                    f"span {i}: ends at {span.end_ms} past makespan {total}"
                )
        for rank in range(ranks):
            occupied = sorted(
                (s for s in self.spans
                 if s.rank == rank and s.kind in (KIND_COMPUTE, KIND_STALL)),
                key=lambda s: s.start_ms,
            )
            for prev, cur in zip(occupied, occupied[1:]):
                if cur.start_ms < prev.end_ms - EPS_MS:
                    problems.append(
                        f"rank {rank}: {prev.name!r} [{prev.start_ms:.6f}, "
                        f"{prev.end_ms:.6f}) overlaps {cur.name!r} starting "
                        f"at {cur.start_ms:.6f}"
                    )
        return problems

    def check(self) -> "Trace":
        """Raise :class:`TraceValidationError` on any schema violation."""
        problems = self.validate()
        if problems:
            raise TraceValidationError("; ".join(problems[:5]))
        return self

    # -- native (compact columnar) serialisation -----------------------------

    _COLUMNS = (
        "rank", "kind", "name", "start_ms", "end_ms", "uid", "src_uid",
        "microbatch", "module", "sub_index", "chunk", "direction",
        "strategy", "deps", "attrs",
    )

    def to_dict(self) -> Dict:
        columns: Dict[str, List] = {c: [] for c in self._COLUMNS}
        for span in self.spans:
            for column in self._COLUMNS:
                value = getattr(span, column)
                if column == "deps":
                    value = list(value)
                columns[column].append(value)
        meta = self.meta
        return {
            "format": TRACE_FORMAT,
            "version": TRACE_VERSION,
            "meta": {
                "label": meta.label,
                "source": meta.source,
                "num_ranks": meta.num_ranks,
                "total_ms": meta.total_ms,
                "schedule_uid": meta.schedule_uid,
                "tp": meta.tp,
                "device": meta.device,
                "extra": meta.extra,
            },
            "spans": columns,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "Trace":
        """Rebuild a trace from :meth:`to_dict` output.

        Raises:
            TraceValidationError: on any malformed payload — wrong
                format/version, non-object top level, unknown meta keys,
                ragged span columns — so callers handle exactly one
                error type for untrusted files.
        """
        if not isinstance(payload, dict):
            raise TraceValidationError("trace payload is not a JSON object")
        if payload.get("format") != TRACE_FORMAT:
            raise TraceValidationError(
                f"not a native trace (format={payload.get('format')!r})"
            )
        if payload.get("version") != TRACE_VERSION:
            raise TraceValidationError(
                f"unsupported trace version {payload.get('version')!r}"
            )
        try:
            meta = TraceMeta(**payload.get("meta", {}))
            columns = payload.get("spans", {})
            count = len(columns.get("rank", []))
            spans = []
            for i in range(count):
                kwargs = {c: columns[c][i]
                          for c in cls._COLUMNS if c in columns}
                kwargs["deps"] = tuple(kwargs.get("deps", ()))
                spans.append(Span(**kwargs))
        except (AttributeError, TypeError, IndexError, KeyError,
                ValueError) as exc:
            raise TraceValidationError(
                f"malformed native trace payload: {exc}"
            ) from exc
        return cls(meta, spans)

    def save(self, path: str) -> str:
        with open(path, "w") as f:
            json.dump(self.to_dict(), f)
        return path

    @classmethod
    def load(cls, path: str) -> "Trace":
        with open(path) as f:
            return cls.from_dict(json.load(f))


def _stage_attrs(graph, stage) -> Dict[str, object]:
    """Workload attribution recalibration fits against.

    ``extra_ms`` is the latency added by the selected memory-optimization
    strategy (recomputation, prefetch) — subtracted before fitting the
    base cost model so strategy choices don't bias the roofline factors.
    """
    pair = graph.pairs[stage.pair_id]
    strategy = pair.strategy
    extra = strategy.fw_extra_ms if stage.is_forward else strategy.bw_extra_ms
    return {
        "layers": pair.num_layers,
        "instances": pair.instances,
        "seq": pair.seq,
        "context": pair.context,
        "share": stage.latency_share,
        "extra_ms": extra * stage.latency_share,
    }


class TraceCollector:
    """Mutable span accumulator the simulator and engine emit into."""

    def __init__(
        self,
        label: str = "",
        source: str = "sim",
        num_ranks: int = 0,
        schedule_uid: str = "",
        tp: int = 1,
        device: str = "",
    ) -> None:
        self.meta = TraceMeta(
            label=label, source=source, num_ranks=num_ranks,
            schedule_uid=schedule_uid, tp=tp, device=device,
        )
        self.spans: List[Span] = []

    def add(self, span: Span) -> Span:
        self.spans.append(span)
        return span

    def record_stage(
        self, graph, uid: int, start_ms: float, end_ms: float
    ) -> Span:
        """Emit one compute span with full attribution from the graph."""
        stage = graph.stages[uid]
        pair = graph.pairs[stage.pair_id]
        key = stage.key
        direction = key.direction.value
        return self.add(Span(
            rank=stage.rank,
            kind=KIND_COMPUTE,
            name=f"{direction} {key.module} mb{key.microbatch}",
            start_ms=start_ms,
            end_ms=end_ms,
            uid=uid,
            microbatch=key.microbatch,
            module=key.module,
            sub_index=key.sub_index,
            chunk=key.chunk,
            direction=direction,
            strategy=pair.strategy.label,
            deps=tuple(stage.deps),
            attrs=_stage_attrs(graph, stage),
        ))

    def record_compute(
        self,
        rank: int,
        uid: int,
        start_ms: float,
        end_ms: float,
        direction: str = "",
        strategy: str = "",
    ) -> Span:
        """Emit one compute span with uid-only attribution (engine path)."""
        name = f"{direction or 'stage'} uid{uid}"
        return self.add(Span(
            rank=rank, kind=KIND_COMPUTE, name=name,
            start_ms=start_ms, end_ms=end_ms, uid=uid,
            direction=direction, strategy=strategy,
        ))

    def record_comm(
        self,
        src_uid: int,
        dst_uid: int,
        src_rank: int,
        dst_rank: int,
        start_ms: float,
        end_ms: float,
        nbytes: float = 0.0,
    ) -> Span:
        """Emit one P2P transfer span (on the receiving rank's track)."""
        return self.add(Span(
            rank=dst_rank,
            kind=KIND_COMM,
            name=f"p2p {src_uid}->{dst_uid}",
            start_ms=start_ms,
            end_ms=end_ms,
            uid=dst_uid,
            src_uid=src_uid,
            attrs={"nbytes": nbytes, "src_rank": src_rank},
        ))

    def build(self, total_ms: Optional[float] = None) -> Trace:
        if total_ms is not None:
            self.meta.total_ms = total_ms
        return Trace(self.meta, self.spans)


class TraceRing:
    """Bounded retention of the last K iteration traces.

    The planner emits one trace per iteration; steady-state analytics
    (merged multi-iteration export, online recalibration windows) want a
    sliding window of recent iterations without unbounded growth.
    Thread-safe: the planning service's workers append concurrently with
    the recalibration loop snapshotting.
    """

    def __init__(self, capacity: int = 8) -> None:
        if capacity < 1:
            raise ValueError("ring capacity must be >= 1")
        self.capacity = capacity
        self._traces: "deque[Trace]" = deque(maxlen=capacity)
        self._appended = 0
        self._lock = threading.Lock()

    def append(self, trace: Trace) -> None:
        with self._lock:
            self._traces.append(trace)
            self._appended += 1

    @property
    def appended(self) -> int:
        """Total traces ever appended (including evicted ones)."""
        with self._lock:
            return self._appended

    def snapshot(self) -> List[Trace]:
        """The retained traces, oldest first (a consistent copy)."""
        with self._lock:
            return list(self._traces)

    def latest(self) -> Optional[Trace]:
        with self._lock:
            return self._traces[-1] if self._traces else None

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def __iter__(self) -> Iterator[Trace]:
        return iter(self.snapshot())


def emit_sim_spans(
    collector: TraceCollector,
    graph,
    start_ms: Sequence[float],
    end_ms: Sequence[float],
    p2p_ms: Optional[Callable[[int, int, float], float]] = None,
) -> None:
    """Emit one simulated timeline into ``collector``.

    The shared emission path behind both
    :func:`repro.sim.pipeline.simulate_pipeline` (live collection) and
    :func:`repro.trace.builders.trace_from_sim` (post-hoc construction),
    so the two can never diverge.  ``p2p_ms`` reproduces the simulator's
    transfer latency — both callers pass the bound ``latency_ms`` of a
    shared :class:`~repro.sim.kernel.P2PTable`, the single bandwidth
    lookup path; when omitted, comm spans are skipped.
    """
    if collector.meta.num_ranks == 0:
        collector.meta.num_ranks = graph.num_ranks
    for stage in graph.stages:
        collector.record_stage(graph, stage.uid,
                               start_ms[stage.uid], end_ms[stage.uid])
        if p2p_ms is None:
            continue
        for dep in stage.deps:
            dep_stage = graph.stages[dep]
            if dep_stage.rank == stage.rank or stage.p2p_bytes <= 0:
                continue
            wire = p2p_ms(dep_stage.rank, stage.rank, stage.p2p_bytes)
            if wire <= 0:
                continue
            collector.record_comm(
                src_uid=dep,
                dst_uid=stage.uid,
                src_rank=dep_stage.rank,
                dst_rank=stage.rank,
                start_ms=end_ms[dep],
                end_ms=end_ms[dep] + wire,
                nbytes=stage.p2p_bytes,
            )
