"""Chrome-trace / Perfetto export and schema validation.

The exported JSON loads in ``chrome://tracing`` and
https://ui.perfetto.dev: one thread per pipeline rank carrying compute
and stall slices, plus one ``(comm)`` thread per rank for asynchronous
P2P transfers (which legitimately overlap compute).
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

from repro.trace.events import (
    KIND_COMM,
    KIND_COMPUTE,
    KIND_STALL,
    Span,
    Trace,
)


def _slice_args(span: Span) -> Dict:
    args: Dict[str, object] = {
        "microbatch": span.microbatch,
        "module": span.module,
        "sub": span.sub_index,
        "chunk": span.chunk,
        "strategy": span.strategy,
        "uid": span.uid,
    }
    if span.deps:
        args["deps"] = list(span.deps)
    args.update(span.attrs)
    return args


def chrome_events(trace: Trace, process_name: str = "",
                  flows: bool = True, pid: int = 0,
                  flow_id_start: int = 0,
                  thread_prefix: str = "PP rank",
                  ) -> Tuple[List[Dict], int]:
    """Build the trace-event list for one trace on Chrome process ``pid``.

    The reusable core of :func:`to_chrome`: multi-process mergers (the
    obs timeline joins one trace per OS process) call it once per
    source with a distinct ``pid`` and thread the running ``flow_id``
    through so flow ids never collide across processes.  Returns the
    events plus the next free flow id.
    """
    num_ranks = trace.num_ranks
    events: List[Dict] = [{
        "name": "process_name",
        "ph": "M",
        "pid": pid,
        "args": {"name": process_name or trace.meta.label or "pipeline"},
    }]
    comm_tids = sorted(
        {s.rank for s in trace.spans if s.kind == KIND_COMM}
    )
    for rank in range(num_ranks):
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": rank,
            "args": {"name": f"{thread_prefix} {rank}"},
        })
    for rank in comm_tids:
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": num_ranks + rank,
            "args": {"name": f"{thread_prefix} {rank} (comm)"},
        })
    flow_id = flow_id_start
    for span in trace.spans:
        if span.kind == KIND_COMPUTE:
            tid = span.rank
            cat = span.direction or KIND_COMPUTE
            args = _slice_args(span)
        elif span.kind == KIND_STALL:
            tid = span.rank
            cat = KIND_STALL
            args = dict(span.attrs)
        else:
            tid = num_ranks + span.rank
            cat = KIND_COMM
            args = {"src_uid": span.src_uid, "dst_uid": span.uid,
                    **span.attrs}
        events.append({
            "name": span.name,
            "cat": cat,
            "ph": "X",
            "pid": pid,
            "tid": tid,
            "ts": span.start_ms * 1e3,  # Chrome timestamps are in us
            "dur": span.duration_ms * 1e3,
            "args": args,
        })
        if flows and span.kind == KIND_COMM:
            # Flow start binds to the producer's compute slice (the
            # transfer begins the instant the producing stage ends), the
            # finish to the consumer slice enclosing the arrival time.
            src_rank = int(span.attrs.get("src_rank", span.rank))
            flow_id += 1
            events.append({
                "name": span.name,
                "cat": "p2p-flow",
                "ph": "s",
                "id": flow_id,
                "pid": pid,
                "tid": src_rank,
                "ts": span.start_ms * 1e3,
            })
            events.append({
                "name": span.name,
                "cat": "p2p-flow",
                "ph": "f",
                "bp": "e",
                "id": flow_id,
                "pid": pid,
                "tid": span.rank,
                "ts": span.end_ms * 1e3,
            })
    return events, flow_id


def to_chrome(trace: Trace, process_name: str = "",
              flows: bool = True) -> Dict:
    """Build a Chrome-tracing JSON object from a trace.

    Thread ids: rank ``r`` holds compute + stall slices at ``tid=r``;
    its comm slices live at ``tid=num_ranks + r`` so asynchronous
    transfers don't nest under compute.

    With ``flows`` (the default), every P2P transfer additionally emits a
    Perfetto flow pair — ``ph: "s"`` anchored on the producing rank's
    compute track at the moment the transfer starts, ``ph: "f"``
    (``bp: "e"``) on the consuming rank's track at arrival — so the UI
    draws an arrow from the producer slice to the consumer slice across
    rank tracks.
    """
    events, _ = chrome_events(trace, process_name, flows=flows)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def save_chrome(trace: Trace, path: str, process_name: str = "",
                flows: bool = True) -> str:
    """Serialise :func:`to_chrome` to ``path``; returns the path."""
    with open(path, "w") as f:
        json.dump(to_chrome(trace, process_name, flows=flows), f)
    return path


def validate_chrome_trace(payload: Dict) -> List[str]:
    """Check a Chrome-trace JSON object against the trace-event schema.

    Returns a list of problems (empty means valid).  Covers the subset of
    the trace-event format this subsystem emits: an object with a
    ``traceEvents`` array of ``M`` (metadata), ``X`` (complete) and
    ``s``/``f`` (flow) events with numeric non-negative timestamps, plus
    the stage-attribution keys DIP's analytics rely on.  Flow events must
    carry an ``id`` and arrive in matched start/finish pairs.
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["top level is not a JSON object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["missing traceEvents array"]
    if not events:
        problems.append("traceEvents is empty")
    unit = payload.get("displayTimeUnit", "ms")
    if unit not in ("ms", "ns"):
        problems.append(f"invalid displayTimeUnit {unit!r}")
    saw_slice = False
    flow_starts: Dict[object, int] = {}
    flow_finishes: Dict[object, int] = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i}: not an object")
            continue
        phase = event.get("ph")
        if phase not in ("M", "X", "s", "f"):
            problems.append(f"event {i}: unsupported phase {phase!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append(f"event {i}: missing name")
        if not isinstance(event.get("pid"), int):
            problems.append(f"event {i}: missing integer pid")
        if phase == "M":
            continue
        if phase in ("s", "f"):
            if "id" not in event:
                problems.append(f"event {i}: flow event missing id")
            else:
                side = flow_starts if phase == "s" else flow_finishes
                side[event["id"]] = side.get(event["id"], 0) + 1
            if not isinstance(event.get("tid"), int):
                problems.append(f"event {i}: flow event missing integer tid")
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(
                    f"event {i}: ts must be a non-negative number, got {ts!r}"
                )
            continue
        saw_slice = True
        if not isinstance(event.get("tid"), int):
            problems.append(f"event {i}: slice missing integer tid")
        for field in ("ts", "dur"):
            value = event.get(field)
            if not isinstance(value, (int, float)) or value < 0:
                problems.append(
                    f"event {i}: {field} must be a non-negative number, "
                    f"got {value!r}"
                )
        args = event.get("args")
        if event.get("cat") in ("fw", "bw", KIND_COMPUTE):
            if not isinstance(args, dict) or "uid" not in args:
                problems.append(
                    f"event {i}: compute slice missing args.uid"
                )
        if event.get("cat") == KIND_STALL:
            if not isinstance(args, dict) or "cause" not in args:
                problems.append(f"event {i}: stall slice missing args.cause")
    if events and not saw_slice:
        problems.append("no X (complete) slices in traceEvents")
    for flow_id, count in flow_starts.items():
        if flow_finishes.get(flow_id, 0) != count:
            problems.append(f"flow {flow_id!r}: unmatched start/finish pair")
    for flow_id in flow_finishes:
        if flow_id not in flow_starts:
            problems.append(f"flow {flow_id!r}: finish without start")
    return problems


def validate_chrome_trace_file(path: str) -> List[str]:
    """Load ``path`` and validate it; JSON errors become problems."""
    try:
        with open(path) as f:
            payload = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"cannot load {path}: {exc}"]
    return validate_chrome_trace(payload)
